//! The thread-safety trap: fork a process while another thread holds the
//! allocator lock, and the child deadlocks on its first allocation. The
//! fork-safety auditor predicts it before the fork happens.
//!
//! Run with: `cargo run --example fork_deadlock`

use forkroad::audit::audit_main_thread;
use forkroad::kernel::{sync, Errno};
use forkroad::{Os, OsConfig};

fn main() {
    let mut os = Os::boot(OsConfig::default());
    let init = os.init;

    // A process with a worker thread that is mid-malloc at fork time.
    let app = os.kernel.allocate_process(init, "app").unwrap();
    let malloc_lock = os
        .kernel
        .register_lock(app, sync::names::MALLOC_ARENA)
        .unwrap();
    let worker = os.kernel.spawn_thread(app).unwrap();
    os.kernel.lock_acquire(app, worker, malloc_lock).unwrap();
    println!("worker thread {worker:?} holds the malloc arena lock\n");

    // Ask the auditor first.
    let report = audit_main_thread(&os.kernel, app).unwrap();
    println!("fork-safety audit before forking:\n{}", report.render());
    assert!(!report.is_safe());

    // Fork anyway — exactly what a library deep in some dependency does.
    let child = os.fork(app).unwrap();
    let child_main = os.kernel.process(child).unwrap().main_tid();

    // The child calls malloc (acquires the arena lock)...
    match os.kernel.lock_acquire(child, child_main, malloc_lock) {
        Err(Errno::Edeadlk) => {
            println!(
                "child {child}: first malloc → EDEADLK. The lock's owner was never\n\
                 copied into the child; it can never be released. Hung forever."
            )
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }

    // Meanwhile the parent is fine: the worker finishes and releases.
    os.kernel.lock_release(app, worker, malloc_lock).unwrap();
    let app_main = os.kernel.process(app).unwrap().main_tid();
    os.kernel.lock_acquire(app, app_main, malloc_lock).unwrap();
    println!("\nparent {app}: same acquire succeeds once the worker releases.");
    println!("\nthe auditor flagged this fork as CRITICAL before it happened — use it.");
}
