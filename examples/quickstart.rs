//! Quickstart: boot the simulated OS and contrast the cost of fork+exec
//! against posix_spawn and the cross-process builder.
//!
//! Run with: `cargo run --example quickstart`

use forkroad::api::{ProcessBuilder, SpawnAttrs};
use forkroad::mem::{Prot, Share, CYCLES_PER_US};
use forkroad::{Os, OsConfig};

fn main() {
    let mut os = Os::boot(OsConfig::default());
    let init = os.init;

    // Give init a 64 MiB working set, fully resident — the thing fork
    // will have to duplicate.
    let pages = 16_384; // 64 MiB of 4 KiB pages
    let base = os
        .kernel
        .mmap_anon(init, pages, Prot::RW, Share::Private)
        .unwrap();
    os.kernel.populate(init, base, pages).unwrap();
    println!(
        "parent resident set: {} pages (64 MiB)\n",
        os.kernel.process(init).unwrap().resident_pages()
    );

    // 1. The traditional way: fork, then immediately exec.
    let (forked, fork_cycles) = os.measure(|os| {
        let child = os.fork(init).expect("fork");
        os.exec(child, "/bin/sh").expect("exec");
        child
    });
    println!(
        "fork+exec     : {:>10.1} us  (copied {} PTEs, then threw the copy away)",
        fork_cycles as f64 / CYCLES_PER_US as f64,
        pages
    );

    // 2. posix_spawn: build the child directly.
    let (spawned, spawn_cycles) = os.measure(|os| {
        os.spawn(init, "/bin/sh", &[], &SpawnAttrs::default())
            .expect("spawn")
    });
    println!(
        "posix_spawn   : {:>10.1} us  (independent of the parent's 64 MiB)",
        spawn_cycles as f64 / CYCLES_PER_US as f64
    );

    // 3. The cross-process builder: nothing inherited unless granted.
    let (built, xproc_cycles) = os.measure(|os| {
        os.spawn_builder(init, ProcessBuilder::new("/bin/sh"))
            .expect("xproc")
    });
    println!(
        "xproc builder : {:>10.1} us  (child starts with zero descriptors)",
        xproc_cycles as f64 / CYCLES_PER_US as f64
    );

    println!(
        "\nfork+exec paid {:.0}x more than posix_spawn for the same result.",
        fork_cycles as f64 / spawn_cycles.max(1) as f64
    );

    // All three children are real processes in the table.
    for pid in [forked, spawned, built.pid] {
        let p = os.kernel.process(pid).unwrap();
        println!(
            "child {:>3}: name={:<4} fds={} resident={} pages",
            p.pid,
            p.name,
            p.fds.open_count(),
            p.resident_pages()
        );
    }
}
