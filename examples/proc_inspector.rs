//! Inspect what fork actually duplicated, through the simulator's
//! /proc-style views: maps, status, meminfo and a ps listing.
//!
//! Run with: `cargo run --example proc_inspector`

use forkroad::api::SpawnAttrs;
use forkroad::kernel::mm::Madvice;
use forkroad::mem::{Prot, Share};
use forkroad::{Os, OsConfig};

fn main() {
    let mut os = Os::boot(OsConfig::default());
    let init = os.init;

    // A worker with a real image, some heap, and a DMA-style region the
    // child must not inherit.
    let worker = os
        .spawn(init, "/bin/server", &[], &SpawnAttrs::default())
        .unwrap();
    let heap = os
        .kernel
        .mmap_anon(worker, 64, Prot::RW, Share::Private)
        .unwrap();
    os.kernel.populate(worker, heap, 64).unwrap();
    let dma = os
        .kernel
        .mmap_anon(worker, 16, Prot::RW, Share::Private)
        .unwrap();
    os.kernel
        .madvise(worker, dma, 16, Madvice::DontFork)
        .unwrap();
    let secrets = os
        .kernel
        .mmap_anon(worker, 4, Prot::RW, Share::Private)
        .unwrap();
    os.kernel
        .madvise(worker, secrets, 4, Madvice::WipeOnFork)
        .unwrap();

    println!("=== /proc/{worker}/maps (parent) ===");
    println!("{}", os.kernel.proc_maps(worker).unwrap());

    let child = os.fork(worker).unwrap();
    println!("=== /proc/{child}/maps (forked child) ===");
    println!("{}", os.kernel.proc_maps(child).unwrap());
    println!("note: the dontfork region is absent; the wipeonfork region is empty.\n");

    println!("=== /proc/{child}/status ===");
    println!("{}", os.kernel.proc_status(child).unwrap());

    println!("=== /proc/meminfo ===");
    println!("{}", os.kernel.proc_meminfo());

    println!("=== ps ===");
    println!("{}", os.kernel.ps());
}
