//! Make fork fail every way it can, and prove every failure clean.
//!
//! ```sh
//! cargo run --example fault_sweep
//! ```

use forkroad::faults::{count_crossings, with_plan, FaultPlan};
use forkroad::{Os, OsConfig};

fn main() {
    let parent_of = |os: &mut Os| {
        os.make_parent(forkroad::trace::ProcessShape::shell())
            .expect("parent")
    };

    // 1. How many ways can this fork die?
    let mut os = Os::boot(OsConfig::default());
    let parent = parent_of(&mut os);
    let trace = count_crossings(|| {
        os.fork(parent).expect("fault-free fork");
    });
    println!("fork crosses {} injection points:", trace.len());
    for site in trace.sites() {
        let n = trace.crossings.iter().filter(|c| c.site == site).count();
        println!("  {:>18}  ×{n}", site.name());
    }

    // 2. Die each way; the kernel must come back byte-identical.
    let mut clean = 0;
    for nth in 0..trace.len() {
        let mut os = Os::boot(OsConfig::default());
        let parent = parent_of(&mut os);
        let base = os.kernel.baseline();
        let (result, t) =
            with_plan(FaultPlan::passive().fail_nth_crossing(nth as u64), || {
                os.fork(parent)
            });
        assert!(result.is_err(), "injected fault must surface");
        assert_eq!(t.injected().len(), 1);
        os.kernel.leak_check(&base).expect("no leaks");
        os.kernel.check_invariants().expect("intact");
        // The fault cleared: the very same fork now succeeds.
        os.fork(parent).expect("retry succeeds");
        clean += 1;
    }
    println!("\n{clean}/{} fail points: clean error, zero leaks, retry ok", trace.len());
}
