//! An Android-style zygote server — and, in miniature, the E15
//! open-loop service workload (`forkroad_core::experiments::service`,
//! [EXPERIMENTS.md](../EXPERIMENTS.md) §E15).
//!
//! The zygote pattern execs one big runtime image and then forks a
//! child per request: fast warm starts, but every child shares one
//! ASLR layout and inherits every descriptor. This example runs the
//! pattern three ways:
//!
//! 1. **Fork a worker per request** — the zygote proper. The security
//!    auditor quantifies the damage: all worker pairs share the
//!    complete layout (zero residual entropy — leak one child, own
//!    them all) and the private-key descriptor leaks into every one.
//! 2. **Spawn a worker per request** — the fix. Fresh ASLR draw per
//!    worker, inherit-nothing descriptors, at the cost of rebuilding
//!    each child from scratch.
//! 3. **An open-loop service burst** — E15's event loop, small enough
//!    to trace by hand. This is exactly how the full experiment works,
//!    scaled from 320 requests and five creation paths down to 24 and
//!    three:
//!
//!    * **Arrivals are open-loop Poisson.** A seeded `fpr_rng::Rng`
//!      draws exponential gaps (`-ln(1-u) × mean`), so requests arrive
//!      on a schedule that does not care how long service takes —
//!      unlike a closed loop, a slow creation path here builds queue.
//!      Everything is deterministic: same seed, same burst.
//!    * **Each request is served by a short-lived child.** The
//!      creation path is drawn from a weighted mix (fork-from-zygote,
//!      posix_spawn, vfork+exec below; the full E15 adds the spawn
//!      fast path and the xproc builder). The child is created, does
//!      its work, exits, and is reaped.
//!    * **The clock is virtual.** `os.measure` charges each service to
//!      the simulated cycle clock; the loop advances
//!      `clock = max(clock, arrival) + service` — idle gaps cost
//!      nothing, queueing shows up as `clock - arrival`.
//!    * **Latency lands in log2 histograms.** Per-path
//!      creation-to-exit cycles go into `fpr_trace`'s `Histogram`, read
//!      back as p50/p99 — the same percentile extraction
//!      (`Histogram::p99`, within one bucket of exact) that prices the
//!      `BENCH_service.json` gate.
//!
//!    What the full E15 adds on top: warm-pool autoscaling ticked
//!    between requests (pressure-gated, so it never fights reclaim),
//!    a queue-inclusive sojourn histogram, sustained-vs-offered
//!    throughput, and a degradation arm where a memory storm drains
//!    the pool and spawn falls back to the classic path. Run it with
//!    `cargo run -p fpr-bench --bin fig_service`.
//!
//! Run with: `cargo run --example zygote_server`

use forkroad::api::SpawnAttrs;
use forkroad::audit::{audit_inheritance, zygote_entropy, MAX_LAYOUT_BITS};
use forkroad::kernel::OpenFlags;
use forkroad::mem::CYCLES_PER_US;
use forkroad::trace::metrics::Histogram;
use forkroad::{Os, OsConfig};
use fpr_rng::Rng;

const WORKERS: usize = 8;
/// Requests in the mini service burst.
const REQUESTS: usize = 24;
/// Mean arrival gap: one request every ~4 us (≈250 k req/s offered).
const MEAN_GAP_CYCLES: f64 = 4.0 * CYCLES_PER_US as f64;

fn main() {
    let mut os = Os::boot(OsConfig::default());
    let init = os.init;

    // Boot the zygote: one heavyweight runtime image, warmed up.
    let zygote = os
        .spawn(init, "/bin/server", &[], &SpawnAttrs::default())
        .unwrap();
    // The zygote holds a private key file — a descriptor workers must not see.
    os.kernel
        .open(zygote, "/private_key", OpenFlags::RDWR, true)
        .unwrap();
    let warm = os.kernel.process(zygote).unwrap().resident_pages();
    println!("zygote warmed: {warm} resident pages, 1 secret fd\n");

    // ---- Fork a worker per request ------------------------------------
    let mut fork_children = Vec::new();
    let (_, fork_cost) = os.measure(|os| {
        for _ in 0..WORKERS {
            fork_children.push(os.fork(zygote).unwrap());
        }
    });
    println!(
        "forked {WORKERS} workers in {:.1} us total",
        fork_cost as f64 / CYCLES_PER_US as f64
    );
    let z = zygote_entropy(&os.kernel, &fork_children).unwrap();
    println!(
        "  layout sharing: {}/{} identical pairs, residual entropy {:.1} bits",
        z.identical_pairs,
        WORKERS * (WORKERS - 1) / 2,
        z.effective_entropy_bits
    );
    let r = audit_inheritance(&os.kernel, zygote, fork_children[0]).unwrap();
    println!("  audit of worker 0:\n{}", indent(&r.render()));

    // ---- Spawn a worker per request ------------------------------------
    let mut spawn_children = Vec::new();
    let (_, spawn_cost) = os.measure(|os| {
        for _ in 0..WORKERS {
            spawn_children.push(
                os.spawn(zygote, "/bin/server", &[], &SpawnAttrs::default())
                    .unwrap(),
            );
        }
    });
    println!(
        "spawned {WORKERS} workers in {:.1} us total",
        spawn_cost as f64 / CYCLES_PER_US as f64
    );
    let z2 = zygote_entropy(&os.kernel, &spawn_children).unwrap();
    println!(
        "  layout sharing: {} identical pairs, residual entropy {:.1}/{} bits",
        z2.identical_pairs, z2.effective_entropy_bits, MAX_LAYOUT_BITS
    );
    let r2 = audit_inheritance(&os.kernel, zygote, spawn_children[0]).unwrap();
    println!("  audit of worker 0:\n{}", indent(&r2.render()));

    println!(
        "the zygote trades {:.0}x faster worker creation for zero ASLR diversity —\n\
         exactly the trade the paper calls out.\n",
        spawn_cost as f64 / fork_cost.max(1) as f64
    );

    // ---- E15 in miniature: an open-loop service burst ------------------
    // Independent streams for arrivals and path choice, exactly like the
    // full experiment: forking the RNG keeps the arrival schedule fixed
    // even if the mix (or the serving code) changes.
    let mut seed_rng = Rng::seed_from_u64(42);
    let mut arrival_rng = seed_rng.fork_stream();
    let mut mix_rng = seed_rng.fork_stream();

    // Precompute the Poisson arrival times (exponential gaps).
    let mut arrivals = Vec::with_capacity(REQUESTS);
    let mut t = 0u64;
    for _ in 0..REQUESTS {
        let gap = -(1.0 - arrival_rng.gen_f64()).ln() * MEAN_GAP_CYCLES + 1.0;
        t += gap as u64;
        arrivals.push(t);
    }

    // Weighted path mix 3:2:1 — fork-from-zygote, posix_spawn, vfork+exec.
    let paths: [(&str, u32); 3] = [("fork(zygote)", 3), ("posix_spawn", 2), ("vfork+exec", 1)];
    let total_weight: u64 = paths.iter().map(|&(_, w)| w as u64).sum();
    let mut hists: Vec<(&str, Histogram)> =
        paths.iter().map(|&(l, _)| (l, Histogram::default())).collect();

    let mut clock = 0u64;
    let mut max_queue_wait = 0u64;
    for &arrival in &arrivals {
        // Open loop: the server sits idle until the next arrival, but a
        // request that arrives while we are still serving must queue.
        if clock < arrival {
            clock = arrival;
        }
        max_queue_wait = max_queue_wait.max(clock - arrival);

        // Draw the creation path from the weighted mix.
        let mut pick = mix_rng.gen_below(total_weight) as u32;
        let mut which = 0;
        for (i, &(_, w)) in paths.iter().enumerate() {
            if pick < w {
                which = i;
                break;
            }
            pick -= w;
        }

        // Serve: create the child, let it exit, reap it. The measured
        // cycles are the request's creation-to-exit service latency.
        let ((), service) = os.measure(|os| {
            let child = match which {
                0 => os.fork(zygote).unwrap(),
                1 => os
                    .spawn(zygote, "/bin/server", &[], &SpawnAttrs::default())
                    .unwrap(),
                _ => os.vfork_exec(zygote, "/bin/server").unwrap(),
            };
            os.kernel.exit(child, 0).unwrap();
            os.kernel.waitpid(zygote, Some(child)).unwrap();
        });
        clock += service;
        hists[which].1.record(service);
    }

    let sustained = REQUESTS as f64 / (clock as f64 / CYCLES_PER_US as f64);
    println!(
        "service burst: {REQUESTS} open-loop requests over {:.1} us ({:.2} req/us sustained)",
        clock as f64 / CYCLES_PER_US as f64,
        sustained
    );
    for (label, hist) in &hists {
        if hist.count == 0 {
            continue;
        }
        println!(
            "  {label:>12}: {:>2} served, p50 {:.2} us, p99 {:.2} us",
            hist.count,
            hist.p50() as f64 / CYCLES_PER_US as f64,
            hist.p99() as f64 / CYCLES_PER_US as f64,
        );
    }
    println!(
        "  worst queue wait {:.2} us — the open loop's cost of slow creation paths;\n\
         the full E15 ({} requests, 5 paths, autoscaling, degradation arm) is\n\
         `cargo run -p fpr-bench --bin fig_service`.",
        max_queue_wait as f64 / CYCLES_PER_US as f64,
        320
    );
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
