//! An Android-style zygote: exec one big runtime image, then fork a
//! child per request — fast warm starts, but every child shares one
//! ASLR layout and inherits every descriptor. The security auditor
//! quantifies the damage, and a spawn-per-worker variant shows the fix.
//!
//! Run with: `cargo run --example zygote_server`

use forkroad::api::SpawnAttrs;
use forkroad::audit::{audit_inheritance, zygote_entropy, MAX_LAYOUT_BITS};
use forkroad::kernel::OpenFlags;
use forkroad::mem::CYCLES_PER_US;
use forkroad::{Os, OsConfig};

const WORKERS: usize = 8;

fn main() {
    let mut os = Os::boot(OsConfig::default());
    let init = os.init;

    // Boot the zygote: one heavyweight runtime image, warmed up.
    let zygote = os
        .spawn(init, "/bin/server", &[], &SpawnAttrs::default())
        .unwrap();
    // The zygote holds a private key file — a descriptor workers must not see.
    os.kernel
        .open(zygote, "/private_key", OpenFlags::RDWR, true)
        .unwrap();
    let warm = os.kernel.process(zygote).unwrap().resident_pages();
    println!("zygote warmed: {warm} resident pages, 1 secret fd\n");

    // ---- Fork a worker per request ------------------------------------
    let mut fork_children = Vec::new();
    let (_, fork_cost) = os.measure(|os| {
        for _ in 0..WORKERS {
            fork_children.push(os.fork(zygote).unwrap());
        }
    });
    println!(
        "forked {WORKERS} workers in {:.1} us total",
        fork_cost as f64 / CYCLES_PER_US as f64
    );
    let z = zygote_entropy(&os.kernel, &fork_children).unwrap();
    println!(
        "  layout sharing: {}/{} identical pairs, residual entropy {:.1} bits",
        z.identical_pairs,
        WORKERS * (WORKERS - 1) / 2,
        z.effective_entropy_bits
    );
    let r = audit_inheritance(&os.kernel, zygote, fork_children[0]).unwrap();
    println!("  audit of worker 0:\n{}", indent(&r.render()));

    // ---- Spawn a worker per request ------------------------------------
    let mut spawn_children = Vec::new();
    let (_, spawn_cost) = os.measure(|os| {
        for _ in 0..WORKERS {
            spawn_children.push(
                os.spawn(zygote, "/bin/server", &[], &SpawnAttrs::default())
                    .unwrap(),
            );
        }
    });
    println!(
        "spawned {WORKERS} workers in {:.1} us total",
        spawn_cost as f64 / CYCLES_PER_US as f64
    );
    let z2 = zygote_entropy(&os.kernel, &spawn_children).unwrap();
    println!(
        "  layout sharing: {} identical pairs, residual entropy {:.1}/{} bits",
        z2.identical_pairs, z2.effective_entropy_bits, MAX_LAYOUT_BITS
    );
    let r2 = audit_inheritance(&os.kernel, zygote, spawn_children[0]).unwrap();
    println!("  audit of worker 0:\n{}", indent(&r2.render()));

    println!(
        "the zygote trades {:.0}x faster worker creation for zero ASLR diversity —\n\
         exactly the trade the paper calls out.",
        spawn_cost as f64 / fork_cost.max(1) as f64
    );
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
