//! Detonate `:(){ :|:& };:` inside the simulator and watch RLIMIT_NPROC
//! contain it.
//!
//! Run with: `cargo run --example fork_bomb`

use forkroad::core::experiments::forkbomb::detonate;

fn main() {
    println!("breadth-first fork bomb, each process forks twice\n");
    for limit in [8u64, 32, 128, u64::MAX] {
        let o = detonate(limit, 1024);
        let shown = if limit == u64::MAX {
            "unlimited".into()
        } else {
            limit.to_string()
        };
        println!(
            "RLIMIT_NPROC {:>9}: {:>5} processes created, stopped by {}",
            shown, o.created, o.stopped_by
        );
    }
    println!(
        "\nwith no limit, only PID exhaustion stops the bomb — fork's\n\
         zero-argument simplicity is also its cheapest denial of service.\n\
         (The simulator detonates the bomb against its own process table;\n\
         nothing outside the library is affected.)"
    );
}
