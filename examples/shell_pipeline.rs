//! A shell building `cat /etc/motd | grep | wc`-style plumbing — the
//! classic argument *for* fork (set up redirections between fork and
//! exec), re-expressed with posix_spawn file actions to show the same
//! flexibility without the copy.
//!
//! The simulator doesn't execute program code, so this example plays the
//! role of each program's main loop through the kernel's descriptor
//! syscalls: what matters is the descriptor plumbing, which is exactly
//! what the fork-vs-spawn argument is about.
//!
//! Run with: `cargo run --example shell_pipeline`

use forkroad::api::{FileAction, SpawnAttrs};
use forkroad::kernel::{Fd, OpenFlags, ReadResult, STDIN, STDOUT};
use forkroad::mem::CYCLES_PER_US;
use forkroad::{Os, OsConfig};

fn main() {
    let mut os = Os::boot(OsConfig::default());

    // The input file.
    os.kernel
        .vfs
        .create(
            "/etc_motd",
            os.kernel.vfs.root(),
            b"on a fork in the road\ntake the spawn\n".to_vec(),
        )
        .unwrap();

    // ---- Variant A: fork + dup2 + exec (the classic shell) -----------
    let (stages, fork_cycles) = os.measure(build_pipeline_with_fork);
    println!(
        "fork-based pipeline set up in {:.1} us",
        fork_cycles as f64 / CYCLES_PER_US as f64
    );

    let fork_out = run_programs(&mut os, stages, "fork");
    println!("fork pipeline output: {fork_out:?}");

    // ---- Variant B: posix_spawn with file actions ---------------------
    let (stages, spawn_cycles) = os.measure(build_pipeline_with_spawn);
    println!(
        "\nspawn-based pipeline set up in {:.1} us",
        spawn_cycles as f64 / CYCLES_PER_US as f64
    );
    let spawn_out = run_programs(&mut os, stages, "spawn");
    println!("spawn pipeline output: {spawn_out:?}");

    let strip = |s: &str| {
        s.split_once("] ")
            .map(|(_, rest)| rest.to_string())
            .unwrap_or_default()
    };
    assert_eq!(
        strip(&fork_out),
        strip(&spawn_out),
        "both pipelines compute the same thing"
    );
    println!("\nsame plumbing, same answer — no copy of the shell required.");
}

/// The three pipeline stages, as (name, pid) pairs the example drives.
struct Stages {
    cat: forkroad::kernel::Pid,
    grep: forkroad::kernel::Pid,
    wc: forkroad::kernel::Pid,
}

fn build_pipeline_with_fork(os: &mut Os) -> Stages {
    let shell = os.init;
    let (p1_r, p1_w) = os.kernel.pipe(shell).unwrap();
    let (p2_r, p2_w) = os.kernel.pipe(shell).unwrap();

    // cat: stdin = file, stdout = pipe1.
    let cat = os.fork(shell).unwrap();
    let f = os
        .kernel
        .open(cat, "/etc_motd", OpenFlags::RDONLY, false)
        .unwrap();
    os.kernel.dup2(cat, f, STDIN).unwrap();
    os.kernel.close(cat, f).unwrap();
    os.kernel.dup2(cat, p1_w, STDOUT).unwrap();
    close_pipe_fds(os, cat, &[p1_r, p1_w, p2_r, p2_w]);
    os.exec(cat, "/bin/cat").unwrap();

    // grep: stdin = pipe1, stdout = pipe2.
    let grep = os.fork(shell).unwrap();
    os.kernel.dup2(grep, p1_r, STDIN).unwrap();
    os.kernel.dup2(grep, p2_w, STDOUT).unwrap();
    close_pipe_fds(os, grep, &[p1_r, p1_w, p2_r, p2_w]);
    os.exec(grep, "/bin/grep").unwrap();

    // wc: stdin = pipe2, stdout = console.
    let wc = os.fork(shell).unwrap();
    os.kernel.dup2(wc, p2_r, STDIN).unwrap();
    close_pipe_fds(os, wc, &[p1_r, p1_w, p2_r, p2_w]);
    os.exec(wc, "/bin/wc").unwrap();

    // The shell closes its pipe ends.
    for fd in [p1_r, p1_w, p2_r, p2_w] {
        os.kernel.close(shell, fd).unwrap();
    }
    Stages { cat, grep, wc }
}

fn build_pipeline_with_spawn(os: &mut Os) -> Stages {
    let shell = os.init;
    let (p1_r, p1_w) = os.kernel.pipe(shell).unwrap();
    let (p2_r, p2_w) = os.kernel.pipe(shell).unwrap();
    let close_all = |v: &mut Vec<FileAction>, keep: &[Fd], all: &[Fd]| {
        for fd in all {
            if !keep.contains(fd) {
                v.push(FileAction::Close { fd: *fd });
            }
        }
    };
    let all = [p1_r, p1_w, p2_r, p2_w];

    let mut cat_actions = vec![
        FileAction::Open {
            fd: STDIN,
            path: "/etc_motd".into(),
            flags: OpenFlags::RDONLY,
            create: false,
        },
        FileAction::Dup2 {
            from: p1_w,
            to: STDOUT,
        },
    ];
    close_all(&mut cat_actions, &[], &all);
    let cat = os
        .spawn(shell, "/bin/cat", &cat_actions, &SpawnAttrs::default())
        .unwrap();

    let mut grep_actions = vec![
        FileAction::Dup2 {
            from: p1_r,
            to: STDIN,
        },
        FileAction::Dup2 {
            from: p2_w,
            to: STDOUT,
        },
    ];
    close_all(&mut grep_actions, &[], &all);
    let grep = os
        .spawn(shell, "/bin/grep", &grep_actions, &SpawnAttrs::default())
        .unwrap();

    let mut wc_actions = vec![FileAction::Dup2 {
        from: p2_r,
        to: STDIN,
    }];
    close_all(&mut wc_actions, &[], &all);
    let wc = os
        .spawn(shell, "/bin/wc", &wc_actions, &SpawnAttrs::default())
        .unwrap();

    for fd in all {
        os.kernel.close(shell, fd).unwrap();
    }
    Stages { cat, grep, wc }
}

fn close_pipe_fds(os: &mut Os, pid: forkroad::kernel::Pid, fds: &[Fd]) {
    for fd in fds {
        let _ = os.kernel.close(pid, *fd);
    }
}

/// Drives the three "programs": cat copies stdin→stdout, grep filters
/// lines containing 'o', wc counts lines. Returns wc's answer.
fn run_programs(os: &mut Os, stages: Stages, tag: &str) -> String {
    // cat
    while let ReadResult::Data(d) = os.kernel.read_fd(stages.cat, STDIN, 4096).unwrap() {
        os.kernel.write_fd(stages.cat, STDOUT, &d).unwrap();
    }
    os.kernel.exit(stages.cat, 0).unwrap();
    // grep 'o'
    let mut buf = Vec::new();
    while let ReadResult::Data(d) = os.kernel.read_fd(stages.grep, STDIN, 4096).unwrap() {
        buf.extend_from_slice(&d);
    }
    for line in buf.split(|b| *b == b'\n').filter(|l| !l.is_empty()) {
        if line.contains(&b'o') {
            os.kernel.write_fd(stages.grep, STDOUT, line).unwrap();
            os.kernel.write_fd(stages.grep, STDOUT, b"\n").unwrap();
        }
    }
    os.kernel.exit(stages.grep, 0).unwrap();
    // wc -l
    let mut lines = 0;
    while let ReadResult::Data(d) = os.kernel.read_fd(stages.wc, STDIN, 4096).unwrap() {
        lines += d.iter().filter(|b| **b == b'\n').count();
    }
    os.kernel.exit(stages.wc, 0).unwrap();
    format!("[{tag}] {lines} line(s) matched")
}
