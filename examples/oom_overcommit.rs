//! Fork forces overcommit: the same fork-then-touch workload under the
//! three overcommit policies. Strict accounting fails the fork up front;
//! `always` admits it and pays with an OOM kill mid-write.
//!
//! Run with: `cargo run --example oom_overcommit`

use forkroad::core::experiments::overcommit::{run_cell, OvercommitOutcome};
use forkroad::mem::OvercommitPolicy;

fn main() {
    println!("a parent using 60% of RAM forks; the child then writes every page\n");
    for policy in [
        OvercommitPolicy::Never { ratio: 0.95 },
        OvercommitPolicy::Heuristic,
        OvercommitPolicy::Always,
    ] {
        let o: OvercommitOutcome = run_cell(policy, 0.60);
        println!("policy {:>14}:", o.policy);
        println!("    fork        → {}", o.fork_result);
        println!("    child touch → {}", o.touch_result);
        if o.oom_victims.is_empty() {
            println!("    oom killer  → not invoked");
        } else {
            println!(
                "    oom killer  → killed {} process(es): {:?}",
                o.oom_victims.len(),
                o.oom_victims
            );
        }
        println!();
    }
    println!(
        "fork's COW credit turns an up-front, handleable ENOMEM into a\n\
         delayed, unhandleable kill — the paper's overcommit argument."
    );
}
