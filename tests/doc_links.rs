//! Documentation link gate: every relative markdown link in the
//! repository's docs must point at a file that exists, and the
//! load-bearing cross-references (README ↔ ARCHITECTURE ↔
//! OBSERVABILITY ↔ BENCHMARKS ↔ EXPERIMENTS) must stay present —
//! renaming or dropping a doc fails `make verify`, not a reader.

use std::path::{Path, PathBuf};

/// The documents the gate covers (relative to the repo root).
const DOCS: &[&str] = &[
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/OBSERVABILITY.md",
    "docs/BENCHMARKS.md",
];

/// Cross-references that must exist, as (source doc, link target
/// exactly as written in the source). These are the edges the docs
/// lean on when pointing readers around; the reverse direction of
/// each pair keeps the set a connected web, not a tree.
const REQUIRED_EDGES: &[(&str, &str)] = &[
    ("README.md", "docs/ARCHITECTURE.md"),
    ("README.md", "docs/OBSERVABILITY.md"),
    ("README.md", "docs/BENCHMARKS.md"),
    ("README.md", "EXPERIMENTS.md"),
    ("README.md", "DESIGN.md"),
    ("EXPERIMENTS.md", "docs/OBSERVABILITY.md"),
    ("EXPERIMENTS.md", "docs/BENCHMARKS.md"),
    ("DESIGN.md", "docs/ARCHITECTURE.md"),
    ("docs/ARCHITECTURE.md", "OBSERVABILITY.md"),
    ("docs/ARCHITECTURE.md", "BENCHMARKS.md"),
    ("docs/OBSERVABILITY.md", "BENCHMARKS.md"),
    ("docs/BENCHMARKS.md", "../EXPERIMENTS.md"),
    ("docs/BENCHMARKS.md", "ARCHITECTURE.md"),
    ("docs/BENCHMARKS.md", "OBSERVABILITY.md"),
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extracts inline-link targets (`[text](target)`) from markdown,
/// skipping fenced code blocks (``` ... ```), where `](` can occur in
/// code without being a link.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                let start = i + 2;
                if let Some(len) = line[start..].find(')') {
                    targets.push(line[start..start + len].to_string());
                    i = start + len;
                } else {
                    break;
                }
            }
            i += 1;
        }
    }
    targets
}

/// True for targets the existence check should skip: external URLs
/// and in-page anchors.
fn is_external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

#[test]
fn every_relative_link_resolves() {
    let root = repo_root();
    let mut broken = Vec::new();
    for doc in DOCS {
        let path = root.join(doc);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{doc}: gate doc missing or unreadable: {e}"));
        let dir = path.parent().unwrap_or(Path::new("."));
        for target in link_targets(&text) {
            if is_external(&target) {
                continue;
            }
            let file = target.split('#').next().unwrap_or(&target);
            if file.is_empty() {
                continue;
            }
            if !dir.join(file).exists() {
                broken.push(format!("{doc} -> {target}"));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative links:\n  {}",
        broken.join("\n  ")
    );
}

#[test]
fn required_cross_references_are_present() {
    let root = repo_root();
    let mut missing = Vec::new();
    for (doc, target) in REQUIRED_EDGES {
        let text = std::fs::read_to_string(root.join(doc))
            .unwrap_or_else(|e| panic!("{doc}: gate doc missing or unreadable: {e}"));
        let found = link_targets(&text)
            .iter()
            .any(|t| t.split('#').next() == Some(target));
        if !found {
            missing.push(format!("{doc} must link to {target}"));
        }
    }
    assert!(
        missing.is_empty(),
        "required doc cross-references missing:\n  {}",
        missing.join("\n  ")
    );
}

#[test]
fn benchmarks_doc_covers_every_gate() {
    let root = repo_root();
    let text = std::fs::read_to_string(root.join("docs/BENCHMARKS.md")).expect("BENCHMARKS.md");
    for gate in [
        "BENCH_fork_modes.json",
        "BENCH_spawn_fastpath.json",
        "BENCH_pressure.json",
        "BENCH_swap.json",
        "BENCH_thp.json",
        "BENCH_service.json",
        "BENCH_smp.json",
        "BENCH_faults_smp.json",
    ] {
        assert!(
            text.contains(gate),
            "docs/BENCHMARKS.md must document {gate}"
        );
    }
}
