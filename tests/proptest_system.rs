//! System-level randomized tests: random process trees and API sequences
//! must preserve global invariants (no frame/commit leaks, fork snapshot
//! correctness, accounting balance). Cases derive from explicit
//! `fpr_rng` seeds, so any failure replays exactly.

use forkroad::api::SpawnAttrs;
use forkroad::kernel::Pid;
use forkroad::mem::{ForkMode, Prot, Share, Vpn};
use forkroad::{Os, OsConfig};
use fpr_rng::Rng;

const CASES: u64 = 48;

/// A random system-level action.
#[derive(Debug, Clone)]
enum Action {
    Fork(usize),
    Spawn(usize),
    Vfork(usize),
    Exec(usize),
    MapTouch(usize, u64),
    Write(usize, u64, u64),
    Exit(usize),
}

fn gen_action(rng: &mut Rng) -> Action {
    let i = rng.gen_below(8) as usize;
    match rng.gen_below(7) {
        0 => Action::Fork(i),
        1 => Action::Spawn(i),
        2 => Action::Vfork(i),
        3 => Action::Exec(i),
        4 => Action::MapTouch(i, rng.gen_range(1, 32)),
        5 => Action::Write(i, rng.gen_below(32), rng.gen_u64()),
        _ => Action::Exit(i),
    }
}

/// After any action sequence, exiting every process releases every frame
/// and every page of commit charge.
#[test]
fn no_global_leaks() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5150_0000 + case);
        let actions: Vec<Action> = (0..rng.gen_range(1, 40))
            .map(|_| gen_action(&mut rng))
            .collect();
        let mut os = Os::boot(OsConfig::default());
        let init = os.init;
        let mut live: Vec<Pid> = vec![init];
        let mut heaps: Vec<Option<Vpn>> = vec![None];
        for a in actions {
            match a {
                Action::Fork(i) => {
                    let p = live[i % live.len()];
                    if let Ok(c) = os.fork(p) {
                        live.push(c);
                        heaps.push(heaps[i % heaps.len()]);
                    }
                }
                Action::Spawn(i) => {
                    let p = live[i % live.len()];
                    if let Ok(c) = os.spawn(p, "/bin/tool", &[], &SpawnAttrs::default()) {
                        live.push(c);
                        heaps.push(None);
                    }
                }
                Action::Vfork(i) => {
                    let p = live[i % live.len()];
                    // Keep vfork children transient: exec them right away
                    // so the parent never stays parked.
                    if let Ok(c) = os.vfork(p) {
                        os.exec(c, "/bin/tool").expect("exec after vfork");
                        live.push(c);
                        heaps.push(None);
                    }
                }
                Action::Exec(i) => {
                    let p = live[i % live.len()];
                    if p != init && os.exec(p, "/bin/cat").is_ok() {
                        let idx = i % heaps.len();
                        heaps[idx] = None;
                    }
                }
                Action::MapTouch(i, n) => {
                    let p = live[i % live.len()];
                    if let Ok(base) = os.kernel.mmap_anon(p, n, Prot::RW, Share::Private) {
                        let _ = os.kernel.populate(p, base, n);
                        let idx = i % heaps.len();
                        heaps[idx] = Some(base);
                    }
                }
                Action::Write(i, off, val) => {
                    let idx = i % live.len();
                    if let Some(base) = heaps[idx % heaps.len()] {
                        let _ = os.kernel.write_mem(live[idx], base.add(off), val);
                    }
                }
                Action::Exit(i) => {
                    let idx = i % live.len();
                    let p = live[idx];
                    if p != init && !os.kernel.process(p).map(|x| x.is_zombie()).unwrap_or(true) {
                        let _ = os.kernel.exit(p, 0);
                    }
                }
            }
        }
        // Tear everything down, children-first (reverse creation order).
        for p in live.iter().rev() {
            if *p == init {
                continue;
            }
            if os.kernel.process(*p).map(|x| !x.is_zombie()).unwrap_or(false) {
                let _ = os.kernel.exit(*p, 0);
            }
        }
        // Reap everything reachable from init until quiescent.
        while let Ok(Some(_)) = os.kernel.waitpid(init, None) {}
        os.kernel.exit(init, 0).expect("init exits last");
        assert_eq!(os.kernel.phys.used_frames(), 0, "case {case}: frame leak");
        assert_eq!(os.kernel.commit.committed(), 0, "case {case}: commit leak");
        assert_eq!(os.kernel.pipes.live(), 0, "case {case}: pipe leak");
        assert_eq!(os.kernel.ofds.live(), 0, "case {case}: ofd leak");
    }
}

/// A forked child observes exactly the parent's memory at fork time,
/// for any prior write set, under both fork modes.
#[test]
fn fork_snapshot_correct() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5151_0000 + case);
        let writes: Vec<(u64, u64)> = (0..rng.gen_range(1, 40))
            .map(|_| (rng.gen_below(64), rng.gen_u64()))
            .collect();
        let eager = rng.gen_bool(0.5);
        let mut os = Os::boot(OsConfig::default());
        let init = os.init;
        let base = os
            .kernel
            .mmap_anon(init, 64, Prot::RW, Share::Private)
            .unwrap();
        let mut shadow = std::collections::HashMap::new();
        for (off, val) in &writes {
            os.kernel.write_mem(init, base.add(*off), *val).unwrap();
            shadow.insert(*off, *val);
        }
        let mode = if eager { ForkMode::Eager } else { ForkMode::Cow };
        let (child, _) = os.fork_stats(init, mode).unwrap();
        for off in 0..64u64 {
            assert_eq!(
                os.kernel.read_mem(child, base.add(off)).unwrap(),
                *shadow.get(&off).unwrap_or(&0),
                "case {case}"
            );
        }
    }
}

/// RLIMIT_NPROC accounting balances across arbitrary create/exit
/// interleavings.
#[test]
fn nproc_accounting_balances() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5152_0000 + case);
        let ops: Vec<bool> = (0..rng.gen_range(1, 60))
            .map(|_| rng.gen_bool(0.5))
            .collect();
        let mut os = Os::boot(OsConfig::default());
        let init = os.init;
        let mut live = vec![];
        for create in ops {
            if create || live.is_empty() {
                if let Ok(c) = os.fork(init) {
                    live.push(c);
                }
            } else {
                let c: Pid = live.pop().unwrap();
                os.kernel.exit(c, 0).unwrap();
                os.kernel.waitpid(init, Some(c)).unwrap();
            }
            assert_eq!(
                os.kernel.nproc_of(0) as usize,
                live.len() + 1,
                "case {case}: init + live children"
            );
        }
    }
}
