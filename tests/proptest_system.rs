//! System-level property tests: random process trees and API sequences
//! must preserve global invariants (no frame/commit leaks, fork snapshot
//! correctness, accounting balance).

use forkroad::api::SpawnAttrs;
use forkroad::kernel::Pid;
use forkroad::mem::{ForkMode, Prot, Share, Vpn};
use forkroad::{Os, OsConfig};
use proptest::prelude::*;

/// A random system-level action.
#[derive(Debug, Clone)]
enum Action {
    Fork(usize),
    Spawn(usize),
    Vfork(usize),
    Exec(usize),
    MapTouch(usize, u64),
    Write(usize, u64, u64),
    Exit(usize),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0usize..8).prop_map(Action::Fork),
        (0usize..8).prop_map(Action::Spawn),
        (0usize..8).prop_map(Action::Vfork),
        (0usize..8).prop_map(Action::Exec),
        (0usize..8, 1u64..32).prop_map(|(i, n)| Action::MapTouch(i, n)),
        (0usize..8, 0u64..32, any::<u64>()).prop_map(|(i, o, v)| Action::Write(i, o, v)),
        (0usize..8).prop_map(Action::Exit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After any action sequence, exiting every process releases every
    /// frame and every page of commit charge.
    #[test]
    fn no_global_leaks(actions in proptest::collection::vec(action_strategy(), 1..40)) {
        let mut os = Os::boot(OsConfig::default());
        let init = os.init;
        let mut live: Vec<Pid> = vec![init];
        let mut heaps: Vec<Option<Vpn>> = vec![None];
        for a in actions {
            match a {
                Action::Fork(i) => {
                    let p = live[i % live.len()];
                    if let Ok(c) = os.fork(p) {
                        live.push(c);
                        heaps.push(heaps[i % heaps.len()]);
                    }
                }
                Action::Spawn(i) => {
                    let p = live[i % live.len()];
                    if let Ok(c) = os.spawn(p, "/bin/tool", &[], &SpawnAttrs::default()) {
                        live.push(c);
                        heaps.push(None);
                    }
                }
                Action::Vfork(i) => {
                    let p = live[i % live.len()];
                    // Keep vfork children transient: exec them right away
                    // so the parent never stays parked.
                    if let Ok(c) = os.vfork(p) {
                        os.exec(c, "/bin/tool").expect("exec after vfork");
                        live.push(c);
                        heaps.push(None);
                    }
                }
                Action::Exec(i) => {
                    let p = live[i % live.len()];
                    if p != init && os.exec(p, "/bin/cat").is_ok() {
                        let idx = i % heaps.len();
                        heaps[idx] = None;
                    }
                }
                Action::MapTouch(i, n) => {
                    let p = live[i % live.len()];
                    if let Ok(base) = os.kernel.mmap_anon(p, n, Prot::RW, Share::Private) {
                        let _ = os.kernel.populate(p, base, n);
                        let idx = i % heaps.len();
                        heaps[idx] = Some(base);
                    }
                }
                Action::Write(i, off, val) => {
                    let idx = i % live.len();
                    if let Some(base) = heaps[idx % heaps.len()] {
                        let _ = os.kernel.write_mem(live[idx], base.add(off), val);
                    }
                }
                Action::Exit(i) => {
                    let idx = i % live.len();
                    let p = live[idx];
                    if p != init && !os.kernel.process(p).map(|x| x.is_zombie()).unwrap_or(true) {
                        let _ = os.kernel.exit(p, 0);
                    }
                }
            }
        }
        // Tear everything down, children-first (reverse creation order).
        for p in live.iter().rev() {
            if *p == init {
                continue;
            }
            if os.kernel.process(*p).map(|x| !x.is_zombie()).unwrap_or(false) {
                let _ = os.kernel.exit(*p, 0);
            }
        }
        // Reap everything reachable from init until quiescent.
        while let Ok(Some(_)) = os.kernel.waitpid(init, None) {}
        os.kernel.exit(init, 0).expect("init exits last");
        prop_assert_eq!(os.kernel.phys.used_frames(), 0, "frame leak");
        prop_assert_eq!(os.kernel.commit.committed(), 0, "commit leak");
        prop_assert_eq!(os.kernel.pipes.live(), 0, "pipe leak");
        prop_assert_eq!(os.kernel.ofds.live(), 0, "ofd leak");
    }

    /// A forked child observes exactly the parent's memory at fork time,
    /// for any prior write set, under both fork modes.
    #[test]
    fn fork_snapshot_correct(
        writes in proptest::collection::vec((0u64..64, any::<u64>()), 1..40),
        eager in any::<bool>(),
    ) {
        let mut os = Os::boot(OsConfig::default());
        let init = os.init;
        let base = os.kernel.mmap_anon(init, 64, Prot::RW, Share::Private).unwrap();
        let mut shadow = std::collections::HashMap::new();
        for (off, val) in &writes {
            os.kernel.write_mem(init, base.add(*off), *val).unwrap();
            shadow.insert(*off, *val);
        }
        let mode = if eager { ForkMode::Eager } else { ForkMode::Cow };
        let (child, _) = os.fork_stats(init, mode).unwrap();
        for off in 0..64u64 {
            prop_assert_eq!(
                os.kernel.read_mem(child, base.add(off)).unwrap(),
                *shadow.get(&off).unwrap_or(&0)
            );
        }
    }

    /// RLIMIT_NPROC accounting balances across arbitrary create/exit
    /// interleavings.
    #[test]
    fn nproc_accounting_balances(ops in proptest::collection::vec(any::<bool>(), 1..60)) {
        let mut os = Os::boot(OsConfig::default());
        let init = os.init;
        let mut live = vec![];
        for create in ops {
            if create || live.is_empty() {
                if let Ok(c) = os.fork(init) {
                    live.push(c);
                }
            } else {
                let c: Pid = live.pop().unwrap();
                os.kernel.exit(c, 0).unwrap();
                os.kernel.waitpid(init, Some(c)).unwrap();
            }
            prop_assert_eq!(os.kernel.nproc_of(0) as usize, live.len() + 1, "init + live children");
        }
    }
}
