//! System-level observational equivalence of the fork modes.
//!
//! Two full OS worlds run an identical script — same machine, same
//! parent layout, same post-fork schedule of writes and reads — but one
//! forks with `ForkMode::Cow` and the other with `ForkMode::OnDemand`.
//! At every read, after the full schedule, and in physical-frame
//! accounting, the worlds must be indistinguishable: on-demand
//! page-table copying is a cost-*timing* change, never a semantic one.
//! Cases derive from explicit `fpr_rng` seeds, so failures replay.

use forkroad::kernel::Pid;
use forkroad::mem::{ForkMode, Prot, Share, Vpn};
use forkroad::{Os, OsConfig};
use fpr_rng::Rng;

const CASES: u64 = 32;

#[derive(Debug, Clone)]
enum Op {
    /// Write `val` at `off` in parent (0) or child (1).
    Write { who: usize, off: u64, val: u64 },
    /// Read at `off`; the two worlds must observe the same value.
    Read { who: usize, off: u64 },
}

struct World {
    os: Os,
    parent: Pid,
    child: Pid,
    base: Vpn,
}

impl World {
    fn build(seed: u64, pages: u64, mode: ForkMode) -> World {
        let mut rng = Rng::seed_from_u64(seed);
        let mut os = Os::boot(OsConfig::default());
        let parent = os.init;
        let base = os
            .kernel
            .mmap_anon(parent, pages, Prot::RW, Share::Private)
            .expect("mmap fits");
        for _ in 0..rng.gen_range(5, 60) {
            let off = rng.gen_below(pages);
            os.kernel
                .write_mem(parent, base.add(off), rng.gen_u64())
                .expect("write");
        }
        let (child, _) = os.fork_stats(parent, mode).expect("fork fits");
        World {
            os,
            parent,
            child,
            base,
        }
    }

    fn pid(&self, who: usize) -> Pid {
        if who == 0 {
            self.parent
        } else {
            self.child
        }
    }

    fn apply(&mut self, op: &Op) -> Result<Option<u64>, forkroad::kernel::Errno> {
        match op {
            Op::Write { who, off, val } => self
                .os
                .kernel
                .write_mem(self.pid(*who), self.base.add(*off), *val)
                .map(|_| None),
            Op::Read { who, off } => self
                .os
                .kernel
                .read_mem(self.pid(*who), self.base.add(*off))
                .map(Some),
        }
    }
}

#[test]
fn on_demand_and_cow_worlds_indistinguishable() {
    for case in 0..CASES {
        let seed = 0x0DF0_0000 + case;
        let mut rng = Rng::seed_from_u64(seed ^ 0xC0DE);
        // Enough pages that the heap spans multiple 512-entry subtrees.
        let pages = rng.gen_range(600, 1600);
        let ops: Vec<Op> = (0..rng.gen_range(20, 100))
            .map(|_| {
                let who = rng.gen_below(2) as usize;
                let off = rng.gen_below(pages);
                if rng.gen_bool(0.5) {
                    Op::Write {
                        who,
                        off,
                        val: rng.gen_u64(),
                    }
                } else {
                    Op::Read { who, off }
                }
            })
            .collect();

        let mut cow = World::build(seed, pages, ForkMode::Cow);
        let mut odf = World::build(seed, pages, ForkMode::OnDemand);

        for (i, op) in ops.iter().enumerate() {
            let a = cow.apply(op).expect("mapped RW range");
            let b = odf.apply(op).expect("mapped RW range");
            assert_eq!(a, b, "case {case} op {i} ({op:?}): worlds diverged");
        }

        // Full sweep: every page of the heap agrees in both processes.
        for who in 0..2 {
            for off in 0..pages {
                let a = cow.apply(&Op::Read { who, off }).unwrap();
                let b = odf.apply(&Op::Read { who, off }).unwrap();
                assert_eq!(a, b, "case {case}: page {off} of space {who} diverged");
            }
        }

        // Resource accounting matches too: sharing page-table nodes must
        // not change how many physical frames the system uses.
        assert_eq!(
            cow.os.kernel.phys.used_frames(),
            odf.os.kernel.phys.used_frames(),
            "case {case}: frame usage diverged between modes"
        );

        // Both worlds stay structurally consistent (balanced frame
        // refcounts across shared subtrees included), and tearing the
        // child down releases its share cleanly.
        for w in [&mut cow, &mut odf] {
            w.os.kernel.assert_consistent();
            let (parent, child) = (w.parent, w.child);
            w.os.kernel.exit(child, 0).expect("exit");
            w.os.kernel.waitpid(parent, Some(child)).expect("reap");
            w.os.kernel.assert_consistent();
        }
        assert_eq!(
            cow.os.kernel.phys.used_frames(),
            odf.os.kernel.phys.used_frames(),
            "case {case}: frame usage diverged after child exit"
        );
    }
}
