//! Integration tests for the extended POSIX surface: atfork across the
//! facade, madvise-driven fork policy, argv/env propagation, sessions,
//! and timers.

use forkroad::api::SpawnAttrs;
use forkroad::kernel::mm::Madvice;
use forkroad::kernel::{AtforkRegistration, AtforkTable, Errno, Pgid, Sid, Sig};
use forkroad::mem::{Prot, Share};
use forkroad::{Os, OsConfig};

fn boot() -> Os {
    Os::boot(OsConfig::default())
}

#[test]
fn madvise_policies_flow_through_real_fork() {
    let mut os = boot();
    let init = os.init;
    let base = os
        .kernel
        .mmap_anon(init, 12, Prot::RW, Share::Private)
        .unwrap();
    for i in 0..12 {
        os.kernel.write_mem(init, base.add(i), 100 + i).unwrap();
    }
    os.kernel
        .madvise(init, base.add(4), 4, Madvice::DontFork)
        .unwrap();
    os.kernel
        .madvise(init, base.add(8), 4, Madvice::WipeOnFork)
        .unwrap();
    let c = os.fork(init).unwrap();
    assert_eq!(
        os.kernel.read_mem(c, base.add(0)),
        Ok(100),
        "plain range copied"
    );
    assert_eq!(
        os.kernel.read_mem(c, base.add(4)),
        Err(Errno::Efault),
        "DONTFORK absent"
    );
    assert_eq!(
        os.kernel.read_mem(c, base.add(8)),
        Ok(0),
        "WIPEONFORK zeroed"
    );
    // The parent still sees everything.
    assert_eq!(os.kernel.read_mem(init, base.add(4)), Ok(104));
    assert_eq!(os.kernel.read_mem(init, base.add(8)), Ok(108));
}

#[test]
fn argv_env_inherited_by_fork_replaced_by_spawn() {
    let mut os = boot();
    let init = os.init;
    let parent = os
        .spawn(init, "/bin/sh", &[], &SpawnAttrs::default())
        .unwrap();
    os.kernel
        .process_mut(parent)
        .unwrap()
        .envp
        .insert("PATH".into(), "/bin".into());
    let forked = os.fork(parent).unwrap();
    assert_eq!(os.kernel.process(forked).unwrap().argv, vec!["/bin/sh"]);
    assert_eq!(
        os.kernel
            .process(forked)
            .unwrap()
            .envp
            .get("PATH")
            .map(String::as_str),
        Some("/bin")
    );

    let mut env = std::collections::BTreeMap::new();
    env.insert("MODE".to_string(), "worker".to_string());
    let attrs = SpawnAttrs {
        argv: vec!["grep".into(), "-o".into()],
        env: Some(env),
        ..SpawnAttrs::default()
    };
    let spawned = os.spawn(parent, "/bin/grep", &[], &attrs).unwrap();
    let sp = os.kernel.process(spawned).unwrap();
    assert_eq!(sp.argv, vec!["grep", "-o"]);
    assert!(!sp.envp.contains_key("PATH"), "replaced env drops PATH");
    assert_eq!(sp.envp.get("MODE").map(String::as_str), Some("worker"));
}

#[test]
fn atfork_through_the_facade() {
    let mut os = boot();
    let init = os.init;
    let lock = os
        .kernel
        .register_lock(init, forkroad::kernel::sync::names::MALLOC_ARENA)
        .unwrap();
    let mut t = AtforkTable::new();
    t.register(AtforkRegistration {
        token: 5,
        lock: Some(lock),
    });
    os.kernel.process_mut(init).unwrap().atfork = t;
    let c = os.fork(init).unwrap();
    // Both sides can take the malloc lock afterwards.
    let im = os.kernel.process(init).unwrap().main_tid();
    let cm = os.kernel.process(c).unwrap().main_tid();
    assert_eq!(os.kernel.lock_acquire(init, im, lock), Ok(()));
    assert_eq!(os.kernel.lock_acquire(c, cm, lock), Ok(()));
    assert_eq!(os.kernel.atfork_log.len(), 3, "prepare + parent + child");
}

#[test]
fn sessions_and_group_kill_of_a_forked_pipeline() {
    let mut os = boot();
    let init = os.init;
    // A "shell" leads its own session; its pipeline children join one group.
    let shell = os.kernel.allocate_process(init, "shell").unwrap();
    os.kernel.setsid(shell).unwrap();
    let a = os.fork(shell).unwrap();
    let b = os.fork(shell).unwrap();
    os.kernel.setpgid(a, a, None).unwrap();
    os.kernel.setpgid(shell, b, Some(Pgid(a.0))).unwrap();
    assert_eq!(
        os.kernel.process(a).unwrap().sid,
        Sid(shell.0),
        "same session"
    );
    // ^C the pipeline: both die, the shell survives.
    os.kernel.kill_pgroup(Pgid(a.0), Sig::Int).unwrap();
    assert!(os.kernel.process(a).unwrap().is_zombie());
    assert!(os.kernel.process(b).unwrap().is_zombie());
    assert!(!os.kernel.process(shell).unwrap().is_zombie());
}

#[test]
fn alarms_not_inherited_by_fork() {
    let mut os = boot();
    let init = os.init;
    let parent = os.kernel.allocate_process(init, "timed").unwrap();
    os.kernel.alarm(parent, Some(50)).unwrap();
    let child = os.fork(parent).unwrap();
    // POSIX: pending alarms are not inherited.
    assert_eq!(
        os.kernel.alarm(child, None).unwrap(),
        0,
        "child has no alarm"
    );
    os.kernel.tick_us(60);
    assert!(
        os.kernel.process(parent).unwrap().is_zombie(),
        "parent's alarm fired"
    );
    assert!(
        !os.kernel.process(child).unwrap().is_zombie(),
        "child unaffected"
    );
}

#[test]
fn script_exec_via_spawn() {
    let mut os = boot();
    let init = os.init;
    os.images.register_script("/usr/bin/tool.sh", "/bin/sh");
    let c = os
        .spawn(init, "/usr/bin/tool.sh", &[], &SpawnAttrs::default())
        .unwrap();
    let p = os.kernel.process(c).unwrap();
    assert_eq!(p.name, "sh", "interpreter image loaded");
    assert_eq!(p.argv, vec!["/bin/sh", "/usr/bin/tool.sh"]);
}
