//! Cross-crate integration tests: the POSIX inheritance contract of each
//! creation API, end to end through the facade.

use forkroad::api::{FileAction, ProcessBuilder, SpawnAttrs};
use forkroad::kernel::{
    BufMode, Disposition, Errno, HandlerId, OpenFlags, ReadResult, Sig, STDOUT,
};
use forkroad::mem::{Prot, Share};
use forkroad::{Os, OsConfig};

fn boot() -> Os {
    Os::boot(OsConfig::default())
}

#[test]
fn fork_inherits_everything_the_paper_lists() {
    let mut os = boot();
    let init = os.init;
    let parent = os
        .spawn(init, "/bin/tool", &[], &SpawnAttrs::default())
        .unwrap();

    // Memory content.
    let base = os
        .kernel
        .mmap_anon(parent, 4, Prot::RW, Share::Private)
        .unwrap();
    os.kernel.write_mem(parent, base, 0xfeed).unwrap();
    // Descriptor with a file offset.
    let fd = os
        .kernel
        .open(parent, "/data", OpenFlags::RDWR, true)
        .unwrap();
    os.kernel.write_fd(parent, fd, b"12345").unwrap();
    // Signal disposition and mask.
    os.kernel
        .sigaction(parent, Sig::Usr1, Disposition::Handler(HandlerId(11)))
        .unwrap();
    os.kernel.sigprocmask(parent, Sig::Hup, true).unwrap();
    // Umask.
    os.kernel.process_mut(parent).unwrap().umask = 0o077;

    let child = os.fork(parent).unwrap();
    let (p_layout, c) = {
        let p = os.kernel.process(parent).unwrap();
        (p.layout, os.kernel.process(child).unwrap())
    };
    assert_eq!(
        c.signals.disposition(Sig::Usr1),
        Disposition::Handler(HandlerId(11))
    );
    assert!(c.signals.is_blocked(Sig::Hup));
    assert_eq!(c.umask, 0o077);
    assert_eq!(c.layout, p_layout, "ASLR layout shared — the zygote hazard");
    assert_eq!(c.cwd, os.kernel.process(parent).unwrap().cwd);
    assert_eq!(os.kernel.read_mem(child, base), Ok(0xfeed));
    // Shared file offset: child's write lands after the parent's.
    os.kernel.write_fd(child, fd, b"678").unwrap();
    let ino = os
        .kernel
        .vfs
        .resolve("/data", os.kernel.vfs.root())
        .unwrap();
    assert_eq!(os.kernel.vfs.read_at(ino, 0, 16).unwrap(), b"12345678");
}

#[test]
fn exec_undoes_forks_copies() {
    let mut os = boot();
    let init = os.init;
    let parent = os
        .spawn(init, "/bin/tool", &[], &SpawnAttrs::default())
        .unwrap();
    let base = os
        .kernel
        .mmap_anon(parent, 64, Prot::RW, Share::Private)
        .unwrap();
    os.kernel.populate(parent, base, 64).unwrap();
    os.kernel
        .sigaction(parent, Sig::Int, Disposition::Handler(HandlerId(5)))
        .unwrap();
    let secret = os
        .kernel
        .open(parent, "/secret", OpenFlags::RDWR, true)
        .unwrap();
    os.kernel.set_cloexec(parent, secret, true).unwrap();

    let child = os.fork(parent).unwrap();
    let copied = os.kernel.process(child).unwrap().resident_pages();
    assert!(copied >= 64, "fork copied the working set");

    os.exec(child, "/bin/cat").unwrap();
    let c = os.kernel.process(child).unwrap();
    assert!(c.resident_pages() < copied, "exec discarded the copy");
    assert_eq!(c.signals.disposition(Sig::Int), Disposition::Default);
    assert!(c.fds.get(secret).is_err(), "close-on-exec swept");
    assert!(c.fds.get(STDOUT).is_ok(), "stdio survived");
    assert_ne!(
        c.layout,
        os.kernel.process(parent).unwrap().layout,
        "fresh layout"
    );
}

#[test]
fn spawn_equals_fork_exec_observably() {
    // For the create-a-different-program case the two paths must land in
    // the same observable state (modulo layout randomness).
    let mut os = boot();
    let init = os.init;
    let via_fork = {
        let c = os.fork(init).unwrap();
        os.exec(c, "/bin/grep").unwrap();
        c
    };
    let via_spawn = os
        .spawn(init, "/bin/grep", &[], &SpawnAttrs::default())
        .unwrap();
    let a = os.kernel.process(via_fork).unwrap();
    let b = os.kernel.process(via_spawn).unwrap();
    assert_eq!(a.name, b.name);
    assert_eq!(a.fds.open_count(), b.fds.open_count());
    assert_eq!(a.resident_pages(), b.resident_pages());
    assert_eq!(a.aspace.vma_count(), b.aspace.vma_count());
    assert_eq!(a.signals.handler_count(), b.signals.handler_count());
}

#[test]
fn vfork_then_exec_full_lifecycle() {
    let mut os = boot();
    let init = os.init;
    let sh = os
        .spawn(init, "/bin/sh", &[], &SpawnAttrs::default())
        .unwrap();
    let child = os.vfork(sh).unwrap();
    assert_eq!(os.kernel.process(sh).unwrap().schedulable_threads(), 0);
    os.exec(child, "/bin/wc").unwrap();
    assert_eq!(os.kernel.process(sh).unwrap().schedulable_threads(), 1);
    os.kernel.exit(child, 42).unwrap();
    let (pid, status) = os.kernel.waitpid(sh, None).unwrap().unwrap();
    assert_eq!((pid, status), (child, 42));
}

#[test]
fn builder_grants_are_exact() {
    let mut os = boot();
    let init = os.init;
    let (r, w) = os.kernel.pipe(init).unwrap();
    let spawned = os
        .spawn_builder(
            init,
            ProcessBuilder::new("/bin/server")
                .fd(STDOUT, forkroad::api::FdSource::Inherit(w))
                .uid(1000),
        )
        .unwrap();
    let c = os.kernel.process(spawned.pid).unwrap();
    assert_eq!(c.fds.open_count(), 1, "exactly the one grant");
    assert_eq!(c.cred.uid, 1000);
    os.kernel.write_fd(spawned.pid, STDOUT, b"hi").unwrap();
    assert_eq!(
        os.kernel.read_fd(init, r, 8).unwrap(),
        ReadResult::Data(b"hi".to_vec())
    );
}

#[test]
fn spawn_actions_fail_clean_fork_exec_fails_dirty() {
    let mut os = boot();
    let init = os.init;
    let before = os.kernel.process_count();
    // posix_spawn: the parent gets the error, no process exists.
    let err = os.spawn(
        init,
        "/bin/tool",
        &[FileAction::Open {
            fd: STDOUT,
            path: "/no/such/dir/file".into(),
            flags: OpenFlags::WRONLY,
            create: true,
        }],
        &SpawnAttrs::default(),
    );
    assert_eq!(err.err(), Some(Errno::Enoent));
    assert_eq!(os.kernel.process_count(), before);

    // fork+exec: the same failure happens *in the child*, which exists
    // and must discover, report and exit on its own.
    let child = os.fork(init).unwrap();
    let open_err = os
        .kernel
        .open(child, "/no/such/dir/file", OpenFlags::WRONLY, true);
    assert_eq!(open_err.err(), Some(Errno::Enoent));
    assert_eq!(
        os.kernel.process_count(),
        before + 1,
        "half-built child exists"
    );
    os.kernel.exit(child, 127).unwrap();
    let (_, status) = os.kernel.waitpid(init, Some(child)).unwrap().unwrap();
    assert_eq!(status, 127, "error smuggled out via exit status");
}

#[test]
fn stream_duplication_end_to_end() {
    let mut os = boot();
    let init = os.init;
    let s = os
        .kernel
        .stream_open(init, STDOUT, BufMode::FullyBuffered)
        .unwrap();
    os.kernel.stream_write(init, s, b"tick ").unwrap();
    let child = os.fork(init).unwrap();
    os.kernel.stream_write(child, s, b"tock").unwrap();
    os.kernel.exit(child, 0).unwrap();
    os.kernel.waitpid(init, Some(child)).unwrap();
    os.kernel.stream_flush(init, s).unwrap();
    // Child flushed "tick tock", parent flushed "tick ": prefix doubled.
    assert_eq!(os.kernel.console, b"tick tocktick ");
}

#[test]
fn clone_thread_vs_clone_process() {
    let mut os = boot();
    let init = os.init;
    let base = os
        .kernel
        .mmap_anon(init, 2, Prot::RW, Share::Private)
        .unwrap();
    use forkroad::api::{clone, CloneFlags, CloneResult};
    // Thread: same process, shared memory implicitly.
    let t = clone(
        &mut os.kernel,
        init,
        CloneFlags {
            vm: true,
            sighand: true,
            thread: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(matches!(t, CloneResult::Thread(_)));
    // Process without VM: private copy.
    let p = clone(&mut os.kernel, init, CloneFlags::default()).unwrap();
    let c = match p {
        CloneResult::Process(c) => c,
        _ => unreachable!(),
    };
    os.kernel.write_mem(init, base, 1).unwrap();
    assert_eq!(
        os.kernel.read_mem(c, base),
        Ok(0),
        "no sharing without CLONE_VM"
    );
}
