//! # forkroad — a reproduction of *"A fork() in the road"* (HotOS 2019)
//!
//! Facade crate re-exporting the whole system:
//!
//! * [`mem`] — frames, page tables, VMAs, COW, TLB, overcommit;
//! * [`kernel`] — processes, descriptors, VFS, pipes, signals, threads;
//! * [`exec`] — images, loader, ASLR, execve;
//! * [`api`] — fork, vfork, clone, posix_spawn, the cross-process builder;
//! * [`audit`] — fork-safety and security analysis;
//! * [`faults`] — deterministic fault injection (`FaultPlan`, fail-point sweeps);
//! * [`trace`] — workloads and experiment records;
//! * [`core`] — the [`core::Os`] facade and experiment drivers.
//!
//! Start with [`core::Os::boot`]; see `examples/quickstart.rs`.

pub use forkroad_core as core;
pub use fpr_api as api;
pub use fpr_audit as audit;
pub use fpr_exec as exec;
pub use fpr_faults as faults;
pub use fpr_kernel as kernel;
pub use fpr_mem as mem;
pub use fpr_trace as trace;

pub use forkroad_core::{Os, OsConfig};
