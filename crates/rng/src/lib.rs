//! # fpr-rng — a small deterministic PRNG
//!
//! The simulator needs seedable randomness in a few places (ASLR draws,
//! workload touch patterns, randomized schedules in tests) but must build
//! hermetically with no external crates. This is a SplitMix64 generator:
//! tiny, fast, well distributed for non-cryptographic use, and — the
//! property we actually care about — **bit-for-bit reproducible** from a
//! `u64` seed, so every experiment and every fault-injection schedule can
//! be replayed exactly.
//!
//! Not cryptographically secure; never use it for anything
//! security-sensitive beyond *modelling* entropy (as the ASLR audit does).

/// Deterministic pseudo-random number generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn gen_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift reduction with rejection to avoid
    /// modulo bias.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0)");
        loop {
            let x = self.gen_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[lo, hi)`. `lo < hi` required.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range({lo}, {hi})");
        lo + self.gen_below(hi - lo)
    }

    /// Uniform value in `[lo, hi)` as `usize`.
    pub fn gen_index(&mut self, len: usize) -> usize {
        self.gen_below(len as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 bits of mantissa are plenty for simulation probabilities.
        let x = (self.gen_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Derives an independent generator (for splitting one seed into
    /// per-subsystem streams without correlation).
    pub fn fork_stream(&mut self) -> Rng {
        Rng::seed_from_u64(self.gen_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_below_respects_bound() {
        let mut r = Rng::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.gen_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_interval() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let v = r.gen_range(10, 16);
            assert!((10..16).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_stream_decorrelates() {
        let mut root = Rng::seed_from_u64(5);
        let mut a = root.fork_stream();
        let mut b = root.fork_stream();
        assert_ne!(a.gen_u64(), b.gen_u64());
    }
}
