//! Tracing regression tests over the five creation APIs.
//!
//! Two guarantees the runtime tracing subsystem makes:
//!
//! 1. **No fault path is silent** — every instrumented fault-site
//!    crossing an operation makes appears in the recorded event stream
//!    as a `fault.<site>` instant in category `"fault"`, in execution
//!    order, with its occurrence index and injection flag intact.
//! 2. **Spans always balance** — every `Begin` is closed by a matching
//!    `End`, including on error paths where a creation is aborted
//!    mid-flight by an injected fault.

use fpr_api::{clone, fork, posix_spawn, vfork, CloneFlags, ProcessBuilder};
use fpr_api::{FdSource, FileAction, MemOp, SpawnAttrs};
use fpr_exec::{AslrConfig, Image, ImageRegistry};
use fpr_faults::{with_plan, FaultPlan};
use fpr_kernel::{Errno, Kernel, OpenFlags, Pid, STDOUT};
use fpr_mem::{Prot, Share};
use fpr_rng::Rng;
use fpr_trace::{sink, ArgValue};

/// A parent rich enough to make every API cross several sites: private
/// populated memory, a second VMA, an open file, and a pipe (mirrors the
/// faultsweep harness).
fn world() -> (Kernel, Pid, ImageRegistry) {
    let mut k = Kernel::boot();
    let init = k.create_init("init").unwrap();
    let a = k.mmap_anon(init, 6, Prot::RW, Share::Private).unwrap();
    k.populate(init, a, 6).unwrap();
    let b = k.mmap_anon(init, 3, Prot::RW, Share::Shared).unwrap();
    k.populate(init, b, 3).unwrap();
    let f = k.open(init, "/data", OpenFlags::RDWR, true).unwrap();
    k.write_fd(init, f, b"seed").unwrap();
    k.pipe(init).unwrap();
    let mut reg = ImageRegistry::new();
    reg.register("/bin/tool", Image::small("tool"));
    (k, init, reg)
}

/// Reads the boolean `injected` argument off a trace event.
fn injected_arg(ev: &fpr_trace::TraceEvent) -> Option<bool> {
    ev.args.iter().find(|(k, _)| *k == "injected").and_then(|(_, v)| match v {
        ArgValue::Bool(b) => Some(*b),
        _ => None,
    })
}

/// Runs `op` once, fault-free, under both a fault plan and a trace sink,
/// and asserts the recorded fault events mirror the crossing trace 1:1.
fn assert_crossings_mirrored(
    label: &str,
    op: impl Fn(&mut Kernel, Pid, &ImageRegistry) -> Result<(), Errno>,
) {
    let (mut k, p, reg) = world();
    let ((result, trace), events) =
        sink::with_sink(|| with_plan(FaultPlan::passive(), || op(&mut k, p, &reg)));
    result.unwrap_or_else(|e| panic!("{label}: fault-free run failed: {e:?}"));
    assert!(sink::spans_balanced(&events), "{label}: unbalanced spans");

    let faults = sink::in_category(&events, "fault");
    assert!(
        !faults.is_empty(),
        "{label}: operation crossed no instrumented site"
    );
    assert_eq!(
        faults.len(),
        trace.len(),
        "{label}: every crossing must surface as exactly one fault event"
    );
    for (ev, c) in faults.iter().zip(trace.crossings.iter()) {
        assert_eq!(
            ev.name,
            format!("fault.{}", c.site),
            "{label}: fault events must appear in execution order"
        );
        assert_eq!(
            ev.arg_u64("occurrence"),
            Some(c.occurrence),
            "{label}: occurrence index mismatch on {}",
            ev.name
        );
        assert_eq!(
            injected_arg(ev),
            Some(c.injected),
            "{label}: injection flag mismatch on {}",
            ev.name
        );
    }
}

#[test]
fn fork_crossings_all_traced() {
    assert_crossings_mirrored("fork", |k, p, _| fork(k, p).map(|_| ()));
}

#[test]
fn vfork_crossings_all_traced() {
    assert_crossings_mirrored("vfork", |k, p, _| {
        vfork(k, p).map(|c| {
            k.exit(c, 0).unwrap();
            let _ = k.waitpid(p, Some(c));
        })
    });
}

#[test]
fn clone_crossings_all_traced() {
    assert_crossings_mirrored("clone(files)", |k, p, _| {
        clone(
            k,
            p,
            CloneFlags {
                files: true,
                ..CloneFlags::default()
            },
        )
        .map(|_| ())
    });
}

#[test]
fn posix_spawn_crossings_all_traced() {
    let actions = vec![
        FileAction::Open {
            fd: STDOUT,
            path: "/out.txt".into(),
            flags: OpenFlags::WRONLY,
            create: true,
        },
        FileAction::Close {
            fd: fpr_kernel::STDIN,
        },
    ];
    assert_crossings_mirrored("posix_spawn", move |k, p, reg| {
        posix_spawn(
            k,
            p,
            reg,
            "/bin/tool",
            &actions,
            &SpawnAttrs::default(),
            AslrConfig::default(),
            7,
        )
        .map(|_| ())
    });
}

#[test]
fn xproc_crossings_all_traced() {
    assert_crossings_mirrored("xproc", |k, p, reg| {
        ProcessBuilder::new("/bin/tool")
            .fd(STDOUT, FdSource::Inherit(STDOUT))
            .mem(MemOp::MapAnon {
                tag: 1,
                pages: 4,
                prot: Prot::RW,
            })
            .spawn(k, p, reg)
            .map(|_| ())
    });
}

/// An injected failure must itself be visible (`injected: true`) and the
/// aborted creation must still close every span it opened.
#[test]
fn aborted_fork_closes_spans_and_records_injection() {
    let k_count = {
        let (mut k, p, _) = world();
        fpr_faults::count_crossings(|| {
            fork(&mut k, p).expect("fault-free fork");
        })
        .len()
    };
    for nth in 0..k_count {
        let (mut k, p, _) = world();
        let plan = FaultPlan::passive().fail_nth_crossing(nth as u64);
        let ((result, _trace), events) =
            sink::with_sink(|| with_plan(plan, || fork(&mut k, p)));
        assert!(result.is_err(), "crossing {nth}: fault was swallowed");
        assert!(
            sink::spans_balanced(&events),
            "crossing {nth}: aborted creation left an open span"
        );
        let injected = events
            .iter()
            .filter(|e| e.cat == "fault" && injected_arg(e) == Some(true))
            .count();
        assert_eq!(injected, 1, "crossing {nth}: injection not traced");
    }
}

/// Property test: across seeded random workloads — mixed creation APIs,
/// memory traffic, exits, and randomly injected faults — the recorded
/// stream is always a balanced span sequence.
#[test]
fn spans_balanced_under_random_workloads() {
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let (mut k, p, reg) = world();
        let heap = k.mmap_anon(p, 64, Prot::RW, Share::Private).unwrap();
        k.populate(p, heap, 32).unwrap();
        // Half the runs inject a fault at a random crossing, so aborted
        // creations are exercised as often as successful ones.
        let plan = if seed.is_multiple_of(2) {
            FaultPlan::passive()
        } else {
            FaultPlan::passive().fail_nth_crossing(rng.gen_u64() % 16)
        };
        let steps = 2 + (rng.gen_u64() % 6);
        let ((), events) = sink::with_sink(|| {
            let ((), _trace) = with_plan(plan, || {
                for _ in 0..steps {
                    match rng.gen_u64() % 6 {
                        0 => {
                            if let Ok(c) = fork(&mut k, p) {
                                let _ = k.exit(c, 0);
                                let _ = k.waitpid(p, Some(c));
                            }
                        }
                        1 => {
                            if let Ok(c) = vfork(&mut k, p) {
                                let _ = k.exit(c, 0);
                                let _ = k.waitpid(p, Some(c));
                            }
                        }
                        2 => {
                            let _ = posix_spawn(
                                &mut k,
                                p,
                                &reg,
                                "/bin/tool",
                                &[],
                                &SpawnAttrs::default(),
                                AslrConfig::default(),
                                rng.gen_u64(),
                            );
                        }
                        3 => {
                            let _ = clone(
                                &mut k,
                                p,
                                CloneFlags {
                                    files: true,
                                    pt_share: rng.gen_u64().is_multiple_of(2),
                                    ..CloneFlags::default()
                                },
                            );
                        }
                        4 => {
                            let _ = ProcessBuilder::new("/bin/tool")
                                .fd(STDOUT, FdSource::Inherit(STDOUT))
                                .spawn(&mut k, p, &reg);
                        }
                        _ => {
                            let page = rng.gen_u64() % 64;
                            let _ = k.write_mem(p, heap.add(page), rng.gen_u64());
                        }
                    }
                }
            });
        });
        assert!(
            sink::spans_balanced(&events),
            "seed {seed}: unbalanced span stream ({} events)",
            events.len()
        );
    }
}
