//! Observational equivalence: transparent huge pages on vs off.
//!
//! Seed-driven property test (failures name the seed and replay
//! exactly). Two kernels — one with THP enabled, one without — replay an
//! identical random schedule of mmap, populate, write, read, mprotect,
//! munmap, fork, swap-out and exit. Promotion and demotion must be
//! invisible: every operation returns the same result in both worlds,
//! every page observes the same bytes at the end, and tearing everything
//! down leaves both kernels byte-identical to their pre-schedule
//! baseline. This is the THP contract — a block being huge or small may
//! change what the machine *charges*, never what a process *sees*.

use fpr_api::fork;
use fpr_kernel::{Errno, Kernel, MachineConfig, Pid};
use fpr_mem::{Prot, Share, VmaKind, Vpn};
use fpr_rng::Rng;

const CASES: u64 = 24;
const MAX_REGIONS: usize = 6;
const MAX_PIDS: usize = 5;

/// Ops carry raw randoms; targets are resolved against the world's live
/// pid/region lists at apply time. Both worlds evolve those lists in
/// lockstep, so resolution is identical.
#[derive(Debug, Clone)]
enum Op {
    /// Map a fresh private anonymous region in the root process.
    Mmap { pages: u64 },
    /// Prefault a range (the THP world's promotion fast path).
    Populate { reg: u64, off: u64, pages: u64 },
    Write { who: u64, reg: u64, off: u64, val: u64 },
    Read { who: u64, reg: u64, off: u64 },
    /// Drop write permission on a subrange (splits huge blocks).
    ProtectRo { who: u64, reg: u64, off: u64, pages: u64 },
    /// Unmap a subrange (demotes straddled blocks).
    Unmap { who: u64, reg: u64, off: u64, pages: u64 },
    /// Fork the root: huge blocks are shared/COWed as single units.
    Fork,
    /// Evict up to `max` pages (huge blocks must refuse to swap).
    Swap { max: u64 },
    /// Exit a non-root process.
    Exit { who: u64 },
}

fn gen_op(rng: &mut Rng) -> Op {
    match rng.gen_below(16) {
        0 => Op::Mmap {
            // Half the regions are exactly one huge block so promotion
            // has real targets; the rest are odd sizes that never align.
            pages: if rng.gen_below(2) == 0 {
                512
            } else {
                rng.gen_range(16, 200)
            },
        },
        1..=2 => Op::Populate {
            reg: rng.gen_u64(),
            // Bias half the populates to full-block shape (offset 0, 512
            // pages) so the THP world's promotion path really fires.
            off: if rng.gen_below(2) == 0 {
                0
            } else {
                rng.gen_below(512)
            },
            pages: if rng.gen_below(2) == 0 {
                512
            } else {
                rng.gen_range(1, 512)
            },
        },
        3..=6 => Op::Write {
            who: rng.gen_u64(),
            reg: rng.gen_u64(),
            off: rng.gen_below(600),
            val: rng.gen_u64(),
        },
        7..=9 => Op::Read {
            who: rng.gen_u64(),
            reg: rng.gen_u64(),
            off: rng.gen_below(600),
        },
        10 => Op::ProtectRo {
            who: rng.gen_u64(),
            reg: rng.gen_u64(),
            off: rng.gen_below(500),
            pages: rng.gen_range(1, 64),
        },
        11 => Op::Unmap {
            who: rng.gen_u64(),
            reg: rng.gen_u64(),
            off: rng.gen_below(500),
            pages: rng.gen_range(1, 64),
        },
        12 => Op::Fork,
        13..=14 => Op::Swap {
            max: rng.gen_range(1, 64),
        },
        _ => Op::Exit { who: rng.gen_u64() },
    }
}

struct World {
    k: Kernel,
    init: Pid,
    root: Pid,
    /// root + every forked child, zombies included (ops against zombies
    /// must fail identically in both worlds).
    pids: Vec<Pid>,
    /// Parallel to `pids`: false once an Exit op killed the process.
    alive: Vec<bool>,
    /// Snapshot from before the root fork: teardown must return to it.
    base: fpr_kernel::KernelBaseline,
    /// (base, pages) of every region ever mapped in root.
    regions: Vec<(Vpn, u64)>,
}

impl World {
    fn new(thp: bool) -> World {
        let mut k = Kernel::new(MachineConfig {
            thp,
            frames: 65_536,
            swap_slots: 1024,
            ..MachineConfig::default()
        });
        let init = k.create_init("init").unwrap();
        let base = k.baseline();
        let root = fork(&mut k, init).unwrap();
        World {
            k,
            init,
            root,
            pids: vec![root],
            alive: vec![true],
            regions: Vec::new(),
            base,
        }
    }

    fn pid(&self, raw: u64) -> Pid {
        self.pids[(raw % self.pids.len() as u64) as usize]
    }

    fn region(&self, raw: u64) -> Option<(Vpn, u64)> {
        if self.regions.is_empty() {
            None
        } else {
            Some(self.regions[(raw % self.regions.len() as u64) as usize])
        }
    }

    /// Applies one op. `Ok(Some(v))` carries an observed value the two
    /// worlds must agree on; swap-out counts are intentionally *not*
    /// compared — huge blocks refuse eviction, so the THP world may swap
    /// fewer pages, which is a cost difference, not a semantic one.
    fn apply(&mut self, op: &Op) -> Result<Option<u64>, Errno> {
        match op {
            Op::Mmap { pages } => {
                if self.regions.len() >= MAX_REGIONS {
                    return Ok(None);
                }
                // Each region gets its own fixed, huge-aligned slot.
                // Kernel-chosen placement (`mmap_anon`) is deliberately
                // avoided here: a THP machine huge-aligns block-sized
                // mappings (thp_get_unmapped_area), so the two worlds
                // would place regions — and later refill munmap holes —
                // at different addresses, which is an address-layout
                // difference, not a semantic one. Fixed slots keep both
                // worlds byte-comparable; mm.rs unit-tests the alignment.
                let base = Vpn(0x40000 + self.regions.len() as u64 * 1024);
                let mut vma = fpr_mem::VmArea::anon(base, *pages, Prot::RW, VmaKind::Mmap);
                vma.share = Share::Private;
                self.k.mmap_at(self.root, vma)?;
                self.regions.push((base, *pages));
                Ok(Some(base.0))
            }
            Op::Populate { reg, off, pages } => {
                let Some((base, len)) = self.region(*reg) else {
                    return Ok(None);
                };
                let off = off % len;
                let pages = (*pages).min(len - off);
                self.k
                    .populate(self.root, base.add(off), pages)
                    .map(|_| None)
            }
            Op::Write { who, reg, off, val } => {
                let Some((base, len)) = self.region(*reg) else {
                    return Ok(None);
                };
                self.k
                    .write_mem(self.pid(*who), base.add(off % len), *val)
                    .map(|_| None)
            }
            Op::Read { who, reg, off } => {
                let Some((base, len)) = self.region(*reg) else {
                    return Ok(None);
                };
                self.k
                    .read_mem(self.pid(*who), base.add(off % len))
                    .map(Some)
            }
            Op::ProtectRo {
                who,
                reg,
                off,
                pages,
            } => {
                let Some((base, len)) = self.region(*reg) else {
                    return Ok(None);
                };
                let off = off % len;
                let pages = (*pages).min(len - off);
                self.k
                    .mprotect(self.pid(*who), base.add(off), pages, Prot::R)
                    .map(|_| None)
            }
            Op::Unmap {
                who,
                reg,
                off,
                pages,
            } => {
                let Some((base, len)) = self.region(*reg) else {
                    return Ok(None);
                };
                let off = off % len;
                let pages = (*pages).min(len - off);
                self.k
                    .munmap(self.pid(*who), base.add(off), pages)
                    .map(|_| None)
            }
            Op::Fork => {
                if self.pids.len() >= MAX_PIDS {
                    return Ok(None);
                }
                let child = fork(&mut self.k, self.root)?;
                self.pids.push(child);
                self.alive.push(true);
                Ok(Some(child.0 as u64))
            }
            Op::Swap { max } => {
                let _ = self.k.swap_out_pass(*max);
                Ok(None)
            }
            Op::Exit { who } => {
                let live: Vec<usize> = (1..self.pids.len()).filter(|i| self.alive[*i]).collect();
                if live.is_empty() {
                    return Ok(None);
                }
                let idx = live[(who % live.len() as u64) as usize];
                self.alive[idx] = false;
                self.k.exit(self.pids[idx], 0).map(|_| None)
            }
        }
    }

    /// Every page every live process can observe, without faulting.
    /// Keyed by (pid, region index, page offset) — never by raw address,
    /// which differs between worlds once THP huge-aligns a mapping.
    fn observed(&self) -> Vec<(u32, usize, u64, u64)> {
        let mut out = Vec::new();
        for pid in &self.pids {
            let Ok(p) = self.k.process(*pid) else { continue };
            if p.is_zombie() {
                continue;
            }
            for (r, (base, len)) in self.regions.iter().enumerate() {
                for i in 0..*len {
                    if let Ok(v) = p.aspace.observe(base.add(i), &self.k.phys) {
                        out.push((pid.0, r, i, v));
                    }
                }
            }
        }
        out
    }

    /// Exits and reaps everything; every frame and swap slot must come
    /// back. Returns the commit-account comparison against the pre-fork
    /// baseline: the kernel's commit accounting has a known quirk (a
    /// private RW→R mprotect strands its charge, THP or not), so the
    /// caller asserts the two worlds strand *identically* rather than
    /// demanding zero.
    fn teardown(mut self, label: &str) -> Vec<String> {
        for idx in 1..self.pids.len() {
            if self.alive[idx] {
                self.k.exit(self.pids[idx], 0).unwrap();
            }
            let _ = self.k.waitpid(self.root, Some(self.pids[idx]));
        }
        self.k.exit(self.root, 0).unwrap();
        self.k.waitpid(self.init, Some(self.root)).unwrap();
        assert_eq!(
            self.k.phys.used_frames(),
            0,
            "{label}: frames survived teardown"
        );
        assert_eq!(
            self.k.phys.swap().used_slots(),
            0,
            "{label}: swap slots survived teardown"
        );
        self.k
            .check_invariants()
            .unwrap_or_else(|v| panic!("{label}: invariants after teardown: {v:?}"));
        self.k.leak_check(&self.base).err().unwrap_or_default()
    }
}

/// Same schedule, THP on and off: identical results, identical bytes,
/// clean teardown — and the THP world really did promote somewhere.
#[test]
fn thp_is_observationally_invisible() {
    let mut total_promoted = 0;
    for case in 0..CASES {
        let seed = 0x7B9_0000 + case;
        let mut rng = Rng::seed_from_u64(seed ^ 0x5eed);
        let ops: Vec<Op> = (0..rng.gen_range(30, 140))
            .map(|_| gen_op(&mut rng))
            .collect();

        let mut on = World::new(true);
        let mut off = World::new(false);

        for (i, op) in ops.iter().enumerate() {
            let a = on.apply(op);
            let b = off.apply(op);
            match (&a, &b) {
                (Ok(x), Ok(y)) => assert_eq!(
                    x, y,
                    "case {case} op {i} ({op:?}): THP on/off observed different values"
                ),
                (Err(_), Err(_)) => {}
                _ => panic!("case {case} op {i} ({op:?}): {a:?} vs {b:?} diverged"),
            }
            assert_eq!(
                on.pids, off.pids,
                "case {case} op {i}: pid tables diverged"
            );
        }

        assert_eq!(
            on.observed(),
            off.observed(),
            "case {case}: observable memory diverged after the schedule"
        );
        for w in [&mut on, &mut off] {
            w.k.check_invariants()
                .unwrap_or_else(|v| panic!("case {case}: invariants mid-run: {v:?}"));
        }
        total_promoted += on.k.phys.thp_stats().promoted;
        assert_eq!(
            off.k.phys.thp_stats().promoted,
            0,
            "case {case}: the THP-off world promoted"
        );

        let leak_on = on.teardown(&format!("case {case} (thp on)"));
        let leak_off = off.teardown(&format!("case {case} (thp off)"));
        assert_eq!(
            leak_on, leak_off,
            "case {case}: teardown residue diverged between THP on and off"
        );
    }
    assert!(
        total_promoted > 0,
        "schedules never promoted a single block — the property is vacuous"
    );
}
