//! Exhaustive fail-point sweep over the five creation APIs.
//!
//! For each API: run once under a passive plan to learn the K instrumented
//! crossings the operation makes, then replay K times from a fresh world,
//! failing at crossing 0, 1, …, K-1. Every injected failure must surface
//! as a clean `Err`, leave the kernel byte-identical to the pre-call
//! baseline (`leak_check`) and structurally sound (`check_invariants`),
//! and the same operation must succeed once the fault clears.
//!
//! This is the transactional guarantee the paper says fork-based systems
//! never test: the un-duplicate paths, all of them, executed on demand.

use fpr_api::{clone, fork, posix_spawn, posix_spawn_cached, vfork, CloneFlags, ProcessBuilder};
use fpr_api::{FdSource, FileAction, MemOp, SpawnAttrs, WarmPool};
use fpr_exec::{AslrConfig, Image, ImageCache, ImageRegistry};
use fpr_faults::{count_crossings, with_plan, FaultPlan};
use fpr_kernel::{Errno, Kernel, OpenFlags, Pid, STDOUT};
use fpr_mem::{Prot, Share};

/// A parent rich enough to make every API cross several sites: private
/// populated memory, a second VMA, an open file, and a pipe.
fn world() -> (Kernel, Pid, ImageRegistry) {
    let mut k = Kernel::boot();
    let init = k.create_init("init").unwrap();
    let a = k.mmap_anon(init, 6, Prot::RW, Share::Private).unwrap();
    k.populate(init, a, 6).unwrap();
    let b = k.mmap_anon(init, 3, Prot::RW, Share::Shared).unwrap();
    k.populate(init, b, 3).unwrap();
    let f = k.open(init, "/data", OpenFlags::RDWR, true).unwrap();
    k.write_fd(init, f, b"seed").unwrap();
    k.pipe(init).unwrap();
    let mut reg = ImageRegistry::new();
    reg.register("/bin/tool", Image::small("tool"));
    (k, init, reg)
}

/// Errors a rolled-back creation is allowed to report.
fn clean_creation_error(e: Errno) -> bool {
    matches!(e, Errno::Enomem | Errno::Eagain | Errno::Emfile)
}

/// Sweeps one operation: fail each of its crossings in turn, asserting a
/// clean error, an intact kernel, and success on retry.
fn sweep(label: &str, op: impl Fn(&mut Kernel, Pid, &ImageRegistry) -> Result<(), Errno>) {
    let k_count = {
        let (mut k, p, reg) = world();
        let trace = count_crossings(|| {
            op(&mut k, p, &reg).unwrap_or_else(|e| panic!("{label}: fault-free run failed: {e:?}"))
        });
        assert!(
            !trace.is_empty(),
            "{label}: operation crossed no instrumented site"
        );
        trace.len()
    };

    for nth in 0..k_count {
        let (mut k, p, reg) = world();
        let base = k.baseline();
        let plan = FaultPlan::passive().fail_nth_crossing(nth as u64);
        let (result, trace) = with_plan(plan, || op(&mut k, p, &reg));
        let injected = trace.injected();
        assert_eq!(
            injected.len(),
            1,
            "{label}: crossing {nth} of {k_count} did not inject exactly once"
        );
        let site = injected[0].site;
        let err = result.expect_err(&format!(
            "{label}: injected fault at {site}#{nth} was swallowed — op returned Ok"
        ));
        assert!(
            clean_creation_error(err),
            "{label}: fault at {site}#{nth} surfaced as {err:?}, not a clean creation error"
        );
        if let Err(v) = k.leak_check(&base) {
            panic!(
                "{label}: fault at {site}#{nth} leaked:\n  {}",
                v.join("\n  ")
            );
        }
        if let Err(v) = k.check_invariants() {
            panic!(
                "{label}: fault at {site}#{nth} broke invariants:\n  {}",
                v.join("\n  ")
            );
        }
        // The fault was transient; with it cleared the same call succeeds.
        op(&mut k, p, &reg).unwrap_or_else(|e| {
            panic!("{label}: retry after fault at {site}#{nth} cleared failed: {e:?}")
        });
    }
}

#[test]
fn fork_survives_every_fail_point() {
    sweep("fork", |k, p, _| fork(k, p).map(|_| ()));
}

#[test]
fn on_demand_fork_survives_every_fail_point() {
    sweep("fork(on_demand)", |k, p, _| {
        fpr_api::fork_on_demand(k, p).map(|_| ())
    });
}

/// A world mid-storm: an on-demand fork already succeeded, so the child
/// shares leaf page-table subtrees with the parent — half populated,
/// half still demand-zero. Every post-fork operation that touches a
/// shared subtree (write, mprotect, munmap) crosses the `pt_unshare`
/// site and must be as transactional as creation itself.
fn storm_world() -> (Kernel, Pid, fpr_mem::Vpn, fpr_mem::Vpn) {
    let mut k = Kernel::boot();
    let init = k.create_init("init").unwrap();
    let a = k.mmap_anon(init, 600, Prot::RW, Share::Private).unwrap();
    k.populate(init, a, 300).unwrap();
    // A shared mapping keeps *writable* PTEs inside the shared subtree
    // (no COW downgrade at fork), so mprotect has real PTE bits to flip.
    let b = k.mmap_anon(init, 64, Prot::RW, Share::Shared).unwrap();
    k.populate(init, b, 64).unwrap();
    let child = fpr_api::fork_on_demand(&mut k, init).unwrap();
    (k, child, a, b)
}

/// Sweeps one post-fork storm operation the way [`sweep`] does creation:
/// fail each crossing in turn; the op must error cleanly, leave the
/// kernel at its pre-op baseline and structurally sound, and succeed on
/// retry.
fn sweep_storm(
    label: &str,
    op: impl Fn(&mut Kernel, Pid, fpr_mem::Vpn, fpr_mem::Vpn) -> Result<(), Errno>,
) {
    let k_count = {
        let (mut k, child, a, b) = storm_world();
        let trace = count_crossings(|| {
            op(&mut k, child, a, b)
                .unwrap_or_else(|e| panic!("{label}: fault-free run failed: {e:?}"))
        });
        assert!(
            trace
                .crossings
                .iter()
                .any(|c| c.site == fpr_faults::FaultSite::PtUnshare),
            "{label}: storm op never crossed pt_unshare"
        );
        trace.len()
    };

    for nth in 0..k_count {
        let (mut k, child, a, b) = storm_world();
        let base = k.baseline();
        let plan = FaultPlan::passive().fail_nth_crossing(nth as u64);
        let (result, trace) = with_plan(plan, || op(&mut k, child, a, b));
        let injected = trace.injected();
        assert_eq!(injected.len(), 1, "{label}: crossing {nth} did not inject");
        let site = injected[0].site;
        let err = result.expect_err(&format!(
            "{label}: injected fault at {site}#{nth} was swallowed"
        ));
        assert!(
            clean_creation_error(err),
            "{label}: fault at {site}#{nth} surfaced as {err:?}"
        );
        if let Err(v) = k.leak_check(&base) {
            panic!(
                "{label}: fault at {site}#{nth} leaked:\n  {}",
                v.join("\n  ")
            );
        }
        if let Err(v) = k.check_invariants() {
            panic!(
                "{label}: fault at {site}#{nth} broke invariants:\n  {}",
                v.join("\n  ")
            );
        }
        op(&mut k, child, a, b).unwrap_or_else(|e| {
            panic!("{label}: retry after fault at {site}#{nth} cleared failed: {e:?}")
        });
    }
}

#[test]
fn storm_write_to_populated_shared_page_survives_every_fail_point() {
    // Page 0 was populated pre-fork: the write takes a structure fault
    // (unshare) and then a COW break.
    sweep_storm("storm(write populated)", |k, child, a, _| {
        k.write_mem(child, a, 0xD1).map(|_| ())
    });
}

#[test]
fn storm_write_to_unpopulated_shared_page_survives_every_fail_point() {
    // Page 400 is inside the shared span but was never populated: the
    // demand fill itself must unshare before it can map the new frame.
    sweep_storm("storm(write unpopulated)", |k, child, a, _| {
        k.write_mem(child, a.add(400), 0xD2).map(|_| ())
    });
}

#[test]
fn storm_mprotect_survives_every_fail_point() {
    sweep_storm("storm(mprotect)", |k, child, _, b| {
        k.mprotect(child, b.add(8), 16, Prot::R)
    });
}

#[test]
fn storm_partial_munmap_survives_every_fail_point() {
    // An unmap that straddles into a shared subtree without covering it
    // must unshare first (the other space keeps the full node).
    sweep_storm("storm(partial munmap)", |k, child, a, _| {
        k.munmap(child, a.add(4), 8).map(|_| ())
    });
}

#[test]
fn eager_fork_survives_every_fail_point() {
    sweep("fork(eager)", |k, p, _| {
        let tid = k.process(p)?.main_tid();
        fpr_api::fork_from_thread(k, p, tid, fpr_mem::ForkMode::Eager).map(|_| ())
    });
}

#[test]
fn vfork_survives_every_fail_point() {
    // vfork parks the parent on success; each iteration uses a fresh
    // world, and the retry's success is the last thing checked.
    sweep("vfork", |k, p, _| {
        vfork(k, p).map(|c| {
            // Unpark for the next call in this iteration.
            k.exit(c, 0).unwrap();
            let _ = k.waitpid(p, Some(c));
        })
    });
}

#[test]
fn clone_survives_every_fail_point() {
    sweep("clone(files)", |k, p, _| {
        clone(
            k,
            p,
            CloneFlags {
                files: true,
                ..CloneFlags::default()
            },
        )
        .map(|_| ())
    });
}

#[test]
fn posix_spawn_survives_every_fail_point() {
    let actions = vec![
        FileAction::Open {
            fd: STDOUT,
            path: "/out.txt".into(),
            flags: OpenFlags::WRONLY,
            create: true,
        },
        FileAction::Close { fd: fpr_kernel::STDIN },
    ];
    sweep("posix_spawn", move |k, p, reg| {
        posix_spawn(
            k,
            p,
            reg,
            "/bin/tool",
            &actions,
            &SpawnAttrs::default(),
            AslrConfig::default(),
            7,
        )
        .map(|_| ())
    });
}

#[test]
fn cached_spawn_survives_every_fail_point() {
    // The donor spawn: a cold cache makes every run a miss, so each call
    // crosses `image_cache_insert` on top of the classic spawn sites. The
    // cache is op-local and cleared before returning, so the pins it
    // takes on success never skew the next iteration's leak baseline.
    let actions = vec![FileAction::Open {
        fd: STDOUT,
        path: "/out.txt".into(),
        flags: OpenFlags::WRONLY,
        create: true,
    }];
    sweep("posix_spawn(image cache)", move |k, p, reg| {
        let mut cache = ImageCache::new();
        let r = posix_spawn_cached(
            k,
            p,
            reg,
            "/bin/tool",
            &actions,
            &SpawnAttrs::default(),
            AslrConfig::default(),
            7,
            Some(&mut cache),
        )
        .map(|_| ());
        cache.clear(k);
        r
    });
}

/// Sweeps a warm-pool checkout the way [`sweep`] does creation. The
/// world includes a prefilled pool (and the image cache the prefill
/// warmed), and the baseline is taken *after* the prefill: an injected
/// failure anywhere in the checkout — including at the `pool_checkout`
/// site itself and in every file action applied to the parked child —
/// must re-park the child and leave the kernel byte-identical to that
/// post-prefill baseline.
#[test]
fn pool_checkout_survives_every_fail_point() {
    let label = "warm-pool checkout";
    let pool_world = || {
        let (mut k, init, reg) = world();
        let mut cache = ImageCache::new();
        let mut pool = WarmPool::new(init);
        pool.prefill(&mut k, &reg, &mut cache, "/bin/tool", 1)
            .unwrap();
        (k, init, reg, cache, pool)
    };
    let actions = vec![
        FileAction::Open {
            fd: STDOUT,
            path: "/pool-out.txt".into(),
            flags: OpenFlags::WRONLY,
            create: true,
        },
        FileAction::Close { fd: fpr_kernel::STDIN },
    ];
    let op = |k: &mut Kernel, p: Pid, reg: &ImageRegistry, pool: &mut WarmPool| {
        pool.checkout(
            k,
            reg,
            p,
            "/bin/tool",
            &actions,
            &SpawnAttrs::default(),
            AslrConfig::default(),
            7,
        )
        .map(|c| assert!(c.is_some(), "{label}: parked child available, must hit"))
    };

    let k_count = {
        let (mut k, p, reg, _cache, mut pool) = pool_world();
        let trace = count_crossings(|| {
            op(&mut k, p, &reg, &mut pool)
                .unwrap_or_else(|e| panic!("{label}: fault-free run failed: {e:?}"))
        });
        assert!(
            trace
                .crossings
                .iter()
                .any(|c| c.site == fpr_faults::FaultSite::PoolCheckout),
            "{label}: checkout never crossed pool_checkout"
        );
        trace.len()
    };

    for nth in 0..k_count {
        let (mut k, p, reg, _cache, mut pool) = pool_world();
        let base = k.baseline();
        let plan = FaultPlan::passive().fail_nth_crossing(nth as u64);
        let (result, trace) = with_plan(plan, || op(&mut k, p, &reg, &mut pool));
        let injected = trace.injected();
        assert_eq!(injected.len(), 1, "{label}: crossing {nth} did not inject");
        let site = injected[0].site;
        let err = result.expect_err(&format!(
            "{label}: injected fault at {site}#{nth} was swallowed"
        ));
        assert!(
            clean_creation_error(err),
            "{label}: fault at {site}#{nth} surfaced as {err:?}"
        );
        assert_eq!(
            pool.available("/bin/tool"),
            1,
            "{label}: fault at {site}#{nth} lost the parked child"
        );
        if let Err(v) = k.leak_check(&base) {
            panic!(
                "{label}: fault at {site}#{nth} leaked:\n  {}",
                v.join("\n  ")
            );
        }
        if let Err(v) = k.check_invariants() {
            panic!(
                "{label}: fault at {site}#{nth} broke invariants:\n  {}",
                v.join("\n  ")
            );
        }
        // The re-parked child serves the retry once the fault clears.
        op(&mut k, p, &reg, &mut pool).unwrap_or_else(|e| {
            panic!("{label}: retry after fault at {site}#{nth} cleared failed: {e:?}")
        });
    }
}

/// Sweeps a kernel reclaim pass over both fast-path shrinkers. The pass
/// is two-phase: it crosses `pool_drain` (for the warm pool) and
/// `reclaim_shrink` (for the image cache) *before* either shrinker
/// mutates, so an injected failure at either site must leave the kernel
/// byte-identical to the post-prefill baseline — parked children intact,
/// cache still pinned — and the retried pass must free real frames.
#[test]
fn reclaim_pass_survives_every_fail_point() {
    use fpr_kernel::ShrinkerHandle;
    use std::sync::{Arc, Mutex};
    let label = "reclaim pass";
    let reclaim_world = || {
        let (mut k, init, reg) = world();
        let cache = Arc::new(Mutex::new(ImageCache::new()));
        let pool = Arc::new(Mutex::new(WarmPool::new(init)));
        pool.lock().unwrap()
            .prefill(&mut k, &reg, &mut cache.lock().unwrap(), "/bin/tool", 2)
            .unwrap();
        k.register_shrinker(&(pool.clone() as ShrinkerHandle));
        k.register_shrinker(&(cache.clone() as ShrinkerHandle));
        (k, cache, pool)
    };

    let k_count = {
        let (mut k, _cache, _pool) = reclaim_world();
        let trace = count_crossings(|| {
            let freed = k.reclaim(u64::MAX).expect("fault-free reclaim");
            assert!(freed > 0, "{label}: nothing reclaimed from a warm world");
        });
        for site in [
            fpr_faults::FaultSite::PoolDrain,
            fpr_faults::FaultSite::ReclaimShrink,
        ] {
            assert!(
                trace.crossings.iter().any(|c| c.site == site),
                "{label}: pass never crossed {site}"
            );
        }
        trace.len()
    };

    for nth in 0..k_count {
        let (mut k, cache, pool) = reclaim_world();
        let base = k.baseline();
        let plan = FaultPlan::passive().fail_nth_crossing(nth as u64);
        let (result, trace) = with_plan(plan, || k.reclaim(u64::MAX));
        let injected = trace.injected();
        assert_eq!(injected.len(), 1, "{label}: crossing {nth} did not inject");
        let site = injected[0].site;
        let err = result.expect_err(&format!(
            "{label}: injected fault at {site}#{nth} was swallowed"
        ));
        assert!(
            clean_creation_error(err),
            "{label}: fault at {site}#{nth} surfaced as {err:?}"
        );
        assert_eq!(
            pool.lock().unwrap().available("/bin/tool"),
            2,
            "{label}: fault at {site}#{nth} lost parked children"
        );
        assert!(
            cache.lock().unwrap().cached_frames() > 0,
            "{label}: fault at {site}#{nth} dropped the cache early"
        );
        if let Err(v) = k.leak_check(&base) {
            panic!(
                "{label}: fault at {site}#{nth} leaked:\n  {}",
                v.join("\n  ")
            );
        }
        if let Err(v) = k.check_invariants() {
            panic!(
                "{label}: fault at {site}#{nth} broke invariants:\n  {}",
                v.join("\n  ")
            );
        }
        assert_eq!(
            k.reclaim_stats().aborted_passes,
            1,
            "{label}: abort at {site}#{nth} not accounted"
        );
        // The fault was transient: the retried pass drains everything.
        let freed = k
            .reclaim(u64::MAX)
            .unwrap_or_else(|e| panic!("{label}: retry after {site}#{nth} failed: {e:?}"));
        assert!(freed > 0, "{label}: retry after {site}#{nth} freed nothing");
        assert_eq!(pool.lock().unwrap().available("/bin/tool"), 0);
        assert_eq!(cache.lock().unwrap().cached_frames(), 0);
        k.check_invariants()
            .unwrap_or_else(|v| panic!("{label}: post-retry invariants: {v:?}"));
    }
}

/// A machine with a swap device and sixteen dirty private pages to
/// evict: the swap sweeps' common fixture.
fn swap_world() -> (Kernel, Pid, fpr_mem::Vpn) {
    let mut k = Kernel::new(fpr_kernel::MachineConfig {
        frames: 256,
        swap_slots: 64,
        ..fpr_kernel::MachineConfig::default()
    });
    let init = k.create_init("init").unwrap();
    let base = k.mmap_anon(init, 16, Prot::RW, Share::Private).unwrap();
    for i in 0..16 {
        k.write_mem(init, base.add(i), 0xAB00 + i).unwrap();
    }
    (k, init, base)
}

/// Sweeps the swap-out pass: it crosses `swap_out` once and
/// `swap_slot_alloc` once per page *before* any PTE is rewritten, so an
/// injected failure at any crossing must leave the kernel byte-identical
/// — every page still resident, every reserved slot returned — and the
/// identical pass must succeed on retry.
#[test]
fn swap_out_pass_survives_every_fail_point() {
    let label = "swap-out pass";
    let k_count = {
        let (mut k, _, _) = swap_world();
        let trace = count_crossings(|| {
            assert_eq!(k.swap_out_pass(8), Ok(8), "{label}: fault-free run");
        });
        for site in [
            fpr_faults::FaultSite::SwapOut,
            fpr_faults::FaultSite::SwapSlotAlloc,
        ] {
            assert!(
                trace.crossings.iter().any(|c| c.site == site),
                "{label}: pass never crossed {site}"
            );
        }
        trace.len()
    };

    for nth in 0..k_count {
        let (mut k, init, vbase) = swap_world();
        let base = k.baseline();
        let plan = FaultPlan::passive().fail_nth_crossing(nth as u64);
        let (result, trace) = with_plan(plan, || k.swap_out_pass(8));
        let injected = trace.injected();
        assert_eq!(injected.len(), 1, "{label}: crossing {nth} did not inject");
        let site = injected[0].site;
        let err = result.expect_err(&format!(
            "{label}: injected fault at {site}#{nth} was swallowed"
        ));
        assert!(
            clean_creation_error(err),
            "{label}: fault at {site}#{nth} surfaced as {err:?}"
        );
        assert_eq!(
            k.process(init).unwrap().aspace.swapped_pages(),
            0,
            "{label}: fault at {site}#{nth} left pages evicted"
        );
        assert_eq!(
            k.phys.swap().used_slots(),
            0,
            "{label}: fault at {site}#{nth} leaked reserved slots"
        );
        if let Err(v) = k.leak_check(&base) {
            panic!(
                "{label}: fault at {site}#{nth} leaked:\n  {}",
                v.join("\n  ")
            );
        }
        if let Err(v) = k.check_invariants() {
            panic!(
                "{label}: fault at {site}#{nth} broke invariants:\n  {}",
                v.join("\n  ")
            );
        }
        // Byte-identical includes the bytes: every page still reads back.
        for i in 0..16 {
            assert_eq!(k.read_mem(init, vbase.add(i)), Ok(0xAB00 + i));
        }
        // The fault was transient; the identical pass succeeds.
        assert_eq!(
            k.swap_out_pass(8),
            Ok(8),
            "{label}: retry after fault at {site}#{nth} cleared"
        );
    }
}

/// Sweeps a fault-in of a swapped page. Two regimes: an injected
/// `swap_in` I/O error is *not* transparent — the backing store lost the
/// page, so the faulting process (and only it) dies SIGBUS-style, with
/// every frame and slot it held released. Every other injected failure
/// (the replacement frame allocation) rolls back byte-identically and
/// the retry succeeds.
#[test]
fn swap_in_sweep_contains_io_failure_to_the_faulting_process() {
    let label = "swap-in";
    let victim_world = || {
        let mut k = Kernel::new(fpr_kernel::MachineConfig {
            frames: 256,
            swap_slots: 64,
            ..fpr_kernel::MachineConfig::default()
        });
        let init = k.create_init("init").unwrap();
        let victim = k.allocate_process(init, "victim").unwrap();
        let base = k.mmap_anon(victim, 4, Prot::RW, Share::Private).unwrap();
        for i in 0..4 {
            k.write_mem(victim, base.add(i), 0xAB00 + i).unwrap();
        }
        assert_eq!(k.swap_out_pass(4), Ok(4));
        (k, init, victim, base)
    };

    let k_count = {
        let (mut k, _, victim, vbase) = victim_world();
        let trace = count_crossings(|| {
            assert_eq!(k.read_mem(victim, vbase), Ok(0xAB00), "{label}: fault-free");
        });
        assert!(
            trace
                .crossings
                .iter()
                .any(|c| c.site == fpr_faults::FaultSite::SwapIn),
            "{label}: fault-in never crossed swap_in"
        );
        trace.len()
    };

    for nth in 0..k_count {
        let (mut k, init, victim, vbase) = victim_world();
        let base = k.baseline();
        let plan = FaultPlan::passive().fail_nth_crossing(nth as u64);
        let (result, trace) = with_plan(plan, || k.read_mem(victim, vbase));
        let injected = trace.injected();
        assert_eq!(injected.len(), 1, "{label}: crossing {nth} did not inject");
        let site = injected[0].site;
        if site == fpr_faults::FaultSite::SwapIn {
            // The device lost the page: SIGBUS containment, not rollback.
            assert_eq!(result, Err(Errno::Efault), "{label}: EIO surfaced wrong");
            assert!(
                k.process(victim).unwrap().is_zombie(),
                "{label}: faulting process survived a lost page"
            );
            assert!(
                !k.process(init).unwrap().is_zombie(),
                "{label}: I/O error must not spread beyond the faulter"
            );
            let (pid, status) = k.waitpid(init, Some(victim)).unwrap().unwrap();
            assert_eq!(pid, victim);
            assert_eq!(status, fpr_kernel::SIGBUS_EXIT_STATUS);
            assert_eq!(
                k.phys.swap().used_slots(),
                0,
                "{label}: dead process leaked swap slots"
            );
        } else {
            // Transient failure: byte-identical rollback, retry works.
            let err = result.expect_err(&format!(
                "{label}: injected fault at {site}#{nth} was swallowed"
            ));
            assert!(
                clean_creation_error(err),
                "{label}: fault at {site}#{nth} surfaced as {err:?}"
            );
            if let Err(v) = k.leak_check(&base) {
                panic!(
                    "{label}: fault at {site}#{nth} leaked:\n  {}",
                    v.join("\n  ")
                );
            }
            assert_eq!(
                k.read_mem(victim, vbase),
                Ok(0xAB00),
                "{label}: retry after fault at {site}#{nth} cleared"
            );
        }
        if let Err(v) = k.check_invariants() {
            panic!(
                "{label}: fault at {site}#{nth} broke invariants:\n  {}",
                v.join("\n  ")
            );
        }
    }
}

/// A THP machine with a huge-aligned private anonymous span big enough
/// for two 2 MiB blocks.
fn thp_world() -> (Kernel, Pid, fpr_mem::Vpn) {
    let mut k = Kernel::new(fpr_kernel::MachineConfig {
        thp: true,
        ..fpr_kernel::MachineConfig::default()
    });
    let init = k.create_init("init").unwrap();
    let base = k.mmap_anon(init, 1024, Prot::RW, Share::Private).unwrap();
    (k, init, base)
}

/// Sweeps the promotion site. Promotion is an *optimisation*: an
/// injected `pt_promote` failure must be absorbed — the enclosing
/// operation still succeeds and the user-visible world is identical to
/// one where the block simply never promoted. Teardown then proves
/// nothing leaked.
#[test]
fn thp_promotion_failure_is_absorbed() {
    let label = "thp promote";
    let k_count = {
        let (mut k, p, base) = thp_world();
        let trace = count_crossings(|| {
            k.populate(p, base, 1024).unwrap();
        });
        let promotes = trace
            .crossings
            .iter()
            .filter(|c| c.site == fpr_faults::FaultSite::PtPromote)
            .count();
        assert_eq!(promotes, 2, "{label}: one promotion attempt per block");
        promotes
    };

    for nth in 0..k_count {
        let (mut k, p, base) = thp_world();
        let pre_mmap = {
            // Baseline from a world identical up to (but excluding) the
            // mmap: populate + munmap below must return to it exactly.
            let mut k2 = Kernel::new(fpr_kernel::MachineConfig {
                thp: true,
                ..fpr_kernel::MachineConfig::default()
            });
            k2.create_init("init").unwrap();
            k2.baseline()
        };
        let plan =
            FaultPlan::passive().fail_at(fpr_faults::FaultSite::PtPromote, nth as u64);
        let (result, trace) = with_plan(plan, || k.populate(p, base, 1024));
        assert_eq!(trace.injected().len(), 1, "{label}: crossing {nth} injected");
        result.unwrap_or_else(|e| {
            panic!("{label}: promotion failure at #{nth} must be absorbed, got {e:?}")
        });
        assert!(
            k.phys.thp_stats().failed >= 1,
            "{label}: absorbed failure not accounted"
        );
        if let Err(v) = k.check_invariants() {
            panic!("{label}: fault at #{nth} broke invariants:\n  {}", v.join("\n  "));
        }
        // The block that stayed small behaves byte-identically.
        for i in [0u64, 511, 512, 1023] {
            k.write_mem(p, base.add(i), 0xC0DE + i).unwrap();
            assert_eq!(k.read_mem(p, base.add(i)), Ok(0xC0DE + i));
        }
        k.munmap(p, base, 1024).unwrap();
        if let Err(v) = k.leak_check(&pre_mmap) {
            panic!("{label}: fault at #{nth} leaked:\n  {}", v.join("\n  "));
        }
    }
}

/// Sweeps the demotion site through the operations that must split a
/// huge block: a partial mprotect, a partial munmap, and a post-fork COW
/// write to a shared block. Demotion failure is *not* absorbable — the
/// enclosing operation needs the split — so each op must fail cleanly,
/// leave the kernel byte-identical, and succeed on retry.
#[test]
fn thp_demotion_failure_rolls_back_cleanly() {
    type DemoteWorld = fn() -> (Kernel, Pid, fpr_mem::Vpn);
    type DemoteOp = Box<dyn Fn(&mut Kernel, Pid, fpr_mem::Vpn) -> Result<(), Errno>>;
    /// A promoted 2 MiB block owned by init.
    fn promoted_world() -> (Kernel, Pid, fpr_mem::Vpn) {
        let (mut k, p, base) = thp_world();
        k.populate(p, base, 512).unwrap();
        assert_eq!(
            k.process(p).unwrap().aspace.huge_pages(),
            1,
            "fixture block promoted"
        );
        (k, p, base)
    }
    /// The same block after a fork: huge in both spaces, COW-shared, so
    /// the first write must demote before it can break a single page.
    fn forked_world() -> (Kernel, Pid, fpr_mem::Vpn) {
        let (mut k, p, base) = promoted_world();
        let child = fork(&mut k, p).unwrap();
        (k, child, base)
    }
    let ops: Vec<(&str, DemoteWorld, DemoteOp)> = vec![
        (
            "thp demote(mprotect)",
            promoted_world,
            Box::new(|k, p, base| k.mprotect(p, base.add(8), 16, Prot::R)),
        ),
        (
            "thp demote(partial munmap)",
            promoted_world,
            Box::new(|k, p, base| k.munmap(p, base.add(4), 8).map(|_| ())),
        ),
        (
            "thp demote(cow write)",
            forked_world,
            Box::new(|k, p, base| k.write_mem(p, base.add(3), 0xBAD).map(|_| ())),
        ),
    ];

    for (label, world, op) in &ops {
        let k_count = {
            let (mut k, p, base) = world();
            let trace = count_crossings(|| {
                op(&mut k, p, base)
                    .unwrap_or_else(|e| panic!("{label}: fault-free run failed: {e:?}"))
            });
            let demotes = trace
                .crossings
                .iter()
                .filter(|c| c.site == fpr_faults::FaultSite::PtDemote)
                .count();
            assert!(demotes >= 1, "{label}: op never crossed pt_demote");
            demotes
        };

        for nth in 0..k_count {
            let (mut k, p, base) = world();
            let pre_op = k.baseline();
            let plan =
                FaultPlan::passive().fail_at(fpr_faults::FaultSite::PtDemote, nth as u64);
            let (result, trace) = with_plan(plan, || op(&mut k, p, base));
            assert_eq!(trace.injected().len(), 1, "{label}: crossing {nth} injected");
            let err = result.expect_err(&format!(
                "{label}: injected demote failure #{nth} was swallowed"
            ));
            assert!(
                clean_creation_error(err),
                "{label}: fault #{nth} surfaced as {err:?}"
            );
            if let Err(v) = k.leak_check(&pre_op) {
                panic!("{label}: fault #{nth} leaked:\n  {}", v.join("\n  "));
            }
            if let Err(v) = k.check_invariants() {
                panic!(
                    "{label}: fault #{nth} broke invariants:\n  {}",
                    v.join("\n  ")
                );
            }
            // The fault was transient; the identical op succeeds.
            op(&mut k, p, base).unwrap_or_else(|e| {
                panic!("{label}: retry after fault #{nth} cleared failed: {e:?}")
            });
        }
    }
}

#[test]
fn xproc_builder_survives_every_fail_point() {
    sweep("xproc", |k, p, reg| {
        ProcessBuilder::new("/bin/tool")
            .fd(STDOUT, FdSource::Inherit(STDOUT))
            .fd(
                fpr_kernel::Fd(5),
                FdSource::Open {
                    path: "/scratch".into(),
                    flags: OpenFlags::RDWR,
                    create: true,
                },
            )
            .mem(MemOp::MapAnon {
                tag: 1,
                pages: 4,
                prot: Prot::RW,
            })
            .mem(MemOp::Write {
                tag: 1,
                offset: 0,
                value: 9,
            })
            .spawn(k, p, reg)
            .map(|_| ())
    });
}
