//! # fpr-api — the five process-creation APIs
//!
//! The paper's subject matter, implemented side by side over the same
//! simulated kernel:
//!
//! * [`fork::fork`] — duplicate everything (O(parent), with COW or eager
//!   copying);
//! * [`vfork::vfork`] — borrow the parent's memory and park it (O(1),
//!   dangerous);
//! * [`clone::clone`] — fork parameterised by `CLONE_*` flags;
//! * [`spawn::posix_spawn`] — create-and-exec with a closed vocabulary of
//!   file actions and attributes (O(image));
//! * [`xproc::ProcessBuilder`] — the paper's recommended cross-process
//!   API: an empty child populated explicitly (O(image + grants),
//!   inherit-nothing by default).
//!
//! [`compare`] encodes the capability matrix contrasting them (E7).

pub mod batch;
pub mod clone;
pub mod compare;
pub mod fastpath;
pub mod fork;
pub mod retry;
pub mod spawn;
pub mod vfork;
pub mod xproc;

pub use batch::{fork_exec, spawn_fast_batch, vfork_exec};
pub use clone::{clone, CloneFlags, CloneResult};
pub use compare::{coverage, render_matrix, supports, Api, Capability, CostClass, Support};
pub use fastpath::{spawn_fast, WarmPool};
pub use fork::{fork, fork_from_thread, fork_on_demand, ForkStats};
pub use retry::{fork_with_retry, is_transient, retry_with_backoff, RetryPolicy, RetryStats};
pub use spawn::{posix_spawn, posix_spawn_cached, FileAction, SpawnAttrs};
pub use vfork::vfork;
pub use xproc::{FdSource, MemOp, ProcessBuilder, Spawned};
