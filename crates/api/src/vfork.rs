//! `vfork(2)`: fast, dangerous, and deprecated for a reason.
//!
//! The child borrows the parent's address space — no copy at all, so
//! creation cost is O(1) in parent size — but until the child execs or
//! exits, the parent is suspended and every child write scribbles on the
//! parent's memory. The paper groups vfork with the "performance hack"
//! escape hatches that exist only because fork proper is slow.

use fpr_kernel::{KResult, Kernel, Pid, SpaceRef};
use fpr_trace::{metrics, sink, Phase, TraceEvent};

/// vforks `parent`: the child shares the parent's address space and the
/// parent's threads are parked until the child execs or exits.
///
/// Inherits descriptors (copied table, shared descriptions), signal state
/// and identity exactly like fork — the only difference is the memory.
pub fn vfork(kernel: &mut Kernel, parent: Pid) -> KResult<Pid> {
    let start = kernel.cycles.total();
    if sink::is_active() {
        sink::emit(
            TraceEvent::new("vfork", "api", Phase::Begin, start).arg("parent", parent.0 as u64),
        );
    }
    let r = vfork_inner(kernel, parent);
    let end = kernel.cycles.total();
    metrics::observe("api.vfork_cycles", end - start);
    sink::span_end("vfork", end);
    r
}

fn vfork_inner(kernel: &mut Kernel, parent: Pid) -> KResult<Pid> {
    kernel.charge_syscall();
    let child = kernel.allocate_process(parent, "")?;
    // Descriptor cloning is the only fallible copy vfork performs; a
    // failure must return the fresh PID and accounting, leaving the kernel
    // exactly as it was.
    let fds = match kernel.clone_fd_table(parent) {
        Ok(f) => f,
        Err(e) => {
            kernel.abort_process_creation(child)?;
            return Err(e);
        }
    };
    let (name, signals, umask, layout, argv, envp) = {
        let p = kernel.process(parent)?;
        (
            p.name.clone(),
            p.signals.fork_clone(),
            p.umask,
            p.layout,
            p.argv.clone(),
            p.envp.clone(),
        )
    };
    {
        let c = kernel.process_mut(child)?;
        c.space_ref = SpaceRef::BorrowedFrom(parent);
        c.fds = fds;
        c.name = name;
        c.signals = signals;
        c.umask = umask;
        c.layout = layout;
        c.argv = argv;
        c.envp = envp;
    }
    kernel.vfork_park(parent, child)?;
    Ok(child)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_exec::{AslrConfig, Image, ImageRegistry};
    use fpr_mem::{Prot, Share};

    fn boot() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    #[test]
    fn vfork_cost_independent_of_parent_size() {
        let (mut k, p) = boot();
        let c0 = k.cycles.total();
        let c1 = vfork(&mut k, p).unwrap();
        let small_cost = k.cycles.total() - c0;
        k.exit(c1, 0).unwrap();
        k.waitpid(p, Some(c1)).unwrap();

        let base = k.mmap_anon(p, 4096, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 4096).unwrap();
        let c2 = k.cycles.total();
        let _child = vfork(&mut k, p).unwrap();
        let big_cost = k.cycles.total() - c2;
        assert_eq!(small_cost, big_cost, "vfork is O(1) in parent size");
    }

    #[test]
    fn child_writes_scribble_on_parent() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 4, Prot::RW, Share::Private).unwrap();
        k.write_mem(p, base, 1).unwrap();
        let c = vfork(&mut k, p).unwrap();
        // The classic vfork bug: the child's write is the parent's write.
        k.write_mem(c, base, 99).unwrap();
        assert_eq!(k.read_mem(p, base), Ok(99));
    }

    #[test]
    fn parent_parked_until_child_exits() {
        let (mut k, p) = boot();
        let c = vfork(&mut k, p).unwrap();
        assert_eq!(
            k.process(p).unwrap().schedulable_threads(),
            0,
            "parent parked"
        );
        k.exit(c, 0).unwrap();
        assert_eq!(
            k.process(p).unwrap().schedulable_threads(),
            1,
            "parent resumed"
        );
    }

    #[test]
    fn parent_resumes_on_child_exec() {
        let (mut k, p) = boot();
        let mut reg = ImageRegistry::new();
        reg.register("/bin/tool", Image::small("tool"));
        let base = k.mmap_anon(p, 4, Prot::RW, Share::Private).unwrap();
        k.write_mem(p, base, 7).unwrap();
        let c = vfork(&mut k, p).unwrap();
        fpr_exec::execve(&mut k, c, &reg, "/bin/tool", AslrConfig::default(), 5).unwrap();
        assert_eq!(k.process(p).unwrap().schedulable_threads(), 1);
        // After exec the spaces are disjoint again.
        k.write_mem(c, fpr_mem::Vpn(k.process(c).unwrap().layout.heap_base), 3)
            .unwrap();
        assert_eq!(k.read_mem(p, base), Ok(7));
        assert_eq!(k.process(c).unwrap().space_ref, SpaceRef::Owned);
    }

    #[test]
    fn nested_vfork_chain_routes_to_root_owner() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 2, Prot::RW, Share::Private).unwrap();
        let c1 = vfork(&mut k, p).unwrap();
        let c2 = vfork(&mut k, c1).unwrap();
        k.write_mem(c2, base, 5).unwrap();
        assert_eq!(k.read_mem(p, base), Ok(5));
        k.exit(c2, 0).unwrap();
        k.exit(c1, 0).unwrap();
        assert_eq!(k.process(p).unwrap().schedulable_threads(), 1);
    }
}
