//! The cross-process API the paper advocates.
//!
//! Instead of cloning the parent (fork) or passing a closed list of
//! actions (posix_spawn), the parent constructs the child *explicitly*:
//! create an empty process, install exactly the descriptors it should
//! have, map and even write its memory from outside, adjust credentials
//! and limits, then start it. Nothing is inherited by default — the
//! secure-by-default inversion — and the vocabulary is open because every
//! kernel operation can target the child. This mirrors the designs the
//! paper points to (Exokernel-style cross-process calls, Drawbridge
//! picoprocesses, Windows `CreateProcess` attribute lists, Zircon).

use fpr_exec::{AslrConfig, ImageRegistry};
use fpr_kernel::{
    Caps, Errno, Fd, FdEntry, KResult, Kernel, OpenFlags, Pid, Resource, Rlimit, Sig,
};
use fpr_mem::{Prot, Share, Vpn};
use fpr_trace::{metrics, sink, Phase, TraceEvent};

/// Where a child descriptor comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdSource {
    /// Duplicate the parent's descriptor (explicit grant).
    Inherit(Fd),
    /// Open a path fresh in the child.
    Open {
        /// Path to open.
        path: String,
        /// Open flags.
        flags: OpenFlags,
        /// Create if missing.
        create: bool,
    },
}

/// A cross-process memory setup operation, applied before the child runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemOp {
    /// Map anonymous pages at the mmap arena and remember the base under
    /// `tag` for later `Write`s.
    MapAnon {
        /// Caller-chosen tag naming the region.
        tag: u32,
        /// Pages to map.
        pages: u64,
        /// Protection.
        prot: Prot,
    },
    /// Write a value into a previously mapped region (page `offset`).
    Write {
        /// Region tag from [`MemOp::MapAnon`].
        tag: u32,
        /// Page offset within the region.
        offset: u64,
        /// Value to store.
        value: u64,
    },
}

/// Builder for a child process (the paper's recommended replacement).
#[derive(Debug, Clone)]
pub struct ProcessBuilder {
    image_path: String,
    fds: Vec<(Fd, FdSource)>,
    mem_ops: Vec<MemOp>,
    drop_caps: Caps,
    set_uid: Option<u32>,
    rlimits: Vec<(Resource, Rlimit)>,
    sigmask: Vec<(Sig, bool)>,
    argv: Vec<String>,
    env: std::collections::BTreeMap<String, String>,
    aslr: AslrConfig,
    aslr_seed: u64,
}

/// A started child plus the tag → base-page map of its pre-built regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spawned {
    /// The child's PID.
    pub pid: Pid,
    /// Base page of each tagged region created by [`MemOp::MapAnon`].
    pub regions: Vec<(u32, Vpn)>,
}

impl ProcessBuilder {
    /// Starts a builder for the image at `path`.
    pub fn new(path: &str) -> ProcessBuilder {
        ProcessBuilder {
            image_path: path.to_string(),
            fds: Vec::new(),
            mem_ops: Vec::new(),
            drop_caps: Caps::none(),
            set_uid: None,
            rlimits: Vec::new(),
            sigmask: Vec::new(),
            argv: Vec::new(),
            env: std::collections::BTreeMap::new(),
            aslr: AslrConfig::default(),
            aslr_seed: 0,
        }
    }

    /// Appends a program argument.
    pub fn arg(mut self, a: &str) -> Self {
        self.argv.push(a.to_string());
        self
    }

    /// Sets an environment variable in the child (the child's environment
    /// starts empty — inherit-nothing applies to env too).
    pub fn env(mut self, key: &str, value: &str) -> Self {
        self.env.insert(key.to_string(), value.to_string());
        self
    }

    /// Installs a descriptor in the child. **Nothing is inherited unless
    /// granted here.**
    pub fn fd(mut self, child_fd: Fd, source: FdSource) -> Self {
        self.fds.push((child_fd, source));
        self
    }

    /// Queues a cross-process memory operation.
    pub fn mem(mut self, op: MemOp) -> Self {
        self.mem_ops.push(op);
        self
    }

    /// Drops capabilities in the child relative to the parent.
    pub fn drop_caps(mut self, caps: Caps) -> Self {
        self.drop_caps = caps;
        self
    }

    /// Runs the child as a different uid (privilege separation).
    pub fn uid(mut self, uid: u32) -> Self {
        self.set_uid = Some(uid);
        self
    }

    /// Overrides a resource limit in the child.
    pub fn rlimit(mut self, r: Resource, lim: Rlimit) -> Self {
        self.rlimits.push((r, lim));
        self
    }

    /// Sets the child's signal mask entries.
    pub fn sigmask(mut self, sig: Sig, blocked: bool) -> Self {
        self.sigmask.push((sig, blocked));
        self
    }

    /// Configures ASLR for the child's layout.
    pub fn aslr(mut self, cfg: AslrConfig, seed: u64) -> Self {
        self.aslr = cfg;
        self.aslr_seed = seed;
        self
    }

    /// Builds and starts the child. Cost is O(image + explicit grants).
    pub fn spawn(
        self,
        kernel: &mut Kernel,
        parent: Pid,
        registry: &ImageRegistry,
    ) -> KResult<Spawned> {
        let start = kernel.cycles.total();
        if sink::is_active() {
            sink::emit(
                TraceEvent::new("xproc_spawn", "api", Phase::Begin, start)
                    .arg("parent", parent.0 as u64)
                    .arg("path", self.image_path.as_str())
                    .arg("fd_grants", self.fds.len() as u64)
                    .arg("mem_ops", self.mem_ops.len() as u64),
            );
        }
        let r = self.spawn_inner(kernel, parent, registry);
        let end = kernel.cycles.total();
        metrics::observe("api.xproc_cycles", end - start);
        sink::span_end("xproc_spawn", end);
        r
    }

    fn spawn_inner(
        self,
        kernel: &mut Kernel,
        parent: Pid,
        registry: &ImageRegistry,
    ) -> KResult<Spawned> {
        kernel.charge_syscall();
        if registry.resolve(&self.image_path).is_none() {
            return Err(Errno::Enoexec);
        }
        let child = kernel.allocate_process(parent, "")?;
        let mut created = Vec::new();
        match self.build(kernel, parent, child, registry, &mut created) {
            Ok(regions) => Ok(Spawned {
                pid: child,
                regions,
            }),
            Err(e) => {
                // Roll the half-built child back — image pages, granted
                // descriptors, uid accounting — restoring the kernel to
                // its pre-call state. No zombie, no SIGCHLD. Files the
                // grants created are unlinked after the descriptor drain.
                kernel.abort_process_creation(child)?;
                for (p, cwd) in created {
                    let _ = kernel.vfs.unlink(&p, cwd);
                }
                Err(e)
            }
        }
    }

    fn build(
        &self,
        kernel: &mut Kernel,
        parent: Pid,
        child: Pid,
        registry: &ImageRegistry,
        created: &mut Vec<(String, fpr_kernel::vfs::Ino)>,
    ) -> KResult<Vec<(u32, Vpn)>> {
        // 1. The image first: the child's layout is fresh, never the
        //    parent's. argv defaults to [path]; env is exactly the grants.
        let argv = if self.argv.is_empty() {
            vec![self.image_path.clone()]
        } else {
            self.argv.clone()
        };
        fpr_exec::execve_args(
            kernel,
            child,
            registry,
            &self.image_path,
            argv,
            fpr_exec::Env::Replace(self.env.clone()),
            self.aslr,
            self.aslr_seed,
        )?;

        // 2. Descriptors: exactly the grants, nothing else. (The child
        //    was allocated with an empty table and exec carried it over.)
        for (child_fd, source) in &self.fds {
            fpr_faults::cross(fpr_faults::FaultSite::XprocStep).map_err(|_| Errno::Enomem)?;
            match source {
                FdSource::Inherit(pfd) => {
                    let entry = kernel.process(parent)?.fds.get(*pfd)?;
                    kernel.ref_object(entry.ofd)?;
                    let fresh = FdEntry {
                        ofd: entry.ofd,
                        cloexec: false,
                    };
                    let limit = kernel.process(child)?.rlimits.get(Resource::Nofile).soft;
                    match kernel
                        .process_mut(child)?
                        .fds
                        .install_at(*child_fd, fresh, limit)
                    {
                        Ok(Some(displaced)) => kernel.release_fd_entry(displaced)?,
                        Ok(None) => {}
                        Err(e) => {
                            // The reference taken above was never
                            // installed; drop it before unwinding.
                            kernel.release_fd_entry(fresh)?;
                            return Err(e);
                        }
                    }
                }
                FdSource::Open {
                    path,
                    flags,
                    create,
                } => {
                    let cwd = kernel.process(child)?.cwd;
                    let preexists = kernel.vfs.resolve(path, cwd).is_ok();
                    let opened = kernel.open(child, path, *flags, *create)?;
                    if *create && !preexists {
                        created.push((path.clone(), cwd));
                    }
                    if opened != *child_fd {
                        kernel.dup2(child, opened, *child_fd)?;
                        kernel.close(child, opened)?;
                    }
                }
            }
            sink::instant("xproc_fd_install", "api", kernel.cycles.total());
        }

        // 3. Cross-process memory: map and pre-write regions in the child.
        let mut regions: Vec<(u32, Vpn)> = Vec::new();
        for op in &self.mem_ops {
            fpr_faults::cross(fpr_faults::FaultSite::XprocStep).map_err(|_| Errno::Enomem)?;
            match op {
                MemOp::MapAnon { tag, pages, prot } => {
                    let base = kernel.mmap_anon(child, *pages, *prot, Share::Private)?;
                    sink::instant("xproc_map", "api", kernel.cycles.total());
                    regions.push((*tag, base));
                }
                MemOp::Write { tag, offset, value } => {
                    let base = regions
                        .iter()
                        .find(|(t, _)| t == tag)
                        .map(|(_, b)| *b)
                        .ok_or(Errno::Einval)?;
                    kernel.write_mem(child, base.add(*offset), *value)?;
                }
            }
        }

        // 4. Credentials and limits.
        {
            let c = kernel.process_mut(child)?;
            c.cred.caps = c.cred.caps.drop(self.drop_caps);
            if let Some(uid) = self.set_uid {
                c.cred.uid = uid;
                c.cred.euid = uid;
            }
            for (r, lim) in &self.rlimits {
                c.rlimits.set(*r, *lim);
            }
        }
        // uid accounting: moving the child to a new uid updates NPROC books.
        if let Some(uid) = self.set_uid {
            kernel.move_uid_accounting(child, uid)?;
        }

        // 5. Signal mask.
        for (sig, blocked) in &self.sigmask {
            kernel.sigprocmask(child, *sig, *blocked)?;
        }
        Ok(regions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_exec::Image;
    use fpr_kernel::{ReadResult, STDOUT};

    fn world() -> (Kernel, Pid, ImageRegistry) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        let mut reg = ImageRegistry::new();
        reg.register("/bin/tool", Image::small("tool"));
        (k, init, reg)
    }

    #[test]
    fn nothing_inherited_by_default() {
        let (mut k, p, reg) = world();
        let s = ProcessBuilder::new("/bin/tool")
            .spawn(&mut k, p, &reg)
            .unwrap();
        let c = k.process(s.pid).unwrap();
        assert_eq!(c.fds.open_count(), 0, "secure default: no descriptors");
        assert_eq!(c.name, "tool");
    }

    #[test]
    fn explicit_fd_grant() {
        let (mut k, p, reg) = world();
        let (r, w) = k.pipe(p).unwrap();
        let s = ProcessBuilder::new("/bin/tool")
            .fd(STDOUT, FdSource::Inherit(w))
            .spawn(&mut k, p, &reg)
            .unwrap();
        k.write_fd(s.pid, STDOUT, b"granted").unwrap();
        assert_eq!(
            k.read_fd(p, r, 16).unwrap(),
            ReadResult::Data(b"granted".to_vec())
        );
        assert_eq!(k.process(s.pid).unwrap().fds.open_count(), 1);
    }

    #[test]
    fn cross_process_memory_setup() {
        let (mut k, p, reg) = world();
        let s = ProcessBuilder::new("/bin/tool")
            .mem(MemOp::MapAnon {
                tag: 1,
                pages: 8,
                prot: Prot::RW,
            })
            .mem(MemOp::Write {
                tag: 1,
                offset: 3,
                value: 424_242,
            })
            .spawn(&mut k, p, &reg)
            .unwrap();
        let (_, base) = s.regions[0];
        assert_eq!(k.read_mem(s.pid, base.add(3)), Ok(424_242));
        assert_eq!(k.read_mem(s.pid, base), Ok(0));
    }

    #[test]
    fn privilege_separation() {
        let (mut k, p, reg) = world();
        let s = ProcessBuilder::new("/bin/tool")
            .uid(1000)
            .drop_caps(Caps::all())
            .rlimit(Resource::Nproc, Rlimit::both(5))
            .spawn(&mut k, p, &reg)
            .unwrap();
        let c = k.process(s.pid).unwrap();
        assert_eq!(c.cred.uid, 1000);
        assert!(!c.cred.can(Caps::KILL));
        assert_eq!(c.rlimits.get(Resource::Nproc).soft, 5);
        assert_eq!(k.nproc_of(1000), 1, "uid accounting moved");
    }

    #[test]
    fn spawn_cost_independent_of_parent() {
        let (mut k, p, reg) = world();
        let c0 = k.cycles.total();
        let s = ProcessBuilder::new("/bin/tool")
            .spawn(&mut k, p, &reg)
            .unwrap();
        let small = k.cycles.total() - c0;
        k.exit(s.pid, 0).unwrap();
        k.waitpid(p, Some(s.pid)).unwrap();
        let base = k.mmap_anon(p, 8192, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 8192).unwrap();
        let c1 = k.cycles.total();
        ProcessBuilder::new("/bin/tool")
            .spawn(&mut k, p, &reg)
            .unwrap();
        let big = k.cycles.total() - c1;
        assert_eq!(small, big);
    }

    #[test]
    fn failure_tears_down_cleanly() {
        let (mut k, p, reg) = world();
        let before = k.process_count();
        let err = ProcessBuilder::new("/bin/ghost").spawn(&mut k, p, &reg);
        assert_eq!(err.err(), Some(Errno::Enoexec));
        let err2 = ProcessBuilder::new("/bin/tool")
            .fd(Fd(0), FdSource::Inherit(Fd(99)))
            .spawn(&mut k, p, &reg);
        assert_eq!(err2.err(), Some(Errno::Ebadf));
        assert_eq!(k.process_count(), before);
    }

    #[test]
    fn fresh_aslr_per_child() {
        let (mut k, p, reg) = world();
        let a = ProcessBuilder::new("/bin/tool")
            .aslr(AslrConfig::default(), 11)
            .spawn(&mut k, p, &reg)
            .unwrap();
        let b = ProcessBuilder::new("/bin/tool")
            .aslr(AslrConfig::default(), 12)
            .spawn(&mut k, p, &reg)
            .unwrap();
        assert_ne!(
            k.process(a.pid).unwrap().layout,
            k.process(b.pid).unwrap().layout
        );
    }
}
