//! Bounded retry with exponential backoff for transient creation failures.
//!
//! Under strict overcommit (`fpr-mem::overcommit`) a fork can fail with
//! `ENOMEM` *transiently*: the commit limit is a global shared resource,
//! and another process exiting frees headroom. Likewise `EAGAIN` from
//! `RLIMIT_NPROC` clears when a sibling is reaped. Because the five
//! creation APIs are transactional (a failed call leaves the kernel
//! byte-identical to before), retrying is always safe — there is no
//! half-made child to collide with.
//!
//! The simulator has no wall clock, so backoff is charged in cycles: each
//! failed attempt charges `base_backoff_cycles << attempt` before the
//! next try, mirroring the cost a real process would pay sleeping.

use fpr_kernel::{Errno, KResult, Kernel};

/// Errors worth retrying: the resource may be freed by unrelated activity.
///
/// Everything else (`EINVAL`, `ENOEXEC`, `EBADF`, …) is deterministic —
/// retrying cannot help.
pub fn is_transient(e: Errno) -> bool {
    matches!(e, Errno::Enomem | Errno::Eagain | Errno::Emfile)
}

/// How many times to retry and how long to back off between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 means no retry.
    pub max_attempts: u32,
    /// Cycles charged before the first retry; doubles per attempt.
    pub base_backoff_cycles: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_cycles: 1_000,
        }
    }
}

/// What a retried operation did, beyond its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts actually made (1 = first try succeeded).
    pub attempts: u32,
    /// Total backoff cycles charged.
    pub backoff_cycles: u64,
}

/// Runs `op` up to `policy.max_attempts` times, backing off between
/// attempts. Non-transient errors (and exhaustion) return immediately
/// with the last error; the kernel is clean either way because the
/// creation APIs roll back on failure.
pub fn retry_with_backoff<T>(
    kernel: &mut Kernel,
    policy: RetryPolicy,
    mut op: impl FnMut(&mut Kernel) -> KResult<T>,
) -> (KResult<T>, RetryStats) {
    let mut stats = RetryStats {
        attempts: 0,
        backoff_cycles: 0,
    };
    loop {
        stats.attempts += 1;
        match op(kernel) {
            Ok(v) => return (Ok(v), stats),
            Err(e) if is_transient(e) && stats.attempts < policy.max_attempts => {
                // Exponential backoff, charged as burnt CPU time.
                let wait = policy
                    .base_backoff_cycles
                    .saturating_mul(1u64 << (stats.attempts - 1).min(32));
                kernel.cycles.charge(wait);
                stats.backoff_cycles += wait;
            }
            Err(e) => return (Err(e), stats),
        }
    }
}

/// [`crate::fork::fork`] with retry: the paper's "fork under pressure"
/// coping pattern, made explicit.
pub fn fork_with_retry(
    kernel: &mut Kernel,
    parent: fpr_kernel::Pid,
    policy: RetryPolicy,
) -> (KResult<fpr_kernel::Pid>, RetryStats) {
    retry_with_backoff(kernel, policy, |k| crate::fork::fork(k, parent))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_kernel::Pid;
    use fpr_mem::{Prot, Share};

    fn boot() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    #[test]
    fn first_try_success_makes_one_attempt() {
        let (mut k, p) = boot();
        let (r, stats) = fork_with_retry(&mut k, p, RetryPolicy::default());
        assert!(r.is_ok());
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.backoff_cycles, 0);
    }

    #[test]
    fn nontransient_error_is_not_retried() {
        let (mut k, _) = boot();
        let mut calls = 0;
        let (r, stats) = retry_with_backoff(&mut k, RetryPolicy::default(), |_| {
            calls += 1;
            Err::<(), Errno>(Errno::Einval)
        });
        assert_eq!(r, Err(Errno::Einval));
        assert_eq!(calls, 1);
        assert_eq!(stats.attempts, 1);
    }

    #[test]
    fn transient_error_retried_until_exhaustion_with_growing_backoff() {
        let (mut k, _) = boot();
        let before = k.cycles.total();
        let (r, stats) = retry_with_backoff(
            &mut k,
            RetryPolicy {
                max_attempts: 4,
                base_backoff_cycles: 100,
            },
            |_| Err::<(), Errno>(Errno::Enomem),
        );
        assert_eq!(r, Err(Errno::Enomem));
        assert_eq!(stats.attempts, 4);
        // 100 + 200 + 400 (no backoff after the final attempt).
        assert_eq!(stats.backoff_cycles, 700);
        assert_eq!(k.cycles.total() - before, 700);
    }

    #[test]
    fn succeeds_once_pressure_clears() {
        let (mut k, p) = boot();
        // Eat almost all commit so fork's COW charge fails, then release
        // it on the way to the third attempt — modelling another process
        // exiting.
        k.commit
            .set_policy(fpr_mem::OvercommitPolicy::Never { ratio: 0.5 });
        let base = k.mmap_anon(p, 8, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 8).unwrap();
        let headroom = k.commit.limit().unwrap() - k.commit.committed();
        let hog = k.mmap_anon(p, headroom, Prot::RW, Share::Private).unwrap();
        let mut attempt = 0;
        let (r, stats) = retry_with_backoff(&mut k, RetryPolicy::default(), |k| {
            attempt += 1;
            if attempt == 3 {
                k.munmap(p, hog, headroom).unwrap();
            }
            crate::fork::fork(k, p)
        });
        assert!(r.is_ok(), "fork succeeded after pressure cleared: {r:?}");
        assert_eq!(stats.attempts, 3);
        assert!(stats.backoff_cycles > 0);
    }
}
