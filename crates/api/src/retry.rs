//! Bounded retry with exponential backoff for transient creation failures.
//!
//! Under strict overcommit (`fpr-mem::overcommit`) a fork can fail with
//! `ENOMEM` *transiently*: the commit limit is a global shared resource,
//! and another process exiting frees headroom. Likewise `EAGAIN` from
//! `RLIMIT_NPROC` clears when a sibling is reaped. Because the five
//! creation APIs are transactional (a failed call leaves the kernel
//! byte-identical to before), retrying is always safe — there is no
//! half-made child to collide with.
//!
//! The simulator has no wall clock, so backoff is charged in cycles: each
//! failed attempt charges `base_backoff_cycles << attempt` before the
//! next try (capped — see [`RetryPolicy::backoff_for`]), mirroring the
//! cost a real process would pay sleeping.
//!
//! When the failure is memory pressure and shrinkers are registered,
//! backoff is more than waiting: each retry first runs
//! [`fpr_kernel::Kernel::balance_pressure`], so the wait is spent
//! reclaiming the cache frames that caused the `ENOMEM` in the first
//! place.

use fpr_kernel::{Errno, KResult, Kernel};

/// Errors worth retrying: the resource may be freed by unrelated activity.
///
/// Everything else (`EINVAL`, `ENOEXEC`, `EBADF`, …) is deterministic —
/// retrying cannot help.
pub fn is_transient(e: Errno) -> bool {
    matches!(e, Errno::Enomem | Errno::Eagain | Errno::Emfile)
}

/// How many times to retry and how long to back off between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 means no retry.
    pub max_attempts: u32,
    /// Cycles charged before the first retry; doubles per attempt.
    pub base_backoff_cycles: u64,
    /// Deterministic backoff jitter. `None` (the default) reproduces the
    /// exact exponential schedule, byte-identically. `Some(seed)` adds a
    /// SplitMix64-derived offset in `[0, base_backoff_cycles)` to every
    /// wait, keyed on `(seed, attempt)` — two cells retrying the same
    /// contended resource desynchronise instead of colliding again on
    /// the next doubling, and a fixed seed replays the same waits.
    pub jitter_seed: Option<u64>,
    /// Hard ceiling on *cumulative* backoff cycles. Once the next wait
    /// would push past it, the retry loop returns the last transient
    /// error instead of charging more — a deterministic timeout, so a
    /// permanently contended resource yields a clean `Err` rather than
    /// an unbounded spin. `u64::MAX` (the default) disables it.
    pub total_backoff_cap: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_cycles: 1_000,
            jitter_seed: None,
            total_backoff_cap: u64::MAX,
        }
    }
}

/// Widest doubling applied to the base backoff: beyond this the wait is
/// flat. Keeps `base << attempt` from wrapping u64 for large
/// `max_attempts` (a 32-bit shift of a large base already overflowed).
const MAX_BACKOFF_DOUBLINGS: u32 = 20;

/// Extra backoff multiplier while the swap device reports thrashing: a
/// refault storm means the machine is re-reading what it just evicted,
/// and an eager retry only deepens it.
pub const THRASH_BACKOFF_FACTOR: u64 = 4;

impl RetryPolicy {
    /// Backoff charged after failed attempt number `attempt` (1-based):
    /// exponential in the attempt, saturating at
    /// `base << MAX_BACKOFF_DOUBLINGS` and never overflowing.
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        let doublings = (attempt - 1).min(MAX_BACKOFF_DOUBLINGS);
        self.base_backoff_cycles.saturating_mul(1u64 << doublings)
    }

    /// Deterministic jitter added to the wait after failed attempt
    /// number `attempt`: zero when [`RetryPolicy::jitter_seed`] is
    /// `None`, otherwise a SplitMix64 hash of `(seed, attempt)` reduced
    /// into `[0, base_backoff_cycles)`. Same seed, same attempt → same
    /// jitter, always.
    pub fn jitter_for(&self, attempt: u32) -> u64 {
        let Some(seed) = self.jitter_seed else { return 0 };
        if self.base_backoff_cycles == 0 {
            return 0;
        }
        let mut z = seed.wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % self.base_backoff_cycles
    }
}

/// What a retried operation did, beyond its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts actually made (1 = first try succeeded).
    pub attempts: u32,
    /// Total backoff cycles charged.
    pub backoff_cycles: u64,
}

/// Runs `op` up to `policy.max_attempts` times, backing off between
/// attempts. Non-transient errors (and exhaustion) return immediately
/// with the last error; the kernel is clean either way because the
/// creation APIs roll back on failure.
pub fn retry_with_backoff<T>(
    kernel: &mut Kernel,
    policy: RetryPolicy,
    mut op: impl FnMut(&mut Kernel) -> KResult<T>,
) -> (KResult<T>, RetryStats) {
    let mut stats = RetryStats {
        attempts: 0,
        backoff_cycles: 0,
    };
    loop {
        stats.attempts += 1;
        match op(kernel) {
            Ok(v) => return (Ok(v), stats),
            Err(e) if is_transient(e) && stats.attempts < policy.max_attempts => {
                // If the failure is memory pressure that reclaim could
                // relieve, spend the wait shrinking caches instead of
                // just sleeping. Free (zero cycles, zero effect) when no
                // shrinker is registered or there is no pressure.
                if e == Errno::Enomem {
                    kernel.balance_pressure();
                }
                // Exponential backoff with optional deterministic
                // jitter, charged as burnt CPU time; a thrashing swap
                // tier stretches the wait so the refault storm can
                // drain before the next attempt.
                let mut wait = policy
                    .backoff_for(stats.attempts)
                    .saturating_add(policy.jitter_for(stats.attempts));
                if kernel.swap_thrashing() {
                    wait = wait.saturating_mul(THRASH_BACKOFF_FACTOR);
                }
                // Budget exhausted: a deterministic timeout. The op is
                // transactional, so the kernel is clean — the caller
                // gets the transient error instead of an endless spin.
                if stats.backoff_cycles.saturating_add(wait) > policy.total_backoff_cap {
                    return (Err(e), stats);
                }
                kernel.cycles.charge(wait);
                stats.backoff_cycles += wait;
            }
            Err(e) => return (Err(e), stats),
        }
    }
}

/// [`crate::fork::fork`] with retry: the paper's "fork under pressure"
/// coping pattern, made explicit.
pub fn fork_with_retry(
    kernel: &mut Kernel,
    parent: fpr_kernel::Pid,
    policy: RetryPolicy,
) -> (KResult<fpr_kernel::Pid>, RetryStats) {
    retry_with_backoff(kernel, policy, |k| crate::fork::fork(k, parent))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_kernel::Pid;
    use fpr_mem::{Prot, Share};

    fn boot() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    #[test]
    fn first_try_success_makes_one_attempt() {
        let (mut k, p) = boot();
        let (r, stats) = fork_with_retry(&mut k, p, RetryPolicy::default());
        assert!(r.is_ok());
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.backoff_cycles, 0);
    }

    #[test]
    fn nontransient_error_is_not_retried() {
        let (mut k, _) = boot();
        let mut calls = 0;
        let (r, stats) = retry_with_backoff(&mut k, RetryPolicy::default(), |_| {
            calls += 1;
            Err::<(), Errno>(Errno::Einval)
        });
        assert_eq!(r, Err(Errno::Einval));
        assert_eq!(calls, 1);
        assert_eq!(stats.attempts, 1);
    }

    #[test]
    fn transient_error_retried_until_exhaustion_with_growing_backoff() {
        let (mut k, _) = boot();
        let before = k.cycles.total();
        let (r, stats) = retry_with_backoff(
            &mut k,
            RetryPolicy {
                max_attempts: 4,
                base_backoff_cycles: 100,
                ..RetryPolicy::default()
            },
            |_| Err::<(), Errno>(Errno::Enomem),
        );
        assert_eq!(r, Err(Errno::Enomem));
        assert_eq!(stats.attempts, 4);
        // 100 + 200 + 400 (no backoff after the final attempt).
        assert_eq!(stats.backoff_cycles, 700);
        assert_eq!(k.cycles.total() - before, 700);
    }

    #[test]
    fn huge_max_attempts_saturates_backoff_without_overflow() {
        // Regression: `base << attempt` wrapped u64 once attempts out-ran
        // the word size, making late backoffs tiny (or zero).
        let (mut k, _) = boot();
        let policy = RetryPolicy {
            max_attempts: 200,
            base_backoff_cycles: 1 << 30,
            ..RetryPolicy::default()
        };
        let mut waits = Vec::new();
        let mut last_total = k.cycles.total();
        let (r, stats) = retry_with_backoff(&mut k, policy, |k| {
            waits.push(k.cycles.total() - last_total);
            last_total = k.cycles.total();
            Err::<(), Errno>(Errno::Eagain)
        });
        assert_eq!(r, Err(Errno::Eagain));
        assert_eq!(stats.attempts, 200);
        // Monotone non-decreasing, and every late wait sits at the
        // saturation plateau instead of wrapping back down.
        assert!(waits.windows(2).all(|w| w[0] <= w[1]), "never shrinks");
        assert_eq!(*waits.last().unwrap(), (1u64 << 30) << 20, "flat at the cap");
        assert_eq!(policy.backoff_for(200), policy.backoff_for(100));
        assert!(policy.backoff_for(200) >= policy.backoff_for(1));
        // A base big enough to overflow at the cap saturates cleanly.
        let big = RetryPolicy {
            max_attempts: 3,
            base_backoff_cycles: u64::MAX / 2,
            ..RetryPolicy::default()
        };
        assert_eq!(big.backoff_for(40), u64::MAX);
    }

    #[test]
    fn enomem_retry_reclaims_pool_frames_and_succeeds() {
        use crate::fastpath::WarmPool;
        use fpr_exec::{Image, ImageCache, ImageRegistry};
        use fpr_kernel::{MachineConfig, ShrinkerHandle};
        use std::sync::{Arc, Mutex};

        let mut k = Kernel::new(MachineConfig {
            frames: 64,
            ..MachineConfig::default()
        });
        let init = k.create_init("init").unwrap();
        let mut reg = ImageRegistry::new();
        reg.register("/bin/tool", Image::small("tool"));
        let mut cache = ImageCache::new();
        let pool = Arc::new(Mutex::new(WarmPool::new(init)));
        pool.lock().unwrap()
            .prefill(&mut k, &reg, &mut cache, "/bin/tool", 2)
            .unwrap();
        k.register_shrinker(&(pool.clone() as ShrinkerHandle));

        // Hog free frames to just below the low watermark (each parked
        // child has only a frame or two of private memory to give back).
        let low = k.phys.watermarks().low;
        let mut hog = Vec::new();
        while k.phys.free_frames() >= low {
            hog.push(k.phys.alloc_zeroed(&mut k.cycles).unwrap());
        }
        let high = k.phys.watermarks().high;
        assert!(k.phys.free_frames() < high);

        // An op that needs headroom up to the high watermark: attempt 1
        // fails, the backoff runs balance_pressure (draining the pool),
        // attempt 2 finds the frames.
        let (r, stats) = retry_with_backoff(&mut k, RetryPolicy::default(), |k| {
            if k.phys.free_frames() < k.phys.watermarks().high {
                Err(Errno::Enomem)
            } else {
                Ok(())
            }
        });
        assert!(r.is_ok(), "reclaimed pool frames let the retry succeed: {r:?}");
        assert_eq!(stats.attempts, 2);
        assert!(pool.lock().unwrap().reclaims() > 0, "the wait was spent reclaiming");
        assert!(k.reclaim_stats().frames_reclaimed > 0);
        for f in hog {
            k.phys.dec_ref(f, &mut k.cycles).unwrap();
        }
        k.check_invariants().unwrap();
    }

    #[test]
    fn enomem_inside_populate_direct_reclaims_and_succeeds() {
        use crate::fastpath::WarmPool;
        use fpr_exec::{Image, ImageCache, ImageRegistry};
        use fpr_kernel::{MachineConfig, ShrinkerHandle};
        use std::sync::{Arc, Mutex};

        let mut k = Kernel::new(MachineConfig {
            frames: 64,
            ..MachineConfig::default()
        });
        let init = k.create_init("init").unwrap();
        let mut reg = ImageRegistry::new();
        reg.register("/bin/tool", Image::small("tool"));
        let mut cache = ImageCache::new();
        let pool = Arc::new(Mutex::new(WarmPool::new(init)));
        pool.lock().unwrap()
            .prefill(&mut k, &reg, &mut cache, "/bin/tool", 2)
            .unwrap();
        k.register_shrinker(&(pool.clone() as ShrinkerHandle));

        // Map while commit headroom exists, then hog the free frames so
        // the populate's frame allocations fail without reclaim.
        let base = k
            .mmap_anon(init, 4, fpr_mem::Prot::RW, fpr_mem::Share::Private)
            .unwrap();
        let mut hog = Vec::new();
        while k.phys.free_frames() > 2 {
            hog.push(k.phys.alloc_zeroed(&mut k.cycles).unwrap());
        }
        assert_eq!(k.populate(init, base, 4), Ok(()), "direct reclaim saved it");
        assert!(pool.lock().unwrap().reclaims() > 0);
        assert!(k.reclaim_stats().frames_reclaimed > 0);
        for f in hog {
            k.phys.dec_ref(f, &mut k.cycles).unwrap();
        }
        k.check_invariants().unwrap();
    }

    #[test]
    fn thrashing_swap_stretches_backoff() {
        use fpr_kernel::MachineConfig;
        // A 16-slot device whose whole population is evicted and
        // immediately faulted back: every swap-in is a refault, so the
        // thrash signal asserts and backoff quadruples.
        let mut k = Kernel::new(MachineConfig {
            frames: 256,
            swap_slots: 16,
            ..MachineConfig::default()
        });
        let init = k.create_init("init").unwrap();
        let base = k.mmap_anon(init, 8, Prot::RW, Share::Private).unwrap();
        for i in 0..8 {
            k.write_mem(init, fpr_mem::Vpn(base.0 + i), i).unwrap();
        }
        assert_eq!(k.swap_out_pass(8), Ok(8));
        for i in 0..8 {
            assert_eq!(k.read_mem(init, fpr_mem::Vpn(base.0 + i)), Ok(i));
        }
        assert!(k.swap_thrashing(), "all-refault window asserts thrash");
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff_cycles: 100,
            ..RetryPolicy::default()
        };
        let (r, stats) = retry_with_backoff(&mut k, policy, |_| Err::<(), Errno>(Errno::Eagain));
        assert_eq!(r, Err(Errno::Eagain));
        assert_eq!(
            stats.backoff_cycles,
            100 * THRASH_BACKOFF_FACTOR,
            "thrash multiplies the base wait"
        );
    }

    #[test]
    fn jittered_backoff_is_reproducible_and_bounded() {
        let run = |seed: Option<u64>| {
            let (mut k, _) = boot();
            let policy = RetryPolicy {
                max_attempts: 6,
                base_backoff_cycles: 100,
                jitter_seed: seed,
                ..RetryPolicy::default()
            };
            let (r, stats) = retry_with_backoff(&mut k, policy, |_| Err::<(), Errno>(Errno::Eagain));
            assert_eq!(r, Err(Errno::Eagain));
            (stats.backoff_cycles, k.cycles.total())
        };
        let (plain, _) = run(None);
        assert_eq!(plain, 100 + 200 + 400 + 800 + 1600, "unjittered schedule is exact");
        let (a, cyc_a) = run(Some(0xE17));
        let (b, cyc_b) = run(Some(0xE17));
        assert_eq!(a, b, "a fixed seed replays the same waits");
        assert_eq!(cyc_a, cyc_b, "…and charges the same cycles");
        // Jitter only ever adds, and each addition is below the base.
        assert!(a >= plain && a < plain + 5 * 100, "jitter bounded by [0, base) per wait");
        let (c, _) = run(Some(0xF00D));
        assert_ne!(a, c, "different seeds desynchronise the schedule");
        // Per-attempt determinism is a policy property, not a loop
        // accident.
        let p = RetryPolicy {
            jitter_seed: Some(7),
            ..RetryPolicy::default()
        };
        for attempt in 1..40 {
            assert_eq!(p.jitter_for(attempt), p.jitter_for(attempt));
            assert!(p.jitter_for(attempt) < p.base_backoff_cycles);
        }
        assert_eq!(
            RetryPolicy::default().jitter_for(3),
            0,
            "no seed, no jitter: the legacy schedule is untouched"
        );
    }

    #[test]
    fn jitter_rides_on_top_of_the_saturation_plateau() {
        // The 2^20 doubling cap must hold with jitter enabled: late waits
        // sit at `base << 20` plus a sub-base offset, never wrapping.
        let policy = RetryPolicy {
            max_attempts: 60,
            base_backoff_cycles: 1 << 30,
            jitter_seed: Some(42),
            ..RetryPolicy::default()
        };
        let plateau = (1u64 << 30) << 20;
        assert_eq!(policy.backoff_for(200), plateau, "cap unchanged by jitter");
        let (mut k, _) = boot();
        let mut last_total = k.cycles.total();
        let mut waits = Vec::new();
        let (_, stats) = retry_with_backoff(&mut k, policy, |k| {
            waits.push(k.cycles.total() - last_total);
            last_total = k.cycles.total();
            Err::<(), Errno>(Errno::Eagain)
        });
        assert_eq!(stats.attempts, 60);
        for (i, w) in waits.iter().enumerate().skip(25) {
            assert!(
                *w >= plateau && *w < plateau + (1u64 << 30),
                "attempt {i}: wait {w} off the plateau"
            );
        }
    }

    #[test]
    fn permanent_contention_times_out_cleanly_at_the_backoff_cap() {
        // A permanently contended resource (every attempt EAGAIN) with an
        // effectively unbounded attempt budget: the cycle cap, not the
        // attempt count, must end the loop — finitely, deterministically,
        // and with the transient error surfaced to the caller.
        let (mut k, _) = boot();
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff_cycles: 100,
            total_backoff_cap: 10_000,
            ..RetryPolicy::default()
        };
        let before = k.cycles.total();
        let mut calls = 0u64;
        let (r, stats) = retry_with_backoff(&mut k, policy, |_| {
            calls += 1;
            assert!(calls < 1_000, "the cap failed to bound the spin");
            Err::<(), Errno>(Errno::Eagain)
        });
        assert_eq!(r, Err(Errno::Eagain), "timeout surfaces the transient error");
        // 100+200+400+800+1600+3200 = 6300; the next doubling (6400)
        // would cross 10_000, so the loop stops after the 7th attempt.
        assert_eq!(stats.attempts, 7);
        assert_eq!(stats.backoff_cycles, 6_300);
        assert!(stats.backoff_cycles <= policy.total_backoff_cap);
        assert_eq!(
            k.cycles.total() - before,
            stats.backoff_cycles,
            "no cycles charged beyond the cap"
        );
        k.check_invariants().unwrap();
    }

    #[test]
    fn succeeds_once_pressure_clears() {
        let (mut k, p) = boot();
        // Eat almost all commit so fork's COW charge fails, then release
        // it on the way to the third attempt — modelling another process
        // exiting.
        k.commit
            .set_policy(fpr_mem::OvercommitPolicy::Never { ratio: 0.5 });
        let base = k.mmap_anon(p, 8, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 8).unwrap();
        let headroom = k.commit.limit().unwrap() - k.commit.committed();
        let hog = k.mmap_anon(p, headroom, Prot::RW, Share::Private).unwrap();
        let mut attempt = 0;
        let (r, stats) = retry_with_backoff(&mut k, RetryPolicy::default(), |k| {
            attempt += 1;
            if attempt == 3 {
                k.munmap(p, hog, headroom).unwrap();
            }
            crate::fork::fork(k, p)
        });
        assert!(r.is_ok(), "fork succeeded after pressure cleared: {r:?}");
        assert_eq!(stats.attempts, 3);
        assert!(stats.backoff_cycles > 0);
    }
}
