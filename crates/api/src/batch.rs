//! Batch-friendly creation entry points for server-style callers.
//!
//! A request-serving front end (the E15 service experiment, a zygote, a
//! FaaS dispatcher) creates children in a loop, one per request or one
//! batch per maintenance tick. The primitive APIs force two calls per
//! request (`fork` then `execve`, with an orphaned half-child to clean up
//! if the second fails) or one call per pool child. This module packages
//! the loop bodies:
//!
//! * [`fork_exec`] / [`vfork_exec`] — fork-family creation and exec as
//!   one transactional call: an exec failure reaps the half-made child
//!   before returning, so the caller never sees a zombie it did not ask
//!   for.
//! * [`spawn_fast_batch`] — N pool-backed spawns as one all-or-nothing
//!   batch with per-child ASLR seeds; a mid-batch failure tears down the
//!   children already created.
//!
//! Cycle cost is exactly the sum of the wrapped primitives — these are
//! packaging, not a new fast path.

use crate::fastpath::{spawn_fast, WarmPool};
use crate::fork::fork_from_thread;
use crate::spawn::{FileAction, SpawnAttrs};
use crate::vfork::vfork;
use fpr_exec::{execve, AslrConfig, ImageCache, ImageRegistry};
use fpr_kernel::{KResult, Kernel, Pid};
use fpr_mem::ForkMode;

/// Reaps a child that failed mid-creation: forced exit + wait, so the
/// caller's process table is exactly as it was before the attempt.
fn reap_failed(kernel: &mut Kernel, parent: Pid, child: Pid) {
    let _ = kernel.exit(child, 127);
    let _ = kernel.waitpid(parent, Some(child));
}

/// Forks `parent` with `mode` and execs `path` in the child — the
/// fork-family request-serving path as a single call.
///
/// On exec failure the half-made child is reaped before the error
/// returns: the kernel looks as if the call never happened (modulo
/// cycles), which is what a batch loop needs to keep iterating.
pub fn fork_exec(
    kernel: &mut Kernel,
    parent: Pid,
    registry: &ImageRegistry,
    path: &str,
    mode: ForkMode,
    aslr: AslrConfig,
    aslr_seed: u64,
) -> KResult<Pid> {
    let tid = kernel.process(parent)?.main_tid();
    let (child, _) = fork_from_thread(kernel, parent, tid, mode)?;
    match execve(kernel, child, registry, path, aslr, aslr_seed) {
        Ok(()) => Ok(child),
        Err(e) => {
            reap_failed(kernel, parent, child);
            Err(e)
        }
    }
}

/// vforks `parent` and execs `path` in the child — the classic cheap
/// create-and-exec idiom as one call.
///
/// The parent is suspended only for the duration of this function: exec
/// (or the cleanup exit on failure) releases it before we return.
pub fn vfork_exec(
    kernel: &mut Kernel,
    parent: Pid,
    registry: &ImageRegistry,
    path: &str,
    aslr: AslrConfig,
    aslr_seed: u64,
) -> KResult<Pid> {
    let child = vfork(kernel, parent)?;
    match execve(kernel, child, registry, path, aslr, aslr_seed) {
        Ok(()) => Ok(child),
        Err(e) => {
            reap_failed(kernel, parent, child);
            Err(e)
        }
    }
}

/// Spawns one child of `path` per seed in `aslr_seeds` through the fast
/// path ([`spawn_fast`]), as an all-or-nothing batch: if the k-th spawn
/// fails, the k−1 children already created are reaped and the error is
/// returned. Distinct per-child seeds keep the ASLR story intact —
/// batched siblings share no more layout bits than independent spawns.
#[allow(clippy::too_many_arguments)]
pub fn spawn_fast_batch(
    kernel: &mut Kernel,
    parent: Pid,
    registry: &ImageRegistry,
    path: &str,
    actions: &[FileAction],
    attrs: &SpawnAttrs,
    aslr: AslrConfig,
    aslr_seeds: &[u64],
    cache: &mut ImageCache,
    pool: &mut WarmPool,
) -> KResult<Vec<Pid>> {
    let mut children = Vec::with_capacity(aslr_seeds.len());
    for &seed in aslr_seeds {
        match spawn_fast(
            kernel, parent, registry, path, actions, attrs, aslr, seed, cache, pool,
        ) {
            Ok(pid) => children.push(pid),
            Err(e) => {
                for pid in children.into_iter().rev() {
                    reap_failed(kernel, parent, pid);
                }
                return Err(e);
            }
        }
    }
    Ok(children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_exec::Image;
    use fpr_kernel::{Errno, Resource, Rlimit};

    fn world() -> (Kernel, Pid, ImageRegistry) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        let mut reg = ImageRegistry::new();
        reg.register("/bin/tool", Image::small("tool"));
        (k, init, reg)
    }

    #[test]
    fn fork_exec_makes_an_execed_child_in_one_call() {
        let (mut k, init, reg) = world();
        for mode in [ForkMode::Cow, ForkMode::OnDemand] {
            let c = fork_exec(
                &mut k,
                init,
                &reg,
                "/bin/tool",
                mode,
                AslrConfig::default(),
                7,
            )
            .unwrap();
            assert_eq!(k.process(c).unwrap().name, "tool");
            k.exit(c, 0).unwrap();
            k.waitpid(init, Some(c)).unwrap();
        }
        k.check_invariants().unwrap();
    }

    #[test]
    fn fork_exec_missing_binary_leaves_no_child_behind() {
        let (mut k, init, reg) = world();
        let before = k.process_count();
        let r = fork_exec(
            &mut k,
            init,
            &reg,
            "/bin/missing",
            ForkMode::OnDemand,
            AslrConfig::default(),
            7,
        );
        assert_eq!(r, Err(Errno::Enoexec));
        assert_eq!(k.process_count(), before, "half-made child reaped");
        k.check_invariants().unwrap();
    }

    #[test]
    fn vfork_exec_resumes_the_parent() {
        let (mut k, init, reg) = world();
        let c = vfork_exec(&mut k, init, &reg, "/bin/tool", AslrConfig::default(), 9).unwrap();
        assert_eq!(k.process(c).unwrap().name, "tool");
        // The parent is runnable again: a second creation works.
        let d = vfork_exec(&mut k, init, &reg, "/bin/tool", AslrConfig::default(), 10).unwrap();
        for pid in [c, d] {
            k.exit(pid, 0).unwrap();
            k.waitpid(init, Some(pid)).unwrap();
        }
        k.check_invariants().unwrap();
    }

    #[test]
    fn vfork_exec_failure_reaps_and_resumes() {
        let (mut k, init, reg) = world();
        let before = k.process_count();
        let r = vfork_exec(&mut k, init, &reg, "/bin/nope", AslrConfig::default(), 9);
        assert_eq!(r, Err(Errno::Enoexec));
        assert_eq!(k.process_count(), before);
        // Parent not left suspended by the dead vfork child.
        let c = vfork_exec(&mut k, init, &reg, "/bin/tool", AslrConfig::default(), 11).unwrap();
        k.exit(c, 0).unwrap();
        k.waitpid(init, Some(c)).unwrap();
        k.check_invariants().unwrap();
    }

    #[test]
    fn spawn_fast_batch_creates_one_child_per_seed() {
        let (mut k, init, reg) = world();
        let mut cache = fpr_exec::ImageCache::new();
        let mut pool = WarmPool::new(init);
        pool.prefill(&mut k, &reg, &mut cache, "/bin/tool", 2)
            .unwrap();
        let kids = spawn_fast_batch(
            &mut k,
            init,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            &[101, 102, 103],
            &mut cache,
            &mut pool,
        )
        .unwrap();
        assert_eq!(kids.len(), 3);
        assert_eq!(pool.checkouts(), 2, "two pool hits");
        assert_eq!(pool.misses(), 1, "third falls back to classic");
        // Distinct layouts per batch member.
        let l0 = k.process(kids[0]).unwrap().layout;
        let l1 = k.process(kids[1]).unwrap().layout;
        assert_ne!(l0, l1);
        for pid in kids {
            k.exit(pid, 0).unwrap();
            k.waitpid(init, Some(pid)).unwrap();
        }
        k.check_invariants().unwrap();
    }

    #[test]
    fn spawn_fast_batch_is_all_or_nothing() {
        let (mut k, init, reg) = world();
        let mut cache = fpr_exec::ImageCache::new();
        let mut pool = WarmPool::new(init);
        // Cap the parent at 3 children: a 4-seed batch must fail and undo.
        k.process_mut(init)
            .unwrap()
            .rlimits
            .set(Resource::Nproc, Rlimit::both(4)); // init + 3 children
        let before = k.process_count();
        let r = spawn_fast_batch(
            &mut k,
            init,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            &[1, 2, 3, 4],
            &mut cache,
            &mut pool,
        );
        assert_eq!(r, Err(Errno::Eagain));
        assert_eq!(k.process_count(), before, "partial batch torn down");
        k.check_invariants().unwrap();
    }
}
