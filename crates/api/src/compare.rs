//! The API capability matrix (experiment E7).
//!
//! For each class of process state, records how each creation API can
//! control it in the child: implicitly (copied whether you want it or
//! not), explicitly (expressible on request), or not at all. The matrix
//! quantifies the paper's qualitative comparison in §5: fork covers
//! everything *implicitly* (and pays for it), posix_spawn has a closed
//! vocabulary with gaps, and the cross-process API covers everything
//! explicitly.


/// The five creation APIs under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Api {
    /// `fork()` (+`exec` for a new image).
    Fork,
    /// `vfork()` (+`exec`).
    Vfork,
    /// `clone()` with flags.
    Clone,
    /// `posix_spawn()`.
    PosixSpawn,
    /// The cross-process builder.
    CrossProcess,
}

/// All APIs in presentation order.
pub const ALL_APIS: [Api; 5] = [
    Api::Fork,
    Api::Vfork,
    Api::Clone,
    Api::PosixSpawn,
    Api::CrossProcess,
];

impl Api {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Api::Fork => "fork",
            Api::Vfork => "vfork",
            Api::Clone => "clone",
            Api::PosixSpawn => "posix_spawn",
            Api::CrossProcess => "xproc",
        }
    }

    /// Asymptotic creation cost in the size of the parent.
    pub fn cost_class(self) -> CostClass {
        match self {
            Api::Fork => CostClass::OParent,
            Api::Clone => CostClass::OParent, // default flags = fork
            Api::Vfork | Api::PosixSpawn | Api::CrossProcess => CostClass::OImage,
        }
    }
}

/// Asymptotic creation cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// Grows with the parent's memory (page-table/VMA duplication).
    OParent,
    /// Depends only on the new image and explicit grants.
    OImage,
}

/// Classes of child state a creation API may need to control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Capability {
    /// Child runs a different program image.
    NewImage,
    /// Child runs the same code/data as the parent (checkpoint-style).
    MemorySnapshot,
    /// Select which descriptors the child gets.
    FdSelection,
    /// Redirect stdio / plumb pipes.
    StdioRedirect,
    /// Set the child's signal mask.
    SigMask,
    /// Reset signal dispositions.
    SigDefaults,
    /// Run with reduced credentials (uid/caps).
    ReducedPrivilege,
    /// Per-child resource limits.
    RlimitControl,
    /// Pre-populate child memory from the parent.
    MemorySetup,
    /// Fresh ASLR layout for the child.
    FreshAslr,
    /// Child safely created from a multithreaded parent.
    ThreadSafe,
    /// Composes with user-space buffered I/O (no duplicated output).
    StdioCompose,
    /// Creation cost independent of parent footprint.
    FlatCost,
    /// Error reported cleanly in the parent (no in-child failure limbo).
    CleanErrors,
}

/// All capability rows in presentation order.
pub const ALL_CAPABILITIES: [Capability; 14] = [
    Capability::NewImage,
    Capability::MemorySnapshot,
    Capability::FdSelection,
    Capability::StdioRedirect,
    Capability::SigMask,
    Capability::SigDefaults,
    Capability::ReducedPrivilege,
    Capability::RlimitControl,
    Capability::MemorySetup,
    Capability::FreshAslr,
    Capability::ThreadSafe,
    Capability::StdioCompose,
    Capability::FlatCost,
    Capability::CleanErrors,
];

impl Capability {
    /// Row label.
    pub fn name(self) -> &'static str {
        match self {
            Capability::NewImage => "new image",
            Capability::MemorySnapshot => "memory snapshot",
            Capability::FdSelection => "fd selection",
            Capability::StdioRedirect => "stdio redirect",
            Capability::SigMask => "signal mask",
            Capability::SigDefaults => "signal defaults",
            Capability::ReducedPrivilege => "reduced privilege",
            Capability::RlimitControl => "rlimit control",
            Capability::MemorySetup => "memory setup",
            Capability::FreshAslr => "fresh ASLR",
            Capability::ThreadSafe => "thread safe",
            Capability::StdioCompose => "stdio composes",
            Capability::FlatCost => "flat cost",
            Capability::CleanErrors => "clean errors",
        }
    }
}

/// How an API provides a capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// Happens by default (whether wanted or not); arbitrary code can run
    /// between fork and exec, so anything is *possible* — at the price of
    /// copying first.
    Implicit,
    /// Expressible through the API's explicit vocabulary.
    Explicit,
    /// Not expressible.
    No,
}

/// The matrix entry for (`api`, `cap`).
pub fn supports(api: Api, cap: Capability) -> Support {
    use Api::*;
    use Capability::*;
    use Support::*;
    match (api, cap) {
        // fork: everything implicit (run code before exec), but none of
        // the safety/perf rows hold.
        (Fork, ThreadSafe) | (Fork, StdioCompose) | (Fork, FlatCost) => No,
        (Fork, FreshAslr) => No,   // children share the parent's layout
        (Fork, CleanErrors) => No, // exec failures surface in the child
        (Fork, _) => Implicit,

        // vfork: like fork minus the snapshot (memory is shared, not
        // copied) and even less safe; flat cost is its one virtue.
        (Vfork, MemorySnapshot) => No,
        (Vfork, ThreadSafe) | (Vfork, StdioCompose) => No,
        (Vfork, FreshAslr) | (Vfork, CleanErrors) => No,
        (Vfork, FlatCost) => Explicit,
        (Vfork, _) => Implicit,

        // clone: fork's semantics with flags; flags make sharing explicit
        // but none of the hazards go away.
        (Clone, ThreadSafe) | (Clone, StdioCompose) | (Clone, FlatCost) => No,
        (Clone, FreshAslr) | (Clone, CleanErrors) => No,
        (Clone, FdSelection) | (Clone, MemorySnapshot) => Explicit,
        (Clone, _) => Implicit,

        // posix_spawn: the closed world. File actions and sig attrs are
        // explicit; snapshotting, memory setup, privilege reduction and
        // rlimits are outside the vocabulary (POSIX standard form).
        (PosixSpawn, NewImage) | (PosixSpawn, StdioRedirect) | (PosixSpawn, FdSelection) => {
            Explicit
        }
        (PosixSpawn, SigMask) | (PosixSpawn, SigDefaults) => Explicit,
        (PosixSpawn, ThreadSafe) | (PosixSpawn, StdioCompose) => Explicit,
        (PosixSpawn, FlatCost) | (PosixSpawn, FreshAslr) | (PosixSpawn, CleanErrors) => Explicit,
        (PosixSpawn, MemorySnapshot)
        | (PosixSpawn, MemorySetup)
        | (PosixSpawn, ReducedPrivilege)
        | (PosixSpawn, RlimitControl) => No,

        // cross-process: everything explicit except the one thing it
        // refuses by design — an implicit whole-parent snapshot (use
        // explicit memory grants instead).
        (CrossProcess, MemorySnapshot) => No,
        (CrossProcess, _) => Explicit,
    }
}

/// Number of capabilities an API covers (implicit or explicit).
pub fn coverage(api: Api) -> usize {
    ALL_CAPABILITIES
        .iter()
        .filter(|c| supports(api, **c) != Support::No)
        .count()
}

/// Renders the matrix as aligned text rows (used by `tab_api_matrix`).
pub fn render_matrix() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<18}", "capability"));
    for api in ALL_APIS {
        out.push_str(&format!("{:>13}", api.name()));
    }
    out.push('\n');
    for cap in ALL_CAPABILITIES {
        out.push_str(&format!("{:<18}", cap.name()));
        for api in ALL_APIS {
            let s = match supports(api, cap) {
                Support::Implicit => "implicit",
                Support::Explicit => "explicit",
                Support::No => "-",
            };
            out.push_str(&format!("{:>13}", s));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<18}", "coverage"));
    for api in ALL_APIS {
        out.push_str(&format!("{:>13}", format!("{}/14", coverage(api))));
    }
    out.push('\n');
    out.push_str(&format!("{:<18}", "creation cost"));
    for api in ALL_APIS {
        let c = match api.cost_class() {
            CostClass::OParent => "O(parent)",
            CostClass::OImage => "O(image)",
        };
        out.push_str(&format!("{:>13}", c));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_is_implicit_everything_with_known_gaps() {
        assert_eq!(
            supports(Api::Fork, Capability::MemorySnapshot),
            Support::Implicit
        );
        assert_eq!(supports(Api::Fork, Capability::ThreadSafe), Support::No);
        assert_eq!(supports(Api::Fork, Capability::FlatCost), Support::No);
        assert_eq!(supports(Api::Fork, Capability::FreshAslr), Support::No);
    }

    #[test]
    fn posix_spawn_closed_world_gaps() {
        assert_eq!(
            supports(Api::PosixSpawn, Capability::MemorySetup),
            Support::No
        );
        assert_eq!(
            supports(Api::PosixSpawn, Capability::ReducedPrivilege),
            Support::No
        );
        assert_eq!(
            supports(Api::PosixSpawn, Capability::StdioRedirect),
            Support::Explicit
        );
    }

    #[test]
    fn cross_process_has_highest_coverage() {
        let x = coverage(Api::CrossProcess);
        for api in [Api::Fork, Api::Vfork, Api::Clone, Api::PosixSpawn] {
            assert!(x >= coverage(api), "{:?} out-covers xproc", api);
        }
        assert_eq!(x, 13, "everything except implicit snapshot");
    }

    #[test]
    fn cost_classes_match_the_figure() {
        assert_eq!(Api::Fork.cost_class(), CostClass::OParent);
        assert_eq!(Api::PosixSpawn.cost_class(), CostClass::OImage);
        assert_eq!(Api::CrossProcess.cost_class(), CostClass::OImage);
        assert_eq!(Api::Vfork.cost_class(), CostClass::OImage);
    }

    #[test]
    fn render_has_all_rows() {
        let m = render_matrix();
        for cap in ALL_CAPABILITIES {
            assert!(m.contains(cap.name()), "missing row {}", cap.name());
        }
        assert!(m.contains("coverage"));
        assert!(m.contains("O(parent)"));
    }
}
