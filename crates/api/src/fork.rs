//! `fork(2)` over the simulated kernel.
//!
//! This function is deliberately long: it has to be. Its body walks the
//! POSIX inheritance contract item by item — address space, descriptor
//! table, signal state, streams, locks, identity — and every stanza is
//! a cost fork pays that a spawn API does not. The paper's Table of
//! "what fork copies" is, in effect, this function.

use fpr_kernel::{Errno, KResult, Kernel, Pid, Tid};
use fpr_mem::ForkMode;
use fpr_trace::{metrics, sink, Phase, TraceEvent};

/// Stable label for a fork mode, used in trace-event arguments.
pub(crate) fn mode_name(mode: ForkMode) -> &'static str {
    match mode {
        ForkMode::Cow => "cow",
        ForkMode::Eager => "eager",
        ForkMode::OnDemand => "ondemand",
    }
}

/// Statistics describing the work one fork performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForkStats {
    /// Cycles charged while the fork ran.
    pub cycles: u64,
    /// Resident pages the child inherited (PTE copies).
    pub pages_inherited: u64,
    /// VMA records cloned.
    pub vmas_cloned: usize,
    /// Descriptors inherited.
    pub fds_inherited: usize,
    /// Locks copied in a state owned by threads that do not exist in the
    /// child (permanent deadlock hazards).
    pub orphaned_locks: usize,
    /// Bytes of unflushed user-stream buffers duplicated into the child.
    pub duplicated_stream_bytes: usize,
}

/// Forks `parent`, returning the child's PID.
///
/// Implements the POSIX contract: the child receives a copy-on-write
/// duplicate of the address space (including the ASLR layout — the zygote
/// hazard), a reference-taking copy of the descriptor table, the signal
/// dispositions and mask (pending cleared), duplicated user-space stream
/// buffers, and the lock table *as it was* — with locks held by other
/// threads permanently stuck. Only the calling thread exists in the child.
pub fn fork(kernel: &mut Kernel, parent: Pid) -> KResult<Pid> {
    let tid = kernel.process(parent)?.main_tid();
    fork_from_thread(kernel, parent, tid, ForkMode::Cow).map(|(pid, _)| pid)
}

/// Forks with on-demand page-table copying: the child shares the parent's
/// leaf page-table subtrees (refcounted, write-protected) instead of
/// copying every PTE, so fork costs O(VMAs + subtrees) rather than
/// O(resident pages). The first write, unmap or reprotect touching a
/// shared subtree privatises that one 512-entry node — the page-copy
/// *and* the PTE-copy work both move into the fault storm.
pub fn fork_on_demand(kernel: &mut Kernel, parent: Pid) -> KResult<Pid> {
    let tid = kernel.process(parent)?.main_tid();
    fork_from_thread(kernel, parent, tid, ForkMode::OnDemand).map(|(pid, _)| pid)
}

/// Forks with explicit calling thread and copy mode, returning the child
/// and the work statistics (the instrumented entry point used by the
/// benchmarks).
pub fn fork_from_thread(
    kernel: &mut Kernel,
    parent: Pid,
    calling_tid: Tid,
    mode: ForkMode,
) -> KResult<(Pid, ForkStats)> {
    let start = kernel.cycles.total();
    if sink::is_active() {
        sink::emit(
            TraceEvent::new("fork", "api", Phase::Begin, start)
                .arg("parent", parent.0 as u64)
                .arg("mode", mode_name(mode)),
        );
    }
    let r = fork_from_thread_inner(kernel, parent, calling_tid, mode);
    let end = kernel.cycles.total();
    metrics::observe("api.fork_cycles", end - start);
    if sink::is_active() {
        sink::counter("frames_used", end, kernel.phys.used_frames());
        sink::span_end("fork", end);
    }
    r
}

fn fork_from_thread_inner(
    kernel: &mut Kernel,
    parent: Pid,
    calling_tid: Tid,
    mode: ForkMode,
) -> KResult<(Pid, ForkStats)> {
    kernel.charge_syscall();
    let cycles_before = kernel.cycles.total();
    if kernel.process(parent)?.thread(calling_tid).is_none() {
        return Err(Errno::Esrch);
    }

    // 0. pthread_atfork prepare handlers, in reverse registration order.
    //    Each covered lock is acquired by the forking thread so the
    //    snapshot cannot capture it mid-critical-section. If another
    //    thread holds one, a real fork would block here; the simulator
    //    reports EBUSY ("run the owner first").
    let prepare = kernel.process(parent)?.atfork.prepare_order();
    let mut prepare_acquired = Vec::new();
    for reg in &prepare {
        if let Some(lock) = reg.lock {
            match kernel.lock_acquire(parent, calling_tid, lock) {
                Ok(()) => prepare_acquired.push(lock),
                // Already ours (e.g. caller registered twice): fine.
                Err(Errno::Edeadlk)
                    if kernel.process(parent)?.locks.owner_of(lock) == Some(calling_tid) => {}
                Err(e) => {
                    // Undo partial prepare before reporting.
                    for l in prepare_acquired {
                        let _ = kernel.lock_release(parent, calling_tid, l);
                    }
                    return Err(e);
                }
            }
        }
        kernel
            .atfork_log
            .push((parent, reg.token, fpr_kernel::AtforkPhase::Prepare));
    }

    // 1. Identity: new PID, parent linkage, inherited cred/rlimits/cwd.
    let child = kernel.allocate_process(parent, "")?;

    // 2. Address space: O(parent) duplication. On failure the child is
    //    rolled back completely — abort_process_creation returns the PID,
    //    scheduler slot and accounting, and `clone_address_space` itself
    //    undoes any partial copy — so fork reports ENOMEM with the kernel
    //    byte-identical to before the call (the up-front failure mode of
    //    strict overcommit). The space is attached to the child
    //    immediately so later failure steps can unwind through the same
    //    abort path.
    match kernel.clone_address_space(parent, mode) {
        Ok(s) => kernel.process_mut(child)?.aspace = s,
        Err(e) => {
            for l in prepare_acquired {
                let _ = kernel.lock_release(parent, calling_tid, l);
            }
            kernel.abort_process_creation(child)?;
            return Err(e);
        }
    }
    let (pages, vmas) = {
        let c = kernel.process(child)?;
        (c.aspace.resident_pages(), c.aspace.vma_count())
    };

    // 3. Descriptor table: every entry takes a reference; offsets shared.
    //    A failure here (EMFILE, injected fault) must release the address
    //    space, COW refcounts and commit charge just attached.
    match kernel.clone_fd_table(parent) {
        Ok(f) => kernel.process_mut(child)?.fds = f,
        Err(e) => {
            for l in prepare_acquired {
                let _ = kernel.lock_release(parent, calling_tid, l);
            }
            kernel.abort_process_creation(child)?;
            return Err(e);
        }
    }

    // 4-7. The in-PCB state POSIX enumerates.
    let (name, signals, streams, locks, umask, layout, atfork, orphans, dup_bytes) = {
        let p = kernel.process(parent)?;
        let locks = p.locks.clone();
        let orphans = locks.orphaned_after_fork(calling_tid).len();
        (
            p.name.clone(),
            p.signals.fork_clone(),
            p.streams.clone(),
            locks,
            p.umask,
            p.layout, // ASLR layout inherited verbatim.
            p.atfork.clone(),
            orphans,
            p.unflushed_bytes(),
        )
    };

    let completion = atfork.completion_order();
    let (argv, envp) = {
        let p = kernel.process(parent)?;
        (p.argv.clone(), p.envp.clone())
    };
    let child_main_tid = {
        let c = kernel.process_mut(child)?;
        c.name = name;
        c.argv = argv;
        c.envp = envp;
        c.signals = signals;
        c.streams = streams;
        c.umask = umask;
        c.layout = layout;
        c.atfork = atfork;
        c.main_tid()
    };

    // 8. Locks: the calling thread's holdings transfer to the child's
    //    main thread; everything else is orphaned in place.
    {
        let c = kernel.process_mut(child)?;
        let mut transferred = Vec::new();
        let mut table = locks;
        for l in table.iter_ids() {
            if let Some(owner) = table.owner_of(l) {
                if owner == calling_tid {
                    table.set_owner(l, Some(child_main_tid));
                    transferred.push(l);
                }
            }
        }
        for l in &transferred {
            if let Some(t) = c.thread_mut(child_main_tid) {
                t.note_acquired(*l);
            }
        }
        c.locks = table;
    }

    // 9. Atfork completion: parent handlers release the prepare locks in
    //    the parent; child handlers release the child's copies (owned by
    //    its main thread after the remap above).
    for reg in &completion {
        if let Some(lock) = reg.lock {
            if prepare_acquired.contains(&lock) {
                let _ = kernel.lock_release(parent, calling_tid, lock);
            }
            if kernel.process(child)?.locks.owner_of(lock) == Some(child_main_tid) {
                let _ = kernel.lock_release(child, child_main_tid, lock);
            }
        }
        kernel
            .atfork_log
            .push((parent, reg.token, fpr_kernel::AtforkPhase::Parent));
        kernel
            .atfork_log
            .push((child, reg.token, fpr_kernel::AtforkPhase::Child));
    }

    let stats = ForkStats {
        cycles: kernel.cycles.total() - cycles_before,
        pages_inherited: pages,
        vmas_cloned: vmas,
        fds_inherited: kernel.process(child)?.fds.open_count(),
        orphaned_locks: orphans,
        duplicated_stream_bytes: dup_bytes,
    };
    Ok((child, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_kernel::{BufMode, Disposition, HandlerId, OpenFlags, Sig, STDOUT};
    use fpr_mem::{Prot, Share};

    fn boot() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    #[test]
    fn child_sees_parent_memory_snapshot() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 8, Prot::RW, Share::Private).unwrap();
        k.write_mem(p, base, 41).unwrap();
        let c = fork(&mut k, p).unwrap();
        assert_eq!(k.read_mem(c, base), Ok(41));
        k.write_mem(p, base, 42).unwrap();
        assert_eq!(
            k.read_mem(c, base),
            Ok(41),
            "post-fork parent writes invisible"
        );
        k.write_mem(c, base.add(1), 9).unwrap();
        assert_eq!(
            k.read_mem(p, base.add(1)),
            Ok(0),
            "child writes invisible to parent"
        );
    }

    #[test]
    fn fd_table_shared_descriptions() {
        let (mut k, p) = boot();
        let fd = k.open(p, "/f", OpenFlags::RDWR, true).unwrap();
        k.write_fd(p, fd, b"abcd").unwrap();
        let c = fork(&mut k, p).unwrap();
        // Shared offset: the child continues where the parent stopped.
        k.write_fd(c, fd, b"efgh").unwrap();
        let ino = k.vfs.resolve("/f", k.vfs.root()).unwrap();
        assert_eq!(k.vfs.read_at(ino, 0, 16).unwrap(), b"abcdefgh");
    }

    #[test]
    fn signals_copied_pending_cleared() {
        let (mut k, p) = boot();
        k.sigaction(p, Sig::Usr1, Disposition::Handler(HandlerId(3)))
            .unwrap();
        k.sigprocmask(p, Sig::Usr2, true).unwrap();
        k.process_mut(p).unwrap().signals.raise(Sig::Usr2); // pending (blocked)
        let c = fork(&mut k, p).unwrap();
        let cs = &k.process(c).unwrap().signals;
        assert_eq!(
            cs.disposition(Sig::Usr1),
            Disposition::Handler(HandlerId(3))
        );
        assert!(cs.is_blocked(Sig::Usr2));
        assert!(!cs.is_pending(Sig::Usr2));
    }

    #[test]
    fn only_calling_thread_survives() {
        let (mut k, p) = boot();
        k.spawn_thread(p).unwrap();
        k.spawn_thread(p).unwrap();
        assert_eq!(k.process(p).unwrap().threads.len(), 3);
        let c = fork(&mut k, p).unwrap();
        assert_eq!(k.process(c).unwrap().threads.len(), 1);
    }

    #[test]
    fn orphaned_lock_deadlocks_child_but_not_parent() {
        let (mut k, p) = boot();
        let lock = k
            .register_lock(p, fpr_kernel::sync::names::MALLOC_ARENA)
            .unwrap();
        let other = k.spawn_thread(p).unwrap();
        k.lock_acquire(p, other, lock).unwrap();
        let main = k.process(p).unwrap().main_tid();
        let (c, stats) = fork_from_thread(&mut k, p, main, ForkMode::Cow).unwrap();
        assert_eq!(stats.orphaned_locks, 1);
        let c_main = k.process(c).unwrap().main_tid();
        // The child's only thread hits the orphaned lock: EDEADLK forever.
        assert_eq!(k.lock_acquire(c, c_main, lock), Err(Errno::Edeadlk));
        // The parent is fine: the owner is alive there.
        assert_eq!(k.lock_acquire(p, main, lock), Err(Errno::Ebusy));
        k.lock_release(p, other, lock).unwrap();
        assert_eq!(k.lock_acquire(p, main, lock), Ok(()));
    }

    #[test]
    fn calling_threads_locks_transfer() {
        let (mut k, p) = boot();
        let lock = k.register_lock(p, fpr_kernel::sync::names::APP).unwrap();
        let main = k.process(p).unwrap().main_tid();
        k.lock_acquire(p, main, lock).unwrap();
        let (c, stats) = fork_from_thread(&mut k, p, main, ForkMode::Cow).unwrap();
        assert_eq!(stats.orphaned_locks, 0);
        let c_main = k.process(c).unwrap().main_tid();
        // The child's thread owns its copy and can release it.
        assert_eq!(k.lock_release(c, c_main, lock), Ok(()));
    }

    #[test]
    fn stream_buffers_duplicated() {
        let (mut k, p) = boot();
        let s = k.stream_open(p, STDOUT, BufMode::FullyBuffered).unwrap();
        k.stream_write(p, s, b"once ").unwrap();
        let main = k.process(p).unwrap().main_tid();
        let (c, stats) = fork_from_thread(&mut k, p, main, ForkMode::Cow).unwrap();
        assert_eq!(stats.duplicated_stream_bytes, 5);
        // Both exit → both flush → console shows the text twice.
        k.exit(c, 0).unwrap();
        k.exit(p, 0).unwrap();
        assert_eq!(k.console, b"once once ");
    }

    #[test]
    fn fork_cost_scales_with_parent_memory() {
        let (mut k, p) = boot();
        let main = k.process(p).unwrap().main_tid();
        let (c1, small) = fork_from_thread(&mut k, p, main, ForkMode::Cow).unwrap();
        k.exit(c1, 0).unwrap();
        k.waitpid(p, Some(c1)).unwrap();
        let base = k.mmap_anon(p, 4096, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 4096).unwrap();
        let (_, big) = fork_from_thread(&mut k, p, main, ForkMode::Cow).unwrap();
        assert!(
            big.cycles > small.cycles * 10,
            "fork cost must grow with the parent: {} vs {}",
            big.cycles,
            small.cycles
        );
        assert_eq!(big.pages_inherited, small.pages_inherited + 4096);
    }

    #[test]
    fn atfork_handlers_run_in_posix_order() {
        use fpr_kernel::{AtforkPhase, AtforkRegistration, AtforkTable};
        let (mut k, p) = boot();
        let mut table = AtforkTable::new();
        table.register(AtforkRegistration {
            token: 1,
            lock: None,
        });
        table.register(AtforkRegistration {
            token: 2,
            lock: None,
        });
        k.process_mut(p).unwrap().atfork = table;
        let c = fork(&mut k, p).unwrap();
        let phases: Vec<(Pid, u64, AtforkPhase)> = k.atfork_log.clone();
        // Prepare in reverse order, then parent/child pairs forward.
        assert_eq!(
            phases,
            vec![
                (p, 2, AtforkPhase::Prepare),
                (p, 1, AtforkPhase::Prepare),
                (p, 1, AtforkPhase::Parent),
                (c, 1, AtforkPhase::Child),
                (p, 2, AtforkPhase::Parent),
                (c, 2, AtforkPhase::Child),
            ]
        );
        // Child inherits the registrations (they live in memory).
        assert_eq!(k.process(c).unwrap().atfork.len(), 2);
    }

    #[test]
    fn atfork_covered_lock_survives_fork() {
        use fpr_kernel::{AtforkRegistration, AtforkTable};
        let (mut k, p) = boot();
        let lock = k
            .register_lock(p, fpr_kernel::sync::names::MALLOC_ARENA)
            .unwrap();
        let mut table = AtforkTable::new();
        table.register(AtforkRegistration {
            token: 9,
            lock: Some(lock),
        });
        k.process_mut(p).unwrap().atfork = table;
        // The lock is free at fork time: prepare acquires it, both sides
        // release it, and the child can use it.
        let c = fork(&mut k, p).unwrap();
        let c_main = k.process(c).unwrap().main_tid();
        assert_eq!(
            k.lock_acquire(c, c_main, lock),
            Ok(()),
            "no deadlock with atfork"
        );
        let p_main = k.process(p).unwrap().main_tid();
        assert_eq!(
            k.lock_acquire(p, p_main, lock),
            Ok(()),
            "parent side released too"
        );
    }

    #[test]
    fn atfork_blocks_when_covered_lock_held_elsewhere() {
        use fpr_kernel::{AtforkRegistration, AtforkTable};
        let (mut k, p) = boot();
        let lock = k
            .register_lock(p, fpr_kernel::sync::names::MALLOC_ARENA)
            .unwrap();
        let other = k.spawn_thread(p).unwrap();
        k.lock_acquire(p, other, lock).unwrap();
        let mut table = AtforkTable::new();
        table.register(AtforkRegistration {
            token: 9,
            lock: Some(lock),
        });
        k.process_mut(p).unwrap().atfork = table;
        // fork would block in prepare until `other` releases: EBUSY here.
        assert_eq!(fork(&mut k, p), Err(Errno::Ebusy));
        // Once released, the fork goes through.
        k.lock_release(p, other, lock).unwrap();
        assert!(fork(&mut k, p).is_ok());
    }

    #[test]
    fn uncovered_lock_still_deadlocks_despite_other_registrations() {
        use fpr_kernel::{AtforkRegistration, AtforkTable};
        let (mut k, p) = boot();
        let covered = k
            .register_lock(p, fpr_kernel::sync::names::MALLOC_ARENA)
            .unwrap();
        let uncovered = k.register_lock(p, fpr_kernel::sync::names::APP).unwrap();
        let other = k.spawn_thread(p).unwrap();
        k.lock_acquire(p, other, uncovered).unwrap();
        let mut table = AtforkTable::new();
        table.register(AtforkRegistration {
            token: 1,
            lock: Some(covered),
        });
        k.process_mut(p).unwrap().atfork = table;
        let c = fork(&mut k, p).unwrap();
        let c_main = k.process(c).unwrap().main_tid();
        assert_eq!(k.lock_acquire(c, c_main, covered), Ok(()));
        assert_eq!(
            k.lock_acquire(c, c_main, uncovered),
            Err(Errno::Edeadlk),
            "one missing registration re-creates the hazard"
        );
    }

    #[test]
    fn aslr_layout_inherited() {
        let (mut k, p) = boot();
        k.process_mut(p).unwrap().layout.aslr_seed = 777;
        k.process_mut(p).unwrap().layout.stack_base = 123_456;
        let c = fork(&mut k, p).unwrap();
        assert_eq!(k.process(c).unwrap().layout.aslr_seed, 777);
        assert_eq!(k.process(c).unwrap().layout.stack_base, 123_456);
    }

    #[test]
    fn eager_fork_copies_frames_up_front() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 16, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 16).unwrap();
        let used = k.phys.used_frames();
        let main = k.process(p).unwrap().main_tid();
        fork_from_thread(&mut k, p, main, ForkMode::Eager).unwrap();
        assert_eq!(k.phys.used_frames(), used + 16, "eager fork doubles frames");
    }

    #[test]
    fn on_demand_fork_shares_frames_until_write() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 16, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 16).unwrap();
        let used = k.phys.used_frames();
        let c = fork_on_demand(&mut k, p).unwrap();
        assert_eq!(k.phys.used_frames(), used, "shared subtrees allocate nothing");
        assert_eq!(k.read_mem(c, base), Ok(0), "child sees the snapshot");
        k.write_mem(c, base, 1).unwrap();
        assert_eq!(
            k.phys.used_frames(),
            used + 1,
            "first write unshares the subtree and copies one page"
        );
        // Divergence holds both ways after the unshare.
        assert_eq!(k.read_mem(c, base), Ok(1));
        assert_eq!(k.read_mem(p, base), Ok(0));
        k.write_mem(p, base.add(1), 7).unwrap();
        assert_eq!(k.read_mem(c, base.add(1)), Ok(0));
    }

    #[test]
    fn on_demand_fork_cost_flat_in_pages() {
        let (mut k, p) = boot();
        let main = k.process(p).unwrap().main_tid();
        // One populated subtree's worth of pages...
        let base = k.mmap_anon(p, 512, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 512).unwrap();
        let (c1, small) = fork_from_thread(&mut k, p, main, ForkMode::OnDemand).unwrap();
        k.exit(c1, 0).unwrap();
        k.waitpid(p, Some(c1)).unwrap();
        // ...then 16x the pages in the same VMA count.
        let base2 = k.mmap_anon(p, 8192, Prot::RW, Share::Private).unwrap();
        k.populate(p, base2, 8192).unwrap();
        let (_, big) = fork_from_thread(&mut k, p, main, ForkMode::OnDemand).unwrap();
        assert!(
            big.cycles < small.cycles * 3,
            "on-demand fork must not scale with resident pages: {} vs {}",
            big.cycles,
            small.cycles
        );
    }

    #[test]
    fn cow_fork_shares_frames_until_write() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 16, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 16).unwrap();
        let used = k.phys.used_frames();
        let c = fork(&mut k, p).unwrap();
        assert_eq!(k.phys.used_frames(), used, "COW fork allocates nothing");
        k.write_mem(c, base, 1).unwrap();
        assert_eq!(
            k.phys.used_frames(),
            used + 1,
            "first write copies one page"
        );
    }
}
