//! `posix_spawn(3)`: create-and-exec without the copy.
//!
//! The child is built directly: a fresh process, the parent's descriptors
//! (minus close-on-exec), a fixed-vocabulary list of *file actions*
//! (open/dup2/close) and *attributes* (signal defaults, mask, and — as
//! glibc extensions grew — a handful more), then the image load. Total
//! cost is O(image + actions), independent of the parent — the flat line
//! in Figure 1.
//!
//! The price is the **closed world**: anything not in the action/attr
//! vocabulary simply cannot be expressed (the paper's complaint about
//! spawn-style APIs, quantified by experiment E7).

use fpr_exec::{AslrConfig, ImageCache, ImageRegistry};
use fpr_kernel::{Errno, Fd, KResult, Kernel, OpenFlags, Pid, Sig};
use fpr_trace::{metrics, sink, Phase, TraceEvent};

/// A `posix_spawn_file_actions_t` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileAction {
    /// Open `path` in the child at descriptor `fd`.
    Open {
        /// Target descriptor.
        fd: Fd,
        /// Path to open.
        path: String,
        /// Open flags.
        flags: OpenFlags,
        /// Create if missing.
        create: bool,
    },
    /// `dup2(from, to)` in the child.
    Dup2 {
        /// Source descriptor.
        from: Fd,
        /// Target descriptor.
        to: Fd,
    },
    /// Close `fd` in the child.
    Close {
        /// Descriptor to close.
        fd: Fd,
    },
    /// Change the child's working directory
    /// (`posix_spawn_file_actions_addchdir`, POSIX.1-2024 — added to the
    /// closed world 20 years after the original API shipped, which is
    /// the paper's point about spawn vocabularies).
    Chdir {
        /// Directory path.
        path: String,
    },
}

/// `posix_spawnattr_t` plus the argv/envp parameters of the call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpawnAttrs {
    /// `POSIX_SPAWN_SETSIGDEF`: signals reset to default in the child.
    pub sigdefault: Vec<Sig>,
    /// `POSIX_SPAWN_SETSIGMASK`: explicit blocked set (signal, blocked).
    pub sigmask: Vec<(Sig, bool)>,
    /// Reset effective IDs to real IDs (`POSIX_SPAWN_RESETIDS`).
    pub resetids: bool,
    /// Program arguments (defaults to `[path]` when empty).
    pub argv: Vec<String>,
    /// Replacement environment (`None` = inherit the parent's).
    pub env: Option<std::collections::BTreeMap<String, String>>,
    /// Start the child in a new session (`POSIX_SPAWN_SETSID`).
    pub setsid: bool,
}

/// Spawns `path` as a child of `parent`.
///
/// Runs the canonical sequence: create process → inherit descriptors →
/// apply file actions → apply attributes → exec the image. Any failure
/// tears the half-built child down and reports the error in the parent —
/// the error-reporting cleanliness fork+exec lacks.
// Mirrors the C `posix_spawn` signature (pid, path, actions, attrs, argv,
// envp) plus the simulator's kernel/ASLR handles.
#[allow(clippy::too_many_arguments)]
pub fn posix_spawn(
    kernel: &mut Kernel,
    parent: Pid,
    registry: &ImageRegistry,
    path: &str,
    actions: &[FileAction],
    attrs: &SpawnAttrs,
    aslr: AslrConfig,
    aslr_seed: u64,
) -> KResult<Pid> {
    posix_spawn_cached(
        kernel, parent, registry, path, actions, attrs, aslr, aslr_seed, None,
    )
}

/// [`posix_spawn`] with an optional exec [`ImageCache`] threaded through to
/// the loader. `None` is byte-for-byte the plain spawn; `Some` lets repeat
/// execs of the same binary skip their startup faults and file reads.
#[allow(clippy::too_many_arguments)]
pub fn posix_spawn_cached(
    kernel: &mut Kernel,
    parent: Pid,
    registry: &ImageRegistry,
    path: &str,
    actions: &[FileAction],
    attrs: &SpawnAttrs,
    aslr: AslrConfig,
    aslr_seed: u64,
    cache: Option<&mut ImageCache>,
) -> KResult<Pid> {
    let start = kernel.cycles.total();
    if sink::is_active() {
        sink::emit(
            TraceEvent::new("spawn", "api", Phase::Begin, start)
                .arg("parent", parent.0 as u64)
                .arg("path", path),
        );
    }
    let r = posix_spawn_inner(
        kernel, parent, registry, path, actions, attrs, aslr, aslr_seed, cache,
    );
    let end = kernel.cycles.total();
    metrics::observe("api.spawn_cycles", end - start);
    sink::span_end("spawn", end);
    r
}

#[allow(clippy::too_many_arguments)]
fn posix_spawn_inner(
    kernel: &mut Kernel,
    parent: Pid,
    registry: &ImageRegistry,
    path: &str,
    actions: &[FileAction],
    attrs: &SpawnAttrs,
    aslr: AslrConfig,
    aslr_seed: u64,
    cache: Option<&mut ImageCache>,
) -> KResult<Pid> {
    kernel.charge_syscall();
    let child = kernel.allocate_process(parent, "")?;
    let mut created = Vec::new();
    match build_child(
        kernel, parent, child, registry, path, actions, attrs, aslr, aslr_seed, &mut created,
        cache,
    ) {
        Ok(()) => Ok(child),
        Err(e) => {
            // Roll the partial child back — PID, descriptors, any loaded
            // image pages — so the parent sees a clean error and the
            // kernel is exactly as it was. No SIGCHLD, no zombie: the
            // child never existed. Files that file actions created are
            // unlinked too (after the descriptor drain releases them).
            kernel.abort_process_creation(child)?;
            for (p, cwd) in created {
                let _ = kernel.vfs.unlink(&p, cwd);
            }
            Err(e)
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn build_child(
    kernel: &mut Kernel,
    parent: Pid,
    child: Pid,
    registry: &ImageRegistry,
    path: &str,
    actions: &[FileAction],
    attrs: &SpawnAttrs,
    aslr: AslrConfig,
    aslr_seed: u64,
    created: &mut Vec<(String, fpr_kernel::vfs::Ino)>,
    cache: Option<&mut ImageCache>,
) -> KResult<()> {
    // Descriptors: inherited as fork would leave them...
    let fds = kernel.clone_fd_table(parent)?;
    let (signals, umask, name) = {
        let p = kernel.process(parent)?;
        (p.signals.fork_clone(), p.umask, p.name.clone())
    };
    {
        let c = kernel.process_mut(child)?;
        c.fds = fds;
        c.signals = signals;
        c.umask = umask;
        c.name = name;
    }

    // ...then the file actions run *in the child's context*.
    apply_file_actions(kernel, child, actions, created)?;
    apply_attrs(kernel, child, attrs)?;

    // The image load (includes the close-on-exec sweep and handler reset).
    if registry.resolve(path).is_none() {
        return Err(Errno::Enoexec);
    }
    let argv = if attrs.argv.is_empty() {
        vec![path.to_string()]
    } else {
        attrs.argv.clone()
    };
    let env = match &attrs.env {
        Some(map) => fpr_exec::Env::Replace(map.clone()),
        None => fpr_exec::Env::Keep,
    };
    fpr_exec::execve_args_cached(kernel, child, registry, path, argv, env, aslr, aslr_seed, cache)
}

/// Runs the spawn file actions in `child`'s context, recording any files
/// they create in `created` so a failing spawn can unlink them. Each
/// action crosses [`fpr_faults::FaultSite::SpawnFileAction`]. Shared
/// between the classic build path and the warm-pool checkout.
pub(crate) fn apply_file_actions(
    kernel: &mut Kernel,
    child: Pid,
    actions: &[FileAction],
    created: &mut Vec<(String, fpr_kernel::vfs::Ino)>,
) -> KResult<()> {
    for a in actions {
        fpr_faults::cross(fpr_faults::FaultSite::SpawnFileAction).map_err(|_| Errno::Enomem)?;
        match a {
            FileAction::Open {
                fd,
                path,
                flags,
                create,
            } => {
                let cwd = kernel.process(child)?.cwd;
                let preexists = kernel.vfs.resolve(path, cwd).is_ok();
                let opened = kernel.open(child, path, *flags, *create)?;
                if *create && !preexists {
                    created.push((path.clone(), cwd));
                }
                if opened != *fd {
                    kernel.dup2(child, opened, *fd)?;
                    kernel.close(child, opened)?;
                }
            }
            FileAction::Dup2 { from, to } => {
                kernel.dup2(child, *from, *to)?;
            }
            FileAction::Close { fd } => {
                kernel.close(child, *fd)?;
            }
            FileAction::Chdir { path } => {
                let cwd = kernel.process(child)?.cwd;
                let ino = kernel.vfs.resolve(path, cwd)?;
                kernel.process_mut(child)?.cwd = ino;
            }
        }
    }
    Ok(())
}

/// Applies the spawn attributes to `child`. Shared between the classic
/// build path and the warm-pool checkout.
pub(crate) fn apply_attrs(kernel: &mut Kernel, child: Pid, attrs: &SpawnAttrs) -> KResult<()> {
    for sig in &attrs.sigdefault {
        kernel.sigaction(child, *sig, fpr_kernel::Disposition::Default)?;
    }
    for (sig, blocked) in &attrs.sigmask {
        kernel.sigprocmask(child, *sig, *blocked)?;
    }
    if attrs.resetids {
        let c = kernel.process_mut(child)?;
        c.cred.euid = c.cred.uid;
        c.cred.egid = c.cred.gid;
    }
    if attrs.setsid {
        kernel.setsid(child)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_exec::Image;
    use fpr_kernel::{Disposition, HandlerId, ReadResult, STDOUT};
    use fpr_mem::{Prot, Share};

    fn world() -> (Kernel, Pid, ImageRegistry) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        let mut reg = ImageRegistry::new();
        reg.register("/bin/tool", Image::small("tool"));
        (k, init, reg)
    }

    #[test]
    fn spawn_creates_running_child_with_image() {
        let (mut k, p, reg) = world();
        let c = posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            3,
        )
        .unwrap();
        let cp = k.process(c).unwrap();
        assert_eq!(cp.name, "tool");
        assert_eq!(cp.ppid, p);
        assert!(cp.resident_pages() > 0);
        assert_eq!(cp.fds.open_count(), 3, "stdio inherited");
    }

    #[test]
    fn spawn_cost_independent_of_parent_size() {
        let (mut k, p, reg) = world();
        let c0 = k.cycles.total();
        let c = posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            1,
        )
        .unwrap();
        let small = k.cycles.total() - c0;
        k.exit(c, 0).unwrap();
        k.waitpid(p, Some(c)).unwrap();

        let base = k.mmap_anon(p, 8192, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 8192).unwrap();
        let c1 = k.cycles.total();
        posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            1,
        )
        .unwrap();
        let big = k.cycles.total() - c1;
        assert_eq!(small, big, "posix_spawn is flat in parent size");
    }

    #[test]
    fn file_actions_redirect_stdout() {
        let (mut k, p, reg) = world();
        let actions = vec![FileAction::Open {
            fd: STDOUT,
            path: "/out.txt".into(),
            flags: OpenFlags::WRONLY,
            create: true,
        }];
        let c = posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/tool",
            &actions,
            &SpawnAttrs::default(),
            AslrConfig::default(),
            1,
        )
        .unwrap();
        k.write_fd(c, STDOUT, b"to file").unwrap();
        let ino = k.vfs.resolve("/out.txt", k.vfs.root()).unwrap();
        assert_eq!(k.vfs.read_at(ino, 0, 16).unwrap(), b"to file");
        assert!(k.console.is_empty(), "parent's console untouched");
    }

    #[test]
    fn pipe_plumbing_via_dup2_and_close() {
        let (mut k, p, reg) = world();
        let (r, w) = k.pipe(p).unwrap();
        let actions = vec![
            FileAction::Dup2 {
                from: w,
                to: STDOUT,
            },
            FileAction::Close { fd: w },
            FileAction::Close { fd: r },
        ];
        let c = posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/tool",
            &actions,
            &SpawnAttrs::default(),
            AslrConfig::default(),
            1,
        )
        .unwrap();
        k.write_fd(c, STDOUT, b"piped").unwrap();
        assert_eq!(
            k.read_fd(p, r, 16).unwrap(),
            ReadResult::Data(b"piped".to_vec())
        );
    }

    #[test]
    fn attrs_apply_sigmask_and_defaults() {
        let (mut k, p, reg) = world();
        k.sigaction(p, Sig::Hup, Disposition::Ignore).unwrap();
        k.sigprocmask(p, Sig::Usr1, true).unwrap();
        let attrs = SpawnAttrs {
            sigdefault: vec![Sig::Hup],
            sigmask: vec![(Sig::Usr1, false), (Sig::Usr2, true)],
            ..SpawnAttrs::default()
        };
        let c = posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/tool",
            &[],
            &attrs,
            AslrConfig::default(),
            1,
        )
        .unwrap();
        let s = &k.process(c).unwrap().signals;
        assert_eq!(
            s.disposition(Sig::Hup),
            Disposition::Default,
            "SETSIGDEF overrode Ignore"
        );
        assert!(!s.is_blocked(Sig::Usr1));
        assert!(s.is_blocked(Sig::Usr2));
    }

    #[test]
    fn handlers_never_leak_into_spawned_child() {
        let (mut k, p, reg) = world();
        k.sigaction(p, Sig::Int, Disposition::Handler(HandlerId(9)))
            .unwrap();
        let c = posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            1,
        )
        .unwrap();
        assert_eq!(
            k.process(c).unwrap().signals.disposition(Sig::Int),
            Disposition::Default
        );
    }

    #[test]
    fn failed_spawn_reports_in_parent_and_leaves_no_child() {
        let (mut k, p, reg) = world();
        let before = k.process_count();
        let err = posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/ghost",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            1,
        );
        assert_eq!(err, Err(Errno::Enoexec));
        assert_eq!(k.process_count(), before, "no zombie left behind");
        // A bad file action likewise fails cleanly.
        let actions = vec![FileAction::Close { fd: Fd(42) }];
        let err2 = posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/tool",
            &actions,
            &SpawnAttrs::default(),
            AslrConfig::default(),
            1,
        );
        assert_eq!(err2, Err(Errno::Ebadf));
        assert_eq!(k.process_count(), before);
    }

    #[test]
    fn spawned_children_get_fresh_aslr() {
        let (mut k, p, reg) = world();
        let a = posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            101,
        )
        .unwrap();
        let b = posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            102,
        )
        .unwrap();
        assert_ne!(k.process(a).unwrap().layout, k.process(b).unwrap().layout);
    }
}

#[cfg(test)]
mod ext_tests {
    use super::*;
    use fpr_exec::Image;

    fn world() -> (Kernel, Pid, ImageRegistry) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        let mut reg = ImageRegistry::new();
        reg.register("/bin/tool", Image::small("tool"));
        (k, init, reg)
    }

    #[test]
    fn chdir_action_changes_child_cwd() {
        let (mut k, p, reg) = world();
        k.vfs.mkdir("/work", k.vfs.root()).unwrap();
        let actions = vec![FileAction::Chdir {
            path: "/work".into(),
        }];
        let c = posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/tool",
            &actions,
            &SpawnAttrs::default(),
            AslrConfig::default(),
            1,
        )
        .unwrap();
        let work = k.vfs.resolve("/work", k.vfs.root()).unwrap();
        assert_eq!(k.process(c).unwrap().cwd, work);
        assert_eq!(
            k.process(p).unwrap().cwd,
            k.vfs.root(),
            "parent cwd untouched"
        );
        // Relative opens in the child resolve under /work.
        let fd = k.open(c, "notes", OpenFlags::RDWR, true).unwrap();
        assert!(k.vfs.resolve("/work/notes", k.vfs.root()).is_ok());
        let _ = fd;
    }

    #[test]
    fn chdir_to_missing_dir_fails_clean() {
        let (mut k, p, reg) = world();
        let before = k.process_count();
        let actions = vec![FileAction::Chdir {
            path: "/nope".into(),
        }];
        let r = posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/tool",
            &actions,
            &SpawnAttrs::default(),
            AslrConfig::default(),
            1,
        );
        assert_eq!(r, Err(Errno::Enoent));
        assert_eq!(k.process_count(), before);
    }

    #[test]
    fn setsid_attr_detaches_session() {
        let (mut k, p, reg) = world();
        let attrs = SpawnAttrs {
            setsid: true,
            ..SpawnAttrs::default()
        };
        let c = posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/tool",
            &[],
            &attrs,
            AslrConfig::default(),
            1,
        )
        .unwrap();
        let cp = k.process(c).unwrap();
        assert_eq!(cp.sid, fpr_kernel::Sid(c.0), "child leads its own session");
        assert_eq!(cp.pgid, fpr_kernel::Pgid(c.0));
        let pp = k.process(p).unwrap();
        assert_ne!(pp.sid, cp.sid);
    }

    #[test]
    fn without_setsid_child_shares_parents_group() {
        let (mut k, p, reg) = world();
        let c = posix_spawn(
            &mut k,
            p,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            1,
        )
        .unwrap();
        assert_eq!(k.getpgid(c).unwrap(), k.getpgid(p).unwrap());
    }
}
