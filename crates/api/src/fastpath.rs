//! The spawn fast path: a warm pool of pre-built children.
//!
//! `posix_spawn` loses to `fork(OnDemand)` in the baseline benchmark
//! because every spawn rebuilds the child image from scratch — six VMA
//! insertions plus the startup faults. Zygote-style systems win that back
//! by keeping pre-forked children around, but at the security cost the
//! paper highlights: every pool child shares the parent's layout, so one
//! info-leak deanonymises all of them (experiment E8).
//!
//! [`WarmPool`] takes the performance trick without the entropy loss.
//! Children are pre-built ([`WarmPool::prefill`]) into a *staging* layout
//! far above the ASLR arenas, parked under a pool host process, and
//! checked out on demand: the checkout adopts the child to the caller,
//! clones descriptors, runs the spawn file actions/attributes, draws a
//! **fresh** ASLR layout, and slides every segment from the staging bases
//! to the new random ones. Checked-out siblings therefore share ~0 bits
//! of layout entropy — the audit in `tab_aslr` verifies this — while the
//! hot path costs one syscall plus a handful of PTE moves instead of a
//! full image build.

use crate::spawn::{apply_attrs, apply_file_actions, posix_spawn_cached, FileAction, SpawnAttrs};
use fpr_exec::{effective_file_id, load_cached, randomize, AslrConfig, Image, ImageCache, ImageRegistry};
use fpr_kernel::{Errno, KResult, Kernel, LayoutInfo, Pid, OOM_SCORE_ADJ_MIN};
use fpr_mem::{PressureLevel, Vpn};
use fpr_trace::{metrics, sink, Phase, TraceEvent};
use std::collections::BTreeMap;

/// Staging bases (VPNs) for parked children, far above every ASLR arena
/// (the largest randomised base tops out below `0x7800_0000`), so sliding
/// a segment from staging to any freshly drawn base can never overlap.
mod staging {
    /// Text/data/bss park here.
    pub const TEXT: u64 = 0x1_0000_0000;
    /// Heap parks here.
    pub const HEAP: u64 = 0x1_1000_0000;
    /// Stack (top) parks here.
    pub const STACK: u64 = 0x1_2000_0000;
    /// The mmap arena base recorded while parked.
    pub const MMAP: u64 = 0x1_3000_0000;
}

/// The fixed layout every parked child is built into. Deliberately *not*
/// a layout any spawn could draw: observing a parked child reveals
/// nothing about any checked-out sibling.
fn staging_layout() -> LayoutInfo {
    LayoutInfo {
        text_base: staging::TEXT,
        heap_base: staging::HEAP,
        stack_base: staging::STACK,
        mmap_base: staging::MMAP,
        entropy_bits: 0,
        aslr_seed: 0,
    }
}

/// A pre-built child waiting in the pool.
#[derive(Debug, Clone)]
struct ParkedChild {
    pid: Pid,
    /// Effective file id the image was loaded under; a mismatch at
    /// checkout means the binary was rewritten and the child is stale.
    eff_file_id: u64,
    /// The staging layout it was built into.
    layout: LayoutInfo,
    /// Logical timestamp of when the child was (re-)parked; memory
    /// pressure drains oldest-parked first.
    parked_at: u64,
}

/// A pool of pre-built children, keyed by executable path.
#[derive(Debug)]
pub struct WarmPool {
    /// Process the parked children hang off (usually init); checkout
    /// re-parents them to the caller, re-park hands them back.
    host: Pid,
    parked: BTreeMap<String, Vec<ParkedChild>>,
    /// Monotonic logical clock stamping `ParkedChild::parked_at`.
    tick: u64,
    checkouts: u64,
    refills: u64,
    misses: u64,
    discards: u64,
    reclaims: u64,
    throttled: u64,
}

impl WarmPool {
    /// Creates an empty pool whose parked children belong to `host`.
    pub fn new(host: Pid) -> WarmPool {
        WarmPool {
            host,
            parked: BTreeMap::new(),
            tick: 0,
            checkouts: 0,
            refills: 0,
            misses: 0,
            discards: 0,
            reclaims: 0,
            throttled: 0,
        }
    }

    /// Pre-builds `n` children of `path` into the staging layout and
    /// parks them under the host. This is the warm-up cost a zygote pays
    /// off the spawn path; it also warms the exec image `cache`, so the
    /// first prefill doubles as the cache's donor.
    pub fn prefill(
        &mut self,
        kernel: &mut Kernel,
        registry: &ImageRegistry,
        cache: &mut ImageCache,
        path: &str,
        n: usize,
    ) -> KResult<()> {
        // While the swap tier is thrashing, growing the pool would evict
        // working-set pages to park cache: refills wait out the storm
        // (spawns of the path degrade to the classic cost, nothing worse).
        if kernel.swap_thrashing() {
            self.throttled += 1;
            metrics::incr("api.pool.throttled");
            return Ok(());
        }
        for _ in 0..n {
            let mut image = registry.resolve(path).ok_or(Errno::Enoexec)?.0.clone();
            image.file_id = effective_file_id(kernel, registry, image.file_id);
            let child = kernel.allocate_process(self.host, "")?;
            let layout = staging_layout();
            if let Err(e) = load_cached(kernel, child, &image, layout, cache) {
                kernel.abort_process_creation(child)?;
                return Err(e);
            }
            // A parked child is pure cache: the OOM killer must never
            // pick it (shrinker reclaim drains it instead).
            kernel.process_mut(child)?.oom_score_adj = OOM_SCORE_ADJ_MIN;
            self.refills += 1;
            metrics::incr("api.pool.refill");
            self.park(
                path,
                ParkedChild {
                    pid: child,
                    eff_file_id: image.file_id,
                    layout,
                    parked_at: 0,
                },
            );
        }
        Ok(())
    }

    /// Pressure-driven pool sizing: tops the pool up to `target` parked
    /// children of `path`, but only while memory is genuinely easy.
    /// Under [`PressureLevel::High`] or worse (or a thrashing swap tier)
    /// the refill is skipped entirely — growing the pool there would
    /// fight the very reclaim pass that is draining it, and the classic
    /// spawn fallback is the designed degradation. Returns the number of
    /// children actually built.
    ///
    /// This is the hook a service loop calls on its maintenance tick
    /// (E15 does, between requests): checkout consumes a parked child per
    /// served request, so the pool trends to zero without it, and after a
    /// pressure storm drains the pool this is what restores the fast
    /// path.
    pub fn autoscale(
        &mut self,
        kernel: &mut Kernel,
        registry: &ImageRegistry,
        cache: &mut ImageCache,
        path: &str,
        target: usize,
    ) -> KResult<usize> {
        let have = self.available(path);
        if have >= target {
            return Ok(0);
        }
        if kernel.memory_pressure() >= PressureLevel::High {
            self.throttled += 1;
            metrics::incr("api.pool.autoscale_skipped");
            return Ok(0);
        }
        let want = target - have;
        let before = self.refills;
        self.prefill(kernel, registry, cache, path, want)?;
        let built = (self.refills - before) as usize;
        if built > 0 {
            metrics::incr("api.pool.autoscale");
        }
        Ok(built)
    }

    /// Checks a parked child of `path` out to `parent`, or returns
    /// `Ok(None)` when the pool has none (the caller falls back to the
    /// slow path without having paid a syscall — the pool table lives in
    /// userspace). Crosses [`fpr_faults::FaultSite::PoolCheckout`]
    /// *before* popping, so an injected failure leaves the pool intact;
    /// a failure later in the checkout re-parks the child and restores
    /// the pre-checkout state exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn checkout(
        &mut self,
        kernel: &mut Kernel,
        registry: &ImageRegistry,
        parent: Pid,
        path: &str,
        actions: &[FileAction],
        attrs: &SpawnAttrs,
        aslr: AslrConfig,
        aslr_seed: u64,
    ) -> KResult<Option<Pid>> {
        let Some((img, interp_prefix)) = registry.resolve(path) else {
            return Ok(None);
        };
        let image = img.clone();
        let eff = effective_file_id(kernel, registry, image.file_id);
        // A rewritten binary strands its parked children on the old
        // bytes: discard them so nothing stale can ever be checked out.
        while let Some(stale) = self.pop_stale(path, eff) {
            kernel.abort_process_creation(stale.pid)?;
            self.discards += 1;
            metrics::incr("api.pool.discard");
        }
        if self.parked.get(path).is_none_or(|v| v.is_empty()) {
            return Ok(None);
        }

        // The checkout proper: one syscall covering adopt + re-randomise.
        kernel.charge_syscall();
        fpr_faults::cross(fpr_faults::FaultSite::PoolCheckout).map_err(|_| Errno::Enomem)?;
        let parked = self
            .parked
            .get_mut(path)
            .and_then(Vec::pop)
            .expect("checked non-empty above");
        if let Err(e) = kernel.adopt_process(parked.pid, parent) {
            // Adoption fails atomically (e.g. the caller's RLIMIT_NPROC),
            // so the child is still pristine: just put it back.
            self.park(path, parked);
            return Err(e);
        }
        // Checked out: a real process again, visible to the OOM killer.
        kernel.process_mut(parked.pid)?.oom_score_adj = 0;

        // Snapshot the state the re-park path must restore; everything
        // else (cwd, creds, rlimits, pgid, sid) is restored by adopting
        // the child back to the host.
        let (saved_signals, saved_umask) = {
            let c = kernel.process(parked.pid)?;
            (c.signals.clone(), c.umask)
        };
        let fresh = randomize(aslr, aslr_seed);
        let pairs = slide_pairs(&image, &parked.layout, &fresh);
        let mut slid = 0usize;
        let mut created = Vec::new();
        let built = build_checked_out_child(
            kernel,
            parked.pid,
            parent,
            path,
            &interp_prefix,
            actions,
            attrs,
            fresh,
            &pairs,
            &mut slid,
            &mut created,
        );
        match built {
            Ok(()) => {
                self.checkouts += 1;
                metrics::incr("api.pool.checkout");
                Ok(Some(parked.pid))
            }
            Err(e) => {
                // Undo in reverse and hand the child back to the pool. If
                // even that fails (pathological double fault) the child is
                // torn down entirely rather than leaked.
                let pid = parked.pid;
                let undone = (|| -> KResult<()> {
                    for (old, new) in pairs.iter().take(slid).rev() {
                        kernel.slide_vma(pid, *new, *old)?;
                    }
                    let entries = kernel.process_mut(pid)?.fds.drain();
                    for entry in entries {
                        kernel.release_fd_entry(entry)?;
                    }
                    for (p, cwd) in created {
                        let _ = kernel.vfs.unlink(&p, cwd);
                    }
                    {
                        let c = kernel.process_mut(pid)?;
                        c.signals = saved_signals;
                        c.umask = saved_umask;
                        c.argv.clear();
                        c.envp.clear();
                        c.oom_score_adj = OOM_SCORE_ADJ_MIN;
                    }
                    kernel.adopt_process(pid, self.host)
                })();
                match undone {
                    Ok(()) => self.park(path, parked),
                    Err(_) => {
                        kernel.abort_process_creation(pid)?;
                    }
                }
                Err(e)
            }
        }
    }

    /// Tears down oldest-parked children until `target` frames have been
    /// returned to the allocator or the pool is empty, reporting frames
    /// actually freed. This is the pool's [`fpr_kernel::Shrinker`] work
    /// under memory pressure: spawns of the drained paths degrade to the
    /// classic-path cost until a refill, but nobody gets OOM-killed. The
    /// reclaim pass crosses [`fpr_faults::FaultSite::PoolDrain`] before
    /// calling this.
    pub fn shrink(&mut self, kernel: &mut Kernel, target: u64) -> KResult<u64> {
        let free_before = kernel.phys.free_frames();
        while kernel.phys.free_frames() - free_before < target {
            let lru = self
                .parked
                .iter()
                .flat_map(|(path, list)| {
                    list.iter().map(move |p| (p.parked_at, path.clone()))
                })
                .min();
            let Some((parked_at, path)) = lru else { break };
            let list = self.parked.get_mut(&path).expect("came from iteration");
            let idx = list
                .iter()
                .position(|p| p.parked_at == parked_at)
                .expect("came from iteration");
            let child = list.remove(idx);
            kernel.abort_process_creation(child.pid)?;
            self.reclaims += 1;
            metrics::incr("api.pool.reclaim");
        }
        self.parked.retain(|_, list| !list.is_empty());
        Ok(kernel.phys.free_frames() - free_before)
    }

    /// Tears down every parked child (pool disable / shutdown).
    pub fn drain(&mut self, kernel: &mut Kernel) -> KResult<()> {
        for (_, list) in std::mem::take(&mut self.parked) {
            for p in list {
                kernel.abort_process_creation(p.pid)?;
            }
        }
        Ok(())
    }

    /// Parked children currently available for `path`.
    pub fn available(&self, path: &str) -> usize {
        self.parked.get(path).map_or(0, Vec::len)
    }

    /// Parked children across all paths.
    pub fn total_parked(&self) -> usize {
        self.parked.values().map(Vec::len).sum()
    }

    /// The pool host process.
    pub fn host(&self) -> Pid {
        self.host
    }

    /// Successful checkouts so far.
    pub fn checkouts(&self) -> u64 {
        self.checkouts
    }

    /// Children pre-built so far.
    pub fn refills(&self) -> u64 {
        self.refills
    }

    /// Fast-path attempts that found no usable parked child.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Stale parked children discarded after a binary rewrite.
    pub fn discards(&self) -> u64 {
        self.discards
    }

    /// Parked children torn down by memory-pressure reclaim.
    pub fn reclaims(&self) -> u64 {
        self.reclaims
    }

    /// Prefills skipped because the swap tier was thrashing.
    pub fn throttled(&self) -> u64 {
        self.throttled
    }

    fn park(&mut self, path: &str, mut child: ParkedChild) {
        self.tick += 1;
        child.parked_at = self.tick;
        self.parked.entry(path.to_string()).or_default().push(child);
    }

    fn pop_stale(&mut self, path: &str, eff: u64) -> Option<ParkedChild> {
        let list = self.parked.get_mut(path)?;
        let idx = list.iter().position(|p| p.eff_file_id != eff)?;
        Some(list.remove(idx))
    }
}

/// Under memory pressure the pool gives its parked children back, oldest
/// first: the fast path degrades toward classic-spawn latency instead of
/// the OOM killer picking a victim.
impl fpr_kernel::Shrinker for WarmPool {
    fn name(&self) -> &'static str {
        "warm_pool"
    }

    fn fault_site(&self) -> fpr_faults::FaultSite {
        fpr_faults::FaultSite::PoolDrain
    }

    fn reclaimable(&self, kernel: &Kernel) -> u64 {
        // Upper bound: a parked child's resident pages. Pages CoW-shared
        // with the image cache survive its death through the cache pins,
        // so the pass may free less than this.
        self.parked
            .values()
            .flatten()
            .map(|p| {
                kernel
                    .process(p.pid)
                    .map(|proc| proc.resident_pages())
                    .unwrap_or(0)
            })
            .sum()
    }

    fn shrink(&mut self, kernel: &mut Kernel, target: u64) -> KResult<u64> {
        WarmPool::shrink(self, kernel, target)
    }
}

/// Everything between a successful adopt and a ready child: descriptors,
/// file actions, attributes, argv/env, and the ASLR re-randomising
/// slides. Mirrors what `posix_spawn`'s build + execve do, minus the
/// image construction the prefill already paid for. `slid` counts
/// completed slides so the caller can undo a partial failure.
#[allow(clippy::too_many_arguments)]
fn build_checked_out_child(
    kernel: &mut Kernel,
    child: Pid,
    parent: Pid,
    path: &str,
    interp_prefix: &[String],
    actions: &[FileAction],
    attrs: &SpawnAttrs,
    fresh: LayoutInfo,
    pairs: &[(Vpn, Vpn)],
    slid: &mut usize,
    created: &mut Vec<(String, fpr_kernel::vfs::Ino)>,
) -> KResult<()> {
    // Descriptors and signal identity from the adopting parent, with the
    // exec-time resets posix_spawn's execve would apply.
    let fds = kernel.clone_fd_table(parent)?;
    let (mut signals, umask) = {
        let p = kernel.process(parent)?;
        (p.signals.fork_clone(), p.umask)
    };
    signals.exec_reset();
    {
        let c = kernel.process_mut(child)?;
        c.fds = fds;
        c.signals = signals;
        c.umask = umask;
    }
    apply_file_actions(kernel, child, actions, created)?;
    apply_attrs(kernel, child, attrs)?;
    // Close-on-exec sweep (in posix_spawn it runs inside execve, i.e.
    // after the file actions).
    let swept = kernel.process_mut(child)?.fds.take_cloexec();
    for (_, entry) in swept {
        kernel.release_fd_entry(entry)?;
    }
    // argv/env exactly as execve would leave them.
    {
        let c = kernel.process_mut(child)?;
        let mut full = interp_prefix.to_vec();
        if attrs.argv.is_empty() {
            full.push(path.to_string());
        } else {
            full.extend(attrs.argv.iter().cloned());
        }
        c.argv = full;
        if let Some(map) = &attrs.env {
            c.envp = map.clone();
        }
    }
    // Re-randomise: slide every segment from staging to the fresh draw.
    sink::instant("aslr_randomize", "api", kernel.cycles.total());
    for (old, new) in pairs {
        kernel.slide_vma(child, *old, *new)?;
        *slid += 1;
    }
    kernel.process_mut(child)?.layout = fresh;
    Ok(())
}

/// `(from, to)` VMA start pairs for sliding an image between two layouts,
/// in the order the loader created them.
fn slide_pairs(img: &Image, from: &LayoutInfo, to: &LayoutInfo) -> Vec<(Vpn, Vpn)> {
    let mut v = vec![(Vpn(from.text_base), Vpn(to.text_base))];
    if img.data_pages > 0 {
        let off = img.text_pages;
        v.push((Vpn(from.text_base + off), Vpn(to.text_base + off)));
    }
    if img.bss_pages > 0 {
        let off = img.text_pages + img.data_pages;
        v.push((Vpn(from.text_base + off), Vpn(to.text_base + off)));
    }
    if img.heap_pages > 0 {
        v.push((Vpn(from.heap_base), Vpn(to.heap_base)));
    }
    let low = |l: &LayoutInfo| l.stack_base - img.stack_pages;
    v.push((Vpn(low(from) - 1), Vpn(low(to) - 1)));
    v.push((Vpn(low(from)), Vpn(low(to))));
    v
}

/// `posix_spawn` through the fast path: try a warm-pool checkout, fall
/// back to the (image-cache-assisted) slow path on a miss. Semantically
/// identical to [`crate::spawn::posix_spawn`]; only the cycle count
/// differs.
#[allow(clippy::too_many_arguments)]
pub fn spawn_fast(
    kernel: &mut Kernel,
    parent: Pid,
    registry: &ImageRegistry,
    path: &str,
    actions: &[FileAction],
    attrs: &SpawnAttrs,
    aslr: AslrConfig,
    aslr_seed: u64,
    cache: &mut ImageCache,
    pool: &mut WarmPool,
) -> KResult<Pid> {
    let start = kernel.cycles.total();
    if sink::is_active() {
        sink::emit(
            TraceEvent::new("spawn_fast", "api", Phase::Begin, start)
                .arg("parent", parent.0 as u64)
                .arg("path", path),
        );
    }
    let r = spawn_fast_inner(
        kernel, parent, registry, path, actions, attrs, aslr, aslr_seed, cache, pool,
    );
    let end = kernel.cycles.total();
    metrics::observe("api.spawn_fast_cycles", end - start);
    sink::span_end("spawn_fast", end);
    r
}

#[allow(clippy::too_many_arguments)]
fn spawn_fast_inner(
    kernel: &mut Kernel,
    parent: Pid,
    registry: &ImageRegistry,
    path: &str,
    actions: &[FileAction],
    attrs: &SpawnAttrs,
    aslr: AslrConfig,
    aslr_seed: u64,
    cache: &mut ImageCache,
    pool: &mut WarmPool,
) -> KResult<Pid> {
    match pool.checkout(
        kernel, registry, parent, path, actions, attrs, aslr, aslr_seed,
    )? {
        Some(pid) => Ok(pid),
        None => {
            pool.misses += 1;
            metrics::incr("api.pool.miss");
            posix_spawn_cached(
                kernel,
                parent,
                registry,
                path,
                actions,
                attrs,
                aslr,
                aslr_seed,
                Some(cache),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spawn::posix_spawn;
    use fpr_exec::{shared_bits, Image};
    use fpr_kernel::{Fd, Resource, Rlimit, STDOUT};
    use fpr_mem::vma::file_stamp;

    fn world() -> (Kernel, Pid, ImageRegistry) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        let mut reg = ImageRegistry::new();
        reg.register("/bin/tool", Image::small("tool"));
        (k, init, reg)
    }

    #[test]
    fn prefill_parks_children_under_host() {
        let (mut k, init, reg) = world();
        let mut cache = ImageCache::new();
        let mut pool = WarmPool::new(init);
        pool.prefill(&mut k, &reg, &mut cache, "/bin/tool", 3)
            .unwrap();
        assert_eq!(pool.available("/bin/tool"), 3);
        assert_eq!(pool.refills(), 3);
        assert_eq!(cache.misses(), 1, "first prefill donates to the cache");
        assert_eq!(cache.hits(), 2, "later prefills ride it");
        k.check_invariants().unwrap();
    }

    #[test]
    fn checkout_beats_the_slow_path_and_builds_a_real_child() {
        let (mut k, init, reg) = world();
        let mut cache = ImageCache::new();
        let mut pool = WarmPool::new(init);
        pool.prefill(&mut k, &reg, &mut cache, "/bin/tool", 2)
            .unwrap();

        let c0 = k.cycles.total();
        let slow = posix_spawn(
            &mut k,
            init,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            5,
        )
        .unwrap();
        let slow_cost = k.cycles.total() - c0;

        let c1 = k.cycles.total();
        let fast = spawn_fast(
            &mut k,
            init,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            6,
            &mut cache,
            &mut pool,
        )
        .unwrap();
        let fast_cost = k.cycles.total() - c1;
        assert!(
            fast_cost < slow_cost,
            "pool hit ({fast_cost}) must beat posix_spawn ({slow_cost})"
        );
        assert_eq!(pool.checkouts(), 1);
        assert_eq!(pool.available("/bin/tool"), 1);

        let cp = k.process(fast).unwrap();
        assert_eq!(cp.ppid, init);
        assert_eq!(cp.name, "tool");
        assert_eq!(cp.fds.open_count(), 3, "stdio inherited");
        assert_eq!(cp.argv, vec!["/bin/tool".to_string()]);
        let layout = cp.layout;
        assert_ne!(layout.text_base, staging::TEXT, "not left in staging");
        // The image content is really there at the new bases.
        let img = Image::small("tool");
        assert_eq!(
            k.read_mem(fast, Vpn(layout.text_base + img.entry_page)),
            Ok(file_stamp(
                reg.resolve("/bin/tool").unwrap().0.file_id,
                img.entry_page
            ))
        );
        let _ = slow;
        k.check_invariants().unwrap();
    }

    #[test]
    fn checked_out_siblings_share_no_layout_entropy() {
        let (mut k, init, reg) = world();
        let mut cache = ImageCache::new();
        let mut pool = WarmPool::new(init);
        pool.prefill(&mut k, &reg, &mut cache, "/bin/tool", 2)
            .unwrap();
        let a = spawn_fast(
            &mut k,
            init,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            1001,
            &mut cache,
            &mut pool,
        )
        .unwrap();
        let b = spawn_fast(
            &mut k,
            init,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            1002,
            &mut cache,
            &mut pool,
        )
        .unwrap();
        assert_eq!(pool.checkouts(), 2);
        let (la, lb) = (k.process(a).unwrap().layout, k.process(b).unwrap().layout);
        assert_ne!(la, lb);
        // Siblings from the same pool look like independent spawns: the
        // incidental shared low bits stay far below full disclosure.
        assert!(
            shared_bits(&la, &lb) < 34,
            "pool children must not share their layout ({} bits)",
            shared_bits(&la, &lb)
        );
        assert!(la.entropy_bits > 0);
    }

    #[test]
    fn empty_pool_falls_back_to_slow_path() {
        let (mut k, init, reg) = world();
        let mut cache = ImageCache::new();
        let mut pool = WarmPool::new(init);
        let c = spawn_fast(
            &mut k,
            init,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            3,
            &mut cache,
            &mut pool,
        )
        .unwrap();
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.checkouts(), 0);
        assert_eq!(k.process(c).unwrap().name, "tool");
        assert_eq!(cache.misses(), 1, "slow path still warms the cache");
    }

    #[test]
    fn failed_checkout_reparks_the_child() {
        let (mut k, init, reg) = world();
        let mut cache = ImageCache::new();
        let mut pool = WarmPool::new(init);
        pool.prefill(&mut k, &reg, &mut cache, "/bin/tool", 1)
            .unwrap();
        let procs_before = k.process_count();

        // A bad file action fails the checkout after adoption.
        let actions = vec![FileAction::Close { fd: Fd(42) }];
        let r = spawn_fast(
            &mut k,
            init,
            &reg,
            "/bin/tool",
            &actions,
            &SpawnAttrs::default(),
            AslrConfig::default(),
            4,
            &mut cache,
            &mut pool,
        );
        assert_eq!(r, Err(Errno::Ebadf));
        assert_eq!(pool.available("/bin/tool"), 1, "child re-parked");
        assert_eq!(k.process_count(), procs_before);
        k.check_invariants().unwrap();

        // The re-parked child is still perfectly good.
        let c = spawn_fast(
            &mut k,
            init,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            5,
            &mut cache,
            &mut pool,
        )
        .unwrap();
        assert_eq!(pool.checkouts(), 1);
        let cp = k.process(c).unwrap();
        assert_eq!(cp.fds.open_count(), 3);
        let layout = cp.layout;
        assert_eq!(
            k.read_mem(c, Vpn(layout.stack_base - 1)),
            Ok(0xdead),
            "startup stack write survived park → fail → re-park → checkout"
        );
    }

    #[test]
    fn checkout_respects_the_callers_nproc_limit() {
        let (mut k, init, reg) = world();
        let mut cache = ImageCache::new();
        let mut pool = WarmPool::new(init);
        pool.prefill(&mut k, &reg, &mut cache, "/bin/tool", 1)
            .unwrap();
        let parent = posix_spawn(
            &mut k,
            init,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            7,
        )
        .unwrap();
        k.process_mut(parent)
            .unwrap()
            .rlimits
            .set(Resource::Nproc, Rlimit::both(1));
        let r = spawn_fast(
            &mut k,
            parent,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            8,
            &mut cache,
            &mut pool,
        );
        assert_eq!(r, Err(Errno::Eagain), "a pool hit cannot evade RLIMIT_NPROC");
        assert_eq!(pool.available("/bin/tool"), 1, "child stays parked");
        k.check_invariants().unwrap();
    }

    #[test]
    fn file_actions_work_through_the_fast_path() {
        let (mut k, init, reg) = world();
        let mut cache = ImageCache::new();
        let mut pool = WarmPool::new(init);
        pool.prefill(&mut k, &reg, &mut cache, "/bin/tool", 1)
            .unwrap();
        let actions = vec![FileAction::Open {
            fd: STDOUT,
            path: "/fast.txt".into(),
            flags: fpr_kernel::OpenFlags::WRONLY,
            create: true,
        }];
        let c = spawn_fast(
            &mut k,
            init,
            &reg,
            "/bin/tool",
            &actions,
            &SpawnAttrs::default(),
            AslrConfig::default(),
            9,
            &mut cache,
            &mut pool,
        )
        .unwrap();
        assert_eq!(pool.checkouts(), 1);
        k.write_fd(c, STDOUT, b"via pool").unwrap();
        let ino = k.vfs.resolve("/fast.txt", k.vfs.root()).unwrap();
        assert_eq!(k.vfs.read_at(ino, 0, 16).unwrap(), b"via pool");
    }

    #[test]
    fn pool_shrink_drains_oldest_first_and_parked_children_are_oom_exempt() {
        let (mut k, init, reg) = world();
        let mut cache = ImageCache::new();
        let mut pool = WarmPool::new(init);
        pool.prefill(&mut k, &reg, &mut cache, "/bin/tool", 3)
            .unwrap();
        // Parked children are pure cache: the OOM killer skips them.
        for pid in k.pids() {
            if pid != init {
                assert_eq!(k.oom_badness(pid), None, "parked child is exempt");
            }
        }
        let procs_before = k.process_count();
        let freed = pool.shrink(&mut k, 1).unwrap();
        assert!(freed >= 1, "a parked child has private frames to give");
        assert_eq!(pool.total_parked(), 2);
        assert_eq!(pool.reclaims(), 1);
        assert_eq!(k.process_count(), procs_before - 1);

        // A checked-out child becomes a normal process again: killable.
        let c = spawn_fast(
            &mut k,
            init,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            21,
            &mut cache,
            &mut pool,
        )
        .unwrap();
        assert!(k.oom_badness(c).is_some(), "checked-out child is visible");

        pool.shrink(&mut k, u64::MAX).unwrap();
        assert_eq!(pool.total_parked(), 0);
        cache.clear(&mut k);
        k.check_invariants().unwrap();
    }

    #[test]
    fn thrashing_swap_throttles_prefill() {
        let mut k = Kernel::new(fpr_kernel::MachineConfig {
            frames: 256,
            swap_slots: 16,
            ..fpr_kernel::MachineConfig::default()
        });
        let init = k.create_init("init").unwrap();
        let mut reg = ImageRegistry::new();
        reg.register("/bin/tool", Image::small("tool"));
        // Provoke a refault storm: evict eight pages, fault them all
        // straight back.
        let base = k
            .mmap_anon(init, 8, fpr_mem::Prot::RW, fpr_mem::Share::Private)
            .unwrap();
        for i in 0..8 {
            k.write_mem(init, Vpn(base.0 + i), i).unwrap();
        }
        assert_eq!(k.swap_out_pass(8), Ok(8));
        for i in 0..8 {
            assert_eq!(k.read_mem(init, Vpn(base.0 + i)), Ok(i));
        }
        assert!(k.swap_thrashing());

        let mut cache = ImageCache::new();
        let mut pool = WarmPool::new(init);
        pool.prefill(&mut k, &reg, &mut cache, "/bin/tool", 3)
            .unwrap();
        assert_eq!(pool.available("/bin/tool"), 0, "refill waits out the storm");
        assert_eq!(pool.throttled(), 1);
        assert_eq!(pool.refills(), 0);
        k.check_invariants().unwrap();
    }

    #[test]
    fn autoscale_tops_up_to_target_under_easy_memory() {
        let (mut k, init, reg) = world();
        let mut cache = ImageCache::new();
        let mut pool = WarmPool::new(init);
        let built = pool
            .autoscale(&mut k, &reg, &mut cache, "/bin/tool", 4)
            .unwrap();
        assert_eq!(built, 4);
        assert_eq!(pool.available("/bin/tool"), 4);
        // At target: a second tick is a no-op.
        let again = pool
            .autoscale(&mut k, &reg, &mut cache, "/bin/tool", 4)
            .unwrap();
        assert_eq!(again, 0);
        // One checkout later, the next tick replaces exactly the one.
        let _ = spawn_fast(
            &mut k,
            init,
            &reg,
            "/bin/tool",
            &[],
            &SpawnAttrs::default(),
            AslrConfig::default(),
            31,
            &mut cache,
            &mut pool,
        )
        .unwrap();
        let topped = pool
            .autoscale(&mut k, &reg, &mut cache, "/bin/tool", 4)
            .unwrap();
        assert_eq!(topped, 1);
        k.check_invariants().unwrap();
    }

    #[test]
    fn autoscale_refuses_to_grow_under_high_pressure() {
        let mut k = Kernel::new(fpr_kernel::MachineConfig {
            frames: 512,
            overcommit: fpr_mem::OvercommitPolicy::Always,
            ..fpr_kernel::MachineConfig::default()
        });
        let init = k.create_init("init").unwrap();
        let mut reg = ImageRegistry::new();
        reg.register("/bin/tool", Image::small("tool"));
        // Eat frames until free memory drops below the low watermark.
        let wm = k.phys.watermarks();
        let eat = k.phys.free_frames() - wm.low + 8;
        let base = k
            .mmap_anon(init, eat, fpr_mem::Prot::RW, fpr_mem::Share::Private)
            .unwrap();
        for i in 0..eat {
            k.write_mem(init, Vpn(base.0 + i), 1).unwrap();
        }
        assert!(k.memory_pressure() >= PressureLevel::High);

        let mut cache = ImageCache::new();
        let mut pool = WarmPool::new(init);
        let built = pool
            .autoscale(&mut k, &reg, &mut cache, "/bin/tool", 4)
            .unwrap();
        assert_eq!(built, 0, "autoscale must not fight reclaim");
        assert_eq!(pool.available("/bin/tool"), 0);
        assert_eq!(pool.throttled(), 1);
        k.check_invariants().unwrap();
    }

    #[test]
    fn drain_tears_the_pool_down_cleanly() {
        let (mut k, init, reg) = world();
        let mut cache = ImageCache::new();
        let mut pool = WarmPool::new(init);
        let procs_before = k.process_count();
        pool.prefill(&mut k, &reg, &mut cache, "/bin/tool", 3)
            .unwrap();
        pool.drain(&mut k).unwrap();
        assert_eq!(pool.total_parked(), 0);
        assert_eq!(k.process_count(), procs_before);
        cache.clear(&mut k);
        k.check_invariants().unwrap();
    }
}
