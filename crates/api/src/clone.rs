//! `clone(2)`: fork's flag zoo.
//!
//! Linux's answer to fork's inflexibility was not to replace it but to
//! parameterise it — each `CLONE_*` flag toggles whether one piece of
//! state is shared or copied. The paper's complaint: the flag space is
//! enormous, the default is still "copy everything", and several
//! combinations are unsupported or subtly broken. The simulator
//! implements the meaningful subset and *returns `EINVAL` for the
//! combinations real kernels reject*, which the tests pin down.

use crate::fork::fork_from_thread;
use fpr_kernel::{Errno, KResult, Kernel, Pid, SpaceRef, Tid};
use fpr_mem::ForkMode;
use fpr_trace::{metrics, sink, Phase, TraceEvent};

/// The clone flag subset the simulator models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CloneFlags {
    /// Share the address space (`CLONE_VM`).
    pub vm: bool,
    /// Share the descriptor table (`CLONE_FILES`) — modelled as "inherit
    /// nothing vs copy", since cross-process live sharing of the table
    /// object is the one piece the PCB design does not alias.
    pub files: bool,
    /// Share signal dispositions (`CLONE_SIGHAND`; requires `vm`).
    pub sighand: bool,
    /// Create a thread in the same process (`CLONE_THREAD`; requires
    /// `sighand` and `vm`).
    pub thread: bool,
    /// Suspend the parent until exec/exit (`CLONE_VFORK`).
    pub vfork: bool,
    /// Duplicate the address space by sharing page-table subtrees
    /// on-demand instead of copying every PTE (the `CLONE_PT_SHARE`
    /// experiment from on-demand-fork). Meaningless with `vm` — there is
    /// no duplication to defer when the space is shared outright — so the
    /// combination is rejected.
    pub pt_share: bool,
}

/// What `clone` produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloneResult {
    /// A new process.
    Process(Pid),
    /// A new thread in the calling process.
    Thread(Tid),
}

/// Renders the set flags as a compact `|`-joined label for trace events.
fn flags_label(flags: CloneFlags) -> String {
    let names = [
        (flags.vm, "vm"),
        (flags.files, "files"),
        (flags.sighand, "sighand"),
        (flags.thread, "thread"),
        (flags.vfork, "vfork"),
        (flags.pt_share, "pt_share"),
    ];
    let set: Vec<&str> = names.iter().filter(|(on, _)| *on).map(|(_, n)| *n).collect();
    if set.is_empty() {
        "none".to_string()
    } else {
        set.join("|")
    }
}

/// Clones the calling process/thread according to `flags`.
pub fn clone(kernel: &mut Kernel, parent: Pid, flags: CloneFlags) -> KResult<CloneResult> {
    let start = kernel.cycles.total();
    if sink::is_active() {
        sink::emit(
            TraceEvent::new("clone", "api", Phase::Begin, start)
                .arg("parent", parent.0 as u64)
                .arg("flags", flags_label(flags)),
        );
    }
    let r = clone_inner(kernel, parent, flags);
    let end = kernel.cycles.total();
    metrics::observe("api.clone_cycles", end - start);
    sink::span_end("clone", end);
    r
}

fn clone_inner(kernel: &mut Kernel, parent: Pid, flags: CloneFlags) -> KResult<CloneResult> {
    // Flag validation mirrors the kernel's rules.
    if flags.thread && (!flags.vm || !flags.sighand) {
        return Err(Errno::Einval);
    }
    if flags.sighand && !flags.vm {
        return Err(Errno::Einval);
    }
    if flags.pt_share && flags.vm {
        return Err(Errno::Einval);
    }

    if flags.thread {
        // CLONE_THREAD: a new schedulable entity in the same PCB.
        let tid = kernel.spawn_thread(parent)?;
        return Ok(CloneResult::Thread(tid));
    }

    if flags.vm {
        // CLONE_VM without CLONE_THREAD: a separate process sharing the
        // address space (vfork-like, optionally with the parent parked).
        kernel.charge_syscall();
        let child = kernel.allocate_process(parent, "")?;
        let fds = if flags.files {
            match kernel.clone_fd_table(parent) {
                Ok(f) => f,
                Err(e) => {
                    // Roll the half-made child back before reporting.
                    kernel.abort_process_creation(child)?;
                    return Err(e);
                }
            }
        } else {
            fpr_kernel::FdTable::new()
        };
        let (name, signals, umask, layout) = {
            let p = kernel.process(parent)?;
            (p.name.clone(), p.signals.fork_clone(), p.umask, p.layout)
        };
        {
            let c = kernel.process_mut(child)?;
            c.space_ref = SpaceRef::BorrowedFrom(parent);
            c.fds = fds;
            c.name = name;
            c.signals = signals;
            c.umask = umask;
            c.layout = layout;
        }
        if flags.vfork {
            kernel.vfork_park(parent, child)?;
        }
        return Ok(CloneResult::Process(child));
    }

    // No VM sharing: plain fork, with CLONE_FILES deciding descriptor
    // inheritance and CLONE_PT_SHARE the page-table copy strategy.
    let calling = kernel.process(parent)?.main_tid();
    let mode = if flags.pt_share {
        ForkMode::OnDemand
    } else {
        ForkMode::Cow
    };
    let (child, _) = fork_from_thread(kernel, parent, calling, mode)?;
    if !flags.files {
        // fork_from_thread copied the table; CLONE without FILES keeps it.
        // (Both semantics are "the child has the parent's descriptors";
        // the distinction Linux draws — live sharing — collapses to the
        // copy in this model, so nothing further to do.)
    }
    Ok(CloneResult::Process(child))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_mem::{Prot, Share};

    fn boot() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    #[test]
    fn thread_flag_makes_thread() {
        let (mut k, p) = boot();
        let r = clone(
            &mut k,
            p,
            CloneFlags {
                vm: true,
                sighand: true,
                thread: true,
                ..Default::default()
            },
        )
        .unwrap();
        match r {
            CloneResult::Thread(_) => {}
            CloneResult::Process(_) => panic!("expected a thread"),
        }
        assert_eq!(k.process(p).unwrap().threads.len(), 2);
        assert_eq!(k.process_count(), 1);
    }

    #[test]
    fn invalid_flag_combos_rejected() {
        let (mut k, p) = boot();
        assert_eq!(
            clone(
                &mut k,
                p,
                CloneFlags {
                    thread: true,
                    ..Default::default()
                }
            ),
            Err(Errno::Einval)
        );
        assert_eq!(
            clone(
                &mut k,
                p,
                CloneFlags {
                    sighand: true,
                    ..Default::default()
                }
            ),
            Err(Errno::Einval)
        );
        assert_eq!(
            clone(
                &mut k,
                p,
                CloneFlags {
                    thread: true,
                    vm: true,
                    ..Default::default()
                }
            ),
            Err(Errno::Einval),
            "CLONE_THREAD needs CLONE_SIGHAND too"
        );
    }

    #[test]
    fn vm_without_thread_shares_memory_across_processes() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 2, Prot::RW, Share::Private).unwrap();
        let r = clone(
            &mut k,
            p,
            CloneFlags {
                vm: true,
                ..Default::default()
            },
        )
        .unwrap();
        let c = match r {
            CloneResult::Process(c) => c,
            _ => unreachable!(),
        };
        k.write_mem(c, base, 11).unwrap();
        assert_eq!(k.read_mem(p, base), Ok(11), "CLONE_VM shares writes");
        assert_eq!(
            k.process(p).unwrap().schedulable_threads(),
            1,
            "no vfork park"
        );
    }

    #[test]
    fn vm_plus_vfork_parks_parent() {
        let (mut k, p) = boot();
        let r = clone(
            &mut k,
            p,
            CloneFlags {
                vm: true,
                vfork: true,
                ..Default::default()
            },
        )
        .unwrap();
        let c = match r {
            CloneResult::Process(c) => c,
            _ => unreachable!(),
        };
        assert_eq!(k.process(p).unwrap().schedulable_threads(), 0);
        k.exit(c, 0).unwrap();
        assert_eq!(k.process(p).unwrap().schedulable_threads(), 1);
    }

    #[test]
    fn pt_share_with_vm_rejected() {
        let (mut k, p) = boot();
        assert_eq!(
            clone(
                &mut k,
                p,
                CloneFlags {
                    vm: true,
                    pt_share: true,
                    ..Default::default()
                }
            ),
            Err(Errno::Einval),
            "nothing to defer when the space is shared outright"
        );
    }

    #[test]
    fn pt_share_clone_is_on_demand_fork() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 8, Prot::RW, Share::Private).unwrap();
        k.populate(p, base, 8).unwrap();
        k.write_mem(p, base, 5).unwrap();
        let used = k.phys.used_frames();
        let r = clone(
            &mut k,
            p,
            CloneFlags {
                pt_share: true,
                ..Default::default()
            },
        )
        .unwrap();
        let c = match r {
            CloneResult::Process(c) => c,
            _ => unreachable!(),
        };
        assert_eq!(k.phys.used_frames(), used, "no frames copied at clone");
        k.write_mem(c, base, 6).unwrap();
        assert_eq!(k.read_mem(p, base), Ok(5), "private copy, not shared");
        assert_eq!(k.read_mem(c, base), Ok(6));
    }

    #[test]
    fn plain_clone_is_fork() {
        let (mut k, p) = boot();
        let base = k.mmap_anon(p, 2, Prot::RW, Share::Private).unwrap();
        k.write_mem(p, base, 5).unwrap();
        let r = clone(&mut k, p, CloneFlags::default()).unwrap();
        let c = match r {
            CloneResult::Process(c) => c,
            _ => unreachable!(),
        };
        k.write_mem(c, base, 6).unwrap();
        assert_eq!(k.read_mem(p, base), Ok(5), "private copy, not shared");
    }

    #[test]
    fn clone_vm_without_files_starts_with_empty_fd_table() {
        let (mut k, p) = boot();
        let r = clone(
            &mut k,
            p,
            CloneFlags {
                vm: true,
                ..Default::default()
            },
        )
        .unwrap();
        let c = match r {
            CloneResult::Process(c) => c,
            _ => unreachable!(),
        };
        assert_eq!(k.process(c).unwrap().fds.open_count(), 0);
        let r2 = clone(
            &mut k,
            p,
            CloneFlags {
                vm: true,
                files: true,
                ..Default::default()
            },
        )
        .unwrap();
        let c2 = match r2 {
            CloneResult::Process(c) => c,
            _ => unreachable!(),
        };
        assert_eq!(k.process(c2).unwrap().fds.open_count(), 3);
    }
}
