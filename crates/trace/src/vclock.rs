//! Per-OS-thread virtual clock for the SMP driver.
//!
//! The simulator's notion of time is cycles charged to a kernel's
//! `Cycles` accumulator, which is single-threaded by construction. When real OS threads drive several kernel cells
//! concurrently, each thread needs its own monotone clock so that lock
//! hand-offs can be priced in *virtual* time — one host core can then
//! faithfully model an 8-core contention experiment (the CI container
//! has a single CPU, so wall-clock scaling is unmeasurable there).
//!
//! The clock is a plain thread-local counter:
//!
//! * `fpr_mem::Cycles::charge` advances it alongside every simulated
//!   cycle charge, so any work a thread performs moves its clock;
//! * [`crate::smp::VLock`] advances it across contended acquisitions
//!   (to the lock's release time), charging the wait the thread would
//!   have spent spinning on a real machine.
//!
//! Single-threaded callers never read it, so it is free to accumulate:
//! determinism of the existing experiments is untouched.
//!
//! ```
//! use fpr_trace::vclock;
//!
//! vclock::reset();
//! vclock::advance(100);
//! vclock::advance_to(50); // never moves backwards
//! assert_eq!(vclock::now(), 100);
//! vclock::advance_to(250);
//! assert_eq!(vclock::now(), 250);
//! ```

use std::cell::Cell;

thread_local! {
    static VCLOCK: Cell<u64> = const { Cell::new(0) };
}

/// This thread's current virtual time, in simulated cycles.
pub fn now() -> u64 {
    VCLOCK.with(|c| c.get())
}

/// Advances this thread's clock by `cycles` (saturating).
pub fn advance(cycles: u64) {
    if cycles == 0 {
        return;
    }
    VCLOCK.with(|c| c.set(c.get().saturating_add(cycles)));
}

/// Advances this thread's clock to at least `t`; never moves backwards.
pub fn advance_to(t: u64) {
    VCLOCK.with(|c| {
        if t > c.get() {
            c.set(t);
        }
    });
}

/// Resets this thread's clock to zero (storm drivers call this at the
/// start of each measured window).
pub fn reset() {
    VCLOCK.with(|c| c.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_and_reset() {
        reset();
        assert_eq!(now(), 0);
        advance(10);
        advance(0);
        assert_eq!(now(), 10);
        reset();
        assert_eq!(now(), 0);
    }

    #[test]
    fn advance_to_is_monotone() {
        reset();
        advance_to(100);
        advance_to(40);
        assert_eq!(now(), 100);
    }

    #[test]
    fn clocks_are_per_thread() {
        reset();
        advance(7);
        let other = std::thread::spawn(|| {
            advance(1000);
            now()
        })
        .join()
        .unwrap();
        assert_eq!(other, 1000);
        assert_eq!(now(), 7, "sibling thread cannot move this clock");
    }
}
