//! Workload generation: process shapes and memory-touch patterns.
//!
//! The experiments sweep over synthetic parents whose footprint and
//! behaviour are controlled. A [`ProcessShape`] says how big the parent
//! is; a [`TouchPattern`] says which of its pages a phase writes, which
//! drives the COW-fault-storm experiment.

use fpr_rng::Rng;

/// The memory shape of a synthetic parent process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessShape {
    /// Anonymous heap pages to map and populate.
    pub heap_pages: u64,
    /// Number of distinct VMAs the heap is split across (mapping-count
    /// cost, independent of page count).
    pub vma_count: u64,
    /// Open descriptors beyond stdio.
    pub extra_fds: u32,
    /// Extra threads beyond the main thread.
    pub extra_threads: u32,
}

impl ProcessShape {
    /// A shell-sized process: a few MiB, few descriptors.
    pub fn shell() -> ProcessShape {
        ProcessShape {
            heap_pages: 512,
            vma_count: 8,
            extra_fds: 4,
            extra_threads: 0,
        }
    }

    /// A server: hundreds of MiB, many descriptors, many threads.
    pub fn server() -> ProcessShape {
        ProcessShape {
            heap_pages: 65_536,
            vma_count: 64,
            extra_fds: 200,
            extra_threads: 16,
        }
    }

    /// A JVM-like giant: multi-GiB heap.
    pub fn jvm() -> ProcessShape {
        ProcessShape {
            heap_pages: 524_288,
            vma_count: 128,
            extra_fds: 64,
            extra_threads: 32,
        }
    }

    /// A shape with exactly `heap_pages` pages and defaults otherwise.
    pub fn with_heap(heap_pages: u64) -> ProcessShape {
        ProcessShape {
            heap_pages,
            vma_count: 8,
            extra_fds: 0,
            extra_threads: 0,
        }
    }

    /// Pages per VMA (at least one).
    pub fn pages_per_vma(&self) -> u64 {
        (self.heap_pages / self.vma_count.max(1)).max(1)
    }
}

/// Which pages a workload phase writes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TouchPattern {
    /// The first `fraction` of pages, in order.
    Sequential {
        /// Fraction of pages touched (0.0–1.0).
        fraction: f64,
    },
    /// A uniformly random `fraction` of pages.
    Random {
        /// Fraction of pages touched (0.0–1.0).
        fraction: f64,
        /// RNG seed.
        seed: u64,
    },
    /// A hot/cold pattern: the hot `hot_fraction` of pages absorbs
    /// `hot_share` of the touches.
    Zipfian {
        /// Total touches as a fraction of pages.
        fraction: f64,
        /// Fraction of pages that are hot.
        hot_fraction: f64,
        /// RNG seed.
        seed: u64,
    },
}

impl TouchPattern {
    /// Expands the pattern over `pages` pages into the ordered list of
    /// page offsets to write.
    pub fn expand(&self, pages: u64) -> Vec<u64> {
        match *self {
            TouchPattern::Sequential { fraction } => {
                let n = scaled(pages, fraction);
                (0..n).collect()
            }
            TouchPattern::Random { fraction, seed } => {
                let n = scaled(pages, fraction) as usize;
                let mut rng = Rng::seed_from_u64(seed);
                let mut all: Vec<u64> = (0..pages).collect();
                rng.shuffle(&mut all);
                all.truncate(n);
                all
            }
            TouchPattern::Zipfian {
                fraction,
                hot_fraction,
                seed,
            } => {
                let n = scaled(pages, fraction);
                let hot = scaled(pages, hot_fraction).max(1);
                let mut rng = Rng::seed_from_u64(seed);
                (0..n)
                    .map(|_| {
                        if rng.gen_bool(0.9) {
                            rng.gen_range(0, hot)
                        } else {
                            rng.gen_range(0, pages.max(1))
                        }
                    })
                    .collect()
            }
        }
    }

    /// Number of *distinct* pages the expansion touches.
    pub fn distinct_pages(&self, pages: u64) -> u64 {
        let mut v = self.expand(pages);
        v.sort_unstable();
        v.dedup();
        v.len() as u64
    }
}

fn scaled(pages: u64, fraction: f64) -> u64 {
    ((pages as f64) * fraction.clamp(0.0, 1.0)).round() as u64
}

/// The standard footprint sweep for Figure 1, in pages
/// (1 MiB → 4 GiB at 4 KiB pages, powers of 4).
pub fn fig1_footprints() -> Vec<u64> {
    vec![256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_scale_up() {
        assert!(ProcessShape::server().heap_pages > ProcessShape::shell().heap_pages);
        assert!(ProcessShape::jvm().heap_pages > ProcessShape::server().heap_pages);
        assert!(ProcessShape::with_heap(100).pages_per_vma() >= 1);
    }

    #[test]
    fn sequential_touch_is_prefix() {
        let t = TouchPattern::Sequential { fraction: 0.5 };
        assert_eq!(t.expand(10), vec![0, 1, 2, 3, 4]);
        assert_eq!(t.distinct_pages(10), 5);
    }

    #[test]
    fn random_touch_is_distinct_and_in_range() {
        let t = TouchPattern::Random {
            fraction: 0.3,
            seed: 7,
        };
        let v = t.expand(100);
        assert_eq!(v.len(), 30);
        assert!(v.iter().all(|p| *p < 100));
        assert_eq!(t.distinct_pages(100), 30, "random sample has no repeats");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = TouchPattern::Random {
            fraction: 0.5,
            seed: 1,
        }
        .expand(50);
        let b = TouchPattern::Random {
            fraction: 0.5,
            seed: 1,
        }
        .expand(50);
        let c = TouchPattern::Random {
            fraction: 0.5,
            seed: 2,
        }
        .expand(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zipfian_concentrates_on_hot_set() {
        let t = TouchPattern::Zipfian {
            fraction: 1.0,
            hot_fraction: 0.1,
            seed: 3,
        };
        let v = t.expand(1000);
        let hot_hits = v.iter().filter(|p| **p < 100).count();
        assert!(
            hot_hits as f64 / v.len() as f64 > 0.8,
            "hot set under-hit: {hot_hits}"
        );
        assert!(t.distinct_pages(1000) < 500, "zipfian repeats pages");
    }

    #[test]
    fn fraction_clamped() {
        assert_eq!(
            TouchPattern::Sequential { fraction: 2.0 }.expand(4),
            vec![0, 1, 2, 3]
        );
        assert!(TouchPattern::Sequential { fraction: -1.0 }
            .expand(4)
            .is_empty());
    }

    #[test]
    fn fig1_sweep_is_increasing() {
        let f = fig1_footprints();
        assert!(f.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*f.first().unwrap(), 256); // 1 MiB
        assert_eq!(*f.last().unwrap(), 1_048_576); // 4 GiB
    }
}
