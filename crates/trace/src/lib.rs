//! # fpr-trace — runtime observability, workloads, and experiment records
//!
//! Two halves, one crate:
//!
//! * **Runtime observability** — the measurement substrate every other
//!   crate threads through:
//!   - [`event`]: structured [`TraceEvent`]s (spans, instants, counters)
//!     whose timestamps are deterministic simulated cycles;
//!   - [`sink`]: a scoped thread-local collector ([`sink::with_sink`])
//!     that records events around one operation, mirrors every
//!     `fpr_faults` crossing as a `fault.<site>` event, and costs one
//!     flag check when inactive;
//!   - [`metrics`]: always-on counters and log-scale histograms, read by
//!     snapshot-diff ([`metrics::Snapshot::delta`]); thread-local on the
//!     hot path, with a process-wide merge ([`metrics::flush`] /
//!     [`metrics::global_snapshot`]) and per-named-lock contention
//!     tallies ([`metrics::lock_stats`]) for multithreaded drivers;
//!   - [`vclock`] and [`smp`]: the per-thread virtual clock and the
//!     named virtual-time lock ([`smp::VLock`]) the SMP experiments
//!     price contention with;
//!   - [`chrome`]: a Chrome trace-event / Perfetto JSON exporter;
//!   - [`report`]: a flamegraph-style text cost-attribution report.
//!
//! * **Benchmark plumbing** — [`workload`] generates the synthetic
//!   parents and touch patterns every experiment sweeps over; [`records`]
//!   defines the figure/table result types all bench binaries print and
//!   serialise, so EXPERIMENTS.md can be regenerated mechanically;
//!   [`json`] is the hermetic JSON value type both halves serialise
//!   through (the workspace uses no external crates).
//!
//! See `docs/OBSERVABILITY.md` for the full model and a worked
//! Chrome-trace example.
//!
//! ```
//! use fpr_trace::{chrome, json, metrics, sink};
//!
//! let before = metrics::snapshot();
//! let ((), events) = sink::with_sink(|| {
//!     sink::span_begin("fork", "api", 0);
//!     metrics::add("mem.fork.pte_copy", 259);
//!     sink::span_end("fork", 12_258);
//! });
//! assert_eq!(metrics::snapshot().delta(&before).counter("mem.fork.pte_copy"), 259);
//! let doc = json::parse(&chrome::to_chrome_string(&events, 3_000)).unwrap();
//! assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 2);
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod records;
pub mod report;
pub mod sink;
pub mod smp;
pub mod vclock;
pub mod workload;

pub use chrome::CYCLES_PER_US;
pub use event::{ArgValue, Phase, TraceEvent};
pub use records::{FigureData, Point, Series, TableData};
pub use workload::{fig1_footprints, ProcessShape, TouchPattern};
