//! # fpr-trace — workloads and experiment records
//!
//! [`workload`] generates the synthetic parents and touch patterns every
//! experiment sweeps over; [`records`] defines the figure/table result
//! types all bench binaries print and serialise, so EXPERIMENTS.md can be
//! regenerated mechanically.

pub mod json;
pub mod records;
pub mod workload;

pub use records::{FigureData, Point, Series, TableData};
pub use workload::{fig1_footprints, ProcessShape, TouchPattern};
