//! Flamegraph-style text report: pairs span begin/end events into a
//! tree and attributes cycle cost to each frame.
//!
//! For every span the report shows *total* cycles (end minus begin) and
//! *self* cycles (total minus the children's totals) — the number that
//! tells you where time actually went, which is the paper's point about
//! fork: the cost hides in page-table walks nested three spans deep.
//!
//! ```
//! use fpr_trace::{report, sink};
//!
//! let ((), events) = sink::with_sink(|| {
//!     sink::span_begin("fork", "api", 0);
//!     sink::span_begin("clone_address_space", "mem", 400);
//!     sink::span_end("clone_address_space", 10_000);
//!     sink::span_end("fork", 12_000);
//! });
//! let tree = report::build_tree(&events);
//! assert_eq!(tree.len(), 1);
//! assert_eq!(tree[0].total(), 12_000);
//! assert_eq!(tree[0].self_cycles(), 2_400);
//! let text = report::render(&events, 3_000);
//! assert!(text.contains("clone_address_space"));
//! ```

use crate::event::{Phase, TraceEvent};

/// One node of the reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Category of the begin event.
    pub cat: &'static str,
    /// Begin timestamp (cycles).
    pub start: u64,
    /// End timestamp (cycles).
    pub end: u64,
    /// Nested child spans, in order.
    pub children: Vec<SpanNode>,
    /// Instant events that fired inside this span (excluding ones
    /// attributed to a deeper child).
    pub instants: u64,
}

impl SpanNode {
    /// Total cycles spent in the span, children included.
    pub fn total(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Cycles spent in the span itself, children excluded.
    pub fn self_cycles(&self) -> u64 {
        let children: u64 = self.children.iter().map(|c| c.total()).sum();
        self.total().saturating_sub(children)
    }
}

/// Reconstructs the span forest from an event stream. Unbalanced input
/// is tolerated: an unmatched `End` is dropped, an unmatched `Begin` is
/// closed at the last timestamp seen (so a partial trace still reports).
pub fn build_tree(events: &[TraceEvent]) -> Vec<SpanNode> {
    let mut roots: Vec<SpanNode> = Vec::new();
    let mut stack: Vec<SpanNode> = Vec::new();
    let mut last_ts = 0u64;
    for ev in events {
        last_ts = last_ts.max(ev.ts);
        match ev.ph {
            Phase::Begin => stack.push(SpanNode {
                name: ev.name.clone(),
                cat: ev.cat,
                start: ev.ts,
                end: ev.ts,
                children: Vec::new(),
                instants: 0,
            }),
            Phase::End => {
                if let Some(mut node) = stack.pop() {
                    node.end = ev.ts;
                    attach(&mut roots, &mut stack, node);
                }
            }
            Phase::Instant => {
                if let Some(open) = stack.last_mut() {
                    open.instants += 1;
                }
            }
            Phase::Counter => {}
        }
    }
    while let Some(mut node) = stack.pop() {
        node.end = last_ts;
        attach(&mut roots, &mut stack, node);
    }
    roots
}

fn attach(roots: &mut Vec<SpanNode>, stack: &mut [SpanNode], node: SpanNode) {
    match stack.last_mut() {
        Some(parent) => parent.children.push(node),
        None => roots.push(node),
    }
}

/// Renders the cost-attribution report: one line per span frame,
/// indented by depth, with total/self cycles and the share of the
/// outermost span's total.
pub fn render(events: &[TraceEvent], cycles_per_us: u64) -> String {
    let roots = build_tree(events);
    let grand: u64 = roots.iter().map(|r| r.total()).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "# cost attribution ({} cycles = 1 us; {} events, {} root spans)\n",
        cycles_per_us,
        events.len(),
        roots.len()
    ));
    out.push_str(&format!(
        "{:<44} {:>12} {:>12} {:>7}\n",
        "span", "total", "self", "%"
    ));
    for root in &roots {
        render_node(&mut out, root, 0, grand.max(1));
    }
    out
}

fn render_node(out: &mut String, node: &SpanNode, depth: usize, grand: u64) {
    let label = format!(
        "{}{}{}",
        "  ".repeat(depth),
        node.name,
        if node.instants > 0 {
            format!(" [{}i]", node.instants)
        } else {
            String::new()
        }
    );
    out.push_str(&format!(
        "{:<44} {:>12} {:>12} {:>6.1}%\n",
        label,
        node.total(),
        node.self_cycles(),
        100.0 * node.total() as f64 / grand as f64
    ));
    for c in &node.children {
        render_node(out, c, depth + 1, grand);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, ph: Phase, ts: u64) -> TraceEvent {
        TraceEvent::new(name, "api", ph, ts)
    }

    #[test]
    fn nested_spans_become_a_tree_with_self_cost() {
        let events = vec![
            ev("a", Phase::Begin, 0),
            ev("b", Phase::Begin, 10),
            ev("x", Phase::Instant, 15),
            ev("b", Phase::End, 30),
            ev("c", Phase::Begin, 40),
            ev("c", Phase::End, 90),
            ev("a", Phase::End, 100),
        ];
        let tree = build_tree(&events);
        assert_eq!(tree.len(), 1);
        let a = &tree[0];
        assert_eq!(a.total(), 100);
        assert_eq!(a.children.len(), 2);
        assert_eq!(a.children[0].total(), 20);
        assert_eq!(a.children[0].instants, 1);
        assert_eq!(a.self_cycles(), 100 - 20 - 50);
    }

    #[test]
    fn unmatched_begin_closed_at_last_ts() {
        let events = vec![ev("a", Phase::Begin, 0), ev("b", Phase::Instant, 70)];
        let tree = build_tree(&events);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].total(), 70);
    }

    #[test]
    fn unmatched_end_is_dropped() {
        let events = vec![ev("a", Phase::End, 10)];
        assert!(build_tree(&events).is_empty());
    }

    #[test]
    fn render_includes_header_and_percentages() {
        let events = vec![
            ev("fork", Phase::Begin, 0),
            ev("pt", Phase::Begin, 100),
            ev("pt", Phase::End, 900),
            ev("fork", Phase::End, 1000),
        ];
        let text = render(&events, 3000);
        assert!(text.contains("cost attribution"));
        assert!(text.contains("fork"));
        assert!(text.contains("100.0%"));
        assert!(text.contains("80.0%"), "pt is 80% of the root:\n{text}");
    }
}
