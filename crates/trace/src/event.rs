//! Structured trace events: the vocabulary every span, instant marker,
//! and counter sample shares.
//!
//! Events deliberately mirror the Chrome trace-event format (`ph`, `ts`,
//! `cat`, `args`) so the [`crate::chrome`] exporter is a straight
//! serialisation, but they are plain data — sinks, tests, and reports
//! consume them directly without going through JSON.
//!
//! Timestamps are **simulated cycles** (the kernel's deterministic cycle
//! accumulator), not wall-clock time; the exporter scales them to the
//! microseconds Chrome expects.

/// Event phase, matching the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`): a nested duration starts.
    Begin,
    /// Span end (`"E"`): the innermost open duration ends.
    End,
    /// Instant event (`"I"`): a point marker (fault hits, aborts).
    Instant,
    /// Counter sample (`"C"`): a named value at a point in time.
    Counter,
}

impl Phase {
    /// The Chrome trace-event `ph` letter.
    ///
    /// ```
    /// assert_eq!(fpr_trace::Phase::Begin.letter(), "B");
    /// assert_eq!(fpr_trace::Phase::Counter.letter(), "C");
    /// ```
    pub fn letter(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "I",
            Phase::Counter => "C",
        }
    }
}

/// One argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer (counts, cycles, pids).
    U64(u64),
    /// A floating-point value (ratios, percentages).
    F64(f64),
    /// A string (mode names, paths).
    Str(String),
    /// A boolean flag.
    Bool(bool),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::F64(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> ArgValue {
        ArgValue::Bool(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// One trace event emitted by the runtime sink.
///
/// ```
/// use fpr_trace::{ArgValue, Phase, TraceEvent};
///
/// let ev = TraceEvent::new("fork", "api", Phase::Begin, 350)
///     .arg("mode", "cow")
///     .arg("parent", 1u64);
/// assert_eq!(ev.ts, 350);
/// assert_eq!(ev.arg_u64("parent"), Some(1));
/// assert_eq!(ev.args.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (`"fork"`, `"clone_address_space"`, `"fault.frame_alloc"`).
    pub name: String,
    /// Category: the subsystem that emitted it (`"api"`, `"mem"`,
    /// `"kernel"`, `"exec"`, `"fault"`).
    pub cat: &'static str,
    /// Phase (begin/end/instant/counter).
    pub ph: Phase,
    /// Timestamp in simulated cycles.
    pub ts: u64,
    /// Arguments, in insertion order.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// Creates an event with no arguments.
    pub fn new(name: impl Into<String>, cat: &'static str, ph: Phase, ts: u64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat,
            ph,
            ts,
            args: Vec::new(),
        }
    }

    /// Attaches one argument (builder style).
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> TraceEvent {
        self.args.push((key, value.into()));
        self
    }

    /// Looks up an argument as a `u64`, if present and numeric.
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
            ArgValue::U64(n) => Some(*n),
            _ => None,
        })
    }

    /// Looks up an argument as a string slice, if present.
    pub fn arg_str(&self, key: &str) -> Option<&str> {
        self.args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
            ArgValue::Str(s) => Some(s.as_str()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_letters_match_chrome() {
        assert_eq!(Phase::Begin.letter(), "B");
        assert_eq!(Phase::End.letter(), "E");
        assert_eq!(Phase::Instant.letter(), "I");
        assert_eq!(Phase::Counter.letter(), "C");
    }

    #[test]
    fn arg_lookup_by_key_and_type() {
        let ev = TraceEvent::new("x", "api", Phase::Instant, 7)
            .arg("count", 3u64)
            .arg("mode", "eager")
            .arg("ok", true);
        assert_eq!(ev.arg_u64("count"), Some(3));
        assert_eq!(ev.arg_str("mode"), Some("eager"));
        assert_eq!(ev.arg_u64("mode"), None);
        assert_eq!(ev.arg_u64("missing"), None);
    }
}
