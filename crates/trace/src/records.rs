//! Result records for figures and tables.
//!
//! Every bench binary produces one of these and renders it the same way,
//! so EXPERIMENTS.md rows can be regenerated mechanically and diffed.

use crate::json::{self, Value};
use std::fmt::Write as _;

/// One (x, y) measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Independent variable (e.g. parent footprint in MiB).
    pub x: f64,
    /// Dependent variable (e.g. latency in µs).
    pub y: f64,
}

/// One line of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Measurements in x order.
    pub points: Vec<Point>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(Point { x, y });
    }

    /// y value at the largest x.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|p| p.y)
    }

    /// y value at the smallest x.
    pub fn first_y(&self) -> Option<f64> {
        self.points.first().map(|p| p.y)
    }

    /// Ratio of last to first y — the growth factor across the sweep.
    pub fn growth_factor(&self) -> Option<f64> {
        match (self.first_y(), self.last_y()) {
            (Some(a), Some(b)) if a > 0.0 => Some(b / a),
            _ => None,
        }
    }
}

/// A figure: several series over a shared x axis.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Identifier, e.g. "fig1".
    pub id: String,
    /// Title as printed.
    pub title: String,
    /// x-axis label.
    pub xlabel: String,
    /// y-axis label.
    pub ylabel: String,
    /// The lines.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, xlabel: &str, ylabel: &str) -> FigureData {
        FigureData {
            id: id.to_string(),
            title: title.to_string(),
            xlabel: xlabel.to_string(),
            ylabel: ylabel.to_string(),
            series: Vec::new(),
        }
    }

    /// Looks up a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders the figure as an aligned text table (x column + one column
    /// per series).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = write!(out, "{:>14}", self.xlabel);
        for s in &self.series {
            let _ = write!(out, "{:>16}", s.label);
        }
        let _ = writeln!(out, "    ({})", self.ylabel);
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.x).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{:>14.3}", x);
            for s in &self.series {
                match s.points.get(i) {
                    Some(p) => {
                        let _ = write!(out, "{:>16.3}", p.y);
                    }
                    None => {
                        let _ = write!(out, "{:>16}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        Value::Obj(vec![
            ("id".into(), Value::Str(self.id.clone())),
            ("title".into(), Value::Str(self.title.clone())),
            ("xlabel".into(), Value::Str(self.xlabel.clone())),
            ("ylabel".into(), Value::Str(self.ylabel.clone())),
            (
                "series".into(),
                Value::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Value::Obj(vec![
                                ("label".into(), Value::Str(s.label.clone())),
                                (
                                    "points".into(),
                                    Value::Arr(
                                        s.points
                                            .iter()
                                            .map(|p| {
                                                Value::Obj(vec![
                                                    ("x".into(), Value::Num(p.x)),
                                                    ("y".into(), Value::Num(p.y)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .pretty()
    }

    /// Parses the JSON produced by [`FigureData::to_json`].
    pub fn from_json(text: &str) -> Result<FigureData, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let field = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{k}'"))
        };
        let mut fig = FigureData {
            id: field("id")?,
            title: field("title")?,
            xlabel: field("xlabel")?,
            ylabel: field("ylabel")?,
            series: Vec::new(),
        };
        for s in v
            .get("series")
            .and_then(Value::as_arr)
            .ok_or("missing 'series' array")?
        {
            let mut series = Series::new(
                s.get("label")
                    .and_then(Value::as_str)
                    .ok_or("series missing 'label'")?,
            );
            for p in s
                .get("points")
                .and_then(Value::as_arr)
                .ok_or("series missing 'points'")?
            {
                let coord = |k: &str| {
                    p.get(k)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("point missing '{k}'"))
                };
                series.push(coord("x")?, coord("y")?);
            }
            fig.series.push(series);
        }
        Ok(fig)
    }
}

/// A table: column headers and string rows.
#[derive(Debug, Clone, PartialEq)]
pub struct TableData {
    /// Identifier, e.g. "tab_overcommit".
    pub id: String,
    /// Title as printed.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (same arity as `columns`).
    pub rows: Vec<Vec<String>>,
}

impl TableData {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> TableData {
        TableData {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        for (i, c) in self.columns.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
        }
        let _ = writeln!(out);
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        let strs = |xs: &[String]| Value::Arr(xs.iter().cloned().map(Value::Str).collect());
        Value::Obj(vec![
            ("id".into(), Value::Str(self.id.clone())),
            ("title".into(), Value::Str(self.title.clone())),
            ("columns".into(), strs(&self.columns)),
            (
                "rows".into(),
                Value::Arr(self.rows.iter().map(|r| strs(r)).collect()),
            ),
        ])
        .pretty()
    }

    /// Parses the JSON produced by [`TableData::to_json`].
    pub fn from_json(text: &str) -> Result<TableData, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let str_arr = |val: &Value, what: &str| -> Result<Vec<String>, String> {
            val.as_arr()
                .ok_or_else(|| format!("'{what}' is not an array"))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("non-string in '{what}'"))
                })
                .collect()
        };
        Ok(TableData {
            id: v
                .get("id")
                .and_then(Value::as_str)
                .ok_or("missing 'id'")?
                .to_string(),
            title: v
                .get("title")
                .and_then(Value::as_str)
                .ok_or("missing 'title'")?
                .to_string(),
            columns: str_arr(v.get("columns").ok_or("missing 'columns'")?, "columns")?,
            rows: v
                .get("rows")
                .and_then(Value::as_arr)
                .ok_or("missing 'rows'")?
                .iter()
                .map(|r| str_arr(r, "rows"))
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_growth_factor() {
        let mut s = Series::new("fork");
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        s.push(4.0, 80.0);
        assert_eq!(s.growth_factor(), Some(8.0));
        assert_eq!(s.first_y(), Some(10.0));
        assert_eq!(s.last_y(), Some(80.0));
    }

    #[test]
    fn figure_render_aligns_series() {
        let mut f = FigureData::new("fig1", "latency", "MiB", "us");
        let mut a = Series::new("fork");
        a.push(1.0, 2.0);
        a.push(2.0, 4.0);
        let mut b = Series::new("spawn");
        b.push(1.0, 3.0);
        b.push(2.0, 3.0);
        f.series.push(a);
        f.series.push(b);
        let r = f.render();
        assert!(r.contains("fig1"));
        assert!(r.contains("fork"));
        assert!(r.contains("spawn"));
        assert_eq!(r.lines().count(), 4);
        assert!(f.series("fork").is_some());
        assert!(f.series("nope").is_none());
    }

    #[test]
    fn figure_json_roundtrip() {
        let mut f = FigureData::new("f", "t", "x", "y");
        let mut s = Series::new("a");
        s.push(1.0, 1.5);
        f.series.push(s);
        let j = f.to_json();
        let back = FigureData::from_json(&j).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn table_render_and_arity() {
        let mut t = TableData::new("tab", "demo", &["policy", "result"]);
        t.push_row(vec!["never".into(), "ENOMEM".into()]);
        t.push_row(vec!["always".into(), "OOM-kill".into()]);
        let r = t.render();
        assert!(r.contains("policy"));
        assert!(r.contains("OOM-kill"));
        let back = TableData::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn bad_row_arity_panics() {
        let mut t = TableData::new("tab", "demo", &["one", "two"]);
        t.push_row(vec!["only-one".into()]);
    }
}
