//! A minimal JSON value type, parser, and pretty-printer.
//!
//! The workspace builds hermetically (no external crates), so the result
//! records serialise through this instead of serde. The printer matches
//! the layout the previous serde_json output used — two-space indents,
//! struct-declaration field order — so `results/*.json` files stay
//! diffable across the switch. The parser accepts standard JSON,
//! including `\u` surrogate pairs for characters beyond the BMP (which
//! Chrome trace viewers emit when they re-save a trace); lone surrogates
//! are rejected as malformed.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    out.push_str(&pad);
                    v.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        // Integral values print without a trailing ".0", matching
        // serde_json's integer formatting for whole numbers.
        let _ = write!(out, "{:.1}", n);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            match code {
                                // High surrogate: must be followed by a
                                // `\u`-escaped low surrogate; the pair
                                // encodes one supplementary-plane char.
                                0xD800..=0xDBFF => {
                                    if self.peek() != Some(b'\\') {
                                        return Err(self.err("lone high surrogate"));
                                    }
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.err("lone high surrogate"));
                                    }
                                    self.pos += 1;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low - 0xDC00);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| self.err("bad surrogate pair"))?,
                                    );
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(self.err("lone low surrogate"));
                                }
                                _ => out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("bad \\u escape"))?,
                                ),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits (the payload of a `\u` escape).
    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("short \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let v = Value::Obj(vec![
            ("id".into(), Value::Str("fig1".into())),
            (
                "series".into(),
                Value::Arr(vec![Value::Obj(vec![
                    ("label".into(), Value::Str("fork \"cow\"".into())),
                    ("y".into(), Value::Num(12.5)),
                ])]),
            ),
            ("empty".into(), Value::Arr(vec![])),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
        ]);
        let text = v.pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s": "a\nb\t\"c\" éé"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\nb\t\"c\" éé");
    }

    #[test]
    fn numbers_integral_and_fractional() {
        let v = parse("[1, -2.5, 1e3, 0.125]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(a[3].as_f64(), Some(0.125));
    }

    #[test]
    fn surrogate_pairs_decode_beyond_the_bmp() {
        // U+1F600 GRINNING FACE, as Chrome's trace viewer re-saves it.
        let v = parse(r#"{"s": "\ud83d\ude00 ok"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "\u{1F600} ok");
        // U+10000, the first supplementary-plane character.
        let v = parse(r#""\ud800\udc00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{10000}");
        // U+10FFFF, the last one.
        let v = parse(r#""\udbff\udfff""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{10FFFF}");
    }

    #[test]
    fn supplementary_plane_strings_round_trip() {
        let v = Value::Obj(vec![(
            "emoji".into(),
            Value::Str("tra\u{1F600}ce \u{10FFFF}".into()),
        )]);
        let text = v.pretty();
        assert_eq!(parse(&text).unwrap(), v);
        // And an escaped form parses to the same value the raw form does.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            parse("\"\u{1F600}\"").unwrap()
        );
    }

    #[test]
    fn lone_surrogates_rejected() {
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\ud83d z""#).is_err(), "high not followed by \\u");
        assert!(parse(r#""\ude00""#).is_err(), "lone low surrogate");
        assert!(parse(r#""\ud83dA""#).is_err(), "high + non-surrogate");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("{} extra").is_err());
    }
}
