//! The runtime trace sink: a thread-local collector for structured
//! events emitted by instrumented kernel paths.
//!
//! Mirrors the scoping model of `fpr_faults::with_plan`: a sink is
//! installed for the dynamic extent of one operation with [`with_sink`],
//! which returns the operation's result together with every event
//! emitted inside the scope. Outside a scope every emit function is a
//! no-op costing one thread-local flag check, so instrumentation can sit
//! on hot paths (COW breaks, PTE copies) without perturbing the cycle
//! model — tracing charges **zero** simulated cycles by construction.
//!
//! While a sink is active, a `fpr_faults` observer is installed so every
//! fault-site crossing is mirrored as an instant event named
//! `fault.<site>` in category `"fault"` — no fault path is silent.
//!
//! ```
//! use fpr_trace::{sink, Phase};
//!
//! let ((), events) = sink::with_sink(|| {
//!     sink::span_begin("fork", "api", 100);
//!     sink::instant("cow_break", "mem", 150);
//!     sink::span_end("fork", 200);
//! });
//! assert_eq!(events.len(), 3);
//! assert_eq!(events[0].ph, Phase::Begin);
//! assert_eq!(events[2].ph, Phase::End);
//! assert!(!sink::is_active(), "sink is scoped");
//! ```

use crate::event::{Phase, TraceEvent};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

struct SinkState {
    events: Vec<TraceEvent>,
    last_ts: u64,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static SINK: RefCell<Option<SinkState>> = const { RefCell::new(None) };
}

/// Process-wide tally of events recorded by every thread's sink — the
/// sink's `Sync` surface. The per-thread collector itself stays
/// thread-local (events are returned to the scope that opened the sink),
/// so concurrent cells never share event buffers; this counter is what a
/// multithreaded driver can observe globally.
static EVENTS_RECORDED: AtomicU64 = AtomicU64::new(0);

/// Total events recorded across all threads since process start.
pub fn events_recorded_total() -> u64 {
    EVENTS_RECORDED.load(Ordering::Relaxed)
}

/// True while a [`with_sink`] scope is active on this thread.
///
/// Instrumentation uses this to skip argument construction entirely when
/// nothing is listening:
///
/// ```
/// use fpr_trace::{sink, Phase, TraceEvent};
///
/// // Outside a scope: the check is one thread-local read.
/// if sink::is_active() {
///     sink::emit(TraceEvent::new("expensive", "mem", Phase::Instant, 0));
/// }
/// ```
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// The timestamp of the most recently emitted event (0 before any).
///
/// Used by emitters that have no cycle accumulator in reach — e.g. the
/// fault observer — to stamp events with the best-known current time.
pub fn last_ts() -> u64 {
    SINK.with(|s| s.borrow().as_ref().map(|st| st.last_ts).unwrap_or(0))
}

/// Records `ev` if a sink is active; otherwise drops it.
pub fn emit(ev: TraceEvent) {
    if !is_active() {
        return;
    }
    SINK.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.last_ts = st.last_ts.max(ev.ts);
            st.events.push(ev);
            EVENTS_RECORDED.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Opens a span: emits a `Begin` event at `ts`.
pub fn span_begin(name: &'static str, cat: &'static str, ts: u64) {
    if is_active() {
        emit(TraceEvent::new(name, cat, Phase::Begin, ts));
    }
}

/// Closes the innermost span: emits an `End` event at `ts`. Callers are
/// responsible for balance — the canonical pattern wraps a whole
/// function body so every early return still passes through the end:
///
/// ```
/// use fpr_trace::sink;
///
/// fn fallible(fail: bool) -> Result<(), ()> {
///     if fail { Err(()) } else { Ok(()) }
/// }
///
/// fn traced(fail: bool) -> Result<(), ()> {
///     sink::span_begin("op", "api", 10);
///     let r = fallible(fail);
///     sink::span_end("op", 20);
///     r
/// }
///
/// let (res, events) = sink::with_sink(|| traced(true));
/// assert!(res.is_err());
/// assert_eq!(events.len(), 2, "balanced even on the error path");
/// ```
pub fn span_end(name: &'static str, ts: u64) {
    if is_active() {
        emit(TraceEvent::new(name, "", Phase::End, ts));
    }
}

/// Emits an instant (point) event.
pub fn instant(name: impl Into<String>, cat: &'static str, ts: u64) {
    if is_active() {
        emit(TraceEvent::new(name, cat, Phase::Instant, ts));
    }
}

/// Emits a counter sample: `name` takes `value` at time `ts`.
pub fn counter(name: &'static str, ts: u64, value: u64) {
    if is_active() {
        emit(TraceEvent::new(name, "metric", Phase::Counter, ts).arg("value", value));
    }
}

/// Runs `f` with a fresh sink installed, returning its result and every
/// event emitted during the scope, in order. Scopes do not nest — a
/// nested call panics, mirroring `fpr_faults::with_plan`.
///
/// A fault observer is installed for the scope (and the previous one
/// restored afterwards, even on panic), so each `fpr_faults` crossing
/// appears as an instant event `fault.<site>` with `occurrence` and
/// `injected` arguments.
pub fn with_sink<R>(f: impl FnOnce() -> R) -> (R, Vec<TraceEvent>) {
    assert!(!is_active(), "fpr-trace: with_sink scopes do not nest");
    SINK.with(|s| {
        *s.borrow_mut() = Some(SinkState {
            events: Vec::new(),
            last_ts: 0,
        });
    });
    ACTIVE.with(|a| a.set(true));
    let prev_observer = fpr_faults::set_observer(Some(Box::new(|site, occurrence, injected| {
        if is_active() {
            let ts = last_ts();
            emit(
                TraceEvent::new(format!("fault.{site}"), "fault", Phase::Instant, ts)
                    .arg("occurrence", occurrence)
                    .arg("injected", injected),
            );
        }
    })));
    // The guard tears the sink down even if `f` panics, or later scopes
    // on this thread would inherit a stale observer and a poisoned flag.
    struct Teardown(Option<fpr_faults::Observer>);
    impl Drop for Teardown {
        fn drop(&mut self) {
            ACTIVE.with(|a| a.set(false));
            SINK.with(|s| *s.borrow_mut() = None);
            fpr_faults::set_observer(self.0.take());
        }
    }
    let mut guard = Teardown(prev_observer);
    let out = f();
    let events = SINK.with(|s| {
        s.borrow_mut()
            .take()
            .map(|st| st.events)
            .unwrap_or_default()
    });
    ACTIVE.with(|a| a.set(false));
    fpr_faults::set_observer(guard.0.take());
    std::mem::forget(guard);
    (out, events)
}

/// Convenience: true if `events` is a balanced span sequence — every
/// `End` matches the innermost open `Begin` by name, and nothing stays
/// open. Instants and counters are ignored.
///
/// ```
/// use fpr_trace::{sink, Phase, TraceEvent};
///
/// let ok = vec![
///     TraceEvent::new("a", "api", Phase::Begin, 0),
///     TraceEvent::new("b", "mem", Phase::Begin, 1),
///     TraceEvent::new("b", "", Phase::End, 2),
///     TraceEvent::new("a", "", Phase::End, 3),
/// ];
/// assert!(sink::spans_balanced(&ok));
/// assert!(!sink::spans_balanced(&ok[..3]));
/// ```
pub fn spans_balanced(events: &[TraceEvent]) -> bool {
    let mut stack: Vec<&str> = Vec::new();
    for ev in events {
        match ev.ph {
            Phase::Begin => stack.push(&ev.name),
            // The guard pops unconditionally on `End`: a matching name
            // falls through to the no-op arm with the stack advanced.
            Phase::End if stack.pop() != Some(ev.name.as_str()) => return false,
            _ => {}
        }
    }
    stack.is_empty()
}

/// Convenience filter: events in category `cat`.
pub fn in_category<'a>(events: &'a [TraceEvent], cat: &str) -> Vec<&'a TraceEvent> {
    events.iter().filter(|e| e.cat == cat).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_sink_drops_events() {
        emit(TraceEvent::new("x", "api", Phase::Instant, 1));
        let ((), events) = with_sink(|| {});
        assert!(events.is_empty());
    }

    #[test]
    fn recorded_events_tick_the_global_counter() {
        let before = events_recorded_total();
        let ((), events) = with_sink(|| {
            instant("a", "api", 1);
            instant("b", "api", 2);
        });
        assert_eq!(events.len(), 2);
        // ≥, not ==: sibling test threads record concurrently.
        assert!(events_recorded_total() >= before + 2);
    }

    #[test]
    fn events_recorded_in_order_with_last_ts() {
        let ((), events) = with_sink(|| {
            span_begin("outer", "api", 10);
            span_begin("inner", "mem", 20);
            assert_eq!(last_ts(), 20);
            counter("frames", 25, 4);
            span_end("inner", 30);
            span_end("outer", 40);
        });
        assert_eq!(events.len(), 5);
        assert!(spans_balanced(&events));
        assert_eq!(events[2].ph, Phase::Counter);
        assert_eq!(events[2].arg_u64("value"), Some(4));
    }

    #[test]
    fn fault_crossings_mirror_as_events() {
        let ((), events) = with_sink(|| {
            span_begin("op", "api", 100);
            let _ = fpr_faults::cross(fpr_faults::FaultSite::FrameAlloc);
            span_end("op", 200);
        });
        let faults = in_category(&events, "fault");
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].name, "fault.frame_alloc");
        assert_eq!(faults[0].ts, 100, "stamped with last known time");
    }

    #[test]
    fn unbalanced_sequences_detected() {
        let evs = vec![
            TraceEvent::new("a", "api", Phase::Begin, 0),
            TraceEvent::new("b", "", Phase::End, 1),
        ];
        assert!(!spans_balanced(&evs));
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn nested_sinks_panic() {
        let _ = with_sink(|| with_sink(|| {}));
    }

    #[test]
    fn sink_cleared_even_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            let _ = with_sink(|| panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(!is_active());
        let ((), events) = with_sink(|| instant("after", "api", 1));
        assert_eq!(events.len(), 1);
    }
}
