//! Hermetic metrics: named counters and log-scale histograms, kept in a
//! thread-local registry that is always on.
//!
//! Unlike the scoped [`crate::sink`], metrics accumulate continuously —
//! the intended pattern is *snapshot-diff*: take a [`snapshot`] before an
//! operation, another after, and [`Snapshot::delta`] isolates exactly the
//! work that operation performed. `tab_fork_breakdown` reconstructs its
//! entire cost decomposition this way, with no bespoke counters in the
//! experiment code.
//!
//! Counter names are namespaced `&'static str` keys —
//! `"mem.fork.pte_copy"`, `"kernel.fd_clone"`, `"exec.image_load"` — so
//! the registry needs no registration step and no allocation per update.
//! Histograms bucket by `floor(log2(value))`, which spans the full `u64`
//! range in 65 buckets: right for latency-like quantities that vary over
//! orders of magnitude.
//!
//! Updating a metric charges **zero** simulated cycles: the cycle model
//! is never touched from this module.
//!
//! The registry is `Sync` in layers: the hot path stays thread-local
//! (no atomics on per-page counters), and two process-wide surfaces sit
//! behind it for the SMP driver — [`flush`] merges a thread's registry
//! into a global [`Snapshot`] (worker threads flush before joining, the
//! driver reads [`global_snapshot`]), and [`lock_contended`] /
//! [`lock_stats`] keep per-named-lock contention tallies (`mm`, `pid`,
//! `buddy`, `tlb`) that [`crate::smp::VLock`] records into on every
//! contended acquisition.
//!
//! ```
//! use fpr_trace::metrics;
//!
//! let before = metrics::snapshot();
//! metrics::add("mem.fork.pte_copy", 259);
//! metrics::observe("api.fork_cycles", 12_258);
//! let delta = metrics::snapshot().delta(&before);
//! assert_eq!(delta.counter("mem.fork.pte_copy"), 259);
//! assert_eq!(delta.counter("mem.fork.page_copy"), 0, "absent reads zero");
//! let h = delta.histogram("api.fork_cycles").unwrap();
//! assert_eq!((h.count, h.sum), (1, 12_258));
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Number of log2 buckets: one for zero, one per bit position of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log-scale histogram: counts, sum, extrema, and per-bucket tallies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Tallies: bucket `0` holds zeros, bucket `i` holds values with
    /// `floor(log2(v)) == i - 1`, i.e. `v` in `[2^(i-1), 2^i)`.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// The bucket index a value falls into.
    ///
    /// ```
    /// use fpr_trace::metrics::Histogram;
    /// assert_eq!(Histogram::bucket_index(0), 0);
    /// assert_eq!(Histogram::bucket_index(1), 1);
    /// assert_eq!(Histogram::bucket_index(1023), 10);
    /// assert_eq!(Histogram::bucket_index(1024), 11);
    /// ```
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Inclusive value range `[lo, hi]` covered by bucket `i`.
    ///
    /// ```
    /// use fpr_trace::metrics::Histogram;
    /// assert_eq!(Histogram::bucket_bounds(0), (0, 0));
    /// assert_eq!(Histogram::bucket_bounds(1), (1, 1));
    /// assert_eq!(Histogram::bucket_bounds(11), (1024, 2047));
    /// assert_eq!(Histogram::bucket_bounds(64), (1 << 63, u64::MAX));
    /// ```
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket index {i} out of range");
        match i {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            _ => (1u64 << (i - 1), (1u64 << i) - 1),
        }
    }

    /// Estimates the `p`-th percentile (`0 < p <= 100`) from the log2
    /// buckets. Returns 0 when the histogram is empty.
    ///
    /// The estimate walks the cumulative bucket counts to the bucket
    /// holding rank `ceil(p/100 * count)` and reports that bucket's
    /// midpoint, clamped to the intersection of the bucket range and the
    /// recorded `[min, max]`. Because the exact rank value lies in the
    /// same bucket (and inside `[min, max]`), the estimate is always
    /// within one power-of-two bucket of the true percentile, and exact
    /// for single-valued or extremal distributions.
    ///
    /// ```
    /// use fpr_trace::metrics::Histogram;
    /// let mut h = Histogram::default();
    /// for v in 1..=1000u64 {
    ///     h.record(v);
    /// }
    /// // The true p50 is 500; the estimate lands in the same [256, 512)
    /// // bucket.
    /// let est = h.percentile(50.0);
    /// assert_eq!(Histogram::bucket_index(est), Histogram::bucket_index(500));
    /// ```
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(lo.max(self.min), hi.min(self.max));
            }
        }
        self.max
    }

    /// Median estimate: `percentile(50.0)`.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th-percentile estimate: `percentile(95.0)`.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th-percentile estimate: `percentile(99.0)`.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Folds `other` into `self`: counts and buckets add, extrema widen.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Bucket-wise difference `self - earlier` (for snapshot deltas).
    fn delta(&self, earlier: &Histogram) -> Histogram {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        Histogram {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            // Extrema are not differentiable; report the later window's.
            min: self.min,
            max: self.max,
            buckets,
        }
    }
}

/// A point-in-time copy of the registry; also the type of a delta.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Snapshot {
    /// Reads a counter; absent counters read zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a histogram, if any values were recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// The change from `earlier` to `self` (counter-wise saturating
    /// subtraction, so a [`reset`] between snapshots yields zeros rather
    /// than wrapping).
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (*k, v.saturating_sub(earlier.counter(k))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let d = match earlier.histograms.get(k) {
                    Some(e) => h.delta(e),
                    None => h.clone(),
                };
                (*k, d)
            })
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }

    /// Folds `other` into `self`: counters add, histograms merge.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
    }
}

thread_local! {
    static REGISTRY: RefCell<Snapshot> = RefCell::new(Snapshot::default());
}

/// Adds `n` to counter `name` (creating it at zero first).
pub fn add(name: &'static str, n: u64) {
    if n == 0 {
        return;
    }
    REGISTRY.with(|r| *r.borrow_mut().counters.entry(name).or_insert(0) += n);
}

/// Adds one to counter `name`.
pub fn incr(name: &'static str) {
    REGISTRY.with(|r| *r.borrow_mut().counters.entry(name).or_insert(0) += 1);
}

/// Records `value` into histogram `name`.
pub fn observe(name: &'static str, value: u64) {
    REGISTRY.with(|r| {
        r.borrow_mut()
            .histograms
            .entry(name)
            .or_default()
            .record(value)
    });
}

/// Copies the current registry state.
pub fn snapshot() -> Snapshot {
    REGISTRY.with(|r| r.borrow().clone())
}

/// Clears every counter and histogram on this thread.
pub fn reset() {
    REGISTRY.with(|r| *r.borrow_mut() = Snapshot::default());
}

// ---------------------------------------------------------------------
// The process-wide (`Sync`) layer: a merge target for worker-thread
// registries, and per-named-lock contention tallies for the SMP driver.
// ---------------------------------------------------------------------

fn global() -> &'static Mutex<Snapshot> {
    static GLOBAL: OnceLock<Mutex<Snapshot>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Snapshot::default()))
}

/// Merges this thread's registry into the process-wide snapshot and
/// clears the thread-local state. Worker threads call this before they
/// join so no per-thread counters are lost; the driver then reads the
/// union with [`global_snapshot`].
pub fn flush() {
    let local = REGISTRY.with(|r| std::mem::take(&mut *r.borrow_mut()));
    global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .merge(&local);
    flush_lock_stats();
}

/// The union of every [`flush`]ed registry since the last
/// [`reset_global`].
pub fn global_snapshot() -> Snapshot {
    global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Clears the process-wide snapshot (not any thread's local registry).
pub fn reset_global() {
    *global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Snapshot::default();
}

/// Contention tallies for one named lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Acquisitions that found the lock virtually held.
    pub contended_acquires: u64,
    /// Total virtual cycles spent waiting across those acquisitions.
    pub wait_cycles: u64,
}

fn lock_registry() -> &'static Mutex<BTreeMap<&'static str, LockStats>> {
    static LOCKS: OnceLock<Mutex<BTreeMap<&'static str, LockStats>>> = OnceLock::new();
    LOCKS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn merge_lock_stats(into: &mut BTreeMap<&'static str, LockStats>, name: &'static str, s: LockStats) {
    let e = into.entry(name).or_default();
    e.contended_acquires += s.contended_acquires;
    e.wait_cycles = e.wait_cycles.saturating_add(s.wait_cycles);
}

/// Per-thread contention buffer. Like the counter registry, the hot
/// path stays thread-local: events merge into the global registry only
/// on [`flush`] — or, as a backstop for threads that never flush, from
/// the buffer's TLS destructor, which runs before `join` returns.
struct LocalLockStats(RefCell<BTreeMap<&'static str, LockStats>>);

impl Drop for LocalLockStats {
    fn drop(&mut self) {
        let local = std::mem::take(&mut *self.0.borrow_mut());
        if local.is_empty() {
            return;
        }
        let mut global = lock_registry()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (name, s) in local {
            merge_lock_stats(&mut global, name, s);
        }
    }
}

thread_local! {
    static LOCAL_LOCKS: LocalLockStats =
        const { LocalLockStats(RefCell::new(BTreeMap::new())) };
}

/// Records one contended acquisition of the lock named `name` that
/// waited `wait_cycles` of virtual time. Called by
/// [`crate::smp::VLock`] only on contention. Buffered thread-locally
/// (no shared state touched); [`flush`] — or thread exit — publishes
/// the buffer into the global registry exactly once, so concurrent
/// flushes can neither lose nor double-count an event.
pub fn lock_contended(name: &'static str, wait_cycles: u64) {
    let event = LockStats {
        contended_acquires: 1,
        wait_cycles,
    };
    let buffered = LOCAL_LOCKS.try_with(|l| {
        merge_lock_stats(&mut l.0.borrow_mut(), name, event);
    });
    if buffered.is_err() {
        // TLS already destroyed (a lock released during thread teardown):
        // fall back to the global registry directly.
        merge_lock_stats(
            &mut lock_registry()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
            name,
            event,
        );
    }
}

/// Publishes this thread's buffered lock-contention events into the
/// global registry and clears the buffer. Called from [`flush`].
fn flush_lock_stats() {
    let local = LOCAL_LOCKS
        .try_with(|l| std::mem::take(&mut *l.0.borrow_mut()))
        .unwrap_or_default();
    if local.is_empty() {
        return;
    }
    let mut global = lock_registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for (name, s) in local {
        merge_lock_stats(&mut global, name, s);
    }
}

/// Per-lock contention tallies since the last [`reset_lock_stats`], in
/// name order: everything published to the global registry plus the
/// calling thread's unflushed buffer. Locks never contended are absent.
pub fn lock_stats() -> BTreeMap<&'static str, LockStats> {
    let mut m = lock_registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let _ = LOCAL_LOCKS.try_with(|l| {
        for (name, s) in l.0.borrow().iter() {
            merge_lock_stats(&mut m, name, *s);
        }
    });
    m
}

/// Clears every lock's contention tally — the global registry and the
/// calling thread's buffer (storm drivers call this between arms;
/// other threads' unflushed buffers are untouched).
pub fn reset_lock_stats() {
    lock_registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
    let _ = LOCAL_LOCKS.try_with(|l| l.0.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_delta() {
        reset();
        incr("t.a");
        add("t.a", 4);
        let mid = snapshot();
        add("t.a", 10);
        add("t.b", 2);
        let d = snapshot().delta(&mid);
        assert_eq!(d.counter("t.a"), 10);
        assert_eq!(d.counter("t.b"), 2);
        assert_eq!(d.counter("t.c"), 0);
        assert_eq!(mid.counter("t.a"), 5);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1034);
        assert_eq!((h.min, h.max), (0, 1024));
        assert_eq!(h.buckets[0], 1, "zero bucket");
        assert_eq!(h.buckets[1], 1, "[1,2)");
        assert_eq!(h.buckets[2], 2, "[2,4)");
        assert_eq!(h.buckets[3], 1, "[4,8)");
        assert_eq!(h.buckets[11], 1, "[1024,2048)");
        assert_eq!(h.mean(), 1034 / 6);
    }

    #[test]
    fn histogram_delta_subtracts_windows() {
        reset();
        observe("t.h", 8);
        let mid = snapshot();
        observe("t.h", 16);
        observe("t.h", 16);
        let d = snapshot().delta(&mid);
        let h = d.histogram("t.h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 32);
        assert_eq!(h.buckets[5], 2, "[16,32)");
        assert_eq!(h.buckets[4], 0, "the earlier 8 subtracted out");
    }

    #[test]
    fn reset_clears_everything() {
        incr("t.x");
        observe("t.y", 3);
        reset();
        let s = snapshot();
        assert_eq!(s.counter("t.x"), 0);
        assert!(s.histogram("t.y").is_none());
    }

    #[test]
    fn bucket_index_full_range() {
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
        assert_eq!(Histogram::bucket_index((1 << 63) - 1), 63);
    }

    #[test]
    fn bucket_bounds_round_trip() {
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(Histogram::bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn percentile_empty_and_single() {
        let h = Histogram::default();
        assert_eq!(h.percentile(50.0), 0);
        let mut h = Histogram::default();
        h.record(777);
        // Clamping to [min, max] makes single-value histograms exact.
        assert_eq!(h.p50(), 777);
        assert_eq!(h.p99(), 777);
    }

    #[test]
    fn histogram_merge_adds_counts_and_widens_extrema() {
        let mut a = Histogram::default();
        a.record(4);
        a.record(100);
        let mut b = Histogram::default();
        b.record(1);
        b.record(4000);
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 4105);
        assert_eq!((a.min, a.max), (1, 4000));
        let mut empty = Histogram::default();
        empty.merge(&a);
        assert_eq!(empty, a, "merge into empty copies");
        a.merge(&Histogram::default());
        assert_eq!(a.count, 4, "merging empty is a no-op");
    }

    #[test]
    fn flush_merges_thread_registries_into_global() {
        // Names are unique to this test, so the exact values survive
        // concurrent flushes from sibling tests.
        incr("t.global.main");
        flush();
        std::thread::spawn(|| {
            add("t.global.worker", 5);
            observe("t.global.hist", 32);
            flush();
        })
        .join()
        .unwrap();
        let g = global_snapshot();
        assert_eq!(g.counter("t.global.main"), 1);
        assert_eq!(g.counter("t.global.worker"), 5);
        assert_eq!(g.histogram("t.global.hist").unwrap().count, 1);
        assert_eq!(
            snapshot().counter("t.global.main"),
            0,
            "flush clears the local registry"
        );
    }

    #[test]
    fn lock_stats_accumulate_per_name() {
        lock_contended("t.lock.a", 100);
        lock_contended("t.lock.a", 50);
        let s = lock_stats();
        let a = s.get("t.lock.a").unwrap();
        assert_eq!(a.contended_acquires, 2);
        assert_eq!(a.wait_cycles, 150);
        assert!(!s.contains_key("t.lock.never"), "uncontended locks absent");
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::default();
        for v in [3u64, 17, 90, 1_000, 5_000, 5_001, 120_000] {
            h.record(v);
        }
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.max);
        assert!(h.min <= h.p50());
    }
}
