//! Named virtual-time locks for the SMP driver.
//!
//! [`VLock`] wraps a [`std::sync::Mutex`] and prices every hand-off in
//! *virtual* time using the per-thread [`crate::vclock`]: when a thread
//! whose clock reads `t` acquires a lock last released at virtual time
//! `free_at > t`, the acquirer's clock jumps to `free_at` and the wait
//! (`free_at - t`) is recorded against the lock's name in
//! [`crate::metrics::lock_stats`] as one contended acquisition. On
//! release, `free_at` is set to the holder's clock *after* its critical
//! section, so the next contender inherits the serialization cost.
//!
//! This makes lock contention measurable and deterministic-ish on a
//! single host core: the experiment's "where does fork serialize" answer
//! comes from these counters (mm vs pid vs buddy vs tlb), not from
//! wall-clock jitter. A single thread acquiring its own locks never
//! waits — its clock is already at or past every `free_at` it wrote —
//! so single-threaded arms report zero contention by construction.
//!
//! ## Lock-order validation
//!
//! The SMP machine documents one lock order — `mm` → `pid` → `buddy` →
//! `tlb` (ARCHITECTURE.md) — and this module *enforces* it at runtime
//! for exactly those four names. Each thread tracks which ranked locks
//! it holds; acquiring a ranked lock whose rank is not strictly greater
//! than every rank already held (which also catches taking two `mm`
//! locks at once) counts one violation in [`order_violations`] and in
//! the `lock.order.violation` metric, then proceeds. The E17 gate
//! asserts the counter stays at zero across every storm. Locks with any
//! other name (tests, scratch structures) are exempt.
//!
//! ## Deadlock detection
//!
//! Ranked acquisitions that would block first register a waiting edge in
//! a process-wide wait-for graph (thread → lock → holding thread) and
//! look for a cycle. A cycle means the machine *would* hang; instead of
//! hanging, the acquirer increments [`deadlocks_detected`], and panics
//! with the full cycle — a deterministic, reportable event. The unwind
//! releases the acquirer's own locks, so surviving threads keep running
//! (and the test harness reports the panic instead of timing out).
//!
//! ```
//! use fpr_trace::{metrics, smp::VLock, vclock};
//!
//! metrics::reset_lock_stats();
//! vclock::reset();
//! let l = VLock::new("mm", 0u64);
//! {
//!     let mut g = l.lock();
//!     *g += 1;
//!     vclock::advance(500); // simulated work inside the critical section
//! }
//! // Same thread, clock already past free_at: no contention recorded.
//! drop(l.lock());
//! assert!(!metrics::lock_stats().contains_key("mm"));
//! ```

use crate::{metrics, vclock};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, TryLockError};

/// The documented SMP lock order; a ranked lock may only be acquired
/// while every held ranked lock has a strictly smaller rank.
const LOCK_ORDER: [&str; 4] = ["mm", "pid", "buddy", "tlb"];

/// Rank of `name` in the documented order, `None` for exempt names.
fn rank_of(name: &str) -> Option<usize> {
    LOCK_ORDER.iter().position(|&n| n == name)
}

/// Process-wide count of lock-order violations (see module docs).
static ORDER_VIOLATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of would-block cycles caught by the detector.
static DEADLOCKS: AtomicU64 = AtomicU64::new(0);

/// Monotone ids: one per [`VLock`], one per thread (thread ids are
/// assigned lazily, the first time a thread touches a ranked lock).
static NEXT_LOCK_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Ranked locks this thread currently holds, as `(lock id, rank)`.
    static HELD: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// The process-wide wait-for graph over *ranked* locks: who holds what,
/// who is blocked on what. Edges are only mutated under the graph mutex,
/// so a cycle found while holding it is a consistent snapshot: every
/// thread on the cycle holds its lock and has registered its wait.
#[derive(Default)]
struct WaitGraph {
    /// lock id → (holder thread id, lock name).
    holders: BTreeMap<u64, (u64, &'static str)>,
    /// thread id → (lock id it is blocked on, lock name).
    waiting: BTreeMap<u64, (u64, &'static str)>,
}

impl WaitGraph {
    /// Follows `start`'s wait chain; returns the lock names on the cycle
    /// if the chain leads back to `start`.
    fn find_cycle(&self, start: u64) -> Option<Vec<&'static str>> {
        let mut path = Vec::new();
        let mut cur = start;
        loop {
            let &(lock, name) = self.waiting.get(&cur)?;
            path.push(name);
            let &(holder, _) = self.holders.get(&lock)?;
            if holder == start {
                return Some(path);
            }
            if path.len() > self.waiting.len() {
                return None; // a loop not involving `start`
            }
            cur = holder;
        }
    }
}

fn wait_graph() -> &'static Mutex<WaitGraph> {
    static GRAPH: OnceLock<Mutex<WaitGraph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(WaitGraph::default()))
}

fn graph_lock() -> std::sync::MutexGuard<'static, WaitGraph> {
    wait_graph()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Process-wide count of lock-order violations since the last
/// [`reset_order_violations`]. The E17 gate requires zero.
pub fn order_violations() -> u64 {
    ORDER_VIOLATIONS.load(Ordering::Relaxed)
}

/// Clears the process-wide violation counter.
pub fn reset_order_violations() {
    ORDER_VIOLATIONS.store(0, Ordering::Relaxed);
}

/// Process-wide count of would-block cycles the deadlock detector has
/// turned into panics.
pub fn deadlocks_detected() -> u64 {
    DEADLOCKS.load(Ordering::Relaxed)
}

/// A named mutex that models contention in virtual time.
#[derive(Debug, Default)]
pub struct VLock<T> {
    name: &'static str,
    /// Unique id for the wait-for graph (0 for unranked locks, which
    /// never enter the graph).
    id: u64,
    /// Virtual time at which the last holder released the lock.
    free_at: AtomicU64,
    inner: Mutex<T>,
}

impl<T> VLock<T> {
    /// Wraps `value` in a lock whose contention is recorded under `name`.
    pub fn new(name: &'static str, value: T) -> VLock<T> {
        let id = if rank_of(name).is_some() {
            NEXT_LOCK_ID.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };
        VLock {
            name,
            id,
            free_at: AtomicU64::new(0),
            inner: Mutex::new(value),
        }
    }

    /// The name contention is recorded under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock, advancing this thread's virtual clock to the
    /// lock's release time and recording the wait if it had to "spin".
    ///
    /// For the four ranked names the acquisition also checks the
    /// documented lock order and registers in the wait-for graph; see
    /// the module docs.
    ///
    /// Poisoning is ignored: the simulated kernel's own invariants are
    /// checked explicitly at quiesce, and a panicking test thread must
    /// not cascade into every other cell.
    ///
    /// # Panics
    ///
    /// Panics (deterministically, with the cycle) if blocking here would
    /// deadlock the machine.
    pub fn lock(&self) -> VLockGuard<'_, T> {
        let rank = rank_of(self.name);
        let guard = match rank {
            None => self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
            Some(rank) => self.lock_ranked(rank),
        };
        let now = vclock::now();
        let free_at = self.free_at.load(Ordering::Acquire);
        if free_at > now {
            vclock::advance_to(free_at);
            metrics::lock_contended(self.name, free_at - now);
        }
        VLockGuard {
            lock: self,
            ranked: rank.is_some(),
            guard,
        }
    }

    /// The ranked path: order check, then acquire with the wait-for
    /// graph kept current so a would-block cycle is caught.
    fn lock_ranked(&self, rank: usize) -> MutexGuard<'_, T> {
        HELD.with(|h| {
            let held = h.borrow();
            if held.iter().any(|&(_, r)| r >= rank) {
                ORDER_VIOLATIONS.fetch_add(1, Ordering::Relaxed);
                metrics::incr("lock.order.violation");
            }
        });
        let me = THREAD_ID.with(|&t| t);
        let guard = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                {
                    let mut g = graph_lock();
                    g.waiting.insert(me, (self.id, self.name));
                    if let Some(cycle) = g.find_cycle(me) {
                        g.waiting.remove(&me);
                        drop(g);
                        DEADLOCKS.fetch_add(1, Ordering::Relaxed);
                        metrics::incr("lock.deadlock.detected");
                        panic!(
                            "deadlock detected: blocking on \"{}\" closes the wait cycle [{}]",
                            self.name,
                            cycle.join(" -> ")
                        );
                    }
                }
                let guard = self
                    .inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                graph_lock().waiting.remove(&me);
                guard
            }
        };
        graph_lock().holders.insert(self.id, (me, self.name));
        HELD.with(|h| h.borrow_mut().push((self.id, rank)));
        guard
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Guard returned by [`VLock::lock`]; stamps the lock's release time
/// from the holder's virtual clock on drop.
pub struct VLockGuard<'a, T> {
    lock: &'a VLock<T>,
    ranked: bool,
    guard: MutexGuard<'a, T>,
}

impl<T> std::ops::Deref for VLockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for VLockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for VLockGuard<'_, T> {
    fn drop(&mut self) {
        // Store before the mutex is released (the field drops after this
        // body), so the next acquirer always observes our release time.
        self.lock.free_at.store(vclock::now(), Ordering::Release);
        if self.ranked {
            // Drop the graph/held entries before the mutex releases too:
            // a holder entry present implies the mutex is genuinely held,
            // which is what makes a found cycle trustworthy.
            graph_lock().holders.remove(&self.lock.id);
            HELD.with(|h| h.borrow_mut().retain(|&(id, _)| id != self.lock.id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// The violation/deadlock counters are process-global; tests that
    /// read them as before/after deltas must not interleave.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn uncontended_same_thread_records_nothing() {
        vclock::reset();
        let l = VLock::new("t.smp.solo", 0u32);
        for _ in 0..10 {
            let mut g = l.lock();
            *g += 1;
            vclock::advance(100);
        }
        assert_eq!(*l.lock(), 10);
        assert!(
            !metrics::lock_stats().contains_key("t.smp.solo"),
            "a single thread never contends with itself"
        );
    }

    #[test]
    fn cross_thread_handoff_charges_the_wait() {
        let l = Arc::new(VLock::new("t.smp.pair", ()));
        // Holder: clock at 1000 when it releases.
        {
            let l = l.clone();
            std::thread::spawn(move || {
                vclock::reset();
                let _g = l.lock();
                vclock::advance(1000);
            })
            .join()
            .unwrap();
        }
        // Contender: clock at 100, must jump to 1000 and record 900.
        let l2 = l.clone();
        let waited = std::thread::spawn(move || {
            vclock::reset();
            vclock::advance(100);
            let _g = l2.lock();
            vclock::now()
        })
        .join()
        .unwrap();
        assert_eq!(waited, 1000, "clock advanced to the release time");
        let stats = metrics::lock_stats();
        let s = stats.get("t.smp.pair").expect("contention recorded");
        assert_eq!(s.contended_acquires, 1);
        assert_eq!(s.wait_cycles, 900);
        // The only resetter in this test binary, so the absence check
        // cannot race with a sibling test's recording.
        metrics::reset_lock_stats();
        assert!(!metrics::lock_stats().contains_key("t.smp.pair"));
    }

    #[test]
    fn into_inner_returns_value() {
        let l = VLock::new("t.smp.inner", 7u64);
        assert_eq!(l.into_inner(), 7);
    }

    #[test]
    fn documented_order_is_violation_free() {
        let _s = serial();
        let before = order_violations();
        let mm = VLock::new("mm", ());
        let pid = VLock::new("pid", ());
        let buddy = VLock::new("buddy", ());
        let tlb = VLock::new("tlb", ());
        let _a = mm.lock();
        let _b = pid.lock();
        let _c = buddy.lock();
        let _d = tlb.lock();
        assert_eq!(
            order_violations(),
            before,
            "mm -> pid -> buddy -> tlb is the documented order"
        );
    }

    #[test]
    fn inverted_acquisition_counts_a_violation() {
        let _s = serial();
        let before = order_violations();
        let mm = VLock::new("mm", ());
        let buddy = VLock::new("buddy", ());
        let _b = buddy.lock();
        let _a = mm.lock(); // buddy held while taking mm: inversion
        assert_eq!(order_violations(), before + 1);
    }

    #[test]
    fn two_same_rank_locks_count_a_violation() {
        let _s = serial();
        let before = order_violations();
        let a = VLock::new("mm", ());
        let b = VLock::new("mm", ());
        let _ga = a.lock();
        let _gb = b.lock(); // second mm while the first is held
        assert_eq!(order_violations(), before + 1);
    }

    #[test]
    fn release_clears_held_tracking() {
        let _s = serial();
        let before = order_violations();
        let a = VLock::new("pid", ());
        let b = VLock::new("pid", ());
        drop(a.lock());
        drop(b.lock()); // sequential same-rank acquisitions are fine
        assert_eq!(order_violations(), before);
    }

    #[test]
    fn unranked_names_are_exempt() {
        let _s = serial();
        let before = order_violations();
        let x = VLock::new("t.smp.x", ());
        let y = VLock::new("t.smp.y", ());
        let _gy = y.lock();
        let _gx = x.lock();
        assert_eq!(order_violations(), before, "unranked locks have no order");
    }

    #[test]
    fn would_block_cycle_panics_deterministically_instead_of_hanging() {
        use std::sync::Barrier;
        let _s = serial();
        let a = Arc::new(VLock::new("mm", 0u32));
        let b = Arc::new(VLock::new("mm", 0u32));
        let gate = Arc::new(Barrier::new(2));
        let before = deadlocks_detected();
        let spawn = |first: Arc<VLock<u32>>, second: Arc<VLock<u32>>, gate: Arc<Barrier>| {
            std::thread::spawn(move || {
                let _g1 = first.lock();
                gate.wait(); // both threads hold their first lock
                let _g2 = second.lock(); // ... and cross over
            })
        };
        let t1 = spawn(Arc::clone(&a), Arc::clone(&b), Arc::clone(&gate));
        let t2 = spawn(Arc::clone(&b), Arc::clone(&a), Arc::clone(&gate));
        let r1 = t1.join();
        let r2 = t2.join();
        assert!(
            r1.is_err() ^ r2.is_err(),
            "exactly one thread panics out of the cycle; the other completes"
        );
        assert_eq!(deadlocks_detected(), before + 1);
        let panicked = if r1.is_err() { r1 } else { r2 };
        let msg = panicked.unwrap_err();
        let msg = msg
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("deadlock detected"),
            "panic names the event: {msg}"
        );
    }
}
