//! Named virtual-time locks for the SMP driver.
//!
//! [`VLock`] wraps a [`std::sync::Mutex`] and prices every hand-off in
//! *virtual* time using the per-thread [`crate::vclock`]: when a thread
//! whose clock reads `t` acquires a lock last released at virtual time
//! `free_at > t`, the acquirer's clock jumps to `free_at` and the wait
//! (`free_at - t`) is recorded against the lock's name in
//! [`crate::metrics::lock_stats`] as one contended acquisition. On
//! release, `free_at` is set to the holder's clock *after* its critical
//! section, so the next contender inherits the serialization cost.
//!
//! This makes lock contention measurable and deterministic-ish on a
//! single host core: the experiment's "where does fork serialize" answer
//! comes from these counters (mm vs pid vs buddy vs tlb), not from
//! wall-clock jitter. A single thread acquiring its own locks never
//! waits — its clock is already at or past every `free_at` it wrote —
//! so single-threaded arms report zero contention by construction.
//!
//! ```
//! use fpr_trace::{metrics, smp::VLock, vclock};
//!
//! metrics::reset_lock_stats();
//! vclock::reset();
//! let l = VLock::new("mm", 0u64);
//! {
//!     let mut g = l.lock();
//!     *g += 1;
//!     vclock::advance(500); // simulated work inside the critical section
//! }
//! // Same thread, clock already past free_at: no contention recorded.
//! drop(l.lock());
//! assert!(!metrics::lock_stats().contains_key("mm"));
//! ```

use crate::{metrics, vclock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// A named mutex that models contention in virtual time.
#[derive(Debug, Default)]
pub struct VLock<T> {
    name: &'static str,
    /// Virtual time at which the last holder released the lock.
    free_at: AtomicU64,
    inner: Mutex<T>,
}

impl<T> VLock<T> {
    /// Wraps `value` in a lock whose contention is recorded under `name`.
    pub fn new(name: &'static str, value: T) -> VLock<T> {
        VLock {
            name,
            free_at: AtomicU64::new(0),
            inner: Mutex::new(value),
        }
    }

    /// The name contention is recorded under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock, advancing this thread's virtual clock to the
    /// lock's release time and recording the wait if it had to "spin".
    ///
    /// Poisoning is ignored: the simulated kernel's own invariants are
    /// checked explicitly at quiesce, and a panicking test thread must
    /// not cascade into every other cell.
    pub fn lock(&self) -> VLockGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let now = vclock::now();
        let free_at = self.free_at.load(Ordering::Acquire);
        if free_at > now {
            vclock::advance_to(free_at);
            metrics::lock_contended(self.name, free_at - now);
        }
        VLockGuard { lock: self, guard }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Guard returned by [`VLock::lock`]; stamps the lock's release time
/// from the holder's virtual clock on drop.
pub struct VLockGuard<'a, T> {
    lock: &'a VLock<T>,
    guard: MutexGuard<'a, T>,
}

impl<T> std::ops::Deref for VLockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for VLockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for VLockGuard<'_, T> {
    fn drop(&mut self) {
        // Store before the mutex is released (the field drops after this
        // body), so the next acquirer always observes our release time.
        self.lock.free_at.store(vclock::now(), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn uncontended_same_thread_records_nothing() {
        vclock::reset();
        let l = VLock::new("t.smp.solo", 0u32);
        for _ in 0..10 {
            let mut g = l.lock();
            *g += 1;
            vclock::advance(100);
        }
        assert_eq!(*l.lock(), 10);
        assert!(
            !metrics::lock_stats().contains_key("t.smp.solo"),
            "a single thread never contends with itself"
        );
    }

    #[test]
    fn cross_thread_handoff_charges_the_wait() {
        let l = Arc::new(VLock::new("t.smp.pair", ()));
        // Holder: clock at 1000 when it releases.
        {
            let l = l.clone();
            std::thread::spawn(move || {
                vclock::reset();
                let _g = l.lock();
                vclock::advance(1000);
            })
            .join()
            .unwrap();
        }
        // Contender: clock at 100, must jump to 1000 and record 900.
        let l2 = l.clone();
        let waited = std::thread::spawn(move || {
            vclock::reset();
            vclock::advance(100);
            let _g = l2.lock();
            vclock::now()
        })
        .join()
        .unwrap();
        assert_eq!(waited, 1000, "clock advanced to the release time");
        let stats = metrics::lock_stats();
        let s = stats.get("t.smp.pair").expect("contention recorded");
        assert_eq!(s.contended_acquires, 1);
        assert_eq!(s.wait_cycles, 900);
        // The only resetter in this test binary, so the absence check
        // cannot race with a sibling test's recording.
        metrics::reset_lock_stats();
        assert!(!metrics::lock_stats().contains_key("t.smp.pair"));
    }

    #[test]
    fn into_inner_returns_value() {
        let l = VLock::new("t.smp.inner", 7u64);
        assert_eq!(l.into_inner(), 7);
    }
}
