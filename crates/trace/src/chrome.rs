//! Chrome trace-event exporter: turns a recorded event stream into the
//! JSON object format `about:tracing` and [Perfetto](https://ui.perfetto.dev)
//! load directly.
//!
//! The output is the standard envelope — a `traceEvents` array of
//! records with `name`/`cat`/`ph`/`ts`/`pid`/`tid`/`args` — with
//! timestamps scaled from simulated cycles to the microseconds the
//! format expects. The whole simulator is one logical process on one
//! logical thread, so every record uses `pid`/`tid` 1 and nesting is
//! carried purely by `B`/`E` ordering; the *simulated* pid of an
//! operation travels in its `args` instead.
//!
//! ```
//! use fpr_trace::{chrome, json, sink};
//!
//! let ((), events) = sink::with_sink(|| {
//!     sink::span_begin("fork", "api", 3_000);
//!     sink::counter("frames_used", 4_500, 10);
//!     sink::span_end("fork", 6_000);
//! });
//! let text = chrome::to_chrome_string(&events, 3_000);
//! let doc = json::parse(&text).expect("exporter emits valid JSON");
//! let records = doc.get("traceEvents").unwrap().as_arr().unwrap();
//! assert_eq!(records.len(), 3);
//! assert_eq!(records[0].get("ph").unwrap().as_str(), Some("B"));
//! assert_eq!(records[0].get("ts").unwrap().as_f64(), Some(1.0));
//! ```

use crate::event::{ArgValue, Phase, TraceEvent};
use crate::json::Value;

/// Nominal simulated clock rate used to scale cycle timestamps into the
/// microseconds the trace-event format expects: a 3 GHz machine, i.e.
/// 3000 cycles per microsecond. Exporters may pass any other rate; this
/// is the default the demo and reports use.
pub const CYCLES_PER_US: u64 = 3_000;

/// Converts one recorded event stream into a Chrome trace-event JSON
/// document. `cycles_per_us` scales simulated cycles to microseconds
/// (the kernel's cost model uses 3000).
pub fn to_chrome_json(events: &[TraceEvent], cycles_per_us: u64) -> Value {
    let scale = cycles_per_us.max(1) as f64;
    let records: Vec<Value> = events.iter().map(|ev| record(ev, scale)).collect();
    Value::Obj(vec![
        ("traceEvents".into(), Value::Arr(records)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
        (
            "otherData".into(),
            Value::Obj(vec![
                (
                    "source".into(),
                    Value::Str("forkroad simulator (deterministic cycle model)".into()),
                ),
                ("cycles_per_us".into(), Value::Num(cycles_per_us as f64)),
            ]),
        ),
    ])
}

/// Like [`to_chrome_json`], rendered to a string ready to be written to
/// a `.json` file and dropped into `about:tracing` or Perfetto.
pub fn to_chrome_string(events: &[TraceEvent], cycles_per_us: u64) -> String {
    let mut s = to_chrome_json(events, cycles_per_us).pretty();
    s.push('\n');
    s
}

fn record(ev: &TraceEvent, scale: f64) -> Value {
    let mut members: Vec<(String, Value)> = vec![
        ("name".into(), Value::Str(ev.name.clone())),
        ("cat".into(), Value::Str(ev.cat.into())),
        ("ph".into(), Value::Str(ev.ph.letter().into())),
        ("ts".into(), Value::Num(ev.ts as f64 / scale)),
        ("pid".into(), Value::Num(1.0)),
        ("tid".into(), Value::Num(1.0)),
    ];
    if ev.ph == Phase::Instant {
        // Thread-scoped instants render as small arrows in the viewer.
        members.push(("s".into(), Value::Str("t".into())));
    }
    let mut args: Vec<(String, Value)> = ev
        .args
        .iter()
        .map(|(k, v)| ((*k).to_string(), arg_value(v)))
        .collect();
    // Raw cycle timestamps survive the µs scaling in args, so a viewer
    // tooltip still shows the exact deterministic time.
    args.push(("ts_cycles".into(), Value::Num(ev.ts as f64)));
    members.push(("args".into(), Value::Obj(args)));
    Value::Obj(members)
}

fn arg_value(v: &ArgValue) -> Value {
    match v {
        ArgValue::U64(n) => Value::Num(*n as f64),
        ArgValue::F64(n) => Value::Num(*n),
        ArgValue::Str(s) => Value::Str(s.clone()),
        ArgValue::Bool(b) => Value::Bool(*b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::new("fork", "api", Phase::Begin, 3_000).arg("mode", "ondemand"),
            TraceEvent::new("clone_address_space", "mem", Phase::Begin, 3_300),
            TraceEvent::new("fault.frame_alloc", "fault", Phase::Instant, 3_400)
                .arg("occurrence", 0u64)
                .arg("injected", false),
            TraceEvent::new("clone_address_space", "", Phase::End, 5_000),
            TraceEvent::new("frames_used", "metric", Phase::Counter, 5_500).arg("value", 42u64),
            TraceEvent::new("fork", "", Phase::End, 6_000),
        ]
    }

    #[test]
    fn envelope_has_trace_events_array() {
        let doc = to_chrome_json(&sample(), 3_000);
        let arr = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 6);
        assert!(doc.get("otherData").is_some());
    }

    #[test]
    fn phases_timestamps_and_args_serialise() {
        let text = to_chrome_string(&sample(), 3_000);
        let doc = json::parse(&text).unwrap();
        let arr = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let phs: Vec<&str> = arr
            .iter()
            .map(|r| r.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phs, vec!["B", "B", "I", "E", "C", "E"]);
        assert_eq!(arr[0].get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(arr[5].get("ts").unwrap().as_f64(), Some(2.0));
        let args = arr[0].get("args").unwrap();
        assert_eq!(args.get("mode").unwrap().as_str(), Some("ondemand"));
        assert_eq!(args.get("ts_cycles").unwrap().as_f64(), Some(3000.0));
        let counter_args = arr[4].get("args").unwrap();
        assert_eq!(counter_args.get("value").unwrap().as_f64(), Some(42.0));
        assert_eq!(arr[2].get("s").unwrap().as_str(), Some("t"));
    }

    #[test]
    fn zero_scale_does_not_divide_by_zero() {
        let doc = to_chrome_json(&sample(), 0);
        assert!(doc.get("traceEvents").is_some());
    }
}
