//! Property test for the metrics flush discipline under real threads:
//! whatever interleaving the host scheduler produces, the global
//! snapshot and the global lock-stats registry must equal the exact sum
//! of every thread's locally recorded events — nothing lost to a
//! concurrent `flush()`, nothing double-counted by the thread-exit
//! backstop after an explicit flush.
//!
//! The workload is seeded (one SplitMix64 stream per thread per round),
//! so a failing schedule's *event content* replays exactly; the
//! interleaving varies, which is the point — the totals must not.

use fpr_trace::metrics;

/// SplitMix64: the same mixer the fault planner uses; good enough to
/// decorrelate per-thread event streams without external dependencies.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

const LOCK_NAMES: [&str; 4] = ["cf.mm", "cf.pid", "cf.buddy", "cf.tlb"];
const COUNTERS: [&str; 3] = ["cf.ops", "cf.forks", "cf.faults"];
const THREADS: usize = 8;
const EVENTS_PER_THREAD: usize = 400;
const ROUNDS: u64 = 3;

/// What one thread recorded, tallied independently of the metrics
/// machinery so the assertion has a ground truth to compare against.
#[derive(Default, Clone)]
struct Expected {
    lock_acquires: [u64; LOCK_NAMES.len()],
    lock_waits: [u64; LOCK_NAMES.len()],
    counters: [u64; COUNTERS.len()],
}

impl Expected {
    fn merge(&mut self, other: &Expected) {
        for i in 0..LOCK_NAMES.len() {
            self.lock_acquires[i] += other.lock_acquires[i];
            self.lock_waits[i] += other.lock_waits[i];
        }
        for i in 0..COUNTERS.len() {
            self.counters[i] += other.counters[i];
        }
    }
}

/// One worker: a seeded stream of lock-contention events and counter
/// bumps, with `flush()` interleaved mid-stream at seed-chosen points —
/// the exact hazard the buffered design must survive.
fn worker(seed: u64) -> Expected {
    let mut rng = SplitMix(seed);
    let mut exp = Expected::default();
    for _ in 0..EVENTS_PER_THREAD {
        match rng.next() % 8 {
            0..=3 => {
                let which = (rng.next() % LOCK_NAMES.len() as u64) as usize;
                let wait = rng.next() % 10_000;
                metrics::lock_contended(LOCK_NAMES[which], wait);
                exp.lock_acquires[which] += 1;
                exp.lock_waits[which] += wait;
            }
            4..=6 => {
                let which = (rng.next() % COUNTERS.len() as u64) as usize;
                let n = 1 + rng.next() % 100;
                metrics::add(COUNTERS[which], n);
                exp.counters[which] += n;
            }
            _ => {
                // Mid-stream flush: races against every other thread's
                // flushes and recordings.
                metrics::flush();
            }
        }
    }
    // The worker contract: flush before joining (counters have no
    // exit backstop). A flush after mid-stream flushes must publish
    // only the still-buffered remainder — no double-counting.
    metrics::flush();
    exp
}

/// Both tests read/reset the process-global registries; they must not
/// interleave with each other.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn concurrent_flushes_neither_lose_nor_double_count() {
    let _s = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    for round in 0..ROUNDS {
        let root = 0xE17_C0FF_EE00 + round;
        metrics::reset_lock_stats();
        metrics::reset_global();
        metrics::reset();

        let mut want = Expected::default();
        let per_thread: Vec<Expected> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| s.spawn(move || worker(root.wrapping_add(t as u64))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        for exp in &per_thread {
            want.merge(exp);
        }

        let locks = metrics::lock_stats();
        for (i, name) in LOCK_NAMES.iter().enumerate() {
            let got = locks.get(name).copied().unwrap_or_default();
            assert_eq!(
                got.contended_acquires, want.lock_acquires[i],
                "round {round}: {name} acquires lost or double-counted"
            );
            assert_eq!(
                got.wait_cycles, want.lock_waits[i],
                "round {round}: {name} wait cycles lost or double-counted"
            );
        }
        let g = metrics::global_snapshot();
        for (i, name) in COUNTERS.iter().enumerate() {
            assert_eq!(
                g.counter(name),
                want.counters[i],
                "round {round}: counter {name} diverged from the per-thread sum"
            );
        }
    }
}

/// Lock-contention events alone *do* have an exit backstop: a thread
/// that records contention and exits without flushing must still be
/// counted exactly once (the TLS destructor publishes the buffer before
/// `join` returns).
#[test]
fn lock_stats_survive_thread_exit_without_flush() {
    let _s = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    metrics::reset_lock_stats();
    const NAME: &str = "cf.exit.backstop";
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..=t {
                    metrics::lock_contended(NAME, 10 * (i + 1));
                }
                // No flush: the TLS destructor must publish.
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let s = metrics::lock_stats();
    let got = s.get(NAME).copied().unwrap_or_default();
    assert_eq!(got.contended_acquires, 1 + 2 + 3 + 4);
    // Thread t records 10+20+..+10*(t+1).
    let want_wait: u64 = (0..4u64).map(|t| (1..=t + 1).map(|i| 10 * i).sum::<u64>()).sum();
    assert_eq!(got.wait_cycles, want_wait);
}
