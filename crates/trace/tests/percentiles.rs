//! Accuracy contract for log2-histogram percentile extraction: on known
//! distributions the estimated p50/p95/p99 must land in the same
//! power-of-two bucket as the exact order-statistic value — i.e. the
//! estimate is within one bucket (a factor of two) of the truth, which is
//! the resolution the histogram stores in the first place.

use fpr_rng::Rng;
use fpr_trace::metrics::Histogram;

/// Exact percentile of a sorted sample using the same rank convention the
/// histogram estimator uses: the value at rank `ceil(p/100 * n)`.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Asserts the histogram estimate for `p` sits in the exact value's
/// bucket and inside the recorded range.
fn assert_within_one_bucket(values: &[u64], p: f64, what: &str) {
    let mut h = Histogram::default();
    let mut sorted = values.to_vec();
    for &v in values {
        h.record(v);
    }
    sorted.sort_unstable();
    let exact = exact_percentile(&sorted, p);
    let est = h.percentile(p);
    assert_eq!(
        Histogram::bucket_index(est),
        Histogram::bucket_index(exact),
        "{what}: p{p} estimate {est} not in the exact value {exact}'s bucket"
    );
    assert!(
        est >= h.min && est <= h.max,
        "{what}: p{p} estimate {est} outside recorded range [{}, {}]",
        h.min,
        h.max
    );
}

#[test]
fn uniform_distribution_within_one_bucket() {
    let values: Vec<u64> = (1..=1000).collect();
    for p in [50.0, 95.0, 99.0] {
        assert_within_one_bucket(&values, p, "uniform 1..=1000");
    }
}

#[test]
fn constant_distribution_is_exact() {
    let values = vec![4096u64; 500];
    let mut h = Histogram::default();
    for &v in &values {
        h.record(v);
    }
    // All mass in one bucket and min == max: clamping makes it exact.
    assert_eq!(h.p50(), 4096);
    assert_eq!(h.p95(), 4096);
    assert_eq!(h.p99(), 4096);
}

#[test]
fn geometric_spread_within_one_bucket() {
    // Latency-shaped data spanning five orders of magnitude: mostly fast,
    // a heavy tail — the case log2 buckets exist for.
    let mut values = Vec::new();
    for i in 0..900u64 {
        values.push(900 + i); // fast path cluster near 2^10
    }
    for i in 0..90u64 {
        values.push(20_000 + 17 * i); // slow path cluster near 2^14
    }
    for i in 0..10u64 {
        values.push(1_000_000 + 1_000 * i); // rare outliers near 2^20
    }
    for p in [50.0, 95.0, 99.0] {
        assert_within_one_bucket(&values, p, "bimodal-with-tail");
    }
}

#[test]
fn seeded_random_samples_within_one_bucket() {
    // Deterministic pseudo-random samples over a wide dynamic range.
    for seed in [1u64, 42, 77] {
        let mut rng = Rng::seed_from_u64(seed);
        let values: Vec<u64> = (0..2000)
            .map(|_| {
                // Roughly log-uniform over [1, 2^30): pick a magnitude,
                // then a value at that magnitude.
                let bits = 1 + rng.gen_below(30);
                1u64.max(rng.gen_below(1 << bits))
            })
            .collect();
        for p in [50.0, 90.0, 95.0, 99.0, 99.9] {
            assert_within_one_bucket(&values, p, "log-uniform seeded");
        }
    }
}

#[test]
fn zero_heavy_distribution() {
    // Zeros occupy the dedicated bucket 0; a zero-heavy distribution must
    // report zero for low percentiles and the tail for high ones.
    let mut values = vec![0u64; 95];
    values.extend([1 << 20; 5]);
    let mut h = Histogram::default();
    for &v in &values {
        h.record(v);
    }
    assert_eq!(h.p50(), 0);
    assert_eq!(
        Histogram::bucket_index(h.p99()),
        Histogram::bucket_index(1 << 20)
    );
}
