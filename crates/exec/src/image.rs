//! Simulated executable images ("SELF" — Simulated ELF).
//!
//! An image describes the segments the loader must map: text, initialised
//! data, BSS, plus the initial heap and stack sizes. Images are registered
//! in an [`ImageRegistry`] under filesystem paths; their `file_id` feeds
//! the file-backed content stamps of mapped pages, so a loaded process
//! really does "read" its text from the image.

use fpr_kernel::vfs::Ino;
use std::collections::BTreeMap;

/// One loadable program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Command name (`comm`).
    pub name: String,
    /// Backing file identifier (doubles as the content-stamp key).
    pub file_id: u64,
    /// Text segment size in pages (mapped read-execute).
    pub text_pages: u64,
    /// Initialised-data segment size in pages (mapped read-write, private).
    pub data_pages: u64,
    /// BSS size in pages (anonymous, demand-zero).
    pub bss_pages: u64,
    /// Initial heap reservation in pages.
    pub heap_pages: u64,
    /// Stack reservation in pages.
    pub stack_pages: u64,
    /// Entry point offset (pages into text).
    pub entry_page: u64,
}

impl Image {
    /// A small "utility binary" shape: 16 pages text, 4 data, 4 bss,
    /// 32 heap, 32 stack.
    pub fn small(name: &str) -> Image {
        Image {
            name: name.to_string(),
            file_id: 0,
            text_pages: 16,
            data_pages: 4,
            bss_pages: 4,
            heap_pages: 32,
            stack_pages: 32,
            entry_page: 0,
        }
    }

    /// A larger "application" shape (e.g. a server binary).
    pub fn large(name: &str) -> Image {
        Image {
            name: name.to_string(),
            file_id: 0,
            text_pages: 512,
            data_pages: 128,
            bss_pages: 256,
            heap_pages: 1024,
            stack_pages: 256,
            entry_page: 1,
        }
    }

    /// Total pages of VMA the loader will create for this image
    /// (excluding guard pages).
    pub fn total_pages(&self) -> u64 {
        self.text_pages + self.data_pages + self.bss_pages + self.heap_pages + self.stack_pages
    }
}

/// A registry entry: a native binary or an interpreted script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Executable {
    /// A loadable binary image.
    Binary(Image),
    /// A `#!` script: resolved through its interpreter at exec time.
    Script {
        /// Path of the interpreter executable.
        interpreter: String,
    },
}

/// Registry of executable images, keyed by path.
#[derive(Debug, Default)]
pub struct ImageRegistry {
    images: BTreeMap<String, Executable>,
    /// file id → VFS inode holding the binary's bytes. Exec consults the
    /// inode's write generation to build an *effective* file id, so
    /// rewriting a binary on disk changes the stamps of freshly mapped
    /// pages and invalidates exec-image-cache entries.
    backing: BTreeMap<u64, Ino>,
    next_file_id: u64,
}

impl ImageRegistry {
    /// Creates an empty registry.
    pub fn new() -> ImageRegistry {
        ImageRegistry {
            images: BTreeMap::new(),
            backing: BTreeMap::new(),
            next_file_id: 1000,
        }
    }

    /// Binds the binary registered at `path` to the VFS inode holding its
    /// bytes. Returns false if no binary is registered there.
    pub fn bind_backing(&mut self, path: &str, ino: Ino) -> bool {
        match self.lookup(path) {
            Some(img) => {
                self.backing.insert(img.file_id, ino);
                true
            }
            None => false,
        }
    }

    /// The VFS inode backing `file_id`, if one was bound.
    pub fn backing_ino(&self, file_id: u64) -> Option<Ino> {
        self.backing.get(&file_id).copied()
    }

    /// Registers `image` at `path`, assigning it a fresh file id.
    /// Re-registering a path replaces the image (like reinstalling a
    /// binary).
    pub fn register(&mut self, path: &str, mut image: Image) -> u64 {
        self.next_file_id += 1;
        image.file_id = self.next_file_id;
        let id = image.file_id;
        self.images
            .insert(path.to_string(), Executable::Binary(image));
        id
    }

    /// Registers a `#!` script at `path`, to be run by `interpreter`.
    pub fn register_script(&mut self, path: &str, interpreter: &str) {
        self.images.insert(
            path.to_string(),
            Executable::Script {
                interpreter: interpreter.to_string(),
            },
        );
    }

    /// Looks up the binary image at `path`, resolving `#!` chains (up to
    /// 4 levels, matching kernels' interpreter-recursion limits). Returns
    /// the image plus the interpreter path prefix that must be prepended
    /// to argv (empty for plain binaries).
    pub fn resolve(&self, path: &str) -> Option<(&Image, Vec<String>)> {
        let mut prefix = Vec::new();
        let mut cur = path;
        for _ in 0..4 {
            match self.images.get(cur)? {
                Executable::Binary(img) => return Some((img, prefix)),
                Executable::Script { interpreter } => {
                    prefix.insert(0, interpreter.clone());
                    cur = interpreter;
                }
            }
        }
        None
    }

    /// Looks up the image at `path` (binaries only; scripts resolve via
    /// [`ImageRegistry::resolve`]).
    pub fn lookup(&self, path: &str) -> Option<&Image> {
        match self.images.get(path)? {
            Executable::Binary(img) => Some(img),
            Executable::Script { .. } => None,
        }
    }

    /// All registered paths.
    pub fn paths(&self) -> Vec<&str> {
        self.images.keys().map(|s| s.as_str()).collect()
    }

    /// Number of registered images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True if no images are registered.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_unique_file_ids() {
        let mut r = ImageRegistry::new();
        let a = r.register("/bin/a", Image::small("a"));
        let b = r.register("/bin/b", Image::small("b"));
        assert_ne!(a, b);
        assert_eq!(r.lookup("/bin/a").unwrap().file_id, a);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn reregister_replaces() {
        let mut r = ImageRegistry::new();
        r.register("/bin/a", Image::small("a"));
        let id2 = r.register("/bin/a", Image::large("a2"));
        assert_eq!(r.len(), 1);
        assert_eq!(r.lookup("/bin/a").unwrap().name, "a2");
        assert_eq!(r.lookup("/bin/a").unwrap().file_id, id2);
        let _ = id2;
    }

    #[test]
    fn lookup_missing_is_none() {
        let r = ImageRegistry::new();
        assert!(r.lookup("/bin/ghost").is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn shapes_are_sane() {
        let s = Image::small("s");
        let l = Image::large("l");
        assert!(l.total_pages() > s.total_pages());
        assert!(s.entry_page < s.text_pages);
        assert!(l.entry_page < l.text_pages);
    }
}
