//! `execve` semantics: replace the calling process's image.
//!
//! Exec is fork's other half — and the half that *undoes* most of fork's
//! copying: the duplicated address space is thrown away, close-on-exec
//! descriptors are closed, caught signal handlers are reset, extra
//! threads vanish, and userspace state (streams, locks) is wiped. The
//! paper's point: for the dominant fork+exec pattern, all of fork's
//! duplication work between these two calls is pure waste.

use crate::aslr::{randomize, AslrConfig};
use crate::cache::ImageCache;
use crate::image::ImageRegistry;
use crate::loader::{load, load_cached};
use fpr_kernel::{Errno, KResult, Kernel, Pid, SpaceRef};
use fpr_trace::{metrics, sink};
use std::collections::BTreeMap;

/// What happens to the environment across exec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Env {
    /// Keep the caller's environment (`execv`).
    Keep,
    /// Replace it wholesale (`execve`'s envp).
    Replace(BTreeMap<String, String>),
}

/// Replaces the image of `pid` with the executable at `path`, with
/// `argv[0] = path` and the environment kept (`execv` semantics).
///
/// `aslr_seed` determines the new layout; callers pass a fresh random
/// seed (exec randomises) — only the zygote experiment deliberately
/// reuses seeds.
pub fn execve(
    kernel: &mut Kernel,
    pid: Pid,
    registry: &ImageRegistry,
    path: &str,
    aslr: AslrConfig,
    aslr_seed: u64,
) -> KResult<()> {
    execve_args(
        kernel,
        pid,
        registry,
        path,
        vec![path.to_string()],
        Env::Keep,
        aslr,
        aslr_seed,
    )
}

/// Full `execve`: explicit argv and environment policy. `#!` scripts are
/// resolved through their interpreter chain, which is prepended to argv
/// exactly as a real kernel does.
#[allow(clippy::too_many_arguments)]
pub fn execve_args(
    kernel: &mut Kernel,
    pid: Pid,
    registry: &ImageRegistry,
    path: &str,
    argv: Vec<String>,
    env: Env,
    aslr: AslrConfig,
    aslr_seed: u64,
) -> KResult<()> {
    execve_args_cached(
        kernel, pid, registry, path, argv, env, aslr, aslr_seed, None,
    )
}

/// [`execve_args`] with an optional exec [`ImageCache`]. With
/// `Some(cache)`, the loader serves file-backed startup pages from
/// pinned cached frames (or donates them on a miss); with `None` the
/// path — and its cycle cost — is exactly the classic one.
#[allow(clippy::too_many_arguments)]
pub fn execve_args_cached(
    kernel: &mut Kernel,
    pid: Pid,
    registry: &ImageRegistry,
    path: &str,
    argv: Vec<String>,
    env: Env,
    aslr: AslrConfig,
    aslr_seed: u64,
    cache: Option<&mut ImageCache>,
) -> KResult<()> {
    let start = kernel.cycles.total();
    sink::span_begin("exec", "exec", start);
    let r = execve_args_inner(kernel, pid, registry, path, argv, env, aslr, aslr_seed, cache);
    let end = kernel.cycles.total();
    metrics::observe("exec.exec_cycles", end - start);
    sink::span_end("exec", end);
    r
}

/// The *effective* file id of a registered binary: its registry-assigned
/// base id plus the backing inode's write generation in the high bits.
/// Mapped-page content stamps and exec-image-cache entries key off this,
/// so rewriting a binary's bytes changes what subsequent execs map even
/// though the registry entry (and base id) is unchanged. A binary with no
/// bound backing file, or one never written since boot, keeps
/// `effective == base` — runs that never rewrite binaries are unaffected.
pub fn effective_file_id(kernel: &Kernel, registry: &ImageRegistry, file_id: u64) -> u64 {
    match registry.backing_ino(file_id) {
        Some(ino) => file_id + (kernel.vfs.generation(ino) << 32),
        None => file_id,
    }
}

#[allow(clippy::too_many_arguments)]
fn execve_args_inner(
    kernel: &mut Kernel,
    pid: Pid,
    registry: &ImageRegistry,
    path: &str,
    argv: Vec<String>,
    env: Env,
    aslr: AslrConfig,
    aslr_seed: u64,
    cache: Option<&mut ImageCache>,
) -> KResult<()> {
    kernel.charge_syscall();
    let (mut image, interp_prefix) = {
        let (img, prefix) = registry.resolve(path).ok_or(Errno::Enoexec)?;
        (img.clone(), prefix)
    };
    image.file_id = effective_file_id(kernel, registry, image.file_id);
    let mut full_argv = interp_prefix;
    full_argv.extend(argv);

    // 1. Release the old address space (or return a vfork borrow).
    let space_ref = kernel.process(pid)?.space_ref.clone();
    match space_ref {
        SpaceRef::Owned => kernel.destroy_address_space(pid)?,
        SpaceRef::BorrowedFrom(parent) => {
            // vfork child execs: give the parent its space back and start
            // with a fresh one.
            kernel.detach_borrowed_space(pid)?;
            kernel.vfork_return(parent, pid)?;
        }
    }

    // 2. Close close-on-exec descriptors.
    let swept = kernel.process_mut(pid)?.fds.take_cloexec();
    for (_, entry) in swept {
        kernel.release_fd_entry(entry)?;
    }

    // 3. Reset caught signals; keep ignored/default and the mask.
    kernel.process_mut(pid)?.signals.exec_reset();

    // 4. Only the calling thread survives; userspace state is wiped.
    let doomed_tids: Vec<fpr_kernel::Tid> = {
        let p = kernel.process_mut(pid)?;
        let main = p.threads.remove(0);
        let doomed = p.threads.drain(..).map(|t| t.tid).collect();
        p.threads.push(main);
        p.locks = fpr_kernel::LockTable::new();
        p.streams.clear();
        p.atfork = fpr_kernel::AtforkTable::new();
        doomed
    };
    for tid in doomed_tids {
        kernel.sched.remove(fpr_kernel::sched::Task { pid, tid });
    }

    // 5. New argv; environment per policy.
    {
        let p = kernel.process_mut(pid)?;
        p.argv = full_argv;
        if let Env::Replace(map) = env {
            p.envp = map;
        }
    }

    // 6. Load the new image under a fresh layout.
    let layout = randomize(aslr, aslr_seed);
    sink::instant("aslr_randomize", "exec", kernel.cycles.total());
    match cache {
        Some(c) => load_cached(kernel, pid, &image, layout, c),
        None => load(kernel, pid, &image, layout),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;
    use fpr_kernel::{BufMode, Disposition, HandlerId, OpenFlags, Sig, STDOUT};
    use fpr_mem::{Prot, Share};

    fn world() -> (Kernel, Pid, ImageRegistry) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        let mut reg = ImageRegistry::new();
        reg.register("/bin/tool", Image::small("tool"));
        (k, init, reg)
    }

    #[test]
    fn exec_replaces_memory_and_name() {
        let (mut k, pid, reg) = world();
        let base = k.mmap_anon(pid, 64, Prot::RW, Share::Private).unwrap();
        k.populate(pid, base, 64).unwrap();
        let resident_before = k.process(pid).unwrap().resident_pages();
        assert!(resident_before >= 64);
        execve(&mut k, pid, &reg, "/bin/tool", AslrConfig::default(), 7).unwrap();
        let p = k.process(pid).unwrap();
        assert_eq!(p.name, "tool");
        assert!(p.resident_pages() < resident_before, "old pages gone");
        assert_eq!(
            k.commit.committed(),
            p.aspace.commit_pages(),
            "commit rebased"
        );
    }

    #[test]
    fn exec_missing_image_is_enoexec_and_keeps_process() {
        let (mut k, pid, reg) = world();
        let before = k.process(pid).unwrap().name.clone();
        assert_eq!(
            execve(&mut k, pid, &reg, "/bin/ghost", AslrConfig::default(), 1),
            Err(Errno::Enoexec)
        );
        assert_eq!(k.process(pid).unwrap().name, before);
    }

    #[test]
    fn cloexec_fds_closed_others_survive() {
        let (mut k, pid, reg) = world();
        let keep = k.open(pid, "/keep", OpenFlags::RDWR, true).unwrap();
        let gone = k.open(pid, "/gone", OpenFlags::RDWR, true).unwrap();
        k.set_cloexec(pid, gone, true).unwrap();
        execve(&mut k, pid, &reg, "/bin/tool", AslrConfig::default(), 1).unwrap();
        let p = k.process(pid).unwrap();
        assert!(p.fds.get(keep).is_ok());
        assert!(p.fds.get(gone).is_err());
        assert!(p.fds.get(STDOUT).is_ok(), "stdio survives exec");
    }

    #[test]
    fn caught_handlers_reset_ignored_kept() {
        let (mut k, pid, reg) = world();
        k.sigaction(pid, Sig::Int, Disposition::Handler(HandlerId(5)))
            .unwrap();
        k.sigaction(pid, Sig::Hup, Disposition::Ignore).unwrap();
        execve(&mut k, pid, &reg, "/bin/tool", AslrConfig::default(), 1).unwrap();
        let p = k.process(pid).unwrap();
        assert_eq!(p.signals.disposition(Sig::Int), Disposition::Default);
        assert_eq!(p.signals.disposition(Sig::Hup), Disposition::Ignore);
    }

    #[test]
    fn extra_threads_and_streams_vanish() {
        let (mut k, pid, reg) = world();
        k.spawn_thread(pid).unwrap();
        k.spawn_thread(pid).unwrap();
        let s = k.stream_open(pid, STDOUT, BufMode::FullyBuffered).unwrap();
        k.stream_write(pid, s, b"lost on exec").unwrap();
        execve(&mut k, pid, &reg, "/bin/tool", AslrConfig::default(), 1).unwrap();
        let p = k.process(pid).unwrap();
        assert_eq!(p.threads.len(), 1);
        assert!(p.streams.is_empty());
        // Buffered bytes were *not* flushed — they are simply gone, which
        // is precisely why mixing stdio with exec needs care.
        assert!(k.console.is_empty());
    }

    #[test]
    fn exec_layouts_differ_per_seed() {
        let (mut k, pid, reg) = world();
        execve(&mut k, pid, &reg, "/bin/tool", AslrConfig::default(), 1).unwrap();
        let l1 = k.process(pid).unwrap().layout;
        execve(&mut k, pid, &reg, "/bin/tool", AslrConfig::default(), 2).unwrap();
        let l2 = k.process(pid).unwrap().layout;
        assert_ne!(l1, l2);
    }

    #[test]
    fn argv_defaults_to_path_and_env_is_kept() {
        let (mut k, pid, reg) = world();
        k.process_mut(pid)
            .unwrap()
            .envp
            .insert("HOME".into(), "/root".into());
        execve(&mut k, pid, &reg, "/bin/tool", AslrConfig::default(), 1).unwrap();
        let p = k.process(pid).unwrap();
        assert_eq!(p.argv, vec!["/bin/tool"]);
        assert_eq!(p.envp.get("HOME").map(String::as_str), Some("/root"));
    }

    #[test]
    fn execve_args_replaces_argv_and_env() {
        let (mut k, pid, reg) = world();
        k.process_mut(pid)
            .unwrap()
            .envp
            .insert("OLD".into(), "1".into());
        let mut env = std::collections::BTreeMap::new();
        env.insert("NEW".to_string(), "2".to_string());
        execve_args(
            &mut k,
            pid,
            &reg,
            "/bin/tool",
            vec!["tool".into(), "-v".into(), "input".into()],
            Env::Replace(env),
            AslrConfig::default(),
            1,
        )
        .unwrap();
        let p = k.process(pid).unwrap();
        assert_eq!(p.argv, vec!["tool", "-v", "input"]);
        assert!(!p.envp.contains_key("OLD"));
        assert_eq!(p.envp.get("NEW").map(String::as_str), Some("2"));
    }

    #[test]
    fn shebang_script_resolves_through_interpreter() {
        let (mut k, pid, mut reg) = world();
        reg.register("/bin/python", Image::large("python"));
        reg.register_script("/app/main.py", "/bin/python");
        execve_args(
            &mut k,
            pid,
            &reg,
            "/app/main.py",
            vec!["/app/main.py".into(), "--flag".into()],
            Env::Keep,
            AslrConfig::default(),
            1,
        )
        .unwrap();
        let p = k.process(pid).unwrap();
        assert_eq!(p.name, "python", "the interpreter's image runs");
        assert_eq!(p.argv, vec!["/bin/python", "/app/main.py", "--flag"]);
    }

    #[test]
    fn interpreter_recursion_limit() {
        let (mut k, pid, mut reg) = world();
        // A script whose interpreter is itself: unresolvable.
        reg.register_script("/loop", "/loop");
        assert_eq!(
            execve(&mut k, pid, &reg, "/loop", AslrConfig::default(), 1),
            Err(Errno::Enoexec)
        );
        // Two-level chains resolve fine.
        reg.register("/bin/interp", Image::small("interp"));
        reg.register_script("/stage2", "/bin/interp");
        reg.register_script("/stage1", "/stage2");
        execve(&mut k, pid, &reg, "/stage1", AslrConfig::default(), 1).unwrap();
        assert_eq!(
            k.process(pid).unwrap().argv,
            vec!["/bin/interp", "/stage2", "/stage1"]
        );
        assert_eq!(k.process(pid).unwrap().name, "interp");
    }
}
