//! Exec image cache: pinned frame runs shared copy-on-write into children.
//!
//! The paper's `posix_spawn` pays a demand fault plus a file read for
//! every startup page of every child, even when a thousand children run
//! the same binary. Real systems amortise this through the page cache;
//! the simulator models that with an [`ImageCache`]: the first exec of a
//! binary donates its file-backed startup frames to the cache (taking a
//! kernel *pin* on each so they outlive the donor), and later execs of
//! the same binary map those frames copy-on-write for the price of a PTE
//! copy — no fault, no file read.
//!
//! Entries are keyed by the registry-assigned *base* file id and stamped
//! with the *effective* file id (base plus the backing inode's write
//! generation in the high bits, see [`crate::exec::effective_file_id`]).
//! Rewriting a binary bumps its generation, so the next lookup sees a
//! stale stamp, evicts the entry, and re-reads from the "disk" — the
//! cache can never serve segments of a binary that no longer exists.

use fpr_kernel::{Errno, KResult, Kernel};
use fpr_mem::Pfn;
use fpr_trace::metrics;
use std::collections::BTreeMap;

/// Mask extracting the registry-assigned base file id from an effective
/// file id (the write generation lives above bit 32).
pub const BASE_ID_MASK: u64 = 0xFFFF_FFFF;

#[derive(Debug, Clone)]
struct Entry {
    /// Effective file id the frames were read under.
    eff_file_id: u64,
    /// `(page offset into the file, pinned frame)`, ascending by offset.
    frames: Vec<(u64, Pfn)>,
    /// Logical timestamp of the last hit (or the insert), for LRU
    /// eviction under memory pressure.
    last_used: u64,
}

/// Cache of pinned exec-image frames, keyed by base file id.
#[derive(Debug, Default)]
pub struct ImageCache {
    entries: BTreeMap<u64, Entry>,
    /// Monotonic logical clock stamping `Entry::last_used`.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ImageCache {
    /// Creates an empty cache.
    pub fn new() -> ImageCache {
        ImageCache::default()
    }

    /// Looks up the cached frame run for `eff_file_id`, returning the
    /// `(file page offset, frame)` pairs on a hit. An entry for the same
    /// binary under an older generation is stale: it is evicted on sight
    /// (unpinning its frames) and the lookup counts as a miss, so a
    /// rewritten binary is always re-read from the filesystem.
    pub fn lookup(&mut self, kernel: &mut Kernel, eff_file_id: u64) -> Option<Vec<(u64, Pfn)>> {
        let base = eff_file_id & BASE_ID_MASK;
        let stale = matches!(
            self.entries.get(&base),
            Some(e) if e.eff_file_id != eff_file_id
        );
        if stale {
            self.evict(kernel, base);
        }
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&base) {
            Some(e) => {
                e.last_used = tick;
                self.hits += 1;
                metrics::incr("exec.image_cache.hit");
                Some(e.frames.clone())
            }
            None => {
                self.misses += 1;
                metrics::incr("exec.image_cache.miss");
                None
            }
        }
    }

    /// Inserts the frame run a fresh exec just faulted in, pinning every
    /// frame so it survives the donor's exit. Replaces any existing entry
    /// for the same binary. Crosses [`fpr_faults::FaultSite::ImageCacheInsert`]
    /// *before* mutating anything, so an injected failure leaves both the
    /// cache and frame pins untouched. Charges no cycles: pinning is
    /// bookkeeping, and the insert must leave the donor's spawn cost
    /// exactly equal to the uncached path's.
    pub fn insert(
        &mut self,
        kernel: &mut Kernel,
        eff_file_id: u64,
        frames: Vec<(u64, Pfn)>,
    ) -> KResult<()> {
        fpr_faults::cross(fpr_faults::FaultSite::ImageCacheInsert).map_err(|_| Errno::Enomem)?;
        let base = eff_file_id & BASE_ID_MASK;
        self.evict(kernel, base);
        for (_, pfn) in &frames {
            kernel.phys.pin(*pfn).map_err(|_| Errno::Enomem)?;
        }
        metrics::incr("exec.image_cache.insert");
        metrics::add("exec.image_cache.frames", frames.len() as u64);
        self.tick += 1;
        self.entries.insert(
            base,
            Entry {
                eff_file_id,
                frames,
                last_used: self.tick,
            },
        );
        Ok(())
    }

    /// Evicts least-recently-used entries until `target` frames have been
    /// returned to the allocator or the cache is empty, reporting frames
    /// actually freed (an evicted frame still mapped by a live child
    /// survives through its mapping references and counts for nothing).
    /// This is the cache's [`fpr_kernel::Shrinker`] work; the reclaim
    /// pass crosses the fault site before calling it.
    pub fn shrink(&mut self, kernel: &mut Kernel, target: u64) -> KResult<u64> {
        let free_before = kernel.phys.free_frames();
        while kernel.phys.free_frames() - free_before < target {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(base, _)| *base);
            let Some(base) = lru else { break };
            self.evict(kernel, base);
        }
        Ok(kernel.phys.free_frames() - free_before)
    }

    fn evict(&mut self, kernel: &mut Kernel, base: u64) {
        if let Some(e) = self.entries.remove(&base) {
            for (_, pfn) in e.frames {
                kernel
                    .phys
                    .unpin(pfn, &mut kernel.cycles)
                    .expect("cached frame holds a pin");
            }
            self.evictions += 1;
            metrics::incr("exec.image_cache.evict");
        }
    }

    /// Drops every entry, unpinning all frames (frames still mapped by
    /// live children survive through their mapping references).
    pub fn clear(&mut self, kernel: &mut Kernel) {
        let bases: Vec<u64> = self.entries.keys().copied().collect();
        for b in bases {
            self.evict(kernel, b);
        }
    }

    /// Number of cached binaries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total pinned frames across all entries.
    pub fn cached_frames(&self) -> u64 {
        self.entries.values().map(|e| e.frames.len() as u64).sum()
    }

    /// Lookup hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses (including stale evictions) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted (stale generation or replacement) so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// Under memory pressure the cache gives pinned image frames back, LRU
/// first: spawn latency for the evicted binaries degrades to the classic
/// uncached path instead of some process being OOM-killed.
impl fpr_kernel::Shrinker for ImageCache {
    fn name(&self) -> &'static str {
        "image_cache"
    }

    fn fault_site(&self) -> fpr_faults::FaultSite {
        fpr_faults::FaultSite::ReclaimShrink
    }

    fn reclaimable(&self, _kernel: &Kernel) -> u64 {
        self.cached_frames()
    }

    fn shrink(&mut self, kernel: &mut Kernel, target: u64) -> KResult<u64> {
        ImageCache::shrink(self, kernel, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aslr::{randomize, AslrConfig};
    use crate::image::Image;
    use crate::loader::{load, load_cached};
    use fpr_kernel::Pid;
    use fpr_mem::vma::file_stamp;
    use fpr_mem::Vpn;

    fn world() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    fn tool() -> Image {
        let mut img = Image::small("tool");
        img.file_id = 1001;
        img
    }

    #[test]
    fn second_load_hits_and_is_cheaper_with_same_content() {
        let (mut k, init) = world();
        let mut cache = ImageCache::new();
        let img = tool();

        let a = k.allocate_process(init, "a").unwrap();
        let c0 = k.cycles.total();
        load_cached(&mut k, a, &img, randomize(AslrConfig::default(), 1), &mut cache).unwrap();
        let first = k.cycles.total() - c0;
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.cached_frames(), 2, "entry text page + first data page");

        let b = k.allocate_process(init, "b").unwrap();
        let c1 = k.cycles.total();
        let layout = randomize(AslrConfig::default(), 2);
        load_cached(&mut k, b, &img, layout, &mut cache).unwrap();
        let second = k.cycles.total() - c1;
        assert_eq!(cache.hits(), 1);
        assert!(
            second < first,
            "hit ({second}) must beat miss ({first}): no faults, no file reads"
        );
        // The mapped content is the image's bytes, not garbage.
        assert_eq!(
            k.read_mem(b, Vpn(layout.text_base + img.entry_page)),
            Ok(file_stamp(img.file_id, img.entry_page))
        );
        assert_eq!(
            k.read_mem(b, Vpn(layout.text_base + img.text_pages)),
            Ok(file_stamp(img.file_id, img.text_pages))
        );
    }

    #[test]
    fn miss_path_costs_exactly_the_uncached_load() {
        let img = tool();
        let (mut k1, i1) = world();
        let p1 = k1.allocate_process(i1, "x").unwrap();
        let c = k1.cycles.total();
        load(&mut k1, p1, &img, randomize(AslrConfig::default(), 9)).unwrap();
        let plain = k1.cycles.total() - c;

        let (mut k2, i2) = world();
        let p2 = k2.allocate_process(i2, "x").unwrap();
        let mut cache = ImageCache::new();
        let c = k2.cycles.total();
        load_cached(&mut k2, p2, &img, randomize(AslrConfig::default(), 9), &mut cache).unwrap();
        let missed = k2.cycles.total() - c;
        assert_eq!(plain, missed, "cold cache adds zero cycles");
    }

    #[test]
    fn cached_frames_survive_donor_teardown() {
        let (mut k, init) = world();
        let mut cache = ImageCache::new();
        let img = tool();
        let donor = k.allocate_process(init, "donor").unwrap();
        load_cached(&mut k, donor, &img, randomize(AslrConfig::default(), 3), &mut cache).unwrap();
        k.abort_process_creation(donor).unwrap();
        assert_eq!(cache.cached_frames(), 2);

        let b = k.allocate_process(init, "b").unwrap();
        let layout = randomize(AslrConfig::default(), 4);
        load_cached(&mut k, b, &img, layout, &mut cache).unwrap();
        assert_eq!(cache.hits(), 1, "donor death does not evict");
        assert_eq!(
            k.read_mem(b, Vpn(layout.text_base + img.entry_page)),
            Ok(file_stamp(img.file_id, img.entry_page))
        );
        k.check_invariants().unwrap();
    }

    #[test]
    fn newer_generation_evicts_stale_entry_and_releases_pins() {
        let (mut k, init) = world();
        let mut cache = ImageCache::new();
        let mut img = tool();
        let a = k.allocate_process(init, "a").unwrap();
        load_cached(&mut k, a, &img, randomize(AslrConfig::default(), 5), &mut cache).unwrap();
        let used_before = k.phys.used_frames();

        // The binary is rewritten: generation 1 → new effective id.
        img.file_id = tool().file_id + (1 << 32);
        let b = k.allocate_process(init, "b").unwrap();
        let layout = randomize(AslrConfig::default(), 6);
        load_cached(&mut k, b, &img, layout, &mut cache).unwrap();
        assert_eq!(cache.evictions(), 1, "stale entry evicted on sight");
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        assert_eq!(
            k.read_mem(b, Vpn(layout.text_base + img.entry_page)),
            Ok(file_stamp(img.file_id, img.entry_page)),
            "new child reads the rewritten bytes, never the stale ones"
        );
        // Old frames stay alive only through the old child's mappings.
        assert_eq!(cache.cached_frames(), 2);
        let _ = used_before;
        k.check_invariants().unwrap();
    }

    #[test]
    fn shrink_evicts_lru_first_and_reports_frames_freed() {
        let (mut k, init) = world();
        let mut cache = ImageCache::new();
        let mut cold = Image::small("cold");
        cold.file_id = 2001;
        let mut warm = Image::small("warm");
        warm.file_id = 2002;
        for (i, img) in [&cold, &warm].iter().enumerate() {
            let donor = k.allocate_process(init, "donor").unwrap();
            load_cached(
                &mut k,
                donor,
                img,
                randomize(AslrConfig::default(), 10 + i as u64),
                &mut cache,
            )
            .unwrap();
            k.abort_process_creation(donor).unwrap();
        }
        // Touch `warm` so `cold` is the LRU entry.
        let p = k.allocate_process(init, "p").unwrap();
        load_cached(&mut k, p, &warm, randomize(AslrConfig::default(), 12), &mut cache).unwrap();
        k.abort_process_creation(p).unwrap();
        assert_eq!(cache.len(), 2);

        // Asking for one frame evicts exactly the cold entry (2 frames,
        // both pinned-only, so both come back).
        let freed = cache.shrink(&mut k, 1).unwrap();
        assert_eq!(freed, 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&mut k, warm.file_id).is_some(), "warm survived");
        assert!(cache.lookup(&mut k, cold.file_id).is_none(), "cold evicted");
        // Shrinking an empty-enough cache reports what it could do.
        let freed = cache.shrink(&mut k, 1000).unwrap();
        assert_eq!(freed, 2);
        assert!(cache.is_empty());
        k.check_invariants().unwrap();
    }

    #[test]
    fn clear_unpins_everything() {
        let (mut k, init) = world();
        let mut cache = ImageCache::new();
        let img = tool();
        let donor = k.allocate_process(init, "donor").unwrap();
        load_cached(&mut k, donor, &img, randomize(AslrConfig::default(), 7), &mut cache).unwrap();
        k.abort_process_creation(donor).unwrap();
        let used = k.phys.used_frames();
        assert_eq!(cache.cached_frames(), 2);
        cache.clear(&mut k);
        assert!(cache.is_empty());
        assert_eq!(
            k.phys.used_frames(),
            used - 2,
            "pinned-only frames freed on clear"
        );
        k.check_invariants().unwrap();
    }
}
