//! # fpr-exec — program images, loader, ASLR, and exec semantics
//!
//! The "other half" of process creation: building a fresh process image.
//! [`loader::load`] performs O(image-size) work regardless of how big any
//! existing process is — the property that makes spawn-style APIs flat in
//! the paper's Figure 1 — and [`exec::execve`] implements the POSIX state
//! transitions (close-on-exec sweep, signal-handler reset, thread
//! collapse) that undo most of what fork copied.

pub mod aslr;
pub mod exec;
pub mod image;
pub mod loader;

pub use aslr::{randomize, shared_bits, AslrConfig};
pub use exec::{execve, execve_args, Env};
pub use image::{Executable, Image, ImageRegistry};
pub use loader::{load, STARTUP_TOUCHED_PAGES};
