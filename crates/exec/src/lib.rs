//! # fpr-exec — program images, loader, ASLR, and exec semantics
//!
//! The "other half" of process creation: building a fresh process image.
//! [`loader::load`] performs O(image-size) work regardless of how big any
//! existing process is — the property that makes spawn-style APIs flat in
//! the paper's Figure 1 — and [`exec::execve`] implements the POSIX state
//! transitions (close-on-exec sweep, signal-handler reset, thread
//! collapse) that undo most of what fork copied.

pub mod aslr;
pub mod cache;
pub mod exec;
pub mod image;
pub mod loader;

pub use aslr::{randomize, shared_bits, AslrConfig};
pub use cache::ImageCache;
pub use exec::{effective_file_id, execve, execve_args, execve_args_cached, Env};
pub use image::{Executable, Image, ImageRegistry};
pub use loader::{load, load_cached, STARTUP_TOUCHED_PAGES};
