//! Address-space layout randomisation.
//!
//! Each exec draws fresh random bases for text, heap, mmap arena and
//! stack. The security experiment (E8) contrasts this with zygote-style
//! forking, where every child *shares* the parent's layout: one
//! info-leak in any child reveals the layout of all of them — the attack
//! the paper cites against fork-based Android app startup.

use fpr_kernel::LayoutInfo;
use fpr_rng::Rng;

/// ASLR configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AslrConfig {
    /// Randomise at all (off = fixed classic layout).
    pub enabled: bool,
    /// Bits of entropy per randomised base (Linux mmap default is 28).
    pub entropy_bits: u32,
}

impl Default for AslrConfig {
    fn default() -> Self {
        AslrConfig {
            enabled: true,
            entropy_bits: 28,
        }
    }
}

/// Fixed bases the randomised offsets are added to (VPNs).
mod bases {
    /// Text around 0x0000_5555_5000_0000-ish, scaled into VPN space.
    pub const TEXT: u64 = 0x0000_1000;
    /// Heap above text.
    pub const HEAP: u64 = 0x0010_0000;
    /// The mmap arena.
    pub const MMAP: u64 = 0x0400_0000;
    /// Stack near the top of the user half (grows down).
    pub const STACK: u64 = 0x7000_0000;
}

/// Draws a layout for one exec, using `seed` for determinism.
///
/// The same seed yields the same layout — which is exactly how the zygote
/// hazard is modelled: forked children inherit the parent's draw, while
/// spawned/exec'd processes get a fresh seed.
pub fn randomize(cfg: AslrConfig, seed: u64) -> LayoutInfo {
    fpr_trace::metrics::incr("exec.aslr_randomize");
    if !cfg.enabled {
        return LayoutInfo {
            text_base: bases::TEXT,
            heap_base: bases::HEAP,
            mmap_base: bases::MMAP,
            stack_base: bases::STACK,
            entropy_bits: 0,
            aslr_seed: 0,
        };
    }
    let mut rng = Rng::seed_from_u64(seed);
    let mask = (1u64 << cfg.entropy_bits.min(34)) - 1;
    // Offsets are page-granular and kept within disjoint arenas so the
    // regions cannot collide regardless of the draw.
    let draw = |rng: &mut Rng, span: u64| rng.gen_u64() & mask & (span - 1);
    LayoutInfo {
        text_base: bases::TEXT + draw(&mut rng, 0x4_0000),
        heap_base: bases::HEAP + draw(&mut rng, 0x40_0000),
        mmap_base: bases::MMAP + draw(&mut rng, 0x100_0000),
        stack_base: bases::STACK + draw(&mut rng, 0x800_0000),
        entropy_bits: cfg.entropy_bits,
        aslr_seed: seed,
    }
}

/// Counts the layout base bits shared between two layouts — the measure
/// the security audit reports. Identical layouts share everything.
pub fn shared_bits(a: &LayoutInfo, b: &LayoutInfo) -> u32 {
    let fields = [
        (a.text_base, b.text_base),
        (a.heap_base, b.heap_base),
        (a.mmap_base, b.mmap_base),
        (a.stack_base, b.stack_base),
    ];
    fields
        .iter()
        .map(|(x, y)| (!(x ^ y)).trailing_ones().min(34))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_aslr_is_fixed() {
        let cfg = AslrConfig {
            enabled: false,
            entropy_bits: 28,
        };
        let a = randomize(cfg, 1);
        let b = randomize(cfg, 2);
        assert_eq!(a, b);
        assert_eq!(a.entropy_bits, 0);
    }

    #[test]
    fn same_seed_same_layout() {
        let cfg = AslrConfig::default();
        assert_eq!(randomize(cfg, 42), randomize(cfg, 42));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = AslrConfig::default();
        let a = randomize(cfg, 1);
        let b = randomize(cfg, 2);
        assert_ne!(a, b);
        assert_ne!(a.stack_base, b.stack_base);
    }

    #[test]
    fn regions_stay_ordered_and_disjoint() {
        let cfg = AslrConfig::default();
        for seed in 0..200 {
            let l = randomize(cfg, seed);
            assert!(l.text_base < l.heap_base, "seed {seed}");
            assert!(l.heap_base < l.mmap_base, "seed {seed}");
            assert!(l.mmap_base < l.stack_base, "seed {seed}");
        }
    }

    #[test]
    fn shared_bits_full_for_identical() {
        let cfg = AslrConfig::default();
        let l = randomize(cfg, 9);
        assert_eq!(shared_bits(&l, &l), 4 * 34);
        let other = randomize(cfg, 10);
        assert!(shared_bits(&l, &other) < 4 * 34);
    }
}
