//! The program loader: builds a process image in an empty address space.
//!
//! This is the work `posix_spawn` (and exec) pays *instead of* fork's
//! duplication: a handful of VMA insertions plus demand-paging of the few
//! pages touched at startup. Crucially it is O(image), not O(parent) —
//! the flat line in Figure 1.

use crate::cache::ImageCache;
use crate::image::Image;
use fpr_kernel::{Errno, KResult, Kernel, LayoutInfo, Pid};
use fpr_mem::{Backing, Pfn, Prot, Share, VmArea, VmaKind, Vpn};

/// Pages the loader eagerly populates (entry page of text, first data
/// page, first stack page) — the faults a real exec takes before main().
pub const STARTUP_TOUCHED_PAGES: u64 = 3;

/// Maps `image` into the (empty) address space of `pid` at the bases given
/// by `layout`, then touches the startup pages.
///
/// Fails with [`Errno::Enomem`] if commit cannot be charged, leaving any
/// partially created mappings in place for the caller to tear down via
/// process exit.
pub fn load(kernel: &mut Kernel, pid: Pid, image: &Image, layout: LayoutInfo) -> KResult<()> {
    fpr_trace::sink::span_begin("image_load", "exec", kernel.cycles.total());
    fpr_trace::metrics::incr("exec.image_load");
    let r = load_inner(kernel, pid, image, layout);
    fpr_trace::sink::span_end("image_load", kernel.cycles.total());
    r
}

/// Like [`load`], but consults the exec [`ImageCache`]: on a hit the
/// file-backed startup pages are mapped copy-on-write from pinned cached
/// frames (a PTE copy each — no fault, no file read); on a miss the image
/// loads normally and then donates those frames to the cache for the next
/// exec of the same binary. The miss path costs exactly what [`load`]
/// does, plus nothing: donation is pin bookkeeping and charges no cycles.
pub fn load_cached(
    kernel: &mut Kernel,
    pid: Pid,
    image: &Image,
    layout: LayoutInfo,
    cache: &mut ImageCache,
) -> KResult<()> {
    fpr_trace::sink::span_begin("image_load", "exec", kernel.cycles.total());
    fpr_trace::metrics::incr("exec.image_load");
    let r = load_cached_inner(kernel, pid, image, layout, cache);
    fpr_trace::sink::span_end("image_load", kernel.cycles.total());
    r
}

fn load_cached_inner(
    kernel: &mut Kernel,
    pid: Pid,
    image: &Image,
    layout: LayoutInfo,
    cache: &mut ImageCache,
) -> KResult<()> {
    map_segments(kernel, pid, image, layout)?;
    match cache.lookup(kernel, image.file_id) {
        Some(frames) => {
            // Hit: install each cached frame copy-on-write at its place in
            // the image. The startup reads then find resident pages; only
            // the stack write still demand-faults.
            for (off, pfn) in frames {
                let exec = off < image.text_pages;
                kernel.map_shared_frame(pid, Vpn(layout.text_base + off), pfn, exec)?;
            }
            touch_startup(kernel, pid, image, layout)
        }
        None => {
            touch_startup(kernel, pid, image, layout)?;
            // Donate the file-backed pages just faulted in: write-protect
            // them in the donor (their frames are about to outlive it) and
            // pin them into the cache.
            let mut donated: Vec<(u64, Pfn)> = Vec::new();
            for off in startup_file_offsets(image) {
                let pte = kernel.cow_protect_page(pid, Vpn(layout.text_base + off))?;
                donated.push((off, pte.pfn));
            }
            cache.insert(kernel, image.file_id, donated)
        }
    }
}

/// File page offsets of the startup-touched pages that are file-backed
/// (cacheable): the entry page of text, and the first data page if the
/// image has initialised data. The other startup touches (BSS read when
/// there is no data, the stack write) hit anonymous zero-fill pages that
/// no cache can share.
fn startup_file_offsets(image: &Image) -> Vec<u64> {
    let mut offs = vec![image.entry_page];
    if image.data_pages > 0 && !offs.contains(&image.text_pages) {
        offs.push(image.text_pages);
    }
    offs
}

/// The startup faults every exec takes before `main()`: entry page of
/// text, first data-or-bss page, top stack page.
fn touch_startup(kernel: &mut Kernel, pid: Pid, image: &Image, layout: LayoutInfo) -> KResult<()> {
    kernel.read_mem(pid, Vpn(layout.text_base + image.entry_page))?;
    if image.data_pages + image.bss_pages > 0 {
        kernel.read_mem(pid, Vpn(layout.text_base + image.text_pages))?;
    }
    kernel.write_mem(pid, Vpn(layout.stack_base - 1), 0xdead)?;
    Ok(())
}

fn load_inner(kernel: &mut Kernel, pid: Pid, image: &Image, layout: LayoutInfo) -> KResult<()> {
    map_segments(kernel, pid, image, layout)?;
    touch_startup(kernel, pid, image, layout)
}

/// Creates the six image VMAs (text, data, bss, heap, guard, stack) and
/// records the layout, without touching any memory.
fn map_segments(kernel: &mut Kernel, pid: Pid, image: &Image, layout: LayoutInfo) -> KResult<()> {
    // Text: read-execute, file-backed, shared among instances.
    let text = VmArea {
        start: Vpn(layout.text_base),
        pages: image.text_pages,
        prot: Prot::RX,
        share: Share::Private,
        fork_policy: Default::default(),
        backing: Backing::File {
            file_id: image.file_id,
            page_offset: 0,
        },
        kind: VmaKind::Text,
    };
    kernel.mmap_at(pid, text)?;

    // Initialised data: read-write, file-backed, private (COW from file).
    if image.data_pages > 0 {
        let data = VmArea {
            start: Vpn(layout.text_base + image.text_pages),
            pages: image.data_pages,
            prot: Prot::RW,
            share: Share::Private,
            fork_policy: Default::default(),
            backing: Backing::File {
                file_id: image.file_id,
                page_offset: image.text_pages,
            },
            kind: VmaKind::Data,
        };
        kernel.mmap_at(pid, data)?;
    }

    // BSS: anonymous demand-zero right after data.
    if image.bss_pages > 0 {
        let bss = VmArea::anon(
            Vpn(layout.text_base + image.text_pages + image.data_pages),
            image.bss_pages,
            Prot::RW,
            VmaKind::Data,
        );
        kernel.mmap_at(pid, bss)?;
    }

    // Heap.
    if image.heap_pages > 0 {
        let heap = VmArea::anon(
            Vpn(layout.heap_base),
            image.heap_pages,
            Prot::RW,
            VmaKind::Heap,
        );
        kernel.mmap_at(pid, heap)?;
    }

    // Guard page below the stack, then the stack itself.
    let stack_low = layout
        .stack_base
        .checked_sub(image.stack_pages)
        .ok_or(Errno::Einval)?;
    let guard = VmArea {
        start: Vpn(stack_low - 1),
        pages: 1,
        prot: Prot::NONE,
        share: Share::Private,
        fork_policy: Default::default(),
        backing: Backing::Anon,
        kind: VmaKind::Guard,
    };
    kernel.mmap_at(pid, guard)?;
    let stack = VmArea::anon(Vpn(stack_low), image.stack_pages, Prot::RW, VmaKind::Stack);
    kernel.mmap_at(pid, stack)?;

    // Record the layout before touching memory (mmap hint uses it).
    {
        let p = kernel.process_mut(pid)?;
        p.layout = layout;
        p.name = image.name.clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aslr::{randomize, AslrConfig};
    use fpr_kernel::MachineConfig;
    use fpr_mem::vma::file_stamp;

    fn boot() -> (Kernel, Pid) {
        let mut k = Kernel::new(MachineConfig::default());
        let init = k.create_init("init").unwrap();
        (k, init)
    }

    #[test]
    fn load_creates_all_segments() {
        let (mut k, pid) = boot();
        let mut img = Image::small("sh");
        img.file_id = 77;
        let layout = randomize(AslrConfig::default(), 1);
        load(&mut k, pid, &img, layout).unwrap();
        let p = k.process(pid).unwrap();
        // text, data, bss, heap, guard, stack = 6 VMAs.
        assert_eq!(p.aspace.vma_count(), 6);
        assert_eq!(p.name, "sh");
        assert_eq!(p.layout, layout);
        assert_eq!(p.resident_pages(), STARTUP_TOUCHED_PAGES);
    }

    #[test]
    fn text_reads_image_content() {
        let (mut k, pid) = boot();
        let mut img = Image::small("sh");
        img.file_id = 77;
        let layout = randomize(AslrConfig::default(), 1);
        load(&mut k, pid, &img, layout).unwrap();
        let got = k.read_mem(pid, Vpn(layout.text_base + 3)).unwrap();
        assert_eq!(
            got,
            file_stamp(77, 3),
            "text page content comes from the image file"
        );
    }

    #[test]
    fn stack_guard_faults() {
        let (mut k, pid) = boot();
        let img = Image::small("sh");
        let layout = randomize(AslrConfig::default(), 2);
        load(&mut k, pid, &img, layout).unwrap();
        let guard = Vpn(layout.stack_base - img.stack_pages - 1);
        assert_eq!(k.read_mem(pid, guard), Err(Errno::Efault));
        assert_eq!(k.write_mem(pid, guard, 1), Err(Errno::Efault));
    }

    #[test]
    fn text_is_not_writable() {
        let (mut k, pid) = boot();
        let img = Image::small("sh");
        let layout = randomize(AslrConfig::default(), 3);
        load(&mut k, pid, &img, layout).unwrap();
        assert_eq!(
            k.write_mem(pid, Vpn(layout.text_base), 1),
            Err(Errno::Efault)
        );
    }

    #[test]
    fn loader_cost_is_o_image_not_o_memory() {
        // Loading into a machine with a huge busy process costs the same
        // as into an empty one.
        let (mut k, pid) = boot();
        let img = Image::small("sh");
        let c0 = k.cycles.total();
        load(&mut k, pid, &img, randomize(AslrConfig::default(), 4)).unwrap();
        let small_cost = k.cycles.total() - c0;

        let (mut k2, busy) = boot();
        let base = k2.mmap_anon(busy, 8192, Prot::RW, Share::Private).unwrap();
        k2.populate(busy, base, 8192).unwrap();
        let pid2 = k2.allocate_process(busy, "x").unwrap();
        let c1 = k2.cycles.total();
        load(&mut k2, pid2, &img, randomize(AslrConfig::default(), 4)).unwrap();
        let busy_cost = k2.cycles.total() - c1;
        assert_eq!(small_cost, busy_cost);
    }
}
