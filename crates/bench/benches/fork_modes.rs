//! Criterion bench for E2's ablation: COW fork vs eager fork, and the
//! page-table-sharing design point (vfork) as the zero-copy floor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forkroad_core::experiments::fig1::machine_for;
use forkroad_core::{Os, OsConfig};
use fpr_mem::ForkMode;
use fpr_trace::ProcessShape;

const FOOTPRINTS: [u64; 3] = [512, 4_096, 16_384];

fn setup(footprint: u64) -> (Os, fpr_kernel::Pid) {
    let mut os = Os::boot(OsConfig {
        machine: machine_for(footprint),
        ..Default::default()
    });
    let parent = os
        .make_parent(ProcessShape::with_heap(footprint))
        .expect("parent fits");
    (os, parent)
}

fn bench_fork_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork_modes");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for fp in FOOTPRINTS {
        for (label, mode) in [("cow", ForkMode::Cow), ("eager", ForkMode::Eager)] {
            group.bench_with_input(BenchmarkId::new(label, fp), &fp, |b, &fp| {
                b.iter_batched(
                    || setup(fp),
                    |(mut os, parent)| {
                        os.fork_stats(parent, mode).expect("fork");
                        os
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
        group.bench_with_input(BenchmarkId::new("vfork_floor", fp), &fp, |b, &fp| {
            b.iter_batched(
                || setup(fp),
                |(mut os, parent)| {
                    os.vfork(parent).expect("vfork");
                    os
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fork_modes);
criterion_main!(benches);
