//! Wall-clock bench for E2's ablation: COW fork vs eager fork vs
//! on-demand page-table copying, and the page-table-sharing design
//! point (vfork) as the zero-copy floor.
//! Plain `main` harness: the workspace builds hermetically without
//! criterion.

use forkroad_core::experiments::fig1::machine_for;
use forkroad_core::{Os, OsConfig};
use fpr_bench::time_batched;
use fpr_mem::ForkMode;
use fpr_trace::ProcessShape;

const FOOTPRINTS: [u64; 3] = [512, 4_096, 16_384];
const ITERS: u32 = 15;

fn setup(footprint: u64) -> (Os, fpr_kernel::Pid) {
    let mut os = Os::boot(OsConfig {
        machine: machine_for(footprint),
        ..Default::default()
    });
    let parent = os
        .make_parent(ProcessShape::with_heap(footprint))
        .expect("parent fits");
    (os, parent)
}

fn main() {
    println!("# fork_modes — COW vs eager fork, vfork floor");
    for fp in FOOTPRINTS {
        for (label, mode) in [
            ("cow", ForkMode::Cow),
            ("eager", ForkMode::Eager),
            ("ondemand", ForkMode::OnDemand),
        ] {
            time_batched(
                &format!("{label}/{fp}"),
                ITERS,
                || setup(fp),
                |(mut os, parent)| {
                    os.fork_stats(parent, mode).expect("fork");
                    os
                },
            );
        }
        time_batched(
            &format!("vfork_floor/{fp}"),
            ITERS,
            || setup(fp),
            |(mut os, parent)| {
                os.vfork(parent).expect("vfork");
                os
            },
        );
    }
}
