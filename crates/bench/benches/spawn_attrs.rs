//! Criterion bench for E7's cost side: posix_spawn with a growing file
//! action list, and the cross-process builder with growing explicit
//! grants — attribute application is linear in the request, never in the
//! parent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forkroad_core::{Os, OsConfig};
use fpr_api::{FileAction, MemOp, ProcessBuilder, SpawnAttrs};
use fpr_kernel::{Fd, OpenFlags};
use fpr_mem::Prot;

fn actions(n: usize) -> Vec<FileAction> {
    (0..n)
        .map(|i| FileAction::Open {
            fd: Fd(10 + i as u32),
            path: format!("/spawn_file_{i}"),
            flags: OpenFlags::RDWR,
            create: true,
        })
        .collect()
}

fn bench_attrs(c: &mut Criterion) {
    let mut group = c.benchmark_group("spawn_attrs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [0usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::new("posix_spawn_actions", n), &n, |b, &n| {
            b.iter_batched(
                || (Os::boot(OsConfig::default()), actions(n)),
                |(mut os, acts)| {
                    let init = os.init;
                    os.spawn(init, "/bin/tool", &acts, &SpawnAttrs::default())
                        .expect("spawn");
                    os
                },
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("xproc_mem_grants", n), &n, |b, &n| {
            b.iter_batched(
                || Os::boot(OsConfig::default()),
                |mut os| {
                    let init = os.init;
                    let mut builder = ProcessBuilder::new("/bin/tool").mem(MemOp::MapAnon {
                        tag: 0,
                        pages: 4,
                        prot: Prot::RW,
                    });
                    for i in 0..n as u64 {
                        builder = builder.mem(MemOp::Write {
                            tag: 0,
                            offset: i % 4,
                            value: i,
                        });
                    }
                    os.spawn_builder(init, builder).expect("xproc");
                    os
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attrs);
criterion_main!(benches);
