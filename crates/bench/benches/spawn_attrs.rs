//! Wall-clock bench for E7's cost side: posix_spawn with a growing file
//! action list, and the cross-process builder with growing explicit
//! grants — attribute application is linear in the request, never in the
//! parent. Plain `main` harness: the workspace builds hermetically
//! without criterion.

use forkroad_core::{Os, OsConfig};
use fpr_api::{FileAction, MemOp, ProcessBuilder, SpawnAttrs};
use fpr_bench::time_batched;
use fpr_kernel::{Fd, OpenFlags};
use fpr_mem::Prot;

const ITERS: u32 = 15;

fn actions(n: usize) -> Vec<FileAction> {
    (0..n)
        .map(|i| FileAction::Open {
            fd: Fd(10 + i as u32),
            path: format!("/spawn_file_{i}"),
            flags: OpenFlags::RDWR,
            create: true,
        })
        .collect()
}

fn main() {
    println!("# spawn_attrs — file actions and explicit grants scale with the request");
    for n in [0usize, 4, 16, 64] {
        time_batched(
            &format!("posix_spawn_actions/{n}"),
            ITERS,
            || (Os::boot(OsConfig::default()), actions(n)),
            |(mut os, acts)| {
                let init = os.init;
                os.spawn(init, "/bin/tool", &acts, &SpawnAttrs::default())
                    .expect("spawn");
                os
            },
        );
        time_batched(
            &format!("xproc_mem_grants/{n}"),
            ITERS,
            || Os::boot(OsConfig::default()),
            |mut os| {
                let init = os.init;
                let mut builder = ProcessBuilder::new("/bin/tool").mem(MemOp::MapAnon {
                    tag: 0,
                    pages: 4,
                    prot: Prot::RW,
                });
                for i in 0..n as u64 {
                    builder = builder.mem(MemOp::Write {
                        tag: 0,
                        offset: i % 4,
                        value: i,
                    });
                }
                os.spawn_builder(init, builder).expect("xproc");
                os
            },
        );
    }
}
