//! Wall-clock bench for E1: time of the simulator performing each
//! creation API as the parent footprint grows.
//!
//! Unlike the `fig1` binary (which reports deterministic simulated
//! cycles), this measures the real time the simulator spends doing the
//! structural work — which scales the same way, because copying N page
//! table entries is O(N) actual work. Plain `main` harness: the
//! workspace builds hermetically without criterion.

use forkroad_core::experiments::fig1::machine_for;
use forkroad_core::{Os, OsConfig};
use fpr_api::{ProcessBuilder, SpawnAttrs};
use fpr_bench::time_batched;
use fpr_trace::ProcessShape;

const FOOTPRINTS: [u64; 3] = [256, 2_048, 16_384];
const ITERS: u32 = 15;

fn setup(footprint: u64) -> (Os, fpr_kernel::Pid) {
    let mut os = Os::boot(OsConfig {
        machine: machine_for(footprint),
        ..Default::default()
    });
    let parent = os
        .make_parent(ProcessShape::with_heap(footprint))
        .expect("parent fits");
    (os, parent)
}

fn main() {
    println!("# creation_latency — wall-clock per API, parent footprint sweep");
    for fp in FOOTPRINTS {
        time_batched(
            &format!("fork_exec/{fp}"),
            ITERS,
            || setup(fp),
            |(mut os, parent)| {
                let child = os.fork(parent).expect("fork");
                os.exec(child, "/bin/tool").expect("exec");
                os
            },
        );
        time_batched(
            &format!("posix_spawn/{fp}"),
            ITERS,
            || setup(fp),
            |(mut os, parent)| {
                os.spawn(parent, "/bin/tool", &[], &SpawnAttrs::default())
                    .expect("spawn");
                os
            },
        );
        time_batched(
            &format!("xproc/{fp}"),
            ITERS,
            || setup(fp),
            |(mut os, parent)| {
                os.spawn_builder(parent, ProcessBuilder::new("/bin/tool"))
                    .expect("xproc");
                os
            },
        );
        time_batched(
            &format!("vfork_exec/{fp}"),
            ITERS,
            || setup(fp),
            |(mut os, parent)| {
                let child = os.vfork(parent).expect("vfork");
                os.exec(child, "/bin/tool").expect("exec");
                os
            },
        );
    }
}
