//! Criterion bench for E1: wall-clock of the simulator performing each
//! creation API as the parent footprint grows.
//!
//! Unlike the `fig1` binary (which reports deterministic simulated
//! cycles), this measures the real time the simulator spends doing the
//! structural work — which scales the same way, because copying N page
//! table entries is O(N) actual work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forkroad_core::experiments::fig1::machine_for;
use forkroad_core::{Os, OsConfig};
use fpr_api::{ProcessBuilder, SpawnAttrs};
use fpr_trace::ProcessShape;

const FOOTPRINTS: [u64; 3] = [256, 2_048, 16_384];

fn setup(footprint: u64) -> (Os, fpr_kernel::Pid) {
    let mut os = Os::boot(OsConfig {
        machine: machine_for(footprint),
        ..Default::default()
    });
    let parent = os
        .make_parent(ProcessShape::with_heap(footprint))
        .expect("parent fits");
    (os, parent)
}

fn bench_creation(c: &mut Criterion) {
    let mut group = c.benchmark_group("creation_latency");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for fp in FOOTPRINTS {
        group.bench_with_input(BenchmarkId::new("fork_exec", fp), &fp, |b, &fp| {
            b.iter_batched(
                || setup(fp),
                |(mut os, parent)| {
                    let child = os.fork(parent).expect("fork");
                    os.exec(child, "/bin/tool").expect("exec");
                    os
                },
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("posix_spawn", fp), &fp, |b, &fp| {
            b.iter_batched(
                || setup(fp),
                |(mut os, parent)| {
                    os.spawn(parent, "/bin/tool", &[], &SpawnAttrs::default())
                        .expect("spawn");
                    os
                },
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("xproc", fp), &fp, |b, &fp| {
            b.iter_batched(
                || setup(fp),
                |(mut os, parent)| {
                    os.spawn_builder(parent, ProcessBuilder::new("/bin/tool"))
                        .expect("xproc");
                    os
                },
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("vfork_exec", fp), &fp, |b, &fp| {
            b.iter_batched(
                || setup(fp),
                |(mut os, parent)| {
                    let child = os.vfork(parent).expect("vfork");
                    os.exec(child, "/bin/tool").expect("exec");
                    os
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_creation);
criterion_main!(benches);
