//! Wall-clock microbenches for the fault path (E3): demand-zero fill,
//! COW break with and without sharing, and the sole-owner reclaim path.
//! Plain `main` harness: the workspace builds hermetically without
//! criterion.

use forkroad_core::{Os, OsConfig};
use fpr_bench::time_batched;
use fpr_mem::{ForkMode, Prot, Share};

const ITERS: u32 = 15;

fn main() {
    println!("# fault_path — demand-zero, COW break, sole-owner reuse");

    time_batched(
        "demand_zero_fill",
        ITERS,
        || {
            let mut os = Os::boot(OsConfig::default());
            let init = os.init;
            let base = os
                .kernel
                .mmap_anon(init, 1024, Prot::RW, Share::Private)
                .unwrap();
            (os, init, base)
        },
        |(mut os, init, base)| {
            for i in 0..1024u64 {
                os.kernel.write_mem(init, base.add(i), i).unwrap();
            }
            os
        },
    );

    time_batched(
        "cow_break_1024_pages",
        ITERS,
        || {
            let mut os = Os::boot(OsConfig::default());
            let init = os.init;
            let base = os
                .kernel
                .mmap_anon(init, 1024, Prot::RW, Share::Private)
                .unwrap();
            os.kernel.populate(init, base, 1024).unwrap();
            let (child, _) = os.fork_stats(init, ForkMode::Cow).unwrap();
            (os, child, base)
        },
        |(mut os, child, base)| {
            for i in 0..1024u64 {
                os.kernel.write_mem(child, base.add(i), i).unwrap();
            }
            os
        },
    );

    time_batched(
        "sole_owner_cow_reuse",
        ITERS,
        // Child exits first: the parent's writes reclaim frames in place
        // instead of copying.
        || {
            let mut os = Os::boot(OsConfig::default());
            let init = os.init;
            let base = os
                .kernel
                .mmap_anon(init, 1024, Prot::RW, Share::Private)
                .unwrap();
            os.kernel.populate(init, base, 1024).unwrap();
            let (child, _) = os.fork_stats(init, ForkMode::Cow).unwrap();
            os.kernel.exit(child, 0).unwrap();
            os.kernel.waitpid(init, Some(child)).unwrap();
            (os, init, base)
        },
        |(mut os, init, base)| {
            for i in 0..1024u64 {
                os.kernel.write_mem(init, base.add(i), i).unwrap();
            }
            os
        },
    );
}
