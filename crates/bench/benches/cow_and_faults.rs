//! Criterion microbenches for the fault path (E3): demand-zero fill,
//! COW break with and without sharing, and the TLB-shootdown ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use forkroad_core::{Os, OsConfig};
use fpr_mem::{ForkMode, Prot, Share};

fn bench_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_path");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("demand_zero_fill", |b| {
        b.iter_batched(
            || {
                let mut os = Os::boot(OsConfig::default());
                let init = os.init;
                let base = os
                    .kernel
                    .mmap_anon(init, 1024, Prot::RW, Share::Private)
                    .unwrap();
                (os, init, base, 0u64)
            },
            |(mut os, init, base, _)| {
                for i in 0..1024u64 {
                    os.kernel.write_mem(init, base.add(i), i).unwrap();
                }
                os
            },
            criterion::BatchSize::LargeInput,
        );
    });

    group.bench_function("cow_break_1024_pages", |b| {
        b.iter_batched(
            || {
                let mut os = Os::boot(OsConfig::default());
                let init = os.init;
                let base = os
                    .kernel
                    .mmap_anon(init, 1024, Prot::RW, Share::Private)
                    .unwrap();
                os.kernel.populate(init, base, 1024).unwrap();
                let (child, _) = os.fork_stats(init, ForkMode::Cow).unwrap();
                (os, child, base)
            },
            |(mut os, child, base)| {
                for i in 0..1024u64 {
                    os.kernel.write_mem(child, base.add(i), i).unwrap();
                }
                os
            },
            criterion::BatchSize::LargeInput,
        );
    });

    group.bench_function("sole_owner_cow_reuse", |b| {
        // Child exits first: the parent's writes reclaim frames in place
        // instead of copying.
        b.iter_batched(
            || {
                let mut os = Os::boot(OsConfig::default());
                let init = os.init;
                let base = os
                    .kernel
                    .mmap_anon(init, 1024, Prot::RW, Share::Private)
                    .unwrap();
                os.kernel.populate(init, base, 1024).unwrap();
                let (child, _) = os.fork_stats(init, ForkMode::Cow).unwrap();
                os.kernel.exit(child, 0).unwrap();
                os.kernel.waitpid(init, Some(child)).unwrap();
                (os, init, base)
            },
            |(mut os, init, base)| {
                for i in 0..1024u64 {
                    os.kernel.write_mem(init, base.add(i), i).unwrap();
                }
                os
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
