//! E3a on the host kernel: fork + child dirtying a swept fraction of the
//! parent's buffer.

use fpr_bench::{emit, quick_mode};

fn main() {
    let mib = if quick_mode() { 8 } else { 64 };
    let iters = if quick_mode() { 5 } else { 15 };
    match fpr_native::run_native_cow(mib, &[0.0, 0.25, 0.5, 0.75, 1.0], iters) {
        Ok(rows) => {
            let mut fig = fpr_trace::FigureData::new(
                "fig_cow_native",
                "native fork + child-dirty total vs touch fraction",
                "touch fraction",
                "total us",
            );
            let mut s = fpr_trace::Series::new("fork_dirty_wait");
            for r in &rows {
                s.push(r.touch_fraction, r.total_us);
            }
            fig.series = vec![s];
            emit("fig_cow_native", &fig.render(), &fig.to_json());
        }
        Err(e) => eprintln!("native measurement unavailable: {e}"),
    }
}
