//! Demonstration trace: an on-demand fork followed by an exec in the
//! child, recorded through [`fpr_kernel::Kernel::trace_scope`] and
//! exported as Chrome trace-event JSON (`results/trace_demo.json`).
//!
//! Load the file in `about:tracing` or <https://ui.perfetto.dev> to see
//! the span tree; the same tree is printed here as a text flamegraph.

use fpr_bench::results_dir;
use fpr_exec::{AslrConfig, Image, ImageRegistry};
use fpr_kernel::Kernel;
use fpr_mem::{ForkMode, Prot, Share};
use fpr_trace::{chrome, json, report, sink, CYCLES_PER_US};

fn main() {
    let mut k = Kernel::boot();
    let init = k.create_init("init").expect("boot init");
    let mut reg = ImageRegistry::new();
    reg.register("/bin/tool", Image::small("tool"));

    // Give the parent a populated heap so the fork has page-table
    // subtrees to share and the post-fork write breaks one of them.
    let base = k
        .mmap_anon(init, 4_096, Prot::RW, Share::Private)
        .expect("map heap");
    k.populate(init, base, 4_096).expect("populate heap");
    let tid = k.process(init).expect("parent exists").main_tid();

    let ((), events) = k.trace_scope(|k| {
        let (child, _stats) =
            fpr_api::fork_from_thread(k, init, tid, ForkMode::OnDemand).expect("fork fits");
        fpr_exec::execve(k, child, &reg, "/bin/tool", AslrConfig::default(), 42)
            .expect("exec child");
        // Touch a shared page: the deferred page-table copy and the COW
        // machinery fire and show up as instants in the trace.
        k.write_mem(init, base, 7).expect("write heap");
    });

    assert!(
        sink::spans_balanced(&events),
        "begin/end events must balance"
    );
    let text = chrome::to_chrome_string(&events, CYCLES_PER_US);
    json::parse(&text).expect("exported trace must be valid JSON");

    println!("{}", report::render(&events, CYCLES_PER_US));
    let path = results_dir().join("trace_demo.json");
    match std::fs::write(&path, &text) {
        Ok(()) => println!("[saved {} ({} events)]", path.display(), events.len()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
