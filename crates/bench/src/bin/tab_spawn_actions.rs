//! E7 cost side: posix_spawn latency as the file-action list grows —
//! linear in the request, never in the parent.

use forkroad_core::{Os, OsConfig};
use fpr_api::{FileAction, SpawnAttrs};
use fpr_bench::emit;
use fpr_kernel::{Fd, OpenFlags};
use fpr_mem::CYCLES_PER_US;
use fpr_trace::TableData;

fn main() {
    let mut t = TableData::new(
        "tab_spawn_actions",
        "posix_spawn cost vs file-action count (simulated us)",
        &["actions", "spawn_us", "us_per_action"],
    );
    let mut base_us = 0.0;
    for n in [0usize, 2, 8, 32, 128] {
        let mut os = Os::boot(OsConfig::default());
        let init = os.init;
        let actions: Vec<FileAction> = (0..n)
            .map(|i| FileAction::Open {
                fd: Fd(10 + i as u32),
                path: format!("/af_{i}"),
                flags: OpenFlags::RDWR,
                create: true,
            })
            .collect();
        let (_, cycles) = os.measure(|os| {
            os.spawn(init, "/bin/tool", &actions, &SpawnAttrs::default())
                .expect("spawn")
        });
        let us = cycles as f64 / CYCLES_PER_US as f64;
        if n == 0 {
            base_us = us;
        }
        let per = if n > 0 {
            (us - base_us) / n as f64
        } else {
            0.0
        };
        t.push_row(vec![n.to_string(), format!("{us:.2}"), format!("{per:.3}")]);
    }
    emit("tab_spawn_actions", &t.render(), &t.to_json());
}
