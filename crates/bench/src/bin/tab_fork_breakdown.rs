//! E2: fork cost decomposition.

use forkroad_core::experiments::breakdown;
use fpr_bench::{emit, quick_mode};

fn main() {
    let footprints: Vec<u64> = if quick_mode() {
        vec![256, 4_096]
    } else {
        vec![256, 1_024, 4_096, 16_384, 65_536, 262_144]
    };
    let t = breakdown::run(&footprints);
    emit("tab_fork_breakdown", &t.render(), &t.to_json());
}
