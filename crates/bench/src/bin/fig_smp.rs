//! E16: fork's multicore scaling collapse — process-creation throughput
//! vs worker threads (real OS threads, virtual time), with the per-lock
//! contention counters saying where each arm serialized.

use forkroad_core::experiments::smp;
use fpr_bench::{emit, quick_mode};

fn main() {
    let threads: &[usize] = if quick_mode() { &[1, 2, 4] } else { &smp::THREADS };
    let out = smp::run_with(threads);
    let fig = out.figure();
    emit("fig_smp", &fig.render(), &fig.to_json());
    let tab = out.contention_table();
    emit("tab_smp_contention", &tab.render(), &tab.to_json());

    println!("# speedup vs 1 thread (virtual time)");
    for arm in ["fork_cow_shared", "fork_cow_private", "spawn_fast"] {
        let per_t: Vec<String> = threads
            .iter()
            .map(|&t| format!("{t}t {:.2}x", out.speedup(arm, t)))
            .collect();
        println!("{arm:>18}: {}", per_t.join(", "));
    }
}
