//! E5: post-fork deadlock incidence and auditor detection rate.

use forkroad_core::experiments::threads;
use fpr_bench::{emit, quick_mode};

fn main() {
    let trials = if quick_mode() { 10 } else { 50 };
    let t = threads::run(&[1, 2, 4, 8, 16, 32], &[0.25, 0.5, 1.0], trials);
    emit("tab_thread_safety", &t.render(), &t.to_json());
}
