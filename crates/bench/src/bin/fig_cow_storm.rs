//! E3a: COW fault storm — total cost vs post-fork touch fraction.

use forkroad_core::experiments::cow;
use fpr_bench::{emit, quick_mode};

fn main() {
    let footprint = if quick_mode() { 1_024 } else { 16_384 };
    let fractions = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let fig = cow::run(footprint, &fractions);
    emit("fig_cow_storm", &fig.render(), &fig.to_json());
    match cow::crossover(&fig) {
        Some(x) => println!("COW stops winning at touch fraction {x:.2}"),
        None => println!("COW never crossed eager in this sweep"),
    }
}
