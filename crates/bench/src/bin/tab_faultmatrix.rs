//! E9: API × fail-site sweep plus retry-under-pressure comparison.

use forkroad_core::experiments::robustness;
use fpr_bench::emit;

fn main() {
    let m = robustness::fault_matrix();
    emit("tab_faultmatrix", &m.render(), &m.to_json());
    let t = robustness::run();
    emit("tab_e9_robustness", &t.render(), &t.to_json());
    let dirty = m.rows.iter().filter(|r| r[4] != "clean").count();
    println!(
        "shape check: {} (api, site) cells swept, {dirty} dirty (must be 0)",
        m.rows.len()
    );
}
