//! E3b: fork and COW-break cost vs CPUs running the parent.

use forkroad_core::experiments::scaling;
use fpr_bench::{emit, quick_mode};

fn main() {
    let threads: Vec<u32> = if quick_mode() {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    };
    let footprint = if quick_mode() { 512 } else { 4_096 };
    let fig = scaling::run(&threads, footprint);
    emit("fig_fork_scaling", &fig.render(), &fig.to_json());
}
