//! E8b: fork-bomb containment by RLIMIT_NPROC.

use forkroad_core::experiments::forkbomb;
use fpr_bench::{emit, quick_mode};

fn main() {
    let max_pids = if quick_mode() { 512 } else { 4_096 };
    let t = forkbomb::run(&[16, 64, 256, u64::MAX], max_pids);
    emit("tab_forkbomb", &t.render(), &t.to_json());
}
