//! E12: memory-pressure storm — spawn latency through the three storm
//! phases with the fast-path caches registered as shrinkers, against the
//! classic-path reference, plus the OOM body count of the shrinker-less
//! baseline run at identical demand.

use forkroad_core::experiments::pressure;
use fpr_bench::emit;

fn main() {
    // The storm is a fixed scenario, not a sweep: --quick runs the same
    // figure (it is already seconds-fast at the storm machine size).
    let fig = pressure::run();
    emit("fig_pressure", &fig.render(), &fig.to_json());

    let (with, without) = pressure::run_pair();
    println!("# storm detail (demand = {} pages)", with.touched_pages);
    println!(
        "shrinkers:    {} oom kills, {} reclaim passes, {} frames reclaimed, {} stall cycles",
        with.oom_victims.len(),
        with.reclaim_passes,
        with.frames_reclaimed,
        with.stall_cycles
    );
    println!(
        "no shrinkers: {} oom kills ({} cache frames pinned at first kill)",
        without.oom_victims.len(),
        without.pinned_frames_at_first_kill
    );

    // E13: the same storm machine with a swap tier below the shrinkers.
    let fig = pressure::run_swap();
    emit("fig_swap", &fig.render(), &fig.to_json());

    let (with, without) = pressure::run_swap_pair();
    println!("# swap storm detail (demand = {} pages)", with.touched_pages);
    println!(
        "with swap: {} oom kills, {} swap-outs, {} swap-ins, {} refaults, peak {} slots, {} stall cycles{}",
        with.oom_victims.len(),
        with.swap_outs,
        with.swap_ins,
        with.refaults,
        with.peak_slots_used,
        with.stall_cycles,
        if with.thrash_seen { " (thrashed)" } else { "" }
    );
    println!(
        "no swap:   {} oom kills, {}/{} workers survived",
        without.oom_victims.len(),
        without.survivors,
        4
    );
}
