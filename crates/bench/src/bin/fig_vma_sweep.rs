//! E2b: fork cost vs mapping count at fixed footprint.

use forkroad_core::experiments::vma_sweep;
use fpr_bench::{emit, quick_mode};

fn main() {
    let pages = if quick_mode() { 1_024 } else { 8_192 };
    let vmas: Vec<u64> = vec![1, 8, 64, 256, 1_024, 4_096];
    let fig = vma_sweep::run(pages, &vmas);
    emit("fig_vma_sweep", &fig.render(), &fig.to_json());
}
