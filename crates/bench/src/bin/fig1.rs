//! E1 / Figure 1 on the simulator: creation latency vs parent footprint.

use forkroad_core::experiments::fig1;
use fpr_bench::{emit, quick_mode};

fn main() {
    let footprints: Vec<u64> = if quick_mode() {
        vec![256, 4_096, 65_536]
    } else {
        fpr_trace::fig1_footprints()
    };
    let fig = fig1::run(&footprints);
    emit("fig1", &fig.render(), &fig.to_json());
    let fork = fig.series("fork+exec").expect("series");
    let spawn = fig.series("posix_spawn").expect("series");
    println!(
        "shape check: fork grows {:.1}x across sweep; spawn grows {:.2}x; \
         fork/spawn at max = {:.1}x",
        fork.growth_factor().unwrap_or(0.0),
        spawn.growth_factor().unwrap_or(0.0),
        fork.last_y().unwrap_or(0.0) / spawn.last_y().unwrap_or(1.0),
    );
}
