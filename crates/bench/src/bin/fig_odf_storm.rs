//! E10: on-demand fork fault storm — where the deferred page-table copy
//! goes when fork stops paying it.

use forkroad_core::experiments::odf_storm;
use fpr_bench::{emit, quick_mode};

fn main() {
    let footprint = if quick_mode() { 4_096 } else { 16_384 };
    let fractions = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let fig = odf_storm::run(footprint, &fractions);
    emit("fig_odf_storm", &fig.render(), &fig.to_json());

    // Headline shape: fork-time saving vs total-work conservation.
    let fork_ratio = fig
        .series("cow_fork")
        .zip(fig.series("ondemand_fork"))
        .and_then(|(c, o)| Some(c.last_y()? / o.last_y()?));
    let total_gap = fig
        .series("cow_total")
        .zip(fig.series("ondemand_total"))
        .and_then(|(c, o)| Some((o.last_y()? - c.last_y()?).abs() / c.last_y()?));
    if let (Some(r), Some(g)) = (fork_ratio, total_gap) {
        println!("fork itself is {r:.0}x cheaper on-demand; fully-touched totals differ {:.1}%", g * 100.0);
    }
}
