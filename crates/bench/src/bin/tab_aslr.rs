//! E8a: ASLR layout sharing — zygote forking vs spawn-per-child.

use forkroad_core::experiments::aslr;
use fpr_bench::{emit, quick_mode};

fn main() {
    let n = if quick_mode() { 8 } else { 32 };
    let t = aslr::run(n);
    emit("tab_aslr", &t.render(), &t.to_json());
}
