//! E6: buffered output duplicated by each creation API.

use forkroad_core::experiments::stdio;
use fpr_bench::emit;

fn main() {
    let t = stdio::run(&[0, 64, 512, 2_048]);
    emit("tab_stdio_dup", &t.render(), &t.to_json());
}
