//! E7: the API capability matrix.

use fpr_api::render_matrix;

fn main() {
    print!("{}", render_matrix());
}
