//! Non-timing bench smoke for `make verify`.
//!
//! Two guarantees, both machine-checked on every run:
//!
//! 1. Every `fig*`/`tab*` driver still runs at reduced size and emits
//!    JSON that round-trips through the typed readers in `fpr-trace` —
//!    a renamed series or a malformed emitter fails the build gate, not
//!    a later plotting script.
//! 2. The deterministic cycle cost of each creation API × fork mode is
//!    snapshotted (median over ASLR seeds) to `BENCH_fork_modes.json`,
//!    so the perf trajectory of the hot path is tracked in-repo from
//!    this PR onward.

use forkroad_core::experiments::{
    aslr, breakdown, cow, fig1, forkbomb, odf_storm, overcommit, robustness, scaling, stdio,
    threads, vma_sweep,
};
use forkroad_core::{Os, OsConfig};
use fpr_api::SpawnAttrs;
use fpr_bench::{emit, results_dir};
use fpr_mem::ForkMode;
use fpr_trace::{FigureData, ProcessShape, TableData};

const FOOTPRINT: u64 = 4_096;
const SEEDS: [u64; 5] = [11, 23, 42, 77, 91];

/// Emits a figure and proves the written JSON parses back.
fn smoke_fig(id: &str, fig: &FigureData) {
    emit(id, &fig.render(), &fig.to_json());
    let text = std::fs::read_to_string(results_dir().join(format!("{id}.json")))
        .unwrap_or_else(|e| panic!("{id}: emitted file unreadable: {e}"));
    let back = FigureData::from_json(&text).unwrap_or_else(|e| panic!("{id}: bad JSON: {e}"));
    assert!(!back.series.is_empty(), "{id}: round-trip lost all series");
}

/// Emits a table and proves the written JSON parses back.
fn smoke_tab(id: &str, tab: &TableData) {
    emit(id, &tab.render(), &tab.to_json());
    let text = std::fs::read_to_string(results_dir().join(format!("{id}.json")))
        .unwrap_or_else(|e| panic!("{id}: emitted file unreadable: {e}"));
    let back = TableData::from_json(&text).unwrap_or_else(|e| panic!("{id}: bad JSON: {e}"));
    assert!(!back.rows.is_empty(), "{id}: round-trip lost all rows");
}

/// Median simulated cycles of `op` across the ASLR seed set.
fn median_cycles(op: impl Fn(&mut Os, fpr_kernel::Pid)) -> u64 {
    let mut samples: Vec<u64> = SEEDS
        .iter()
        .map(|&seed| {
            let mut os = Os::boot(OsConfig {
                machine: fig1::machine_for(FOOTPRINT),
                seed,
                ..Default::default()
            });
            let parent = os.make_parent(ProcessShape::with_heap(FOOTPRINT)).expect("fits");
            let ((), cycles) = os.measure(|os| op(os, parent));
            cycles
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    println!("=== bench smoke: reduced sweeps + JSON round-trip ===\n");

    smoke_fig("fig1", &fig1::run(&[256, 1_024, 4_096]));
    smoke_tab("tab_fork_breakdown", &breakdown::run(&[256, 1_024, 4_096]));
    smoke_fig("fig_vma_sweep", &vma_sweep::run(1_024, &[1, 16, 256]));
    smoke_fig("fig_cow_storm", &cow::run(1_024, &[0.0, 0.5, 1.0]));
    smoke_fig("fig_odf_storm", &odf_storm::run(2_048, &[0.0, 0.5, 1.0]));
    smoke_fig("fig_fork_scaling", &scaling::run(&[1, 4, 16], 512));
    smoke_tab("tab_overcommit", &overcommit::run(&[0.25, 0.60]));
    smoke_tab("tab_thread_safety", &threads::run(&[1, 4], &[0.5], 10));
    smoke_tab("tab_stdio_dup", &stdio::run(&[0, 64]));
    smoke_tab("tab_aslr", &aslr::run(8));
    smoke_tab("tab_forkbomb", &forkbomb::run(&[16, 64], 512));
    smoke_tab("tab_faultmatrix", &robustness::fault_matrix());
    smoke_tab("tab_e9_robustness", &robustness::run());

    // API × mode cycle medians: the machine-tracked perf snapshot.
    let entries: Vec<(&str, &str, u64)> = vec![
        (
            "fork",
            "cow",
            median_cycles(|os, p| {
                os.fork_stats(p, ForkMode::Cow).expect("fork");
            }),
        ),
        (
            "fork",
            "eager",
            median_cycles(|os, p| {
                os.fork_stats(p, ForkMode::Eager).expect("fork");
            }),
        ),
        (
            "fork",
            "ondemand",
            median_cycles(|os, p| {
                os.fork_stats(p, ForkMode::OnDemand).expect("fork");
            }),
        ),
        (
            "vfork",
            "share",
            median_cycles(|os, p| {
                os.vfork(p).expect("vfork");
            }),
        ),
        (
            "posix_spawn",
            "fresh",
            median_cycles(|os, p| {
                os.spawn(p, "/bin/tool", &[], &SpawnAttrs::default()).expect("spawn");
            }),
        ),
    ];

    let mut json = String::from("{\n");
    json.push_str("  \"id\": \"BENCH_fork_modes\",\n");
    json.push_str(&format!("  \"footprint_pages\": {FOOTPRINT},\n"));
    json.push_str(&format!("  \"aslr_seeds\": {},\n", SEEDS.len()));
    json.push_str("  \"median_cycles\": [\n");
    for (i, (api, mode, cycles)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"api\": \"{api}\", \"mode\": \"{mode}\", \"cycles\": {cycles}}}{comma}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_fork_modes.json", &json).expect("write BENCH_fork_modes.json");

    println!("\n# BENCH_fork_modes — median cycles per API x mode (fp={FOOTPRINT} pages)");
    for (api, mode, cycles) in &entries {
        println!("{:<24} {cycles:>10}", format!("{api}/{mode}"));
    }
    println!("[saved BENCH_fork_modes.json]");

    // The snapshot must show the PR's point: on-demand fork is in the
    // flat class (vfork/spawn), not the page-proportional one.
    let get = |a: &str, m: &str| {
        entries
            .iter()
            .find(|(x, y, _)| *x == a && *y == m)
            .map(|(_, _, c)| *c)
            .unwrap()
    };
    assert!(
        get("fork", "ondemand") * 5 < get("fork", "cow"),
        "on-demand fork must be far below COW fork at {FOOTPRINT} pages"
    );
    println!("\n=== bench smoke OK ===");
}
