//! Non-timing bench smoke for `make verify`.
//!
//! Two guarantees, both machine-checked on every run:
//!
//! 1. Every `fig*`/`tab*` driver still runs at reduced size and emits
//!    JSON that round-trips through the typed readers in `fpr-trace` —
//!    a renamed series or a malformed emitter fails the build gate, not
//!    a later plotting script.
//! 2. The deterministic cycle cost of each creation API × fork mode is
//!    snapshotted (median over ASLR seeds) to `BENCH_fork_modes.json`,
//!    so the perf trajectory of the hot path is tracked in-repo from
//!    this PR onward.

use forkroad_core::experiments::service::{self, CreationPath};
use forkroad_core::experiments::spawn_fastpath::{self, Mode};
use forkroad_core::experiments::{
    aslr, breakdown, cow, fig1, forkbomb, odf_storm, overcommit, pressure, robustness, scaling,
    smp, smp_faults, stdio, threads, vma_sweep,
};
use forkroad_core::{Os, OsConfig};
use fpr_api::SpawnAttrs;
use fpr_bench::{emit, results_dir};
use fpr_mem::ForkMode;
use fpr_trace::{FigureData, ProcessShape, TableData};

const FOOTPRINT: u64 = 4_096;
const SEEDS: [u64; 5] = [11, 23, 42, 77, 91];

/// Emits a figure and proves the written JSON parses back.
fn smoke_fig(id: &str, fig: &FigureData) {
    emit(id, &fig.render(), &fig.to_json());
    let text = std::fs::read_to_string(results_dir().join(format!("{id}.json")))
        .unwrap_or_else(|e| panic!("{id}: emitted file unreadable: {e}"));
    let back = FigureData::from_json(&text).unwrap_or_else(|e| panic!("{id}: bad JSON: {e}"));
    assert!(!back.series.is_empty(), "{id}: round-trip lost all series");
}

/// Emits a table and proves the written JSON parses back.
fn smoke_tab(id: &str, tab: &TableData) {
    emit(id, &tab.render(), &tab.to_json());
    let text = std::fs::read_to_string(results_dir().join(format!("{id}.json")))
        .unwrap_or_else(|e| panic!("{id}: emitted file unreadable: {e}"));
    let back = TableData::from_json(&text).unwrap_or_else(|e| panic!("{id}: bad JSON: {e}"));
    assert!(!back.rows.is_empty(), "{id}: round-trip lost all rows");
}

/// Median of a seed-parameterised measurement across the ASLR seed set.
fn median_over_seeds(f: impl Fn(u64) -> u64) -> u64 {
    let mut samples: Vec<u64> = SEEDS.iter().map(|&seed| f(seed)).collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median simulated cycles of `op` across the ASLR seed set.
fn median_cycles(op: impl Fn(&mut Os, fpr_kernel::Pid)) -> u64 {
    let mut samples: Vec<u64> = SEEDS
        .iter()
        .map(|&seed| {
            let mut os = Os::boot(OsConfig {
                machine: fig1::machine_for(FOOTPRINT),
                seed,
                ..Default::default()
            });
            let parent = os.make_parent(ProcessShape::with_heap(FOOTPRINT)).expect("fits");
            let ((), cycles) = os.measure(|os| op(os, parent));
            cycles
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    println!("=== bench smoke: reduced sweeps + JSON round-trip ===\n");

    smoke_fig("fig1", &fig1::run(&[256, 1_024, 4_096]));
    smoke_tab("tab_fork_breakdown", &breakdown::run(&[256, 1_024, 4_096]));
    smoke_fig("fig_vma_sweep", &vma_sweep::run(1_024, &[1, 16, 256]));
    smoke_fig("fig_cow_storm", &cow::run(1_024, &[0.0, 0.5, 1.0]));
    smoke_fig("fig_odf_storm", &odf_storm::run(2_048, &[0.0, 0.5, 1.0]));
    smoke_fig("fig_fork_scaling", &scaling::run(&[1, 4, 16], 512));
    smoke_tab("tab_overcommit", &overcommit::run(&[0.25, 0.60]));
    smoke_tab("tab_thread_safety", &threads::run(&[1, 4], &[0.5], 10));
    smoke_tab("tab_stdio_dup", &stdio::run(&[0, 64]));
    smoke_tab("tab_aslr", &aslr::run(8));
    smoke_tab("tab_forkbomb", &forkbomb::run(&[16, 64], 512));
    smoke_tab("tab_faultmatrix", &robustness::fault_matrix());
    smoke_tab("tab_e9_robustness", &robustness::run());
    smoke_fig("fig_spawn_fastpath", &spawn_fastpath::run(&[256, 4_096, 65_536]));
    smoke_fig("fig_pressure", &pressure::run());

    // E12 snapshot: the pressure storm tracked in-repo. The shrinker arm
    // absorbing the whole storm with zero OOM kills is a hard guarantee
    // of the memory-pressure subsystem, so the smoke asserts it — a
    // regression here fails `make verify`, not a reader of the figure.
    let (with, without) = pressure::run_pair();
    assert_eq!(
        with.oom_victims.len(),
        0,
        "pressure storm with shrinkers must not OOM-kill (victims: {:?})",
        with.oom_victims
    );
    assert!(
        !without.oom_victims.is_empty(),
        "shrinker-less baseline must show the OOM failure mode"
    );
    let mut json = String::from("{\n");
    json.push_str("  \"id\": \"BENCH_pressure\",\n");
    json.push_str(&format!("  \"storm_pages\": {},\n", with.touched_pages));
    json.push_str(&format!(
        "  \"shrinkers\": {{\"oom_kills\": {}, \"reclaim_passes\": {}, \"frames_reclaimed\": {}, \
         \"stall_cycles\": {}, \"spawn_cycles\": [{}, {}, {}]}},\n",
        with.oom_victims.len(),
        with.reclaim_passes,
        with.frames_reclaimed,
        with.stall_cycles,
        with.spawn_before,
        with.spawn_during,
        with.spawn_after
    ));
    json.push_str(&format!(
        "  \"baseline\": {{\"oom_kills\": {}, \"pinned_frames_at_first_kill\": {}}}\n",
        without.oom_victims.len(),
        without.pinned_frames_at_first_kill
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_pressure.json", &json).expect("write BENCH_pressure.json");
    println!(
        "\n# BENCH_pressure — storm of {} pages: {} kills with shrinkers \
         ({} frames reclaimed), {} kills without",
        with.touched_pages,
        with.oom_victims.len(),
        with.frames_reclaimed,
        without.oom_victims.len()
    );
    println!("[saved BENCH_pressure.json]");

    // E13 snapshot: the swap tier below the shrinkers. The swap arm
    // absorbing 1.5x physical memory with zero OOM kills is the PR's
    // hard guarantee — the killer is a last resort, not the first
    // response — so the smoke asserts it, along with the thrash signal
    // the refault loop provokes on purpose.
    smoke_fig("fig_swap", &pressure::run_swap());
    let (with, without) = pressure::run_swap_pair();
    assert_eq!(
        with.oom_victims.len(),
        0,
        "swap storm must absorb without OOM kills (victims: {:?})",
        with.oom_victims
    );
    assert!(
        with.touched_pages > pressure::STORM_FRAMES,
        "swap arm must dirty more pages than physical memory"
    );
    assert!(with.thrash_seen, "refault loop must assert the thrash signal");
    assert!(
        !without.oom_victims.is_empty(),
        "swapless baseline must show the OOM failure mode"
    );
    let mut json = String::from("{\n");
    json.push_str("  \"id\": \"BENCH_swap\",\n");
    json.push_str(&format!("  \"storm_pages\": {},\n", with.touched_pages));
    json.push_str(&format!(
        "  \"swap\": {{\"oom_kills\": {}, \"swap_outs\": {}, \"swap_ins\": {}, \
         \"refaults\": {}, \"peak_slots_used\": {}, \"stall_cycles\": {}, \"thrashed\": {}}},\n",
        with.oom_victims.len(),
        with.swap_outs,
        with.swap_ins,
        with.refaults,
        with.peak_slots_used,
        with.stall_cycles,
        with.thrash_seen
    ));
    json.push_str(&format!(
        "  \"baseline\": {{\"oom_kills\": {}, \"survivors\": {}}}\n",
        without.oom_victims.len(),
        without.survivors
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_swap.json", &json).expect("write BENCH_swap.json");
    println!(
        "# BENCH_swap — storm of {} pages on {} frames: {} kills with swap \
         ({} swap-outs, {} refaults), {} kills without",
        with.touched_pages,
        pressure::STORM_FRAMES,
        with.oom_victims.len(),
        with.swap_outs,
        with.refaults,
        without.oom_victims.len()
    );
    println!("[saved BENCH_swap.json]");

    // API × mode cycle medians: the machine-tracked perf snapshot.
    let entries: Vec<(&str, &str, u64)> = vec![
        (
            "fork",
            "cow",
            median_cycles(|os, p| {
                os.fork_stats(p, ForkMode::Cow).expect("fork");
            }),
        ),
        (
            "fork",
            "eager",
            median_cycles(|os, p| {
                os.fork_stats(p, ForkMode::Eager).expect("fork");
            }),
        ),
        (
            "fork",
            "ondemand",
            median_cycles(|os, p| {
                os.fork_stats(p, ForkMode::OnDemand).expect("fork");
            }),
        ),
        (
            "vfork",
            "share",
            median_cycles(|os, p| {
                os.vfork(p).expect("vfork");
            }),
        ),
        (
            "posix_spawn",
            "fresh",
            median_cycles(|os, p| {
                os.spawn(p, "/bin/tool", &[], &SpawnAttrs::default()).expect("spawn");
            }),
        ),
    ];

    let mut json = String::from("{\n");
    json.push_str("  \"id\": \"BENCH_fork_modes\",\n");
    json.push_str(&format!("  \"footprint_pages\": {FOOTPRINT},\n"));
    json.push_str(&format!("  \"aslr_seeds\": {},\n", SEEDS.len()));
    json.push_str("  \"median_cycles\": [\n");
    for (i, (api, mode, cycles)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"api\": \"{api}\", \"mode\": \"{mode}\", \"cycles\": {cycles}}}{comma}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_fork_modes.json", &json).expect("write BENCH_fork_modes.json");

    println!("\n# BENCH_fork_modes — median cycles per API x mode (fp={FOOTPRINT} pages)");
    for (api, mode, cycles) in &entries {
        println!("{:<24} {cycles:>10}", format!("{api}/{mode}"));
    }
    println!("[saved BENCH_fork_modes.json]");

    // The snapshot must show the PR's point: on-demand fork is in the
    // flat class (vfork/spawn), not the page-proportional one.
    let get = |a: &str, m: &str| {
        entries
            .iter()
            .find(|(x, y, _)| *x == a && *y == m)
            .map(|(_, _, c)| *c)
            .unwrap()
    };
    assert!(
        get("fork", "ondemand") * 5 < get("fork", "cow"),
        "on-demand fork must be far below COW fork at {FOOTPRINT} pages"
    );

    // E11 snapshot: the spawn fast path tracked alongside the fork
    // modes, per footprint (the 4 GiB point lives in the core tests —
    // the smoke keeps the sweep short).
    let fp_sweep: [u64; 3] = [256, 4_096, 65_536];
    let fast_entries: Vec<(u64, &str, u64)> = fp_sweep
        .iter()
        .flat_map(|&fp| {
            [
                (
                    fp,
                    "posix_spawn",
                    median_over_seeds(|s| spawn_fastpath::measure_spawn_seeded(Mode::Plain, fp, s)),
                ),
                (
                    fp,
                    "spawn(cache)",
                    median_over_seeds(|s| spawn_fastpath::measure_spawn_seeded(Mode::Cache, fp, s)),
                ),
                (
                    fp,
                    "spawn(cache+pool)",
                    median_over_seeds(|s| {
                        spawn_fastpath::measure_spawn_seeded(Mode::CachePool, fp, s)
                    }),
                ),
                (
                    fp,
                    "fork(ondemand)",
                    median_over_seeds(|s| spawn_fastpath::measure_odf_seeded(fp, s)),
                ),
            ]
        })
        .collect();

    let mut json = String::from("{\n");
    json.push_str("  \"id\": \"BENCH_spawn_fastpath\",\n");
    json.push_str(&format!("  \"aslr_seeds\": {},\n", SEEDS.len()));
    json.push_str("  \"median_cycles\": [\n");
    for (i, (fp, api, cycles)) in fast_entries.iter().enumerate() {
        let comma = if i + 1 == fast_entries.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"footprint_pages\": {fp}, \"api\": \"{api}\", \"cycles\": {cycles}}}{comma}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_spawn_fastpath.json", &json).expect("write BENCH_spawn_fastpath.json");

    println!("\n# BENCH_spawn_fastpath — median cycles per api x footprint");
    for (fp, api, cycles) in &fast_entries {
        println!("{:<28} {cycles:>10}", format!("{api}@{fp}p"));
    }
    println!("[saved BENCH_spawn_fastpath.json]");

    // The E11 ordering at the reference footprint: the cached+pooled
    // spawn beats every fork flavour, and the fork flavours keep their
    // established order.
    let fast = |api: &str| {
        fast_entries
            .iter()
            .find(|(fp, a, _)| *fp == FOOTPRINT && *a == api)
            .map(|(_, _, c)| *c)
            .unwrap()
    };
    let order = [
        ("spawn(cache+pool)", fast("spawn(cache+pool)")),
        ("fork(ondemand)", get("fork", "ondemand")),
        ("fork(cow)", get("fork", "cow")),
        ("fork(eager)", get("fork", "eager")),
    ];
    for pair in order.windows(2) {
        assert!(
            pair[0].1 <= pair[1].1,
            "E11 ordering violated at {FOOTPRINT} pages: {} ({}) > {} ({})",
            pair[0].0,
            pair[0].1,
            pair[1].0,
            pair[1].1
        );
    }
    println!(
        "E11 ordering holds at {FOOTPRINT} pages: \
         spawn(cache+pool) <= fork(ondemand) <= fork(cow) <= fork(eager)"
    );

    // E14 snapshot: transparent huge pages at a fully promotable 4 GiB
    // heap. Three hard guarantees tracked in-repo: fork(OnDemand+THP)
    // never exceeds fork(OnDemand); the fork's page-table term (PTE
    // copies + subtree shares) collapses by >=100x, because whole huge
    // directories share with one pointer copy; and tearing the heap down
    // flushes >=100x fewer TLB entries, because a huge block invalidates
    // as one ranged entry instead of 512. The small-page world's legacy
    // shootdown is a broadcast with no per-entry accounting, so its
    // entry count is the released page count — every per-page
    // translation the region held.
    let fp_thp: u64 = 1_048_576;
    let cost = fpr_mem::CostModel::default();
    let probe = |thp: bool| -> (u64, u64, u64, u64) {
        let boot = || {
            Os::boot(OsConfig {
                machine: fpr_kernel::MachineConfig {
                    thp,
                    ..fig1::machine_for(fp_thp)
                },
                ..Default::default()
            })
        };
        let mut os = boot();
        let parent = os.make_parent(ProcessShape::with_heap(fp_thp)).expect("fits");
        let huge_blocks = os.kernel.process(parent).unwrap().aspace.huge_pages();
        let before = fpr_trace::metrics::snapshot();
        let (_, fork_cycles) = os.measure(|os| {
            os.fork_stats(parent, ForkMode::OnDemand).expect("fork");
        });
        let d = fpr_trace::metrics::snapshot().delta(&before);
        let pt_term = d.counter("mem.fork.pte_copy") * cost.pte_copy
            + d.counter("mem.fork.pt_subtree_share") * cost.pt_subtree_share;

        let mut os = boot();
        let parent = os.make_parent(ProcessShape::with_heap(fp_thp)).expect("fits");
        let heap: Vec<(fpr_mem::Vpn, u64)> = os
            .kernel
            .process(parent)
            .unwrap()
            .aspace
            .vmas()
            .filter(|v| v.kind == fpr_mem::VmaKind::Mmap)
            .map(|v| (v.start, v.pages))
            .collect();
        let before = fpr_trace::metrics::snapshot();
        let mut released = 0;
        for (start, pages) in heap {
            os.kernel.munmap(parent, start, pages).expect("munmap");
            released += pages;
        }
        let d = fpr_trace::metrics::snapshot().delta(&before);
        let entries = if thp {
            d.counter("mem.tlb.entries_flushed")
        } else {
            released
        };
        (fork_cycles, pt_term, entries, huge_blocks)
    };
    let (small_fork, small_pt, small_entries, small_blocks) = probe(false);
    let (thp_fork, thp_pt, thp_entries, thp_blocks) = probe(true);
    assert_eq!(small_blocks, 0, "THP-off world must stay small-paged");
    assert_eq!(
        thp_blocks,
        fp_thp / 512,
        "4 GiB heap must be fully promoted under THP"
    );
    assert!(
        thp_fork <= small_fork,
        "fork(OnDemand+THP) {thp_fork} must not exceed fork(OnDemand) {small_fork}"
    );
    assert!(
        small_pt >= 100 * thp_pt.max(1),
        "THP must shrink the fork page-table term >=100x: {small_pt} vs {thp_pt}"
    );
    assert!(
        small_entries >= 100 * thp_entries.max(1),
        "THP must shrink unmap shootdown entries >=100x: {small_entries} vs {thp_entries}"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"id\": \"BENCH_thp\",\n");
    json.push_str(&format!("  \"footprint_pages\": {fp_thp},\n"));
    json.push_str(&format!(
        "  \"fork_ondemand\": {{\"cycles\": {small_fork}, \"pt_term_cycles\": {small_pt}}},\n"
    ));
    json.push_str(&format!(
        "  \"fork_ondemand_thp\": {{\"cycles\": {thp_fork}, \"pt_term_cycles\": {thp_pt}, \
         \"huge_blocks\": {thp_blocks}}},\n"
    ));
    json.push_str(&format!(
        "  \"unmap_shootdown_entries\": {{\"small\": {small_entries}, \"thp\": {thp_entries}}}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_thp.json", &json).expect("write BENCH_thp.json");

    println!(
        "\n# BENCH_thp — 4 GiB fully promotable heap ({thp_blocks} blocks): \
         fork {thp_fork} vs {small_fork} cycles, page-table term {thp_pt} vs {small_pt} \
         ({:.0}x), unmap shootdown entries {thp_entries} vs {small_entries} ({:.0}x)",
        small_pt as f64 / thp_pt.max(1) as f64,
        small_entries as f64 / thp_entries.max(1) as f64
    );
    println!("[saved BENCH_thp.json]");

    // E15 snapshot: the open-loop service workload. Two hard guarantees
    // tracked in-repo: at the default offered rate the per-path tail
    // latencies keep the paper's order — spawn(fastpath) < fork(OnDemand)
    // < fork(Cow) at p99 — with zero OOM kills; and the degradation arm
    // shows the pool draining to empty under pressure, the next spawn
    // falling back to the cycle-identical classic path, and the pool
    // recovering once the storm lifts, still with zero kills.
    smoke_fig("fig_service", &service::run());
    let outcome = service::run_service(&service::ServiceConfig::default());
    assert_eq!(
        outcome.oom_kills, 0,
        "service workload at the default rate must not OOM-kill"
    );
    let p99 = |p: CreationPath| outcome.stats(p).hist.p99();
    assert!(
        p99(CreationPath::SpawnFast) < p99(CreationPath::ForkOnDemand),
        "p99(spawn fastpath) {} must beat p99(fork OnDemand) {}",
        p99(CreationPath::SpawnFast),
        p99(CreationPath::ForkOnDemand)
    );
    assert!(
        p99(CreationPath::ForkOnDemand) < p99(CreationPath::ForkCow),
        "p99(fork OnDemand) {} must beat p99(fork Cow) {}",
        p99(CreationPath::ForkOnDemand),
        p99(CreationPath::ForkCow)
    );

    let d = service::run_degradation();
    assert_eq!(d.oom_kills, 0, "degradation arm must not OOM-kill");
    assert!(
        d.pool_parked[0] > 0 && d.pool_parked[1] == 0 && d.pool_parked[2] > 0,
        "pool must drain under pressure and recover: parked {:?}",
        d.pool_parked
    );
    let fallback_ratio = d.spawn_latency[1] as f64 / d.classic_reference as f64;
    assert!(
        (0.9..=1.1).contains(&fallback_ratio),
        "drained-pool spawn must cost the classic path: {} vs reference {} (ratio {:.3})",
        d.spawn_latency[1],
        d.classic_reference,
        fallback_ratio
    );
    assert!(
        d.spawn_latency[2] < d.spawn_latency[1],
        "recovered spawn {} must beat the degraded spawn {}",
        d.spawn_latency[2],
        d.spawn_latency[1]
    );

    let mut json = String::from("{\n");
    json.push_str("  \"id\": \"BENCH_service\",\n");
    json.push_str(&format!("  \"requests\": {},\n", outcome.completed));
    json.push_str(&format!(
        "  \"offered_rate_per_s\": {:.0},\n  \"sustained_rate_per_s\": {:.0},\n",
        outcome.config.offered_rate, outcome.sustained_rate
    ));
    json.push_str(&format!("  \"oom_kills\": {},\n", outcome.oom_kills));
    json.push_str("  \"per_path_cycles\": [\n");
    for (i, st) in outcome.per_path.iter().enumerate() {
        let comma = if i + 1 == outcome.per_path.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"path\": \"{}\", \"served\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}{comma}\n",
            st.path.label(),
            st.served,
            st.hist.p50(),
            st.hist.p95(),
            st.hist.p99()
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"degradation\": {{\"spawn_cycles\": [{}, {}, {}], \"pool_parked\": [{}, {}, {}], \
         \"classic_reference_cycles\": {}, \"oom_kills\": {}}}\n",
        d.spawn_latency[0],
        d.spawn_latency[1],
        d.spawn_latency[2],
        d.pool_parked[0],
        d.pool_parked[1],
        d.pool_parked[2],
        d.classic_reference,
        d.oom_kills
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");

    println!(
        "\n# BENCH_service — {} requests at {:.0}/s: p99 spawn {} < ondemand {} < cow {} cycles, \
         {} kills; degradation pool {} -> {} -> {} with spawn {} -> {} -> {} cycles",
        outcome.completed,
        outcome.config.offered_rate,
        p99(CreationPath::SpawnFast),
        p99(CreationPath::ForkOnDemand),
        p99(CreationPath::ForkCow),
        outcome.oom_kills,
        d.pool_parked[0],
        d.pool_parked[1],
        d.pool_parked[2],
        d.spawn_latency[0],
        d.spawn_latency[1],
        d.spawn_latency[2]
    );
    println!("[saved BENCH_service.json]");

    // E16 snapshot: fork's multicore scaling collapse, on real OS
    // threads over the virtual clock. Hard guarantees tracked in-repo:
    // fork against private mm state scales (>= 2x at 4 threads), the
    // spawn fast path scales strictly better than fork sharing one mm,
    // contention counters fire only under multicore arms, and no run
    // leaves a structural violation behind.
    let smp_out = smp::run_with(&[1, 2, 4]);
    smoke_fig("fig_smp", &smp_out.figure());
    smoke_tab("tab_smp_contention", &smp_out.contention_table());
    let smp_shared = smp_out.speedup("fork_cow_shared", 4);
    let smp_private = smp_out.speedup("fork_cow_private", 4);
    let smp_spawn = smp_out.speedup("spawn_fast", 4);
    assert!(
        smp_private >= 2.0,
        "private-mm fork must reach 2x at 4 threads: {smp_private:.2}"
    );
    assert!(
        smp_spawn > smp_shared,
        "spawn fastpath must outscale shared-mm fork: {smp_spawn:.2} vs {smp_shared:.2}"
    );
    for arm in ["fork_cow_shared", "fork_cow_private", "spawn_fast"] {
        assert_eq!(
            smp_out.contended(arm, 1),
            0,
            "{arm}: one thread must never contend"
        );
    }
    let smp_hot = smp_out.point("fork_cow_shared", 4).expect("shared point");
    let mm_stats = smp_hot.contention.get("mm").expect("mm lock stats");
    assert!(
        mm_stats.contended_acquires > 0,
        "shared-mm arm at 4 threads must contend on mm"
    );
    assert!(
        smp_out.points.iter().all(|p| p.violations == 0),
        "no SMP arm may leave structural violations"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"id\": \"BENCH_smp\",\n");
    json.push_str(&format!(
        "  \"ops_per_worker\": {},\n",
        smp::OPS_PER_WORKER
    ));
    json.push_str("  \"arms\": [\n");
    for (i, p) in smp_out.points.iter().enumerate() {
        let comma = if i + 1 == smp_out.points.len() { "" } else { "," };
        let contended: u64 = p.contention.values().map(|s| s.contended_acquires).sum();
        let waited: u64 = p.contention.values().map(|s| s.wait_cycles).sum();
        json.push_str(&format!(
            "    {{\"arm\": \"{}\", \"threads\": {}, \"ops\": {}, \"wall_cycles\": {}, \
             \"throughput_ops_per_ms\": {:.2}, \"contended_acquires\": {contended}, \
             \"wait_cycles\": {waited}, \"violations\": {}}}{comma}\n",
            p.arm, p.threads, p.ops, p.wall_cycles, p.throughput, p.violations
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_at_4_threads\": {{\"fork_cow_shared\": {smp_shared:.2}, \
         \"fork_cow_private\": {smp_private:.2}, \"spawn_fast\": {smp_spawn:.2}}}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_smp.json", &json).expect("write BENCH_smp.json");

    println!(
        "\n# BENCH_smp — 4-thread speedup: shared fork {smp_shared:.2}x (mm contended {}), \
         private fork {smp_private:.2}x, spawn fastpath {smp_spawn:.2}x",
        mm_stats.contended_acquires
    );
    println!("[saved BENCH_smp.json]");

    // E17 snapshot: concurrent fault injection and cell fail-stop. Hard
    // guarantees tracked in-repo: every fault injected during the
    // 4-thread storm is contained (the arm panics at quiesce otherwise),
    // the documented mm -> pid -> buddy -> tlb lock order sees zero
    // violations across both arms, and fail_cell recovers the machine to
    // a clean N-1 quiesce with zero leaked frames or PIDs and the OOM
    // lease broken.
    let e17 = smp_faults::run();
    smoke_fig("fig_cell_failure", &e17.figure());
    smoke_tab("tab_cell_failure", &e17.table());
    assert!(
        e17.sweep.injected_ops > 0,
        "the concurrent sweep must inject"
    );
    assert!(
        e17.sweep.sites_injected() >= 5,
        "injection must spread across the creation surface: {} sites",
        e17.sweep.sites_injected()
    );
    assert_eq!(
        e17.sweep.order_violations, 0,
        "lock-order violations under concurrent injection"
    );
    assert_eq!(
        e17.failstop.live_cells,
        smp_faults::THREADS - 1,
        "fail-stop must degrade to exactly N-1 live cells"
    );
    assert!(
        e17.failstop.failure.lease_was_stuck,
        "the fail-stop arm must exercise the stuck-lease worst case"
    );
    assert!(
        e17.failstop.ops_after_failure > 0,
        "survivors must keep working after the failure"
    );
    assert_eq!(
        e17.failstop.order_violations, 0,
        "lock-order violations through fail-stop recovery"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"id\": \"BENCH_faults_smp\",\n");
    json.push_str(&format!(
        "  \"threads\": {},\n  \"ops_per_worker\": {},\n  \"inject_per_1024\": {},\n",
        smp_faults::THREADS,
        smp_faults::OPS_PER_WORKER,
        smp_faults::INJECT_PER_1024
    ));
    json.push_str(&format!(
        "  \"sweep\": {{\"ops\": {}, \"injected_ops\": {}, \"sites_crossed\": {}, \
         \"sites_injected\": {}, \"order_violations\": {}, \"contained\": true}},\n",
        e17.sweep.ops,
        e17.sweep.injected_ops,
        e17.sweep.sites_crossed(),
        e17.sweep.sites_injected(),
        e17.sweep.order_violations
    ));
    json.push_str(&format!(
        "  \"fail_stop\": {{\"site\": \"{}\", \"evacuated\": {}, \"lease_was_stuck\": {}, \
         \"ops_after_failure\": {}, \"live_cells\": {}, \"order_violations\": {}, \
         \"clean_quiesce\": true}}\n",
        e17.failstop.failure.site.name(),
        e17.failstop.failure.evacuated,
        e17.failstop.failure.lease_was_stuck,
        e17.failstop.ops_after_failure,
        e17.failstop.live_cells,
        e17.failstop.order_violations
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_faults_smp.json", &json).expect("write BENCH_faults_smp.json");

    println!(
        "\n# BENCH_faults_smp — sweep: {}/{} ops injected over {} sites (0 order violations); \
         fail-stop: cell 0 died at {}, {} evacuated, {} live cells, clean quiesce",
        e17.sweep.injected_ops,
        e17.sweep.ops,
        e17.sweep.sites_injected(),
        e17.failstop.failure.site.name(),
        e17.failstop.failure.evacuated,
        e17.failstop.live_cells
    );
    println!("[saved BENCH_faults_smp.json]");
    println!("\n=== bench smoke OK ===");
}
