//! Runs every experiment binary's driver in sequence (quick sweeps),
//! printing each figure and table — one command to regenerate the whole
//! evaluation.

use forkroad_core::experiments::{
    aslr, breakdown, cow, fig1, forkbomb, odf_storm, overcommit, pressure, robustness, scaling,
    service, smp, smp_faults, spawn_fastpath, stdio, vma_sweep,
};
use fpr_bench::emit;

fn main() {
    println!("=== forkroad evaluation: all experiments (quick sweeps) ===\n");
    let f1 = fig1::run(&[256, 1_024, 4_096, 16_384, 65_536]);
    emit("fig1", &f1.render(), &f1.to_json());

    let t2 = breakdown::run(&[256, 1_024, 4_096, 16_384]);
    emit("tab_fork_breakdown", &t2.render(), &t2.to_json());

    let f2b = vma_sweep::run(2_048, &[1, 16, 256, 1_024]);
    emit("fig_vma_sweep", &f2b.render(), &f2b.to_json());

    let f3 = cow::run(2_048, &[0.0, 0.25, 0.5, 0.75, 1.0]);
    emit("fig_cow_storm", &f3.render(), &f3.to_json());

    let f3b = odf_storm::run(4_096, &[0.0, 0.25, 0.5, 0.75, 1.0]);
    emit("fig_odf_storm", &f3b.render(), &f3b.to_json());

    let f4 = scaling::run(&[1, 4, 16, 64], 1_024);
    emit("fig_fork_scaling", &f4.render(), &f4.to_json());

    let t5 = overcommit::run(&[0.25, 0.45, 0.60, 0.90]);
    emit("tab_overcommit", &t5.render(), &t5.to_json());

    let t6 = forkroad_core::experiments::threads::run(&[1, 4, 16], &[0.25, 1.0], 20);
    emit("tab_thread_safety", &t6.render(), &t6.to_json());

    let t7 = stdio::run(&[0, 64, 2_048]);
    emit("tab_stdio_dup", &t7.render(), &t7.to_json());

    println!("{}", fpr_api::render_matrix());

    let t8 = aslr::run(16);
    emit("tab_aslr", &t8.render(), &t8.to_json());

    let t9 = forkbomb::run(&[16, 64, 256], 1_024);
    emit("tab_forkbomb", &t9.render(), &t9.to_json());

    let t10 = robustness::fault_matrix();
    emit("tab_faultmatrix", &t10.render(), &t10.to_json());
    let t10b = robustness::run();
    emit("tab_e9_robustness", &t10b.render(), &t10b.to_json());

    let f11 = spawn_fastpath::run(&[256, 4_096, 65_536, 262_144]);
    emit("fig_spawn_fastpath", &f11.render(), &f11.to_json());

    let f12 = pressure::run();
    emit("fig_pressure", &f12.render(), &f12.to_json());

    let f13 = pressure::run_swap();
    emit("fig_swap", &f13.render(), &f13.to_json());

    let f15 = service::run();
    emit("fig_service", &f15.render(), &f15.to_json());

    let e16 = smp::run_with(&[1, 2, 4]);
    let f16 = e16.figure();
    emit("fig_smp", &f16.render(), &f16.to_json());
    let t16 = e16.contention_table();
    emit("tab_smp_contention", &t16.render(), &t16.to_json());

    let e17 = smp_faults::run();
    let f17 = e17.figure();
    emit("fig_cell_failure", &f17.render(), &f17.to_json());
    let t17 = e17.table();
    emit("tab_cell_failure", &t17.render(), &t17.to_json());

    if let Ok(rows) = fpr_native::run_native_cow(8, &[0.0, 0.5, 1.0], 5) {
        println!("# fig_cow_native — host kernel COW storm");
        println!("{:>16} {:>12}", "touch fraction", "total us");
        for r in rows {
            println!("{:>16.2} {:>12.1}", r.touch_fraction, r.total_us);
        }
        println!();
    }

    if let Ok(rows) = fpr_native::run_native_fig1(&[1, 16, 64], 7) {
        println!("# fig1_native — host kernel cross-check");
        println!(
            "{:>10} {:>14} {:>14} {:>14}",
            "MiB", "fork+exec us", "vfork+exec us", "spawn us"
        );
        for r in rows {
            println!(
                "{:>10} {:>14.1} {:>14.1} {:>14.1}",
                r.footprint_mib, r.fork_exec_us, r.vfork_exec_us, r.posix_spawn_us
            );
        }
    }
    println!("\n=== done ===");
}
