//! E4: fork-then-touch under the three overcommit policies.

use forkroad_core::experiments::overcommit;
use fpr_bench::emit;

fn main() {
    let t = overcommit::run(&[0.25, 0.45, 0.60, 0.90]);
    emit("tab_overcommit", &t.render(), &t.to_json());
}
