//! E11: spawn fast path (image cache + warm pool) vs fork(OnDemand)
//! across parent footprints, 1 MiB to 4 GiB.

use forkroad_core::experiments::spawn_fastpath;
use fpr_bench::{emit, quick_mode};

fn main() {
    // Pages of populated parent heap: 1 MiB → 4 GiB.
    let footprints: Vec<u64> = if quick_mode() {
        vec![256, 4_096, 65_536]
    } else {
        vec![256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576]
    };
    let fig = spawn_fastpath::run(&footprints);
    emit("fig_spawn_fastpath", &fig.render(), &fig.to_json());
}
