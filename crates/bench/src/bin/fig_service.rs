//! E15: open-loop service workload — per-creation-path p50/p95/p99
//! latency under a Poisson arrival stream, sustained throughput against
//! the offered rate, and the pool-drain → classic-fallback → recovery
//! degradation series.

use forkroad_core::experiments::service;
use fpr_bench::emit;
use fpr_mem::CYCLES_PER_US;

fn main() {
    // The workload is a fixed scenario, not a sweep: --quick runs the
    // same figure (the default run is already seconds-fast).
    let fig = service::run();
    emit("fig_service", &fig.render(), &fig.to_json());

    let outcome = service::run_service(&service::ServiceConfig::default());
    let us = |c: u64| c as f64 / CYCLES_PER_US as f64;
    println!(
        "# service detail ({} requests at {:.0}/s offered, sustained {:.0}/s, {} autoscale refills)",
        outcome.completed, outcome.config.offered_rate, outcome.sustained_rate, outcome.autoscaled
    );
    for st in &outcome.per_path {
        println!(
            "{:>22}: {:>4} served, p50 {:>7.2} us, p95 {:>7.2} us, p99 {:>7.2} us",
            st.path.label(),
            st.served,
            us(st.hist.p50()),
            us(st.hist.p95()),
            us(st.hist.p99()),
        );
    }
    println!(
        "{:>22}: p50 {:.2} us, p99 {:.2} us, {} oom kills",
        "sojourn",
        us(outcome.sojourn.p50()),
        us(outcome.sojourn.p99()),
        outcome.oom_kills
    );

    let d = service::run_degradation();
    println!(
        "# degradation: spawn {:.2} -> {:.2} -> {:.2} us (classic ref {:.2}), pool {} -> {} -> {}, {} oom kills",
        us(d.spawn_latency[0]),
        us(d.spawn_latency[1]),
        us(d.spawn_latency[2]),
        us(d.classic_reference),
        d.pool_parked[0],
        d.pool_parked[1],
        d.pool_parked[2],
        d.oom_kills
    );
}
