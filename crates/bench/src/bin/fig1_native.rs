//! E1 / Figure 1 on the host Linux kernel (cross-check of the simulator).

use fpr_bench::{emit, quick_mode};

fn main() {
    let mib: Vec<u64> = if quick_mode() {
        vec![1, 16, 64]
    } else {
        vec![1, 4, 16, 64, 128, 256]
    };
    let iters = if quick_mode() { 5 } else { 21 };
    match fpr_native::run_native_fig1(&mib, iters) {
        Ok(rows) => {
            let mut fig = fpr_trace::FigureData::new(
                "fig1_native",
                "native process creation latency vs parent footprint",
                "parent MiB",
                "latency us",
            );
            let mut fork = fpr_trace::Series::new("fork+exec");
            let mut vfork = fpr_trace::Series::new("vfork+exec");
            let mut spawn = fpr_trace::Series::new("posix_spawn");
            for r in &rows {
                fork.push(r.footprint_mib, r.fork_exec_us);
                vfork.push(r.footprint_mib, r.vfork_exec_us);
                spawn.push(r.footprint_mib, r.posix_spawn_us);
            }
            fig.series = vec![fork, vfork, spawn];
            emit("fig1_native", &fig.render(), &fig.to_json());
        }
        Err(e) => eprintln!("native measurement unavailable: {e}"),
    }
}
