//! Shared plumbing for the benchmark binaries: result persistence and a
//! uniform header.

use std::fs;
use std::path::PathBuf;

/// Directory experiment outputs are written to (repo-relative).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("FORKROAD_RESULTS").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    let _ = fs::create_dir_all(&p);
    p
}

/// Prints a rendered figure/table and persists its JSON next to it.
pub fn emit(id: &str, rendered: &str, json: &str) {
    println!("{rendered}");
    let path = results_dir().join(format!("{id}.json"));
    if let Err(e) = fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[saved {}]", path.display());
    }
}

/// Parses `--quick` from argv: binaries shrink their sweeps so the whole
/// suite runs in seconds (used by CI and the run_all binary).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Minimal wall-clock micro-timer for the `benches/` targets (the
/// workspace builds without criterion, so the bench harnesses are plain
/// `main` functions using this).
///
/// Each iteration runs `setup` untimed, then times `op` on its output.
/// Reports the median over `iters` runs in microseconds.
pub fn time_batched<S, T, R>(label: &str, iters: u32, mut setup: impl FnMut() -> S, mut op: T)
where
    T: FnMut(S) -> R,
{
    let mut samples_us: Vec<f64> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let input = setup();
        let start = std::time::Instant::now();
        let out = op(input);
        let elapsed = start.elapsed();
        std::hint::black_box(out);
        samples_us.push(elapsed.as_secs_f64() * 1e6);
    }
    samples_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = samples_us[samples_us.len() / 2];
    let min = samples_us.first().copied().unwrap_or(0.0);
    let max = samples_us.last().copied().unwrap_or(0.0);
    println!("{label:<40} median {median:>10.1} us  (min {min:.1}, max {max:.1}, n={iters})");
}
