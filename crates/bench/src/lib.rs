//! Shared plumbing for the benchmark binaries: result persistence and a
//! uniform header.

use std::fs;
use std::path::PathBuf;

/// Directory experiment outputs are written to (repo-relative).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("FORKROAD_RESULTS").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    let _ = fs::create_dir_all(&p);
    p
}

/// Prints a rendered figure/table and persists its JSON next to it.
pub fn emit(id: &str, rendered: &str, json: &str) {
    println!("{rendered}");
    let path = results_dir().join(format!("{id}.json"));
    if let Err(e) = fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[saved {}]", path.display());
    }
}

/// Parses `--quick` from argv: binaries shrink their sweeps so the whole
/// suite runs in seconds (used by CI and the run_all binary).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}
