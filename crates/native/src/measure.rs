//! Only compiled with the `host-libc` feature (needs the libc crate).
#![cfg(feature = "host-libc")]

//! Unix timing primitives for the native Figure 1 sweep.

use crate::NativeError;
use std::ffi::CString;
use std::time::Instant;

/// The native APIs under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeApi {
    /// `fork()` then `execv("/bin/true")` in the child.
    ForkExec,
    /// `vfork()` then `execv("/bin/true")` in the child.
    VforkExec,
    /// `posix_spawn("/bin/true")`.
    PosixSpawn,
}

/// Allocates `bytes` of anonymous memory and writes one byte per page so
/// it is resident (and private-dirty: exactly what fork must account).
pub fn touch_buffer(bytes: usize) -> Vec<u8> {
    let mut v = vec![0u8; bytes];
    let mut i = 0;
    while i < bytes {
        v[i] = 1;
        i += 4096;
    }
    v
}

fn last_errno() -> NativeError {
    NativeError::Sys(std::io::Error::last_os_error().raw_os_error().unwrap_or(-1))
}

fn wait_child(pid: libc::pid_t) -> Result<(), NativeError> {
    let mut status = 0;
    // SAFETY: waiting on a child we just created; status is a valid out-pointer.
    let r = unsafe { libc::waitpid(pid, &mut status, 0) };
    if r < 0 {
        return Err(last_errno());
    }
    Ok(())
}

fn child_argv() -> (CString, [*mut libc::c_char; 2]) {
    let path = CString::new("/bin/true").expect("static path");
    let argv = [path.as_ptr() as *mut libc::c_char, std::ptr::null_mut()];
    (path, argv)
}

fn one_fork_exec() -> Result<(), NativeError> {
    let (path, argv) = child_argv();
    // SAFETY: standard fork/exec/wait sequence. The child only calls
    // async-signal-safe functions (execv, _exit) before exec.
    unsafe {
        let pid = libc::fork();
        if pid < 0 {
            return Err(last_errno());
        }
        if pid == 0 {
            libc::execv(path.as_ptr(), argv.as_ptr() as *const *const libc::c_char);
            libc::_exit(127);
        }
        wait_child(pid)
    }
}

// The libc crate deprecates `vfork` because general use corrupts memory;
// the exec-immediately-or-_exit pattern below is the single sound use, and
// measuring exactly that pattern is the point of this harness.
#[allow(deprecated)]
fn one_vfork_exec() -> Result<(), NativeError> {
    let (path, argv) = child_argv();
    // SAFETY: the vfork child immediately execs or _exits, touching only
    // pre-computed locals, which is the only sound use of vfork.
    unsafe {
        let pid = libc::vfork();
        if pid < 0 {
            return Err(last_errno());
        }
        if pid == 0 {
            libc::execv(path.as_ptr(), argv.as_ptr() as *const *const libc::c_char);
            libc::_exit(127);
        }
        wait_child(pid)
    }
}

fn one_posix_spawn() -> Result<(), NativeError> {
    let (path, argv) = child_argv();
    let mut pid: libc::pid_t = 0;
    // SAFETY: posix_spawn with null attrs/file-actions and a valid argv.
    let rc = unsafe {
        libc::posix_spawn(
            &mut pid,
            path.as_ptr(),
            std::ptr::null(),
            std::ptr::null(),
            argv.as_ptr(),
            std::ptr::null(),
        )
    };
    if rc != 0 {
        return Err(NativeError::Sys(rc));
    }
    wait_child(pid)
}

/// Times `iters` iterations of `api` and returns the median latency in
/// microseconds.
pub fn time_api(api: NativeApi, iters: u32) -> Result<f64, NativeError> {
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        match api {
            NativeApi::ForkExec => one_fork_exec()?,
            NativeApi::VforkExec => one_vfork_exec()?,
            NativeApi::PosixSpawn => one_posix_spawn()?,
        }
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    Ok(samples[samples.len() / 2])
}

/// Times fork followed by the child dirtying `touch_bytes` of the
/// inherited `ballast` buffer (the native COW-storm probe). The child
/// signals completion by exiting; the measurement includes the wait.
/// Returns microseconds.
pub fn time_fork_touch(ballast: &mut [u8], touch_bytes: usize) -> Result<f64, crate::NativeError> {
    let t0 = Instant::now();
    // SAFETY: standard fork; the child only dirties its (COW) heap and
    // calls _exit.
    unsafe {
        let pid = libc::fork();
        if pid < 0 {
            return Err(last_errno());
        }
        if pid == 0 {
            let n = touch_bytes.min(ballast.len());
            let mut i = 0;
            while i < n {
                // Volatile store defeats optimisation of the dirtying loop.
                std::ptr::write_volatile(ballast.as_mut_ptr().add(i), 2);
                i += 4096;
            }
            libc::_exit(0);
        }
        wait_child(pid)?;
    }
    Ok(t0.elapsed().as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_api_runs_once() {
        one_fork_exec().unwrap();
        one_vfork_exec().unwrap();
        one_posix_spawn().unwrap();
    }

    #[test]
    fn median_is_positive() {
        let us = time_api(NativeApi::PosixSpawn, 3).unwrap();
        assert!(us > 0.0);
    }

    #[test]
    fn fork_touch_probe_runs() {
        let mut ballast = touch_buffer(1024 * 1024);
        let us = time_fork_touch(&mut ballast, 512 * 1024).unwrap();
        assert!(us > 0.0);
        // The parent's buffer is untouched (the child wrote its COW copy).
        assert_eq!(ballast[0], 1);
    }
}
