//! # fpr-native — Figure 1 on the host kernel
//!
//! The simulator reproduces the paper's *shape*; this crate checks the
//! shape against a real Linux kernel. It times `fork`+`exec`,
//! `vfork`+`exec` and `posix_spawn` of `/bin/true` from a parent whose
//! anonymous footprint is swept, exactly like the paper's microbenchmark.
//!
//! Unix-only; on other platforms the API returns
//! [`NativeError::Unsupported`].

#[cfg(feature = "host-libc")]
mod measure;

#[cfg(feature = "host-libc")]
pub use measure::{time_api, time_fork_touch, touch_buffer, NativeApi};


/// Errors from the native harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NativeError {
    /// Not a Unix platform.
    Unsupported,
    /// A syscall failed (errno value).
    Sys(i32),
}

impl std::fmt::Display for NativeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NativeError::Unsupported => write!(f, "native measurement requires Unix"),
            NativeError::Sys(e) => write!(f, "syscall failed: errno {e}"),
        }
    }
}

impl std::error::Error for NativeError {}

/// One row of native Figure 1 output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NativeRow {
    /// Parent anonymous footprint in MiB.
    pub footprint_mib: f64,
    /// fork+exec latency, µs (median of iterations).
    pub fork_exec_us: f64,
    /// vfork+exec latency, µs.
    pub vfork_exec_us: f64,
    /// posix_spawn latency, µs.
    pub posix_spawn_us: f64,
}

/// Runs the native sweep. `footprints_mib` is the parent sizes to test;
/// `iters` is timed iterations per point.
#[cfg(feature = "host-libc")]
pub fn run_native_fig1(footprints_mib: &[u64], iters: u32) -> Result<Vec<NativeRow>, NativeError> {
    let mut rows = Vec::new();
    for &mib in footprints_mib {
        // The buffer must stay alive across the three measurements.
        let _ballast = touch_buffer((mib * 1024 * 1024) as usize);
        let fork_us = time_api(NativeApi::ForkExec, iters)?;
        let vfork_us = time_api(NativeApi::VforkExec, iters)?;
        let spawn_us = time_api(NativeApi::PosixSpawn, iters)?;
        rows.push(NativeRow {
            footprint_mib: mib as f64,
            fork_exec_us: fork_us,
            vfork_exec_us: vfork_us,
            posix_spawn_us: spawn_us,
        });
    }
    Ok(rows)
}

/// Non-Unix stub.
#[cfg(not(feature = "host-libc"))]
pub fn run_native_fig1(
    _footprints_mib: &[u64],
    _iters: u32,
) -> Result<Vec<NativeRow>, NativeError> {
    Err(NativeError::Unsupported)
}

/// One row of the native COW-storm output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CowRow {
    /// Fraction of the parent buffer the child dirtied.
    pub touch_fraction: f64,
    /// fork + child-dirty + wait latency, µs (median).
    pub total_us: f64,
}

/// Native COW storm: fork a parent holding `mib` MiB and have the child
/// dirty a swept fraction of it.
#[cfg(feature = "host-libc")]
pub fn run_native_cow(mib: u64, fractions: &[f64], iters: u32) -> Result<Vec<CowRow>, NativeError> {
    let bytes = (mib * 1024 * 1024) as usize;
    let mut ballast = touch_buffer(bytes);
    let mut rows = Vec::new();
    for &f in fractions {
        let touch = (bytes as f64 * f) as usize;
        let mut samples = Vec::new();
        for _ in 0..iters {
            samples.push(time_fork_touch(&mut ballast, touch)?);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        rows.push(CowRow {
            touch_fraction: f,
            total_us: samples[samples.len() / 2],
        });
    }
    Ok(rows)
}

/// Non-Unix stub.
#[cfg(not(feature = "host-libc"))]
pub fn run_native_cow(
    _mib: u64,
    _fractions: &[f64],
    _iters: u32,
) -> Result<Vec<CowRow>, NativeError> {
    Err(NativeError::Unsupported)
}

#[cfg(all(test, feature = "host-libc"))]
mod tests {
    use super::*;

    #[test]
    fn smoke_all_apis_complete() {
        let rows = run_native_fig1(&[1], 3).expect("native harness runs");
        assert_eq!(rows.len(), 1);
        let r = rows[0];
        for v in [r.fork_exec_us, r.vfork_exec_us, r.posix_spawn_us] {
            assert!(v > 0.0 && v < 1_000_000.0, "implausible latency {v}");
        }
    }

    #[test]
    fn native_cow_storm_grows_with_fraction() {
        let rows = run_native_cow(8, &[0.0, 1.0], 5).expect("cow harness runs");
        assert!(
            rows[1].total_us > rows[0].total_us,
            "dirtying 8 MiB must cost more: {rows:?}"
        );
    }

    #[test]
    fn touch_buffer_is_resident() {
        let b = touch_buffer(2 * 1024 * 1024);
        assert_eq!(b.len(), 2 * 1024 * 1024);
        assert_eq!(b[4096], 1);
    }
}
