//! Four-level radix page table.
//!
//! Nodes live in an arena (`Vec`) indexed by `u32`, which keeps the
//! structure compact and clone-free; the arena plays the role of the
//! physical frames that would hold page-table nodes on real hardware.
//! Intermediate nodes are created lazily on [`PageTable::map`] and torn
//! down eagerly when their last entry is removed, so the node count always
//! reflects the mapped footprint — the quantity fork must copy.

use crate::addr::{Vpn, PT_ENTRIES, PT_LEVELS};
use crate::cost::{CostModel, Cycles};
use crate::error::{MemError, MemResult};
use crate::pte::Pte;
use fpr_faults::FaultSite;

/// One entry of a page-table node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Entry {
    /// Empty slot.
    None,
    /// Pointer to a lower-level node (arena index).
    Table(u32),
    /// Leaf translation.
    Leaf(Pte),
}

/// One 512-entry page-table node.
#[derive(Debug, Clone)]
struct Node {
    entries: Box<[Entry; PT_ENTRIES]>,
    /// Number of non-`None` entries, for eager teardown.
    live: u16,
}

impl Node {
    fn new() -> Node {
        Node {
            entries: Box::new([Entry::None; PT_ENTRIES]),
            live: 0,
        }
    }
}

/// A four-level page table mapping [`Vpn`]s to [`Pte`]s.
#[derive(Debug, Clone)]
pub struct PageTable {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    mapped: u64,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// Creates an empty page table (root node only).
    pub fn new() -> PageTable {
        PageTable {
            nodes: vec![Node::new()],
            free: Vec::new(),
            root: 0,
            mapped: 0,
        }
    }

    fn alloc_node(&mut self, cycles: &mut Cycles, cost: &CostModel) -> u32 {
        cycles.charge(cost.pt_node_alloc);
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = Node::new();
            i
        } else {
            self.nodes.push(Node::new());
            (self.nodes.len() - 1) as u32
        }
    }

    /// Number of leaf translations currently installed.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    /// Number of live page-table nodes, including the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Installs a leaf translation for `vpn`.
    ///
    /// Fails with [`MemError::Overlap`] if a translation is already present;
    /// callers must unmap first (matching hardware, where silently replacing
    /// a live PTE without a TLB flush is a bug).
    pub fn map(
        &mut self,
        vpn: Vpn,
        pte: Pte,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<()> {
        if !vpn.is_user() {
            return Err(MemError::BadAddress);
        }
        // Injection point: a real kernel can fail to get a frame for an
        // intermediate node anywhere along the walk. Crossing before any
        // mutation keeps the table untouched on injected failure.
        fpr_faults::cross(FaultSite::PtNodeAlloc).map_err(|_| MemError::OutOfMemory)?;
        let mut node = self.root;
        for level in (1..PT_LEVELS).rev() {
            let idx = vpn.pt_index(level);
            node = match self.nodes[node as usize].entries[idx] {
                Entry::Table(t) => t,
                Entry::None => {
                    let t = self.alloc_node(cycles, cost);
                    let n = &mut self.nodes[node as usize];
                    n.entries[idx] = Entry::Table(t);
                    n.live += 1;
                    t
                }
                Entry::Leaf(_) => unreachable!("leaf at intermediate level"),
            };
        }
        let idx = vpn.pt_index(0);
        let n = &mut self.nodes[node as usize];
        match n.entries[idx] {
            Entry::None => {
                n.entries[idx] = Entry::Leaf(pte);
                n.live += 1;
                self.mapped += 1;
                Ok(())
            }
            _ => Err(MemError::Overlap),
        }
    }

    /// Removes the translation for `vpn`, returning the old entry and
    /// tearing down any intermediate nodes that become empty.
    pub fn unmap(&mut self, vpn: Vpn) -> MemResult<Pte> {
        // Record the walk so empty ancestors can be reclaimed.
        let mut path = [(0u32, 0usize); PT_LEVELS];
        let mut node = self.root;
        for level in (1..PT_LEVELS).rev() {
            let idx = vpn.pt_index(level);
            path[level] = (node, idx);
            node = match self.nodes[node as usize].entries[idx] {
                Entry::Table(t) => t,
                _ => return Err(MemError::NotMapped),
            };
        }
        let idx = vpn.pt_index(0);
        let n = &mut self.nodes[node as usize];
        let pte = match n.entries[idx] {
            Entry::Leaf(p) => p,
            _ => return Err(MemError::NotMapped),
        };
        n.entries[idx] = Entry::None;
        n.live -= 1;
        self.mapped -= 1;
        // Reclaim empty nodes bottom-up (never the root). Indexing walks
        // `path` top-down from the leaf's parent; an iterator would hide
        // the level arithmetic.
        let mut child = node;
        #[allow(clippy::needless_range_loop)]
        for level in 1..PT_LEVELS {
            if self.nodes[child as usize].live != 0 {
                break;
            }
            let (parent, idx) = path[level];
            self.free.push(child);
            let pn = &mut self.nodes[parent as usize];
            pn.entries[idx] = Entry::None;
            pn.live -= 1;
            child = parent;
        }
        Ok(pte)
    }

    /// Looks up the translation for `vpn`.
    pub fn translate(&self, vpn: Vpn) -> Option<Pte> {
        let mut node = self.root;
        for level in (1..PT_LEVELS).rev() {
            let idx = vpn.pt_index(level);
            node = match self.nodes[node as usize].entries[idx] {
                Entry::Table(t) => t,
                _ => return None,
            };
        }
        match self.nodes[node as usize].entries[vpn.pt_index(0)] {
            Entry::Leaf(p) => Some(p),
            _ => None,
        }
    }

    /// Replaces an existing translation in place (COW break, protection
    /// change). Fails if `vpn` is not mapped.
    pub fn update(&mut self, vpn: Vpn, pte: Pte) -> MemResult<Pte> {
        let mut node = self.root;
        for level in (1..PT_LEVELS).rev() {
            node = match self.nodes[node as usize].entries[vpn.pt_index(level)] {
                Entry::Table(t) => t,
                _ => return Err(MemError::NotMapped),
            };
        }
        let idx = vpn.pt_index(0);
        let n = &mut self.nodes[node as usize];
        match n.entries[idx] {
            Entry::Leaf(old) => {
                n.entries[idx] = Entry::Leaf(pte);
                Ok(old)
            }
            _ => Err(MemError::NotMapped),
        }
    }

    /// Visits every leaf translation in ascending VPN order.
    pub fn for_each_leaf(&self, mut f: impl FnMut(Vpn, Pte)) {
        self.walk(self.root, PT_LEVELS - 1, 0, &mut f);
    }

    fn walk(&self, node: u32, level: usize, base: u64, f: &mut impl FnMut(Vpn, Pte)) {
        for (i, e) in self.nodes[node as usize].entries.iter().enumerate() {
            let vpn_base = base | ((i as u64) << (9 * level));
            match *e {
                Entry::None => {}
                Entry::Table(t) => self.walk(t, level - 1, vpn_base, f),
                Entry::Leaf(p) => f(Vpn(vpn_base), p),
            }
        }
    }

    /// Mutably visits every leaf translation; the closure may rewrite the
    /// entry (but not remove it). Used by fork to write-protect the
    /// parent's PTEs when marking them COW.
    pub fn for_each_leaf_mut(&mut self, mut f: impl FnMut(Vpn, &mut Pte)) {
        // Iterative stack walk to satisfy the borrow checker.
        let mut stack = vec![(self.root, PT_LEVELS - 1, 0u64)];
        while let Some((node, level, base)) = stack.pop() {
            for i in 0..PT_ENTRIES {
                let vpn_base = base | ((i as u64) << (9 * level));
                match self.nodes[node as usize].entries[i] {
                    Entry::None => {}
                    Entry::Table(t) => stack.push((t, level - 1, vpn_base)),
                    Entry::Leaf(mut p) => {
                        f(Vpn(vpn_base), &mut p);
                        self.nodes[node as usize].entries[i] = Entry::Leaf(p);
                    }
                }
            }
        }
    }

    /// Collects all leaves in a range `[start, start + pages)`.
    pub fn leaves_in_range(&self, start: Vpn, pages: u64) -> Vec<(Vpn, Pte)> {
        let mut out = Vec::new();
        // The tree walk visits everything; range extraction filters. A
        // production kernel would descend only covered subtrees, but the
        // mapped set here is dense within VMAs so the filter is cheap.
        self.for_each_leaf(|vpn, pte| {
            if vpn.0 >= start.0 && vpn.0 < start.0 + pages {
                out.push((vpn, pte));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pfn;
    use crate::pte::PteFlags;

    fn fixture() -> (PageTable, Cycles, CostModel) {
        (PageTable::new(), Cycles::new(), CostModel::default())
    }

    #[test]
    fn map_translate_unmap() {
        let (mut pt, mut cy, cost) = fixture();
        let vpn = Vpn(0x12345);
        pt.map(vpn, Pte::new(Pfn(7), PteFlags::WRITABLE), &mut cy, &cost)
            .unwrap();
        let got = pt.translate(vpn).unwrap();
        assert_eq!(got.pfn, Pfn(7));
        assert!(got.is_writable());
        assert_eq!(pt.mapped_pages(), 1);
        let old = pt.unmap(vpn).unwrap();
        assert_eq!(old.pfn, Pfn(7));
        assert_eq!(pt.translate(vpn), None);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn double_map_is_overlap() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map(Vpn(1), Pte::new(Pfn(1), PteFlags::empty()), &mut cy, &cost)
            .unwrap();
        assert_eq!(
            pt.map(Vpn(1), Pte::new(Pfn(2), PteFlags::empty()), &mut cy, &cost),
            Err(MemError::Overlap)
        );
    }

    #[test]
    fn unmap_missing_is_not_mapped() {
        let (mut pt, _, _) = fixture();
        assert_eq!(pt.unmap(Vpn(99)), Err(MemError::NotMapped));
    }

    #[test]
    fn kernel_half_rejected() {
        let (mut pt, mut cy, cost) = fixture();
        let kvpn = Vpn(1 << 36); // above the 47-bit user split (VPN space)
        assert_eq!(
            pt.map(kvpn, Pte::new(Pfn(0), PteFlags::empty()), &mut cy, &cost),
            Err(MemError::BadAddress)
        );
    }

    #[test]
    fn intermediate_nodes_reclaimed() {
        let (mut pt, mut cy, cost) = fixture();
        assert_eq!(pt.node_count(), 1);
        pt.map(
            Vpn(0x40000),
            Pte::new(Pfn(1), PteFlags::empty()),
            &mut cy,
            &cost,
        )
        .unwrap();
        assert_eq!(pt.node_count(), 4, "three intermediates + root");
        pt.unmap(Vpn(0x40000)).unwrap();
        assert_eq!(pt.node_count(), 1, "empty intermediates torn down");
        // Arena slots are recycled on the next map.
        pt.map(
            Vpn(0x80000),
            Pte::new(Pfn(2), PteFlags::empty()),
            &mut cy,
            &cost,
        )
        .unwrap();
        assert_eq!(pt.node_count(), 4);
    }

    #[test]
    fn siblings_share_intermediates() {
        let (mut pt, mut cy, cost) = fixture();
        for i in 0..512u64 {
            pt.map(Vpn(i), Pte::new(Pfn(i), PteFlags::empty()), &mut cy, &cost)
                .unwrap();
        }
        // 512 leaves fit in one leaf node: root + 2 intermediates + 1 leaf node.
        assert_eq!(pt.node_count(), 4);
        assert_eq!(pt.mapped_pages(), 512);
        pt.map(
            Vpn(512),
            Pte::new(Pfn(600), PteFlags::empty()),
            &mut cy,
            &cost,
        )
        .unwrap();
        assert_eq!(pt.node_count(), 5, "next leaf node allocated");
    }

    #[test]
    fn update_rewrites_in_place() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map(Vpn(3), Pte::new(Pfn(1), PteFlags::WRITABLE), &mut cy, &cost)
            .unwrap();
        let old = pt
            .update(Vpn(3), Pte::new(Pfn(2), PteFlags::empty()))
            .unwrap();
        assert_eq!(old.pfn, Pfn(1));
        assert_eq!(pt.translate(Vpn(3)).unwrap().pfn, Pfn(2));
        assert_eq!(
            pt.update(Vpn(4), Pte::new(Pfn(9), PteFlags::empty())),
            Err(MemError::NotMapped)
        );
    }

    #[test]
    fn for_each_leaf_visits_in_order() {
        let (mut pt, mut cy, cost) = fixture();
        let vpns = [Vpn(5), Vpn(0x200), Vpn(0x7f_ffff), Vpn(1)];
        for (i, v) in vpns.iter().enumerate() {
            pt.map(
                *v,
                Pte::new(Pfn(i as u64), PteFlags::empty()),
                &mut cy,
                &cost,
            )
            .unwrap();
        }
        let mut seen = Vec::new();
        pt.for_each_leaf(|v, _| seen.push(v.0));
        let mut expect: Vec<u64> = vpns.iter().map(|v| v.0).collect();
        expect.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    fn for_each_leaf_mut_rewrites_flags() {
        let (mut pt, mut cy, cost) = fixture();
        for i in 0..100u64 {
            pt.map(Vpn(i), Pte::new(Pfn(i), PteFlags::WRITABLE), &mut cy, &cost)
                .unwrap();
        }
        pt.for_each_leaf_mut(|_, pte| {
            pte.flags = pte.flags.minus(PteFlags::WRITABLE).union(PteFlags::COW);
        });
        let mut cows = 0;
        pt.for_each_leaf(|_, pte| {
            assert!(!pte.is_writable());
            assert!(pte.is_cow());
            cows += 1;
        });
        assert_eq!(cows, 100);
    }

    #[test]
    fn leaves_in_range_filters() {
        let (mut pt, mut cy, cost) = fixture();
        for i in 0..20u64 {
            pt.map(
                Vpn(i * 10),
                Pte::new(Pfn(i), PteFlags::empty()),
                &mut cy,
                &cost,
            )
            .unwrap();
        }
        let r = pt.leaves_in_range(Vpn(50), 51); // VPNs 50..101
        let vpns: Vec<u64> = r.iter().map(|(v, _)| v.0).collect();
        assert_eq!(vpns, vec![50, 60, 70, 80, 90, 100]);
    }

    #[test]
    fn node_alloc_charges_cycles() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map(Vpn(0), Pte::new(Pfn(0), PteFlags::empty()), &mut cy, &cost)
            .unwrap();
        assert_eq!(
            cy.total(),
            3 * cost.pt_node_alloc,
            "three intermediate nodes"
        );
    }
}
