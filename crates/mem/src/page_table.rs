//! Four-level radix page table with refcount-shared leaf subtrees.
//!
//! Intermediate nodes (levels 3..1) live in an arena (`Vec`) indexed by
//! `u32`, which keeps the structure compact; the arena plays the role of
//! the physical frames that would hold page-table nodes on real hardware.
//! The bottom level is different: each 512-entry block of leaf PTEs lives
//! in a reference-counted `LeafNode`, so an on-demand fork can hand the
//! *same* leaf subtree to parent and child by bumping a refcount instead
//! of copying 512 entries. A shared node is immutable (enforced with
//! `Arc::get_mut`); the owner must privatize the leaf (the private
//! `privatize_leaf` operation) before mutating, which is the deferred
//! copy the fault path performs.
//!
//! Intermediate nodes are created lazily on [`PageTable::map`] and torn
//! down eagerly when their last entry is removed, so the node count always
//! reflects the mapped footprint — the quantity an eager fork must copy.

use crate::addr::{Vpn, PT_ENTRIES, PT_LEVELS};
use crate::cost::{CostModel, Cycles};
use crate::error::{MemError, MemResult};
use crate::pte::Pte;
use fpr_faults::FaultSite;
use std::sync::Arc;

/// One entry of an intermediate page-table node.
#[derive(Debug, Clone)]
enum Entry {
    /// Empty slot.
    None,
    /// Pointer to a lower-level intermediate node (arena index).
    Table(u32),
    /// A (possibly shared) 512-entry leaf subtree.
    Leaf(Arc<LeafNode>),
}

/// One 512-entry intermediate page-table node.
#[derive(Debug, Clone)]
struct Node {
    entries: Box<[Entry; PT_ENTRIES]>,
    /// Number of non-`None` entries, for eager teardown.
    live: u16,
}

impl Node {
    fn new() -> Node {
        Node {
            entries: Box::new(std::array::from_fn(|_| Entry::None)),
            live: 0,
        }
    }
}

/// A 512-entry block of leaf PTEs, shareable between page tables.
///
/// `Arc::strong_count > 1` means the subtree is shared by an on-demand
/// fork and must be privatized before any mutation.
#[derive(Debug, Clone)]
pub(crate) struct LeafNode {
    pub(crate) ptes: Box<[Option<Pte>; PT_ENTRIES]>,
    /// Number of present PTEs.
    pub(crate) live: u16,
}

impl LeafNode {
    fn new() -> LeafNode {
        LeafNode {
            ptes: Box::new([None; PT_ENTRIES]),
            live: 0,
        }
    }

    /// Present PTEs in ascending in-node order.
    pub(crate) fn present(&self) -> Vec<Pte> {
        self.ptes.iter().flatten().copied().collect()
    }
}

/// A four-level page table mapping [`Vpn`]s to [`Pte`]s.
#[derive(Debug, Clone)]
pub struct PageTable {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    mapped: u64,
    /// Live leaf nodes referenced from this table (shared ones count once).
    leaf_count: u64,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// Creates an empty page table (root node only).
    pub fn new() -> PageTable {
        PageTable {
            nodes: vec![Node::new()],
            free: Vec::new(),
            root: 0,
            mapped: 0,
            leaf_count: 0,
        }
    }

    fn alloc_node(&mut self, cycles: &mut Cycles, cost: &CostModel) -> u32 {
        cycles.charge(cost.pt_node_alloc);
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = Node::new();
            i
        } else {
            self.nodes.push(Node::new());
            (self.nodes.len() - 1) as u32
        }
    }

    /// Walks levels 3..2, allocating missing intermediates, and returns the
    /// arena index of the level-1 node covering `vpn`.
    fn walk_alloc_l1(&mut self, vpn: Vpn, cycles: &mut Cycles, cost: &CostModel) -> u32 {
        let mut node = self.root;
        for level in (2..PT_LEVELS).rev() {
            let idx = vpn.pt_index(level);
            node = match self.nodes[node as usize].entries[idx] {
                Entry::Table(t) => t,
                Entry::None => {
                    let t = self.alloc_node(cycles, cost);
                    let n = &mut self.nodes[node as usize];
                    n.entries[idx] = Entry::Table(t);
                    n.live += 1;
                    t
                }
                Entry::Leaf(_) => unreachable!("leaf at intermediate level"),
            };
        }
        node
    }

    /// Walks levels 3..2 read-only; `None` if the path is absent.
    fn walk_l1(&self, vpn: Vpn) -> Option<u32> {
        let mut node = self.root;
        for level in (2..PT_LEVELS).rev() {
            node = match &self.nodes[node as usize].entries[vpn.pt_index(level)] {
                Entry::Table(t) => *t,
                _ => return None,
            };
        }
        Some(node)
    }

    /// Number of leaf translations currently installed.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    /// Number of live page-table nodes, including the root and leaf nodes
    /// (a shared leaf node counts in every table referencing it, as it
    /// would occupy a slot in each table's parent node on hardware).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len() + self.leaf_count as usize
    }

    /// Installs a leaf translation for `vpn`.
    ///
    /// Fails with [`MemError::Overlap`] if a translation is already present;
    /// callers must unmap first (matching hardware, where silently replacing
    /// a live PTE without a TLB flush is a bug). Panics if the covering leaf
    /// subtree is shared — callers must privatize first.
    pub fn map(
        &mut self,
        vpn: Vpn,
        pte: Pte,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<()> {
        if !vpn.is_user() {
            return Err(MemError::BadAddress);
        }
        // Injection point: a real kernel can fail to get a frame for an
        // intermediate node anywhere along the walk. Crossing before any
        // mutation keeps the table untouched on injected failure.
        fpr_faults::cross(FaultSite::PtNodeAlloc).map_err(|_| MemError::OutOfMemory)?;
        let node = self.walk_alloc_l1(vpn, cycles, cost);
        let idx1 = vpn.pt_index(1);
        let n = &mut self.nodes[node as usize];
        if matches!(n.entries[idx1], Entry::None) {
            cycles.charge(cost.pt_node_alloc);
            n.entries[idx1] = Entry::Leaf(Arc::new(LeafNode::new()));
            n.live += 1;
            self.leaf_count += 1;
        }
        let Entry::Leaf(arc) = &mut self.nodes[node as usize].entries[idx1] else {
            unreachable!("table at leaf level");
        };
        let idx0 = vpn.pt_index(0);
        if arc.ptes[idx0].is_some() {
            return Err(MemError::Overlap);
        }
        let leaf = Arc::get_mut(arc).expect("map into a shared leaf subtree (missed unshare)");
        leaf.ptes[idx0] = Some(pte);
        leaf.live += 1;
        self.mapped += 1;
        Ok(())
    }

    /// Removes the translation for `vpn`, returning the old entry and
    /// tearing down any intermediate nodes that become empty. Panics if the
    /// covering leaf subtree is shared — callers must privatize first.
    pub fn unmap(&mut self, vpn: Vpn) -> MemResult<Pte> {
        // Record the walk so empty ancestors can be reclaimed.
        let mut path = [(0u32, 0usize); PT_LEVELS];
        let mut node = self.root;
        for level in (2..PT_LEVELS).rev() {
            let idx = vpn.pt_index(level);
            path[level] = (node, idx);
            node = match &self.nodes[node as usize].entries[idx] {
                Entry::Table(t) => *t,
                _ => return Err(MemError::NotMapped),
            };
        }
        let idx1 = vpn.pt_index(1);
        let idx0 = vpn.pt_index(0);
        let Entry::Leaf(arc) = &mut self.nodes[node as usize].entries[idx1] else {
            return Err(MemError::NotMapped);
        };
        if arc.ptes[idx0].is_none() {
            return Err(MemError::NotMapped);
        }
        let leaf = Arc::get_mut(arc).expect("unmap inside a shared leaf subtree (missed unshare)");
        let pte = leaf.ptes[idx0].take().expect("presence checked above");
        leaf.live -= 1;
        self.mapped -= 1;
        if leaf.live != 0 {
            return Ok(pte);
        }
        let n = &mut self.nodes[node as usize];
        n.entries[idx1] = Entry::None;
        n.live -= 1;
        self.leaf_count -= 1;
        // Reclaim empty intermediates bottom-up (never the root). Indexing
        // walks `path` top-down from the leaf node's parent; an iterator
        // would hide the level arithmetic.
        let mut child = node;
        #[allow(clippy::needless_range_loop)]
        for level in 2..PT_LEVELS {
            if self.nodes[child as usize].live != 0 {
                break;
            }
            let (parent, idx) = path[level];
            self.free.push(child);
            let pn = &mut self.nodes[parent as usize];
            pn.entries[idx] = Entry::None;
            pn.live -= 1;
            child = parent;
        }
        Ok(pte)
    }

    /// Looks up the translation for `vpn`.
    pub fn translate(&self, vpn: Vpn) -> Option<Pte> {
        let node = self.walk_l1(vpn)?;
        match &self.nodes[node as usize].entries[vpn.pt_index(1)] {
            Entry::Leaf(arc) => arc.ptes[vpn.pt_index(0)],
            _ => None,
        }
    }

    /// True if the leaf subtree covering `vpn` exists and is shared with
    /// another page table (on-demand fork has not yet unshared it).
    pub fn leaf_shared(&self, vpn: Vpn) -> bool {
        let Some(node) = self.walk_l1(vpn) else {
            return false;
        };
        match &self.nodes[node as usize].entries[vpn.pt_index(1)] {
            Entry::Leaf(arc) => Arc::strong_count(arc) > 1,
            _ => false,
        }
    }

    /// Replaces an existing translation in place (COW break, protection
    /// change). Fails if `vpn` is not mapped. Panics if the covering leaf
    /// subtree is shared — callers must privatize first.
    pub fn update(&mut self, vpn: Vpn, pte: Pte) -> MemResult<Pte> {
        let node = self.walk_l1(vpn).ok_or(MemError::NotMapped)?;
        let idx1 = vpn.pt_index(1);
        let idx0 = vpn.pt_index(0);
        let Entry::Leaf(arc) = &mut self.nodes[node as usize].entries[idx1] else {
            return Err(MemError::NotMapped);
        };
        if arc.ptes[idx0].is_none() {
            return Err(MemError::NotMapped);
        }
        let leaf = Arc::get_mut(arc).expect("update inside a shared leaf subtree (missed unshare)");
        let old = leaf.ptes[idx0].replace(pte).expect("presence checked above");
        Ok(old)
    }

    /// Visits every leaf translation in ascending VPN order.
    pub fn for_each_leaf(&self, mut f: impl FnMut(Vpn, Pte)) {
        self.walk(self.root, PT_LEVELS - 1, 0, &mut |_, vpn, pte| f(vpn, pte));
    }

    /// Visits every leaf translation along with the identity of the leaf
    /// node holding it (stable address of the shared node), so callers can
    /// recognise when two tables reference the *same* physical subtree.
    pub fn for_each_leaf_keyed(&self, mut f: impl FnMut(usize, Vpn, Pte)) {
        self.walk(self.root, PT_LEVELS - 1, 0, &mut f);
    }

    fn walk(&self, node: u32, level: usize, base: u64, f: &mut impl FnMut(usize, Vpn, Pte)) {
        for (i, e) in self.nodes[node as usize].entries.iter().enumerate() {
            let vpn_base = base | ((i as u64) << (9 * level));
            match e {
                Entry::None => {}
                Entry::Table(t) => self.walk(*t, level - 1, vpn_base, f),
                Entry::Leaf(arc) => {
                    let id = Arc::as_ptr(arc) as usize;
                    for (j, slot) in arc.ptes.iter().enumerate() {
                        if let Some(p) = slot {
                            f(id, Vpn(vpn_base | j as u64), *p);
                        }
                    }
                }
            }
        }
    }

    /// Mutably visits every leaf translation; the closure may rewrite the
    /// entry (but not remove it). Panics if any leaf subtree is shared.
    pub fn for_each_leaf_mut(&mut self, mut f: impl FnMut(Vpn, &mut Pte)) {
        // Iterative stack walk to satisfy the borrow checker.
        let mut stack = vec![(self.root, PT_LEVELS - 1, 0u64)];
        while let Some((node, level, base)) = stack.pop() {
            for i in 0..PT_ENTRIES {
                let vpn_base = base | ((i as u64) << (9 * level));
                match &mut self.nodes[node as usize].entries[i] {
                    Entry::None => {}
                    Entry::Table(t) => stack.push((*t, level - 1, vpn_base)),
                    Entry::Leaf(arc) => {
                        let leaf = Arc::get_mut(arc)
                            .expect("mutating a shared leaf subtree (missed unshare)");
                        for (j, slot) in leaf.ptes.iter_mut().enumerate() {
                            if let Some(p) = slot {
                                f(Vpn(vpn_base | j as u64), p);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Collects all leaves in a range `[start, start + pages)`.
    pub fn leaves_in_range(&self, start: Vpn, pages: u64) -> Vec<(Vpn, Pte)> {
        let mut out = Vec::new();
        // The tree walk visits everything; range extraction filters. A
        // production kernel would descend only covered subtrees, but the
        // mapped set here is dense within VMAs so the filter is cheap.
        self.for_each_leaf(|vpn, pte| {
            if vpn.0 >= start.0 && vpn.0 < start.0 + pages {
                out.push((vpn, pte));
            }
        });
        out
    }

    /// Coordinates of every leaf node: `(base VPN, level-1 arena index,
    /// slot index)`, ascending by base. Coordinates (not `Arc` clones) so
    /// that enumerating does not perturb `Arc::strong_count` — the
    /// on-demand fork walk relies on the count to detect exclusivity.
    /// Coordinates are invalidated by any map/unmap/attach/detach.
    pub(crate) fn leaf_slot_coords(&self) -> Vec<(u64, u32, usize)> {
        let mut out = Vec::new();
        let mut stack = vec![(self.root, PT_LEVELS - 1, 0u64)];
        while let Some((node, level, base)) = stack.pop() {
            for (i, e) in self.nodes[node as usize].entries.iter().enumerate() {
                let vpn_base = base | ((i as u64) << (9 * level));
                match e {
                    Entry::None => {}
                    Entry::Table(t) => stack.push((*t, level - 1, vpn_base)),
                    Entry::Leaf(_) => out.push((vpn_base, node, i)),
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The leaf node at arena coordinates from [`Self::leaf_slot_coords`].
    pub(crate) fn leaf_at(&self, l1: u32, idx: usize) -> &Arc<LeafNode> {
        match &self.nodes[l1 as usize].entries[idx] {
            Entry::Leaf(arc) => arc,
            _ => panic!("leaf_at: stale coordinates"),
        }
    }

    /// Mutable access to the leaf node at arena coordinates. The returned
    /// `Arc` can be inspected/marked via `Arc::get_mut` when exclusive.
    pub(crate) fn leaf_at_mut(&mut self, l1: u32, idx: usize) -> &mut Arc<LeafNode> {
        match &mut self.nodes[l1 as usize].entries[idx] {
            Entry::Leaf(arc) => arc,
            _ => panic!("leaf_at_mut: stale coordinates"),
        }
    }

    /// Wires an existing (typically shared) leaf node into this table at
    /// `base` (the VPN of its first slot), allocating intermediates as
    /// needed. This is the on-demand fork fast path: one pointer copy and
    /// a refcount bump instead of up to 512 PTE copies.
    pub(crate) fn attach_leaf(
        &mut self,
        base: u64,
        arc: Arc<LeafNode>,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<()> {
        let vpn = Vpn(base);
        if !vpn.is_user() {
            return Err(MemError::BadAddress);
        }
        fpr_faults::cross(FaultSite::PtNodeAlloc).map_err(|_| MemError::OutOfMemory)?;
        let node = self.walk_alloc_l1(vpn, cycles, cost);
        let idx1 = vpn.pt_index(1);
        let n = &mut self.nodes[node as usize];
        if !matches!(n.entries[idx1], Entry::None) {
            return Err(MemError::Overlap);
        }
        cycles.charge(cost.pt_subtree_share);
        self.mapped += arc.live as u64;
        n.entries[idx1] = Entry::Leaf(arc);
        n.live += 1;
        self.leaf_count += 1;
        Ok(())
    }

    /// Replaces the (shared) leaf node covering `vpn` with a private deep
    /// copy — the deferred per-subtree copy of an on-demand fork. Charges
    /// one node allocation plus one PTE copy per present entry, and
    /// returns the present PTEs so the caller can adjust frame refcounts.
    /// Crosses [`FaultSite::PtUnshare`] before mutating anything.
    pub(crate) fn privatize_leaf(
        &mut self,
        vpn: Vpn,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<Vec<Pte>> {
        fpr_faults::cross(FaultSite::PtUnshare).map_err(|_| MemError::OutOfMemory)?;
        let node = self.walk_l1(vpn).ok_or(MemError::NotMapped)?;
        let Entry::Leaf(arc) = &mut self.nodes[node as usize].entries[vpn.pt_index(1)] else {
            return Err(MemError::NotMapped);
        };
        cycles.charge(cost.pt_node_alloc + arc.live as u64 * cost.pte_copy);
        let present = arc.present();
        *arc = Arc::new(LeafNode {
            ptes: arc.ptes.clone(),
            live: arc.live,
        });
        Ok(present)
    }

    /// Unwires the leaf node at `base` from this table without touching
    /// its contents, tearing down intermediates that become empty. The
    /// caller decides what to do with the returned `Arc` (drop it cheaply
    /// if still shared, release its frames if this was the last owner).
    pub(crate) fn detach_leaf(&mut self, base: u64) -> MemResult<Arc<LeafNode>> {
        let vpn = Vpn(base);
        let mut path = [(0u32, 0usize); PT_LEVELS];
        let mut node = self.root;
        for level in (2..PT_LEVELS).rev() {
            let idx = vpn.pt_index(level);
            path[level] = (node, idx);
            node = match &self.nodes[node as usize].entries[idx] {
                Entry::Table(t) => *t,
                _ => return Err(MemError::NotMapped),
            };
        }
        let idx1 = vpn.pt_index(1);
        let n = &mut self.nodes[node as usize];
        let Entry::Leaf(arc) = std::mem::replace(&mut n.entries[idx1], Entry::None) else {
            return Err(MemError::NotMapped);
        };
        n.live -= 1;
        self.leaf_count -= 1;
        self.mapped -= arc.live as u64;
        let mut child = node;
        #[allow(clippy::needless_range_loop)]
        for level in 2..PT_LEVELS {
            if self.nodes[child as usize].live != 0 {
                break;
            }
            let (parent, idx) = path[level];
            self.free.push(child);
            let pn = &mut self.nodes[parent as usize];
            pn.entries[idx] = Entry::None;
            pn.live -= 1;
            child = parent;
        }
        Ok(arc)
    }

    /// Drains every leaf node and resets the table to empty — O(nodes)
    /// address-space destruction. Returns `(base VPN, node)` pairs
    /// ascending by base.
    pub(crate) fn take_leaves(&mut self) -> Vec<(u64, Arc<LeafNode>)> {
        let mut out = Vec::new();
        let mut stack = vec![(self.root, PT_LEVELS - 1, 0u64)];
        while let Some((node, level, base)) = stack.pop() {
            for (i, e) in self.nodes[node as usize].entries.iter().enumerate() {
                let vpn_base = base | ((i as u64) << (9 * level));
                match e {
                    Entry::None => {}
                    Entry::Table(t) => stack.push((*t, level - 1, vpn_base)),
                    Entry::Leaf(arc) => out.push((vpn_base, Arc::clone(arc))),
                }
            }
        }
        *self = PageTable::new();
        out.sort_unstable_by_key(|(b, _)| *b);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pfn;
    use crate::pte::PteFlags;

    fn fixture() -> (PageTable, Cycles, CostModel) {
        (PageTable::new(), Cycles::new(), CostModel::default())
    }

    #[test]
    fn map_translate_unmap() {
        let (mut pt, mut cy, cost) = fixture();
        let vpn = Vpn(0x12345);
        pt.map(vpn, Pte::new(Pfn(7), PteFlags::WRITABLE), &mut cy, &cost)
            .unwrap();
        let got = pt.translate(vpn).unwrap();
        assert_eq!(got.pfn, Pfn(7));
        assert!(got.is_writable());
        assert_eq!(pt.mapped_pages(), 1);
        let old = pt.unmap(vpn).unwrap();
        assert_eq!(old.pfn, Pfn(7));
        assert_eq!(pt.translate(vpn), None);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn double_map_is_overlap() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map(Vpn(1), Pte::new(Pfn(1), PteFlags::empty()), &mut cy, &cost)
            .unwrap();
        assert_eq!(
            pt.map(Vpn(1), Pte::new(Pfn(2), PteFlags::empty()), &mut cy, &cost),
            Err(MemError::Overlap)
        );
    }

    #[test]
    fn unmap_missing_is_not_mapped() {
        let (mut pt, _, _) = fixture();
        assert_eq!(pt.unmap(Vpn(99)), Err(MemError::NotMapped));
    }

    #[test]
    fn kernel_half_rejected() {
        let (mut pt, mut cy, cost) = fixture();
        let kvpn = Vpn(1 << 36); // above the 47-bit user split (VPN space)
        assert_eq!(
            pt.map(kvpn, Pte::new(Pfn(0), PteFlags::empty()), &mut cy, &cost),
            Err(MemError::BadAddress)
        );
    }

    #[test]
    fn intermediate_nodes_reclaimed() {
        let (mut pt, mut cy, cost) = fixture();
        assert_eq!(pt.node_count(), 1);
        pt.map(
            Vpn(0x40000),
            Pte::new(Pfn(1), PteFlags::empty()),
            &mut cy,
            &cost,
        )
        .unwrap();
        assert_eq!(pt.node_count(), 4, "three intermediates + root");
        pt.unmap(Vpn(0x40000)).unwrap();
        assert_eq!(pt.node_count(), 1, "empty intermediates torn down");
        // Arena slots are recycled on the next map.
        pt.map(
            Vpn(0x80000),
            Pte::new(Pfn(2), PteFlags::empty()),
            &mut cy,
            &cost,
        )
        .unwrap();
        assert_eq!(pt.node_count(), 4);
    }

    #[test]
    fn siblings_share_intermediates() {
        let (mut pt, mut cy, cost) = fixture();
        for i in 0..512u64 {
            pt.map(Vpn(i), Pte::new(Pfn(i), PteFlags::empty()), &mut cy, &cost)
                .unwrap();
        }
        // 512 leaves fit in one leaf node: root + 2 intermediates + 1 leaf node.
        assert_eq!(pt.node_count(), 4);
        assert_eq!(pt.mapped_pages(), 512);
        pt.map(
            Vpn(512),
            Pte::new(Pfn(600), PteFlags::empty()),
            &mut cy,
            &cost,
        )
        .unwrap();
        assert_eq!(pt.node_count(), 5, "next leaf node allocated");
    }

    #[test]
    fn update_rewrites_in_place() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map(Vpn(3), Pte::new(Pfn(1), PteFlags::WRITABLE), &mut cy, &cost)
            .unwrap();
        let old = pt
            .update(Vpn(3), Pte::new(Pfn(2), PteFlags::empty()))
            .unwrap();
        assert_eq!(old.pfn, Pfn(1));
        assert_eq!(pt.translate(Vpn(3)).unwrap().pfn, Pfn(2));
        assert_eq!(
            pt.update(Vpn(4), Pte::new(Pfn(9), PteFlags::empty())),
            Err(MemError::NotMapped)
        );
    }

    #[test]
    fn for_each_leaf_visits_in_order() {
        let (mut pt, mut cy, cost) = fixture();
        let vpns = [Vpn(5), Vpn(0x200), Vpn(0x7f_ffff), Vpn(1)];
        for (i, v) in vpns.iter().enumerate() {
            pt.map(
                *v,
                Pte::new(Pfn(i as u64), PteFlags::empty()),
                &mut cy,
                &cost,
            )
            .unwrap();
        }
        let mut seen = Vec::new();
        pt.for_each_leaf(|v, _| seen.push(v.0));
        let mut expect: Vec<u64> = vpns.iter().map(|v| v.0).collect();
        expect.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    fn for_each_leaf_mut_rewrites_flags() {
        let (mut pt, mut cy, cost) = fixture();
        for i in 0..100u64 {
            pt.map(Vpn(i), Pte::new(Pfn(i), PteFlags::WRITABLE), &mut cy, &cost)
                .unwrap();
        }
        pt.for_each_leaf_mut(|_, pte| {
            pte.flags = pte.flags.minus(PteFlags::WRITABLE).union(PteFlags::COW);
        });
        let mut cows = 0;
        pt.for_each_leaf(|_, pte| {
            assert!(!pte.is_writable());
            assert!(pte.is_cow());
            cows += 1;
        });
        assert_eq!(cows, 100);
    }

    #[test]
    fn leaves_in_range_filters() {
        let (mut pt, mut cy, cost) = fixture();
        for i in 0..20u64 {
            pt.map(
                Vpn(i * 10),
                Pte::new(Pfn(i), PteFlags::empty()),
                &mut cy,
                &cost,
            )
            .unwrap();
        }
        let r = pt.leaves_in_range(Vpn(50), 51); // VPNs 50..101
        let vpns: Vec<u64> = r.iter().map(|(v, _)| v.0).collect();
        assert_eq!(vpns, vec![50, 60, 70, 80, 90, 100]);
    }

    #[test]
    fn node_alloc_charges_cycles() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map(Vpn(0), Pte::new(Pfn(0), PteFlags::empty()), &mut cy, &cost)
            .unwrap();
        assert_eq!(
            cy.total(),
            3 * cost.pt_node_alloc,
            "three intermediate nodes"
        );
    }

    #[test]
    fn attach_shares_subtree_and_charges_pointer_copy() {
        let (mut parent, mut cy, cost) = fixture();
        for i in 0..512u64 {
            parent
                .map(Vpn(i), Pte::new(Pfn(i), PteFlags::empty()), &mut cy, &cost)
                .unwrap();
        }
        let coords = parent.leaf_slot_coords();
        assert_eq!(coords.len(), 1);
        let (base, l1, idx) = coords[0];
        assert_eq!(base, 0);
        let arc = Arc::clone(parent.leaf_at(l1, idx));

        let mut child = PageTable::new();
        let mut ccy = Cycles::new();
        child.attach_leaf(base, arc, &mut ccy, &cost).unwrap();
        assert_eq!(
            ccy.total(),
            2 * cost.pt_node_alloc + cost.pt_subtree_share,
            "two intermediates plus one subtree pointer copy"
        );
        assert_eq!(child.mapped_pages(), 512);
        assert_eq!(child.node_count(), 4);
        assert!(parent.leaf_shared(Vpn(5)));
        assert!(child.leaf_shared(Vpn(5)));
        assert_eq!(child.translate(Vpn(7)).unwrap().pfn, Pfn(7));
    }

    #[test]
    fn privatize_makes_both_sides_exclusive_and_charges_deferred_copy() {
        let (mut parent, mut cy, cost) = fixture();
        for i in 0..8u64 {
            parent
                .map(Vpn(i), Pte::new(Pfn(i), PteFlags::empty()), &mut cy, &cost)
                .unwrap();
        }
        let (base, l1, idx) = parent.leaf_slot_coords()[0];
        let arc = Arc::clone(parent.leaf_at(l1, idx));
        let mut child = PageTable::new();
        child.attach_leaf(base, arc, &mut cy, &cost).unwrap();

        let mut ucy = Cycles::new();
        let present = child.privatize_leaf(Vpn(3), &mut ucy, &cost).unwrap();
        assert_eq!(present.len(), 8);
        assert_eq!(ucy.total(), cost.pt_node_alloc + 8 * cost.pte_copy);
        assert!(!child.leaf_shared(Vpn(3)), "child now private");
        assert!(!parent.leaf_shared(Vpn(3)), "parent exclusive again");
        // Mutating the private copy no longer affects the other side.
        child.update(Vpn(3), Pte::new(Pfn(99), PteFlags::empty())).unwrap();
        assert_eq!(parent.translate(Vpn(3)).unwrap().pfn, Pfn(3));
        assert_eq!(child.translate(Vpn(3)).unwrap().pfn, Pfn(99));
    }

    #[test]
    fn detach_tears_down_empty_intermediates() {
        let (mut pt, mut cy, cost) = fixture();
        for i in 0..4u64 {
            pt.map(Vpn(i), Pte::new(Pfn(i), PteFlags::empty()), &mut cy, &cost)
                .unwrap();
        }
        assert_eq!(pt.node_count(), 4);
        let arc = pt.detach_leaf(0).unwrap();
        assert_eq!(arc.live, 4);
        assert_eq!(pt.node_count(), 1, "intermediates reclaimed");
        assert_eq!(pt.mapped_pages(), 0);
        assert!(matches!(pt.detach_leaf(0), Err(MemError::NotMapped)));
    }

    #[test]
    fn take_leaves_drains_everything() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map(Vpn(1), Pte::new(Pfn(1), PteFlags::empty()), &mut cy, &cost)
            .unwrap();
        pt.map(
            Vpn(0x40000),
            Pte::new(Pfn(2), PteFlags::empty()),
            &mut cy,
            &cost,
        )
        .unwrap();
        let leaves = pt.take_leaves();
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0].0, 0);
        assert_eq!(leaves[1].0, 0x40000);
        assert_eq!(pt.node_count(), 1);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "missed unshare")]
    fn mutating_shared_subtree_panics() {
        let (mut parent, mut cy, cost) = fixture();
        parent
            .map(Vpn(0), Pte::new(Pfn(0), PteFlags::empty()), &mut cy, &cost)
            .unwrap();
        let (base, l1, idx) = parent.leaf_slot_coords()[0];
        let arc = Arc::clone(parent.leaf_at(l1, idx));
        let mut child = PageTable::new();
        child.attach_leaf(base, arc, &mut cy, &cost).unwrap();
        let _ = parent.map(Vpn(1), Pte::new(Pfn(1), PteFlags::empty()), &mut cy, &cost);
    }
}
