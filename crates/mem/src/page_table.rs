//! Four-level radix page table with refcount-shared leaf subtrees and
//! 2 MiB huge leaves.
//!
//! Intermediate nodes (levels 3..1) live in an arena (`Vec`) indexed by
//! `u32`, which keeps the structure compact; the arena plays the role of
//! the physical frames that would hold page-table nodes on real hardware.
//! The bottom level is different: each 512-entry block of leaf PTEs lives
//! in a reference-counted `LeafNode`, so an on-demand fork can hand the
//! *same* leaf subtree to parent and child by bumping a refcount instead
//! of copying 512 entries. A shared node is immutable (enforced with
//! `Arc::get_mut`); the owner must privatize the leaf (the private
//! `privatize_leaf` operation) before mutating, which is the deferred
//! copy the fault path performs.
//!
//! Huge mappings take two forms, mirroring x86-64's PS bit at the PMD
//! and the way Linux's khugepaged collapses page tables:
//!
//! * a **lone huge leaf** (`Entry::Huge`) sits in a level-1 slot where a
//!   `LeafNode` would otherwise hang: one PTE maps a naturally aligned
//!   512-frame run, covering the node's whole 2 MiB span;
//! * a **huge directory** is a `LeafNode` attached one level up (a
//!   level-2 slot) whose present PTEs are all huge, so the node spans
//!   1 GiB. Directories are formed by `PageTable::try_collapse` when a
//!   level-1 node becomes all-huge, and — being ordinary `Arc`'d leaf
//!   nodes — they ride the on-demand fork's subtree-sharing fast path:
//!   forking 1 GiB of huge mappings is one pointer copy.
//!
//! Promotion (`PageTable::promote_block`) swaps a full, physically
//! contiguous small-PTE leaf for a lone huge leaf; demotion
//! (`PageTable::demote_block`) splits a huge leaf back into 512 small
//! PTEs (degrouping its directory first if needed), which partial unmap,
//! partial mprotect, and COW of a shared block require before they can
//! operate at page granularity.
//!
//! Intermediate nodes are created lazily on [`PageTable::map`] and torn
//! down eagerly when their last entry is removed, so the node count always
//! reflects the mapped footprint — the quantity an eager fork must copy.

use crate::addr::{Pfn, Vpn, HUGE_PAGES, PT_ENTRIES, PT_LEVELS};
use crate::cost::{CostModel, Cycles};
use crate::error::{MemError, MemResult};
use crate::pte::{Pte, PteFlags};
use fpr_faults::FaultSite;
use std::sync::Arc;

/// One entry of an intermediate page-table node.
#[derive(Debug, Clone)]
enum Entry {
    /// Empty slot.
    None,
    /// Pointer to a lower-level intermediate node (arena index).
    Table(u32),
    /// A (possibly shared) 512-entry leaf subtree. At a level-1 slot the
    /// PTEs are small; at a level-2 slot this is a huge directory whose
    /// PTEs are all 2 MiB blocks.
    Leaf(Arc<LeafNode>),
    /// A lone 2 MiB huge leaf in a level-1 slot: one PTE whose frame is
    /// the head of a naturally aligned 512-frame run.
    Huge(Pte),
}

/// One 512-entry intermediate page-table node.
#[derive(Debug, Clone)]
struct Node {
    entries: Box<[Entry; PT_ENTRIES]>,
    /// Number of non-`None` entries, for eager teardown.
    live: u16,
}

impl Node {
    fn new() -> Node {
        Node {
            entries: Box::new(std::array::from_fn(|_| Entry::None)),
            live: 0,
        }
    }
}

/// A 512-entry block of leaf PTEs, shareable between page tables.
///
/// `Arc::strong_count > 1` means the subtree is shared by an on-demand
/// fork and must be privatized before any mutation.
#[derive(Debug, Clone)]
pub(crate) struct LeafNode {
    pub(crate) ptes: Box<[Option<Pte>; PT_ENTRIES]>,
    /// Number of present PTEs.
    pub(crate) live: u16,
}

impl LeafNode {
    fn new() -> LeafNode {
        LeafNode {
            ptes: Box::new([None; PT_ENTRIES]),
            live: 0,
        }
    }

    /// Present PTEs in ascending in-node order.
    pub(crate) fn present(&self) -> Vec<Pte> {
        self.ptes.iter().flatten().copied().collect()
    }
}

/// What occupies a leaf-bearing slot, as reported by
/// [`PageTable::leaf_slot_coords`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotKind {
    /// A small-PTE leaf node at a level-1 slot (2 MiB span).
    Small,
    /// A huge directory at a level-2 slot (1 GiB span, all-huge PTEs).
    Dir,
    /// A lone huge PTE at a level-1 slot (2 MiB block).
    Huge,
}

/// One drained leaf from [`PageTable::take_leaves`].
#[derive(Debug)]
pub(crate) enum TakenLeaf {
    /// A leaf node: small PTEs (level-1 origin) or huge PTEs (directory).
    /// Each PTE's `HUGE` flag says which release path it needs.
    Node(Arc<LeafNode>),
    /// A lone huge leaf.
    Huge(Pte),
}

/// Where a VPN's covering structure sits after walking the upper levels.
enum Loc {
    /// The path is absent above level 1.
    Missing,
    /// The level-1 intermediate node (slots hold `Leaf`/`Huge`/`None`).
    L1(u32),
    /// A huge directory covers this GiB: `(level-2 node, slot)`.
    Dir(u32, usize),
}

/// A four-level page table mapping [`Vpn`]s to [`Pte`]s.
#[derive(Debug, Clone)]
pub struct PageTable {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    mapped: u64,
    /// Live leaf nodes referenced from this table (shared ones count once;
    /// huge directories count like any other leaf node).
    leaf_count: u64,
    /// Live 2 MiB huge mappings (lone leaves plus directory members).
    huge: u64,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// Creates an empty page table (root node only).
    pub fn new() -> PageTable {
        PageTable {
            nodes: vec![Node::new()],
            free: Vec::new(),
            root: 0,
            mapped: 0,
            leaf_count: 0,
            huge: 0,
        }
    }

    fn alloc_node(&mut self, cycles: &mut Cycles, cost: &CostModel) -> u32 {
        cycles.charge(cost.pt_node_alloc);
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = Node::new();
            i
        } else {
            self.nodes.push(Node::new());
            (self.nodes.len() - 1) as u32
        }
    }

    /// Walks downward allocating missing intermediates, returning the arena
    /// index of the level-`stop` node covering `vpn` (`stop == 1` for the
    /// ordinary leaf walk, `stop == 2` to attach a huge directory).
    ///
    /// Panics on meeting a huge directory above `stop`: callers must
    /// degroup (or route to the directory) first.
    fn walk_alloc(&mut self, vpn: Vpn, stop: usize, cycles: &mut Cycles, cost: &CostModel) -> u32 {
        let mut node = self.root;
        for level in (stop + 1..PT_LEVELS).rev() {
            let idx = vpn.pt_index(level);
            node = match self.nodes[node as usize].entries[idx] {
                Entry::Table(t) => t,
                Entry::None => {
                    let t = self.alloc_node(cycles, cost);
                    let n = &mut self.nodes[node as usize];
                    n.entries[idx] = Entry::Table(t);
                    n.live += 1;
                    t
                }
                Entry::Leaf(_) => panic!("walk through a huge directory (missed degroup)"),
                Entry::Huge(_) => unreachable!("huge leaf at level {level}"),
            };
        }
        node
    }

    /// Walks the upper levels read-only and reports what covers `vpn`.
    fn locate(&self, vpn: Vpn) -> Loc {
        let mut node = self.root;
        for level in (2..PT_LEVELS).rev() {
            let idx = vpn.pt_index(level);
            match &self.nodes[node as usize].entries[idx] {
                Entry::Table(t) => node = *t,
                Entry::Leaf(_) if level == 2 => return Loc::Dir(node, idx),
                _ => return Loc::Missing,
            }
        }
        Loc::L1(node)
    }

    /// Number of leaf translations currently installed. A huge mapping
    /// counts as the [`HUGE_PAGES`] small pages it covers.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    /// Number of live 2 MiB huge mappings.
    pub fn huge_mapped(&self) -> u64 {
        self.huge
    }

    /// Number of live page-table nodes, including the root and leaf nodes
    /// (a shared leaf node counts in every table referencing it, as it
    /// would occupy a slot in each table's parent node on hardware).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len() + self.leaf_count as usize
    }

    /// Synthesizes the per-page view of a huge block PTE: the frame is
    /// `head + offset` and the `HUGE` flag rides along so callers can tell
    /// the translation came from a block mapping.
    fn synth(huge: Pte, vpn: Vpn) -> Pte {
        Pte {
            pfn: Pfn(huge.pfn.0 + vpn.huge_offset()),
            flags: huge.flags,
        }
    }

    /// Installs a small leaf translation for `vpn`.
    ///
    /// Fails with [`MemError::Overlap`] if a translation is already present
    /// (including coverage by a huge block); callers must unmap first
    /// (matching hardware, where silently replacing a live PTE without a
    /// TLB flush is a bug). Panics if the covering leaf subtree is shared —
    /// callers must privatize first. Mapping a small page into a hole of a
    /// huge directory degroups the directory back to a level-1 table.
    pub fn map(
        &mut self,
        vpn: Vpn,
        pte: Pte,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<()> {
        if !vpn.is_user() {
            return Err(MemError::BadAddress);
        }
        // Injection point: a real kernel can fail to get a frame for an
        // intermediate node anywhere along the walk. Crossing before any
        // mutation keeps the table untouched on injected failure.
        fpr_faults::cross(FaultSite::PtNodeAlloc).map_err(|_| MemError::OutOfMemory)?;
        if let Loc::Dir(n2, i2) = self.locate(vpn) {
            let Entry::Leaf(arc) = &self.nodes[n2 as usize].entries[i2] else {
                unreachable!("located a directory");
            };
            if arc.ptes[vpn.pt_index(1)].is_some() {
                return Err(MemError::Overlap);
            }
            // Small page into a directory hole: the GiB loses its all-huge
            // shape, so fall back to a level-1 table of lone huge leaves.
            self.degroup(n2, i2, cycles, cost);
        }
        let node = self.walk_alloc(vpn, 1, cycles, cost);
        let idx1 = vpn.pt_index(1);
        let n = &mut self.nodes[node as usize];
        if matches!(n.entries[idx1], Entry::Huge(_)) {
            return Err(MemError::Overlap);
        }
        if matches!(n.entries[idx1], Entry::None) {
            cycles.charge(cost.pt_node_alloc);
            n.entries[idx1] = Entry::Leaf(Arc::new(LeafNode::new()));
            n.live += 1;
            self.leaf_count += 1;
        }
        let Entry::Leaf(arc) = &mut self.nodes[node as usize].entries[idx1] else {
            unreachable!("table at leaf level");
        };
        let idx0 = vpn.pt_index(0);
        if arc.ptes[idx0].is_some() {
            return Err(MemError::Overlap);
        }
        let leaf = Arc::get_mut(arc).expect("map into a shared leaf subtree (missed unshare)");
        leaf.ptes[idx0] = Some(pte);
        leaf.live += 1;
        self.mapped += 1;
        Ok(())
    }

    /// Installs a 2 MiB huge leaf at block-aligned `vpn`, whose `pfn` heads
    /// a naturally aligned 512-frame run. Fails with [`MemError::Overlap`]
    /// if anything is mapped in the block's level-1 slot. When the target
    /// falls in a hole of an exclusive huge directory the PTE is written
    /// straight into the directory; collapsing is attempted otherwise.
    ///
    /// Charges [`CostModel::huge_map`] — the price of *constructing* a
    /// block mapping (populate path). Fork-time duplication of an
    /// existing block is a single entry write; use [`Self::copy_huge`].
    pub fn map_huge(
        &mut self,
        vpn: Vpn,
        pte: Pte,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<()> {
        self.install_huge(vpn, pte, cycles, cost, cost.huge_map)
    }

    /// [`Self::map_huge`] priced as a copy of one already-built entry
    /// ([`CostModel::pte_copy`]): the fork paths duplicate a parent's
    /// huge PTE into the child, they do not build a mapping from scratch.
    pub fn copy_huge(
        &mut self,
        vpn: Vpn,
        pte: Pte,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<()> {
        self.install_huge(vpn, pte, cycles, cost, cost.pte_copy)
    }

    fn install_huge(
        &mut self,
        vpn: Vpn,
        pte: Pte,
        cycles: &mut Cycles,
        cost: &CostModel,
        charge: u64,
    ) -> MemResult<()> {
        if !vpn.is_user() {
            return Err(MemError::BadAddress);
        }
        assert!(vpn.is_huge_aligned(), "map_huge of an unaligned block");
        debug_assert_eq!(pte.pfn.0 % HUGE_PAGES, 0, "huge pfn must head an aligned run");
        let pte = Pte::new(pte.pfn, pte.flags | PteFlags::HUGE);
        fpr_faults::cross(FaultSite::PtNodeAlloc).map_err(|_| MemError::OutOfMemory)?;
        if let Loc::Dir(n2, i2) = self.locate(vpn) {
            let j = vpn.pt_index(1);
            let Entry::Leaf(arc) = &mut self.nodes[n2 as usize].entries[i2] else {
                unreachable!("located a directory");
            };
            if arc.ptes[j].is_some() {
                return Err(MemError::Overlap);
            }
            let dir =
                Arc::get_mut(arc).expect("map_huge into a shared directory (missed unshare)");
            dir.ptes[j] = Some(pte);
            dir.live += 1;
            self.mapped += HUGE_PAGES;
            self.huge += 1;
            cycles.charge(charge);
            return Ok(());
        }
        let node = self.walk_alloc(vpn, 1, cycles, cost);
        let idx1 = vpn.pt_index(1);
        let n = &mut self.nodes[node as usize];
        if !matches!(n.entries[idx1], Entry::None) {
            return Err(MemError::Overlap);
        }
        n.entries[idx1] = Entry::Huge(pte);
        n.live += 1;
        self.mapped += HUGE_PAGES;
        self.huge += 1;
        cycles.charge(charge);
        self.try_collapse(vpn, node);
        Ok(())
    }

    /// If the level-1 node covering `vpn` has become all-huge, collapses it
    /// into a huge directory at the parent level-2 slot. Free — it rides
    /// behind the promote/map that filled the last slot, trades one arena
    /// node for one leaf node, and is what lets fork share a whole GiB of
    /// huge mappings with a single pointer copy.
    fn try_collapse(&mut self, vpn: Vpn, l1: u32) {
        {
            let n = &self.nodes[l1 as usize];
            if n.live as usize != PT_ENTRIES
                || !n.entries.iter().all(|e| matches!(e, Entry::Huge(_)))
            {
                return;
            }
        }
        let mut dir = LeafNode::new();
        for (j, e) in self.nodes[l1 as usize].entries.iter().enumerate() {
            let Entry::Huge(p) = e else { unreachable!() };
            dir.ptes[j] = Some(*p);
        }
        dir.live = PT_ENTRIES as u16;
        // Rewire the parent slot from Table(l1) to the directory.
        let mut node = self.root;
        for level in (3..PT_LEVELS).rev() {
            node = match &self.nodes[node as usize].entries[vpn.pt_index(level)] {
                Entry::Table(t) => *t,
                _ => unreachable!("collapse under a broken path"),
            };
        }
        let i2 = vpn.pt_index(2);
        debug_assert!(matches!(
            self.nodes[node as usize].entries[i2],
            Entry::Table(t) if t == l1
        ));
        self.nodes[node as usize].entries[i2] = Entry::Leaf(Arc::new(dir));
        self.free.push(l1);
        self.leaf_count += 1;
        // `mapped`, `huge` and the parent's live count are unchanged.
    }

    /// Groups every level-1 table whose present entries are all huge (two
    /// or more of them) into a — possibly partial — huge directory, the
    /// form an on-demand fork shares with a single pointer copy. Partial
    /// directories are an ordinary table state (member unmap produces
    /// them too); holes fill via `map_huge` and degroup on a small map.
    /// Free, like [`Self::try_collapse`]: a node swap, not a PTE walk.
    pub(crate) fn group_huge_tables(&mut self) {
        let l2s: Vec<u32> = self.nodes[self.root as usize]
            .entries
            .iter()
            .filter_map(|e| match e {
                Entry::Table(t) => Some(*t),
                _ => None,
            })
            .collect();
        for n2 in l2s {
            for i2 in 0..PT_ENTRIES {
                let Entry::Table(l1) = self.nodes[n2 as usize].entries[i2] else {
                    continue;
                };
                let n = &self.nodes[l1 as usize];
                if n.live < 2
                    || !n
                        .entries
                        .iter()
                        .all(|e| matches!(e, Entry::Huge(_) | Entry::None))
                {
                    continue;
                }
                let mut dir = LeafNode::new();
                for (j, e) in self.nodes[l1 as usize].entries.iter().enumerate() {
                    if let Entry::Huge(p) = e {
                        dir.ptes[j] = Some(*p);
                        dir.live += 1;
                    }
                }
                self.nodes[n2 as usize].entries[i2] = Entry::Leaf(Arc::new(dir));
                self.free.push(l1);
                self.leaf_count += 1;
            }
        }
    }

    /// Splits an exclusive huge directory at `(n2, i2)` back into a level-1
    /// table of lone huge leaves, returning the new node's arena index.
    /// Charges one node allocation; the huge PTEs themselves survive, so
    /// this is not a demotion and crosses no fault site of its own.
    fn degroup(&mut self, n2: u32, i2: usize, cycles: &mut Cycles, cost: &CostModel) -> u32 {
        let Entry::Leaf(arc) = std::mem::replace(&mut self.nodes[n2 as usize].entries[i2], Entry::None)
        else {
            unreachable!("degroup of a non-directory slot");
        };
        let dir = match Arc::try_unwrap(arc) {
            Ok(node) => node,
            Err(_) => panic!("degrouping a shared huge directory (missed unshare)"),
        };
        let l1 = self.alloc_node(cycles, cost);
        let n = &mut self.nodes[l1 as usize];
        for (j, slot) in dir.ptes.iter().enumerate() {
            if let Some(p) = slot {
                n.entries[j] = Entry::Huge(*p);
                n.live += 1;
            }
        }
        self.nodes[n2 as usize].entries[i2] = Entry::Table(l1);
        self.leaf_count -= 1;
        // The parent's live count is unchanged: Leaf replaced by Table.
        l1
    }

    /// If the 2 MiB block at aligned `base` is structurally promotable —
    /// an exclusive, completely full small-PTE leaf whose frames are
    /// physically contiguous from an aligned head with identical flags —
    /// returns the huge PTE that `PageTable::promote_block` would
    /// install. Frame refcount eligibility is the caller's business; this
    /// checks only what the table can see.
    pub(crate) fn promotable(&self, base: Vpn) -> Option<Pte> {
        debug_assert!(base.is_huge_aligned());
        let Loc::L1(node) = self.locate(base) else {
            return None;
        };
        let Entry::Leaf(arc) = &self.nodes[node as usize].entries[base.pt_index(1)] else {
            return None;
        };
        if Arc::strong_count(arc) > 1 || arc.live as usize != PT_ENTRIES {
            return None;
        }
        let first = arc.ptes[0]?;
        if !first.is_present() || first.pfn.0 % HUGE_PAGES != 0 {
            return None;
        }
        for (j, slot) in arc.ptes.iter().enumerate() {
            let p = (*slot)?;
            if !p.is_present() || p.flags != first.flags || p.pfn.0 != first.pfn.0 + j as u64 {
                return None;
            }
        }
        Some(Pte::new(first.pfn, first.flags | PteFlags::HUGE))
    }

    /// Collapses the full small-PTE leaf at aligned `base` into the lone
    /// huge leaf `pte` (as computed by [`PageTable::promotable`]), charging
    /// [`CostModel::pt_promote`]. The caller crosses
    /// [`FaultSite::PtPromote`] and verifies frame eligibility first.
    pub(crate) fn promote_block(
        &mut self,
        base: Vpn,
        pte: Pte,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<()> {
        debug_assert!(base.is_huge_aligned() && pte.is_huge());
        let Loc::L1(node) = self.locate(base) else {
            return Err(MemError::NotMapped);
        };
        let idx1 = base.pt_index(1);
        match &self.nodes[node as usize].entries[idx1] {
            Entry::Leaf(arc) => {
                debug_assert_eq!(
                    Arc::strong_count(arc),
                    1,
                    "promoting a shared leaf (missed unshare)"
                );
                debug_assert_eq!(arc.live as usize, PT_ENTRIES);
            }
            _ => return Err(MemError::NotMapped),
        }
        self.nodes[node as usize].entries[idx1] = Entry::Huge(pte);
        self.leaf_count -= 1;
        self.huge += 1;
        // `mapped` is unchanged: 512 small pages became one 512-page block.
        cycles.charge(cost.pt_promote);
        self.try_collapse(base, node);
        Ok(())
    }

    /// Splits the huge block covering `vpn` back into 512 small PTEs
    /// (degrouping its directory first if needed), charging
    /// [`CostModel::pt_demote`]. Crosses [`FaultSite::PtDemote`] before any
    /// mutation, so an injected failure leaves the block huge and the
    /// enclosing operation fails cleanly. Frames and refcounts are
    /// untouched — the small PTEs alias the same run.
    pub(crate) fn demote_block(
        &mut self,
        vpn: Vpn,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<()> {
        let base = vpn.huge_base();
        fpr_faults::cross(FaultSite::PtDemote).map_err(|_| MemError::OutOfMemory)?;
        let l1 = match self.locate(base) {
            Loc::Dir(n2, i2) => self.degroup(n2, i2, cycles, cost),
            Loc::L1(n) => n,
            Loc::Missing => return Err(MemError::NotMapped),
        };
        let idx1 = base.pt_index(1);
        let Entry::Huge(hpte) = self.nodes[l1 as usize].entries[idx1] else {
            return Err(MemError::NotMapped);
        };
        let mut leaf = LeafNode::new();
        let flags = hpte.flags.minus(PteFlags::HUGE);
        for j in 0..PT_ENTRIES {
            leaf.ptes[j] = Some(Pte {
                pfn: Pfn(hpte.pfn.0 + j as u64),
                flags,
            });
        }
        leaf.live = PT_ENTRIES as u16;
        self.nodes[l1 as usize].entries[idx1] = Entry::Leaf(Arc::new(leaf));
        self.leaf_count += 1;
        self.huge -= 1;
        cycles.charge(cost.pt_demote);
        Ok(())
    }

    /// Removes the translation for `vpn`, returning the old entry and
    /// tearing down any intermediate nodes that become empty. A huge block
    /// unmaps as a unit at its block base (the whole 512-page translation
    /// comes back as one huge PTE); unmapping an interior page of a huge
    /// block panics — callers must demote first. Panics if the covering
    /// leaf subtree or directory is shared — callers must privatize first.
    pub fn unmap(&mut self, vpn: Vpn) -> MemResult<Pte> {
        // Record the walk so empty ancestors can be reclaimed.
        let mut path = [(0u32, 0usize); PT_LEVELS];
        let mut node = self.root;
        let mut dir = None;
        for level in (2..PT_LEVELS).rev() {
            let idx = vpn.pt_index(level);
            path[level] = (node, idx);
            match &self.nodes[node as usize].entries[idx] {
                Entry::Table(t) => node = *t,
                Entry::Leaf(_) if level == 2 => {
                    dir = Some((node, idx));
                    break;
                }
                _ => return Err(MemError::NotMapped),
            }
        }
        if let Some((n2, i2)) = dir {
            let j = vpn.pt_index(1);
            let Entry::Leaf(arc) = &mut self.nodes[n2 as usize].entries[i2] else {
                unreachable!("located a directory");
            };
            if arc.ptes[j].is_none() {
                return Err(MemError::NotMapped);
            }
            assert!(
                vpn.is_huge_aligned(),
                "unmap inside a huge block (missed demote)"
            );
            let d = Arc::get_mut(arc).expect("unmap inside a shared directory (missed unshare)");
            let pte = d.ptes[j].take().expect("presence checked above");
            d.live -= 1;
            self.mapped -= HUGE_PAGES;
            self.huge -= 1;
            if d.live == 0 {
                let n = &mut self.nodes[n2 as usize];
                n.entries[i2] = Entry::None;
                n.live -= 1;
                self.leaf_count -= 1;
                self.reclaim_path(&path, n2, 3);
            }
            return Ok(pte);
        }
        let idx1 = vpn.pt_index(1);
        if let Entry::Huge(hpte) = self.nodes[node as usize].entries[idx1] {
            assert!(
                vpn.is_huge_aligned(),
                "unmap inside a huge block (missed demote)"
            );
            let n = &mut self.nodes[node as usize];
            n.entries[idx1] = Entry::None;
            n.live -= 1;
            self.mapped -= HUGE_PAGES;
            self.huge -= 1;
            self.reclaim_path(&path, node, 2);
            return Ok(hpte);
        }
        let idx0 = vpn.pt_index(0);
        let Entry::Leaf(arc) = &mut self.nodes[node as usize].entries[idx1] else {
            return Err(MemError::NotMapped);
        };
        if arc.ptes[idx0].is_none() {
            return Err(MemError::NotMapped);
        }
        let leaf = Arc::get_mut(arc).expect("unmap inside a shared leaf subtree (missed unshare)");
        let pte = leaf.ptes[idx0].take().expect("presence checked above");
        leaf.live -= 1;
        self.mapped -= 1;
        if leaf.live != 0 {
            return Ok(pte);
        }
        let n = &mut self.nodes[node as usize];
        n.entries[idx1] = Entry::None;
        n.live -= 1;
        self.leaf_count -= 1;
        self.reclaim_path(&path, node, 2);
        Ok(pte)
    }

    /// Reclaims empty intermediate nodes bottom-up starting from `child`
    /// (never the root), following the parent links recorded in `path`
    /// from level `from` upward.
    fn reclaim_path(&mut self, path: &[(u32, usize); PT_LEVELS], mut child: u32, from: usize) {
        #[allow(clippy::needless_range_loop)]
        for level in from..PT_LEVELS {
            if self.nodes[child as usize].live != 0 {
                break;
            }
            let (parent, idx) = path[level];
            self.free.push(child);
            let pn = &mut self.nodes[parent as usize];
            pn.entries[idx] = Entry::None;
            pn.live -= 1;
            child = parent;
        }
    }

    /// Looks up the translation for `vpn`. Inside a huge block the
    /// returned PTE is the per-page view (frame `head + offset`, `HUGE`
    /// flag set) so callers can both use the translation and recognise the
    /// block mapping behind it.
    pub fn translate(&self, vpn: Vpn) -> Option<Pte> {
        match self.locate(vpn) {
            Loc::Missing => None,
            Loc::Dir(n2, i2) => {
                let Entry::Leaf(arc) = &self.nodes[n2 as usize].entries[i2] else {
                    unreachable!("located a directory");
                };
                arc.ptes[vpn.pt_index(1)].map(|h| Self::synth(h, vpn))
            }
            Loc::L1(node) => match &self.nodes[node as usize].entries[vpn.pt_index(1)] {
                Entry::Leaf(arc) => arc.ptes[vpn.pt_index(0)],
                Entry::Huge(h) => Some(Self::synth(*h, vpn)),
                _ => None,
            },
        }
    }

    /// The covering 2 MiB block PTE (frame = head of the run) if `vpn`
    /// falls inside a huge mapping.
    pub fn huge_block(&self, vpn: Vpn) -> Option<Pte> {
        match self.locate(vpn) {
            Loc::Missing => None,
            Loc::Dir(n2, i2) => {
                let Entry::Leaf(arc) = &self.nodes[n2 as usize].entries[i2] else {
                    unreachable!("located a directory");
                };
                arc.ptes[vpn.pt_index(1)]
            }
            Loc::L1(node) => match &self.nodes[node as usize].entries[vpn.pt_index(1)] {
                Entry::Huge(h) => Some(*h),
                _ => None,
            },
        }
    }

    /// True if the leaf subtree (or huge directory) covering `vpn` exists
    /// and is shared with another page table (on-demand fork has not yet
    /// unshared it). A lone huge leaf is never shared — fork shares its
    /// frames, not the entry.
    pub fn leaf_shared(&self, vpn: Vpn) -> bool {
        match self.locate(vpn) {
            Loc::Missing => false,
            Loc::Dir(n2, i2) => {
                let Entry::Leaf(arc) = &self.nodes[n2 as usize].entries[i2] else {
                    unreachable!("located a directory");
                };
                Arc::strong_count(arc) > 1
            }
            Loc::L1(node) => match &self.nodes[node as usize].entries[vpn.pt_index(1)] {
                Entry::Leaf(arc) => Arc::strong_count(arc) > 1,
                _ => false,
            },
        }
    }

    /// Replaces an existing translation in place (COW break, protection
    /// change). A huge block updates as a unit: the new PTE must be huge
    /// and `vpn` block-aligned, else the caller missed a demote. Fails if
    /// `vpn` is not mapped. Panics if the covering leaf subtree or
    /// directory is shared — callers must privatize first.
    pub fn update(&mut self, vpn: Vpn, pte: Pte) -> MemResult<Pte> {
        match self.locate(vpn) {
            Loc::Missing => Err(MemError::NotMapped),
            Loc::Dir(n2, i2) => {
                let j = vpn.pt_index(1);
                let Entry::Leaf(arc) = &mut self.nodes[n2 as usize].entries[i2] else {
                    unreachable!("located a directory");
                };
                if arc.ptes[j].is_none() {
                    return Err(MemError::NotMapped);
                }
                assert!(
                    vpn.is_huge_aligned() && pte.is_huge(),
                    "partial update of a huge block (missed demote)"
                );
                let d =
                    Arc::get_mut(arc).expect("update inside a shared directory (missed unshare)");
                Ok(d.ptes[j].replace(pte).expect("presence checked above"))
            }
            Loc::L1(node) => {
                let idx1 = vpn.pt_index(1);
                match &mut self.nodes[node as usize].entries[idx1] {
                    Entry::Huge(h) => {
                        assert!(
                            vpn.is_huge_aligned() && pte.is_huge(),
                            "partial update of a huge block (missed demote)"
                        );
                        let old = *h;
                        *h = pte;
                        Ok(old)
                    }
                    Entry::Leaf(arc) => {
                        let idx0 = vpn.pt_index(0);
                        if arc.ptes[idx0].is_none() {
                            return Err(MemError::NotMapped);
                        }
                        let leaf = Arc::get_mut(arc)
                            .expect("update inside a shared leaf subtree (missed unshare)");
                        Ok(leaf.ptes[idx0].replace(pte).expect("presence checked above"))
                    }
                    _ => Err(MemError::NotMapped),
                }
            }
        }
    }

    /// Visits every leaf translation in ascending VPN order. Huge blocks
    /// are yielded once at their block base with the `HUGE` flag set.
    pub fn for_each_leaf(&self, mut f: impl FnMut(Vpn, Pte)) {
        self.walk(self.root, PT_LEVELS - 1, 0, &mut |_, vpn, pte| f(vpn, pte));
    }

    /// Visits every leaf translation along with the identity of the leaf
    /// node holding it (stable address of the shared node), so callers can
    /// recognise when two tables reference the *same* physical subtree.
    /// Lone huge leaves use the address of their arena slot — a distinct
    /// allocation from every `Arc`, so identities never collide.
    pub fn for_each_leaf_keyed(&self, mut f: impl FnMut(usize, Vpn, Pte)) {
        self.walk(self.root, PT_LEVELS - 1, 0, &mut f);
    }

    fn walk(&self, node: u32, level: usize, base: u64, f: &mut impl FnMut(usize, Vpn, Pte)) {
        for (i, e) in self.nodes[node as usize].entries.iter().enumerate() {
            let vpn_base = base | ((i as u64) << (9 * level));
            match e {
                Entry::None => {}
                Entry::Table(t) => self.walk(*t, level - 1, vpn_base, f),
                Entry::Leaf(arc) => {
                    let id = Arc::as_ptr(arc) as usize;
                    // At level 2 this is a huge directory: each slot is a
                    // 2 MiB block yielded once at its block base.
                    let stride = if level == 2 { HUGE_PAGES } else { 1 };
                    for (j, slot) in arc.ptes.iter().enumerate() {
                        if let Some(p) = slot {
                            f(id, Vpn(vpn_base | (j as u64 * stride)), *p);
                        }
                    }
                }
                Entry::Huge(p) => {
                    let id = e as *const Entry as usize;
                    f(id, Vpn(vpn_base), *p);
                }
            }
        }
    }

    /// Mutably visits every leaf translation; the closure may rewrite the
    /// entry (but not remove it). Huge blocks are visited once at their
    /// block base. Panics if any leaf subtree is shared.
    pub fn for_each_leaf_mut(&mut self, mut f: impl FnMut(Vpn, &mut Pte)) {
        // Iterative stack walk to satisfy the borrow checker.
        let mut stack = vec![(self.root, PT_LEVELS - 1, 0u64)];
        while let Some((node, level, base)) = stack.pop() {
            for i in 0..PT_ENTRIES {
                let vpn_base = base | ((i as u64) << (9 * level));
                match &mut self.nodes[node as usize].entries[i] {
                    Entry::None => {}
                    Entry::Table(t) => stack.push((*t, level - 1, vpn_base)),
                    Entry::Leaf(arc) => {
                        let leaf = Arc::get_mut(arc)
                            .expect("mutating a shared leaf subtree (missed unshare)");
                        let stride = if level == 2 { HUGE_PAGES } else { 1 };
                        for (j, slot) in leaf.ptes.iter_mut().enumerate() {
                            if let Some(p) = slot {
                                f(Vpn(vpn_base | (j as u64 * stride)), p);
                            }
                        }
                    }
                    Entry::Huge(p) => f(Vpn(vpn_base), p),
                }
            }
        }
    }

    /// Collects all leaves in a range `[start, start + pages)`. Huge
    /// blocks appear once at their block base; a block partially
    /// overlapping the range boundary must be demoted by the caller before
    /// this filter is meaningful.
    pub fn leaves_in_range(&self, start: Vpn, pages: u64) -> Vec<(Vpn, Pte)> {
        let mut out = Vec::new();
        // The tree walk visits everything; range extraction filters. A
        // production kernel would descend only covered subtrees, but the
        // mapped set here is dense within VMAs so the filter is cheap.
        self.for_each_leaf(|vpn, pte| {
            if vpn.0 >= start.0 && vpn.0 < start.0 + pages {
                out.push((vpn, pte));
            }
        });
        out
    }

    /// Coordinates of every leaf-bearing slot: `(base VPN, arena node,
    /// slot index, kind)`, ascending by base. Coordinates (not `Arc`
    /// clones) so that enumerating does not perturb `Arc::strong_count` —
    /// the on-demand fork walk relies on the count to detect exclusivity.
    /// Coordinates are invalidated by any map/unmap/attach/detach.
    pub(crate) fn leaf_slot_coords(&self) -> Vec<(u64, u32, usize, SlotKind)> {
        let mut out = Vec::new();
        let mut stack = vec![(self.root, PT_LEVELS - 1, 0u64)];
        while let Some((node, level, base)) = stack.pop() {
            for (i, e) in self.nodes[node as usize].entries.iter().enumerate() {
                let vpn_base = base | ((i as u64) << (9 * level));
                match e {
                    Entry::None => {}
                    Entry::Table(t) => stack.push((*t, level - 1, vpn_base)),
                    Entry::Leaf(_) => {
                        let kind = if level == 2 { SlotKind::Dir } else { SlotKind::Small };
                        out.push((vpn_base, node, i, kind));
                    }
                    Entry::Huge(_) => out.push((vpn_base, node, i, SlotKind::Huge)),
                }
            }
        }
        out.sort_unstable_by_key(|&(b, ..)| b);
        out
    }

    /// The leaf node at arena coordinates from [`Self::leaf_slot_coords`]
    /// (small leaves and huge directories both).
    pub(crate) fn leaf_at(&self, node: u32, idx: usize) -> &Arc<LeafNode> {
        match &self.nodes[node as usize].entries[idx] {
            Entry::Leaf(arc) => arc,
            _ => panic!("leaf_at: stale coordinates"),
        }
    }

    /// Mutable access to the leaf node at arena coordinates. The returned
    /// `Arc` can be inspected/marked via `Arc::get_mut` when exclusive.
    pub(crate) fn leaf_at_mut(&mut self, node: u32, idx: usize) -> &mut Arc<LeafNode> {
        match &mut self.nodes[node as usize].entries[idx] {
            Entry::Leaf(arc) => arc,
            _ => panic!("leaf_at_mut: stale coordinates"),
        }
    }

    /// The lone huge PTE at arena coordinates from
    /// [`Self::leaf_slot_coords`].
    pub(crate) fn huge_at(&self, node: u32, idx: usize) -> Pte {
        match &self.nodes[node as usize].entries[idx] {
            Entry::Huge(p) => *p,
            _ => panic!("huge_at: stale coordinates"),
        }
    }

    /// Wires an existing (typically shared) leaf node into this table at
    /// `base` (the VPN of its first slot), allocating intermediates as
    /// needed. This is the on-demand fork fast path: one pointer copy and
    /// a refcount bump instead of up to 512 PTE copies. With `dir` the
    /// node is a huge directory and attaches one level up, sharing up to a
    /// GiB of huge mappings in the same single pointer copy.
    pub(crate) fn attach_leaf(
        &mut self,
        base: u64,
        arc: Arc<LeafNode>,
        dir: bool,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<()> {
        let vpn = Vpn(base);
        if !vpn.is_user() {
            return Err(MemError::BadAddress);
        }
        fpr_faults::cross(FaultSite::PtNodeAlloc).map_err(|_| MemError::OutOfMemory)?;
        let stop = if dir { 2 } else { 1 };
        let node = self.walk_alloc(vpn, stop, cycles, cost);
        let idx = vpn.pt_index(stop);
        let n = &mut self.nodes[node as usize];
        if !matches!(n.entries[idx], Entry::None) {
            return Err(MemError::Overlap);
        }
        cycles.charge(cost.pt_subtree_share);
        let live = arc.live as u64;
        if dir {
            self.mapped += live * HUGE_PAGES;
            self.huge += live;
        } else {
            self.mapped += live;
        }
        let n = &mut self.nodes[node as usize];
        n.entries[idx] = Entry::Leaf(arc);
        n.live += 1;
        self.leaf_count += 1;
        Ok(())
    }

    /// Replaces the (shared) leaf node or huge directory covering `vpn`
    /// with a private deep copy — the deferred per-subtree copy of an
    /// on-demand fork. Charges one node allocation plus one PTE copy per
    /// present entry, and returns the present PTEs so the caller can
    /// adjust frame refcounts (huge PTEs, flagged `HUGE`, stand for whole
    /// runs). Crosses [`FaultSite::PtUnshare`] before mutating anything.
    pub(crate) fn privatize_leaf(
        &mut self,
        vpn: Vpn,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<Vec<Pte>> {
        fpr_faults::cross(FaultSite::PtUnshare).map_err(|_| MemError::OutOfMemory)?;
        let (node, idx) = match self.locate(vpn) {
            Loc::Missing => return Err(MemError::NotMapped),
            Loc::Dir(n2, i2) => (n2, i2),
            Loc::L1(n1) => (n1, vpn.pt_index(1)),
        };
        let Entry::Leaf(arc) = &mut self.nodes[node as usize].entries[idx] else {
            return Err(MemError::NotMapped);
        };
        cycles.charge(cost.pt_node_alloc + arc.live as u64 * cost.pte_copy);
        let present = arc.present();
        *arc = Arc::new(LeafNode {
            ptes: arc.ptes.clone(),
            live: arc.live,
        });
        Ok(present)
    }

    /// Unwires the leaf node (or huge directory) at `base` from this table
    /// without touching its contents, tearing down intermediates that
    /// become empty. The caller decides what to do with the returned `Arc`
    /// (drop it cheaply if still shared, release its frames if this was
    /// the last owner). Lone huge leaves are not `Arc`s — unmap those.
    pub(crate) fn detach_leaf(&mut self, base: u64) -> MemResult<Arc<LeafNode>> {
        let vpn = Vpn(base);
        let mut path = [(0u32, 0usize); PT_LEVELS];
        let mut node = self.root;
        let mut dir = None;
        for level in (2..PT_LEVELS).rev() {
            let idx = vpn.pt_index(level);
            path[level] = (node, idx);
            match &self.nodes[node as usize].entries[idx] {
                Entry::Table(t) => node = *t,
                Entry::Leaf(_) if level == 2 => {
                    dir = Some((node, idx));
                    break;
                }
                _ => return Err(MemError::NotMapped),
            }
        }
        if let Some((n2, i2)) = dir {
            debug_assert!(
                vpn.pt_index(1) == 0 && vpn.pt_index(0) == 0,
                "detach of a directory must use its own base"
            );
            let n = &mut self.nodes[n2 as usize];
            let Entry::Leaf(arc) = std::mem::replace(&mut n.entries[i2], Entry::None) else {
                unreachable!("located a directory");
            };
            n.live -= 1;
            self.leaf_count -= 1;
            self.mapped -= arc.live as u64 * HUGE_PAGES;
            self.huge -= arc.live as u64;
            self.reclaim_path(&path, n2, 3);
            return Ok(arc);
        }
        let idx1 = vpn.pt_index(1);
        let n = &mut self.nodes[node as usize];
        if !matches!(n.entries[idx1], Entry::Leaf(_)) {
            return Err(MemError::NotMapped);
        }
        let Entry::Leaf(arc) = std::mem::replace(&mut n.entries[idx1], Entry::None) else {
            unreachable!("matched above");
        };
        n.live -= 1;
        self.leaf_count -= 1;
        self.mapped -= arc.live as u64;
        self.reclaim_path(&path, node, 2);
        Ok(arc)
    }

    /// Drains every leaf and resets the table to empty — O(nodes)
    /// address-space destruction. Returns `(base VPN, leaf)` pairs
    /// ascending by base; huge directories come back as nodes of huge
    /// PTEs and lone huge leaves as bare PTEs.
    pub(crate) fn take_leaves(&mut self) -> Vec<(u64, TakenLeaf)> {
        let mut out = Vec::new();
        let mut stack = vec![(self.root, PT_LEVELS - 1, 0u64)];
        while let Some((node, level, base)) = stack.pop() {
            for (i, e) in self.nodes[node as usize].entries.iter().enumerate() {
                let vpn_base = base | ((i as u64) << (9 * level));
                match e {
                    Entry::None => {}
                    Entry::Table(t) => stack.push((*t, level - 1, vpn_base)),
                    Entry::Leaf(arc) => out.push((vpn_base, TakenLeaf::Node(Arc::clone(arc)))),
                    Entry::Huge(p) => out.push((vpn_base, TakenLeaf::Huge(*p))),
                }
            }
        }
        *self = PageTable::new();
        out.sort_unstable_by_key(|(b, _)| *b);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pfn;
    use crate::pte::PteFlags;

    fn fixture() -> (PageTable, Cycles, CostModel) {
        (PageTable::new(), Cycles::new(), CostModel::default())
    }

    fn huge(pfn: u64) -> Pte {
        Pte::new(Pfn(pfn), PteFlags::WRITABLE | PteFlags::HUGE)
    }

    #[test]
    fn group_huge_tables_forms_partial_directories() {
        let (mut pt, mut cy, cost) = fixture();
        // Three loose blocks in one GiB region, one lone block far away.
        for b in 0..3u64 {
            pt.map_huge(Vpn(b * 512), huge(b * 512), &mut cy, &cost)
                .unwrap();
        }
        let far = Vpn(512 * 512 * 3);
        pt.map_huge(far, huge(1 << 30), &mut cy, &cost).unwrap();
        let before = pt.node_count();
        pt.group_huge_tables();
        // The all-huge table traded its arena node for a leaf node.
        assert_eq!(pt.node_count(), before);
        assert_eq!(pt.huge_mapped(), 4);
        // Members still translate through the partial directory, holes
        // stay holes, the lone far block stays inline.
        assert_eq!(pt.translate(Vpn(512 + 7)).unwrap().pfn, Pfn(512 + 7));
        assert_eq!(pt.translate(Vpn(3 * 512)), None);
        let coords = pt.leaf_slot_coords();
        assert_eq!(
            coords
                .iter()
                .filter(|(_, _, _, k)| *k == SlotKind::Dir)
                .count(),
            1,
            "grouped into one partial directory"
        );
        assert_eq!(
            coords
                .iter()
                .filter(|(_, _, _, k)| *k == SlotKind::Huge)
                .count(),
            1,
            "single far block stays a lone leaf"
        );
        // A small map into a hole of the grouped GiB degroups it again.
        pt.map(
            Vpn(3 * 512 + 1),
            Pte::new(Pfn(9), PteFlags::WRITABLE),
            &mut cy,
            &cost,
        )
        .unwrap();
        assert_eq!(pt.translate(Vpn(512 + 7)).unwrap().pfn, Pfn(512 + 7));
        assert_eq!(pt.translate(Vpn(3 * 512 + 1)).unwrap().pfn, Pfn(9));
    }

    #[test]
    fn map_translate_unmap() {
        let (mut pt, mut cy, cost) = fixture();
        let vpn = Vpn(0x12345);
        pt.map(vpn, Pte::new(Pfn(7), PteFlags::WRITABLE), &mut cy, &cost)
            .unwrap();
        let got = pt.translate(vpn).unwrap();
        assert_eq!(got.pfn, Pfn(7));
        assert!(got.is_writable());
        assert_eq!(pt.mapped_pages(), 1);
        let old = pt.unmap(vpn).unwrap();
        assert_eq!(old.pfn, Pfn(7));
        assert_eq!(pt.translate(vpn), None);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn double_map_is_overlap() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map(Vpn(1), Pte::new(Pfn(1), PteFlags::empty()), &mut cy, &cost)
            .unwrap();
        assert_eq!(
            pt.map(Vpn(1), Pte::new(Pfn(2), PteFlags::empty()), &mut cy, &cost),
            Err(MemError::Overlap)
        );
    }

    #[test]
    fn unmap_missing_is_not_mapped() {
        let (mut pt, _, _) = fixture();
        assert_eq!(pt.unmap(Vpn(99)), Err(MemError::NotMapped));
    }

    #[test]
    fn kernel_half_rejected() {
        let (mut pt, mut cy, cost) = fixture();
        let kvpn = Vpn(1 << 36); // above the 47-bit user split (VPN space)
        assert_eq!(
            pt.map(kvpn, Pte::new(Pfn(0), PteFlags::empty()), &mut cy, &cost),
            Err(MemError::BadAddress)
        );
    }

    #[test]
    fn intermediate_nodes_reclaimed() {
        let (mut pt, mut cy, cost) = fixture();
        assert_eq!(pt.node_count(), 1);
        pt.map(
            Vpn(0x40000),
            Pte::new(Pfn(1), PteFlags::empty()),
            &mut cy,
            &cost,
        )
        .unwrap();
        assert_eq!(pt.node_count(), 4, "three intermediates + root");
        pt.unmap(Vpn(0x40000)).unwrap();
        assert_eq!(pt.node_count(), 1, "empty intermediates torn down");
        // Arena slots are recycled on the next map.
        pt.map(
            Vpn(0x80000),
            Pte::new(Pfn(2), PteFlags::empty()),
            &mut cy,
            &cost,
        )
        .unwrap();
        assert_eq!(pt.node_count(), 4);
    }

    #[test]
    fn siblings_share_intermediates() {
        let (mut pt, mut cy, cost) = fixture();
        for i in 0..512u64 {
            pt.map(Vpn(i), Pte::new(Pfn(i), PteFlags::empty()), &mut cy, &cost)
                .unwrap();
        }
        // 512 leaves fit in one leaf node: root + 2 intermediates + 1 leaf node.
        assert_eq!(pt.node_count(), 4);
        assert_eq!(pt.mapped_pages(), 512);
        pt.map(
            Vpn(512),
            Pte::new(Pfn(600), PteFlags::empty()),
            &mut cy,
            &cost,
        )
        .unwrap();
        assert_eq!(pt.node_count(), 5, "next leaf node allocated");
    }

    #[test]
    fn update_rewrites_in_place() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map(Vpn(3), Pte::new(Pfn(1), PteFlags::WRITABLE), &mut cy, &cost)
            .unwrap();
        let old = pt
            .update(Vpn(3), Pte::new(Pfn(2), PteFlags::empty()))
            .unwrap();
        assert_eq!(old.pfn, Pfn(1));
        assert_eq!(pt.translate(Vpn(3)).unwrap().pfn, Pfn(2));
        assert_eq!(
            pt.update(Vpn(4), Pte::new(Pfn(9), PteFlags::empty())),
            Err(MemError::NotMapped)
        );
    }

    #[test]
    fn for_each_leaf_visits_in_order() {
        let (mut pt, mut cy, cost) = fixture();
        let vpns = [Vpn(5), Vpn(0x200), Vpn(0x7f_ffff), Vpn(1)];
        for (i, v) in vpns.iter().enumerate() {
            pt.map(
                *v,
                Pte::new(Pfn(i as u64), PteFlags::empty()),
                &mut cy,
                &cost,
            )
            .unwrap();
        }
        let mut seen = Vec::new();
        pt.for_each_leaf(|v, _| seen.push(v.0));
        let mut expect: Vec<u64> = vpns.iter().map(|v| v.0).collect();
        expect.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    fn for_each_leaf_mut_rewrites_flags() {
        let (mut pt, mut cy, cost) = fixture();
        for i in 0..100u64 {
            pt.map(Vpn(i), Pte::new(Pfn(i), PteFlags::WRITABLE), &mut cy, &cost)
                .unwrap();
        }
        pt.for_each_leaf_mut(|_, pte| {
            pte.flags = pte.flags.minus(PteFlags::WRITABLE).union(PteFlags::COW);
        });
        let mut cows = 0;
        pt.for_each_leaf(|_, pte| {
            assert!(!pte.is_writable());
            assert!(pte.is_cow());
            cows += 1;
        });
        assert_eq!(cows, 100);
    }

    #[test]
    fn leaves_in_range_filters() {
        let (mut pt, mut cy, cost) = fixture();
        for i in 0..20u64 {
            pt.map(
                Vpn(i * 10),
                Pte::new(Pfn(i), PteFlags::empty()),
                &mut cy,
                &cost,
            )
            .unwrap();
        }
        let r = pt.leaves_in_range(Vpn(50), 51); // VPNs 50..101
        let vpns: Vec<u64> = r.iter().map(|(v, _)| v.0).collect();
        assert_eq!(vpns, vec![50, 60, 70, 80, 90, 100]);
    }

    #[test]
    fn node_alloc_charges_cycles() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map(Vpn(0), Pte::new(Pfn(0), PteFlags::empty()), &mut cy, &cost)
            .unwrap();
        assert_eq!(
            cy.total(),
            3 * cost.pt_node_alloc,
            "three intermediate nodes"
        );
    }

    #[test]
    fn attach_shares_subtree_and_charges_pointer_copy() {
        let (mut parent, mut cy, cost) = fixture();
        for i in 0..512u64 {
            parent
                .map(Vpn(i), Pte::new(Pfn(i), PteFlags::empty()), &mut cy, &cost)
                .unwrap();
        }
        let coords = parent.leaf_slot_coords();
        assert_eq!(coords.len(), 1);
        let (base, l1, idx, kind) = coords[0];
        assert_eq!(base, 0);
        assert_eq!(kind, SlotKind::Small);
        let arc = Arc::clone(parent.leaf_at(l1, idx));

        let mut child = PageTable::new();
        let mut ccy = Cycles::new();
        child.attach_leaf(base, arc, false, &mut ccy, &cost).unwrap();
        assert_eq!(
            ccy.total(),
            2 * cost.pt_node_alloc + cost.pt_subtree_share,
            "two intermediates plus one subtree pointer copy"
        );
        assert_eq!(child.mapped_pages(), 512);
        assert_eq!(child.node_count(), 4);
        assert!(parent.leaf_shared(Vpn(5)));
        assert!(child.leaf_shared(Vpn(5)));
        assert_eq!(child.translate(Vpn(7)).unwrap().pfn, Pfn(7));
    }

    #[test]
    fn privatize_makes_both_sides_exclusive_and_charges_deferred_copy() {
        let (mut parent, mut cy, cost) = fixture();
        for i in 0..8u64 {
            parent
                .map(Vpn(i), Pte::new(Pfn(i), PteFlags::empty()), &mut cy, &cost)
                .unwrap();
        }
        let (base, l1, idx, _) = parent.leaf_slot_coords()[0];
        let arc = Arc::clone(parent.leaf_at(l1, idx));
        let mut child = PageTable::new();
        child.attach_leaf(base, arc, false, &mut cy, &cost).unwrap();

        let mut ucy = Cycles::new();
        let present = child.privatize_leaf(Vpn(3), &mut ucy, &cost).unwrap();
        assert_eq!(present.len(), 8);
        assert_eq!(ucy.total(), cost.pt_node_alloc + 8 * cost.pte_copy);
        assert!(!child.leaf_shared(Vpn(3)), "child now private");
        assert!(!parent.leaf_shared(Vpn(3)), "parent exclusive again");
        // Mutating the private copy no longer affects the other side.
        child.update(Vpn(3), Pte::new(Pfn(99), PteFlags::empty())).unwrap();
        assert_eq!(parent.translate(Vpn(3)).unwrap().pfn, Pfn(3));
        assert_eq!(child.translate(Vpn(3)).unwrap().pfn, Pfn(99));
    }

    #[test]
    fn detach_tears_down_empty_intermediates() {
        let (mut pt, mut cy, cost) = fixture();
        for i in 0..4u64 {
            pt.map(Vpn(i), Pte::new(Pfn(i), PteFlags::empty()), &mut cy, &cost)
                .unwrap();
        }
        assert_eq!(pt.node_count(), 4);
        let arc = pt.detach_leaf(0).unwrap();
        assert_eq!(arc.live, 4);
        assert_eq!(pt.node_count(), 1, "intermediates reclaimed");
        assert_eq!(pt.mapped_pages(), 0);
        assert!(matches!(pt.detach_leaf(0), Err(MemError::NotMapped)));
    }

    #[test]
    fn take_leaves_drains_everything() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map(Vpn(1), Pte::new(Pfn(1), PteFlags::empty()), &mut cy, &cost)
            .unwrap();
        pt.map(
            Vpn(0x40000),
            Pte::new(Pfn(2), PteFlags::empty()),
            &mut cy,
            &cost,
        )
        .unwrap();
        let leaves = pt.take_leaves();
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0].0, 0);
        assert_eq!(leaves[1].0, 0x40000);
        assert_eq!(pt.node_count(), 1);
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "missed unshare")]
    fn mutating_shared_subtree_panics() {
        let (mut parent, mut cy, cost) = fixture();
        parent
            .map(Vpn(0), Pte::new(Pfn(0), PteFlags::empty()), &mut cy, &cost)
            .unwrap();
        let (base, l1, idx, _) = parent.leaf_slot_coords()[0];
        let arc = Arc::clone(parent.leaf_at(l1, idx));
        let mut child = PageTable::new();
        child.attach_leaf(base, arc, false, &mut cy, &cost).unwrap();
        let _ = parent.map(Vpn(1), Pte::new(Pfn(1), PteFlags::empty()), &mut cy, &cost);
    }

    // ---- huge leaves -----------------------------------------------------

    #[test]
    fn map_huge_translates_every_interior_page() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map_huge(Vpn(512), huge(1024), &mut cy, &cost).unwrap();
        assert_eq!(pt.mapped_pages(), 512);
        assert_eq!(pt.huge_mapped(), 1);
        // Block base and interior pages all translate, offset into the run.
        for off in [0u64, 1, 7, 511] {
            let p = pt.translate(Vpn(512 + off)).unwrap();
            assert_eq!(p.pfn, Pfn(1024 + off));
            assert!(p.is_huge());
            assert!(p.is_writable());
        }
        assert_eq!(pt.translate(Vpn(511)), None);
        assert_eq!(pt.translate(Vpn(1024)), None);
        assert_eq!(pt.huge_block(Vpn(700)).unwrap().pfn, Pfn(1024));
        // The whole block unmaps as one entry.
        let old = pt.unmap(Vpn(512)).unwrap();
        assert_eq!(old.pfn, Pfn(1024));
        assert!(old.is_huge());
        assert_eq!(pt.mapped_pages(), 0);
        assert_eq!(pt.huge_mapped(), 0);
        assert_eq!(pt.node_count(), 1, "intermediates reclaimed");
    }

    #[test]
    fn huge_and_small_overlap_is_rejected_both_ways() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map_huge(Vpn(0), huge(0), &mut cy, &cost).unwrap();
        assert_eq!(
            pt.map(Vpn(5), Pte::new(Pfn(9), PteFlags::empty()), &mut cy, &cost),
            Err(MemError::Overlap),
            "small page under a huge block"
        );
        assert_eq!(
            pt.map_huge(Vpn(0), huge(512), &mut cy, &cost),
            Err(MemError::Overlap)
        );
        pt.map(Vpn(512), Pte::new(Pfn(3), PteFlags::empty()), &mut cy, &cost)
            .unwrap();
        assert_eq!(
            pt.map_huge(Vpn(512), huge(1024), &mut cy, &cost),
            Err(MemError::Overlap),
            "huge block over an existing small page"
        );
    }

    #[test]
    #[should_panic(expected = "missed demote")]
    fn unmapping_interior_of_huge_block_panics() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map_huge(Vpn(0), huge(0), &mut cy, &cost).unwrap();
        let _ = pt.unmap(Vpn(3));
    }

    #[test]
    fn promote_collapses_a_full_contiguous_leaf() {
        let (mut pt, mut cy, cost) = fixture();
        let flags = PteFlags::WRITABLE | PteFlags::USER;
        for i in 0..512u64 {
            pt.map(Vpn(i), Pte::new(Pfn(1024 + i), flags), &mut cy, &cost)
                .unwrap();
        }
        let hp = pt.promotable(Vpn(0)).expect("block is promotable");
        assert_eq!(hp.pfn, Pfn(1024));
        assert!(hp.is_huge());
        let mut pcy = Cycles::new();
        pt.promote_block(Vpn(0), hp, &mut pcy, &cost).unwrap();
        assert_eq!(pcy.total(), cost.pt_promote);
        assert_eq!(pt.mapped_pages(), 512, "coverage unchanged");
        assert_eq!(pt.huge_mapped(), 1);
        let p = pt.translate(Vpn(17)).unwrap();
        assert_eq!(p.pfn, Pfn(1024 + 17));
        assert!(p.is_huge());
        assert_eq!(pt.node_count(), 3, "leaf node replaced by one inline entry");
    }

    #[test]
    fn promotable_rejects_gaps_mismatched_flags_and_unaligned_heads() {
        let (mut pt, mut cy, cost) = fixture();
        let flags = PteFlags::WRITABLE;
        // Head not 512-aligned.
        for i in 0..512u64 {
            pt.map(Vpn(i), Pte::new(Pfn(1 + i), flags), &mut cy, &cost)
                .unwrap();
        }
        assert!(pt.promotable(Vpn(0)).is_none(), "unaligned head");
        // Aligned but with a gap.
        for i in 0..511u64 {
            pt.map(Vpn(512 + i), Pte::new(Pfn(1024 + i), flags), &mut cy, &cost)
                .unwrap();
        }
        assert!(pt.promotable(Vpn(512)).is_none(), "hole in the block");
        pt.map(Vpn(1023), Pte::new(Pfn(1535), PteFlags::empty()), &mut cy, &cost)
            .unwrap();
        assert!(pt.promotable(Vpn(512)).is_none(), "mismatched flags");
        pt.unmap(Vpn(1023)).unwrap();
        pt.map(Vpn(1023), Pte::new(Pfn(1535), flags), &mut cy, &cost)
            .unwrap();
        assert!(pt.promotable(Vpn(512)).is_some(), "fixed block promotes");
        // Discontiguous frame kills it.
        pt.unmap(Vpn(515)).unwrap();
        pt.map(Vpn(515), Pte::new(Pfn(9000), flags), &mut cy, &cost)
            .unwrap();
        assert!(pt.promotable(Vpn(512)).is_none(), "discontiguous frames");
    }

    #[test]
    fn demote_restores_per_page_ptes_aliasing_the_run() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map_huge(Vpn(0), huge(2048), &mut cy, &cost).unwrap();
        let mut dcy = Cycles::new();
        pt.demote_block(Vpn(7), &mut dcy, &cost).unwrap();
        assert_eq!(dcy.total(), cost.pt_demote);
        assert_eq!(pt.huge_mapped(), 0);
        assert_eq!(pt.mapped_pages(), 512);
        for off in [0u64, 7, 511] {
            let p = pt.translate(Vpn(off)).unwrap();
            assert_eq!(p.pfn, Pfn(2048 + off));
            assert!(!p.is_huge(), "split back to small PTEs");
            assert!(p.is_writable());
        }
        // Pages are now individually unmappable.
        pt.unmap(Vpn(3)).unwrap();
        assert_eq!(pt.mapped_pages(), 511);
    }

    #[test]
    fn full_l1_of_huge_blocks_collapses_into_directory() {
        let (mut pt, mut cy, cost) = fixture();
        // 512 huge blocks = 1 GiB: fills the level-1 node completely.
        for b in 0..512u64 {
            pt.map_huge(Vpn(b * 512), huge(b * 512), &mut cy, &cost)
                .unwrap();
        }
        assert_eq!(pt.huge_mapped(), 512);
        assert_eq!(pt.mapped_pages(), 512 * 512);
        // Collapsed: root + L3 node + directory leaf = 3 "nodes"; the L1
        // table was freed.
        assert_eq!(pt.node_count(), 3, "level-1 table collapsed away");
        let coords = pt.leaf_slot_coords();
        assert_eq!(coords.len(), 1);
        assert_eq!(coords[0].3, SlotKind::Dir);
        // Directory members still translate per page.
        let p = pt.translate(Vpn(512 * 300 + 44)).unwrap();
        assert_eq!(p.pfn, Pfn(512 * 300 + 44));
        assert!(p.is_huge());
    }

    #[test]
    fn directory_attach_shares_a_gigabyte_in_one_pointer_copy() {
        let (mut parent, mut cy, cost) = fixture();
        for b in 0..512u64 {
            parent
                .map_huge(Vpn(b * 512), huge(b * 512), &mut cy, &cost)
                .unwrap();
        }
        let (base, n2, idx, kind) = parent.leaf_slot_coords()[0];
        assert_eq!(kind, SlotKind::Dir);
        let arc = Arc::clone(parent.leaf_at(n2, idx));
        let mut child = PageTable::new();
        let mut ccy = Cycles::new();
        child.attach_leaf(base, arc, true, &mut ccy, &cost).unwrap();
        assert_eq!(
            ccy.total(),
            cost.pt_node_alloc + cost.pt_subtree_share,
            "one intermediate plus one pointer copy for a whole GiB"
        );
        assert_eq!(child.mapped_pages(), 512 * 512);
        assert_eq!(child.huge_mapped(), 512);
        assert!(parent.leaf_shared(Vpn(1000)));
        assert!(child.leaf_shared(Vpn(1000)));
        assert_eq!(child.translate(Vpn(777)).unwrap().pfn, Pfn(777));
        // Privatizing gives the child its own directory.
        let present = child.privatize_leaf(Vpn(0), &mut ccy, &cost).unwrap();
        assert_eq!(present.len(), 512);
        assert!(present.iter().all(|p| p.is_huge()));
        assert!(!child.leaf_shared(Vpn(0)));
        assert!(!parent.leaf_shared(Vpn(0)));
    }

    #[test]
    fn small_map_into_directory_hole_degroups() {
        let (mut pt, mut cy, cost) = fixture();
        for b in 0..512u64 {
            pt.map_huge(Vpn(b * 512), huge(b * 512), &mut cy, &cost)
                .unwrap();
        }
        assert_eq!(pt.leaf_slot_coords()[0].3, SlotKind::Dir);
        // Open a block-aligned hole, then drop a small page into it.
        pt.unmap(Vpn(512 * 10)).unwrap();
        assert_eq!(pt.huge_mapped(), 511);
        pt.map(
            Vpn(512 * 10 + 3),
            Pte::new(Pfn(42), PteFlags::empty()),
            &mut cy,
            &cost,
        )
        .unwrap();
        // The directory degrouped: lone huge leaves plus one small leaf.
        let kinds: Vec<SlotKind> = pt.leaf_slot_coords().iter().map(|c| c.3).collect();
        assert_eq!(kinds.iter().filter(|k| **k == SlotKind::Huge).count(), 511);
        assert_eq!(kinds.iter().filter(|k| **k == SlotKind::Small).count(), 1);
        assert_eq!(pt.translate(Vpn(512 * 10 + 3)).unwrap().pfn, Pfn(42));
        assert_eq!(pt.translate(Vpn(512 * 11 + 5)).unwrap().pfn, Pfn(512 * 11 + 5));
        assert_eq!(pt.mapped_pages(), 511 * 512 + 1);
    }

    #[test]
    fn demote_of_directory_member_degroups_then_splits() {
        let (mut pt, mut cy, cost) = fixture();
        for b in 0..512u64 {
            pt.map_huge(Vpn(b * 512), huge(b * 512), &mut cy, &cost)
                .unwrap();
        }
        pt.demote_block(Vpn(512 * 5 + 9), &mut cy, &cost).unwrap();
        assert_eq!(pt.huge_mapped(), 511);
        assert_eq!(pt.mapped_pages(), 512 * 512);
        let p = pt.translate(Vpn(512 * 5 + 9)).unwrap();
        assert!(!p.is_huge());
        assert_eq!(p.pfn, Pfn(512 * 5 + 9));
        // Neighbouring blocks stayed huge.
        assert!(pt.translate(Vpn(512 * 6)).unwrap().is_huge());
    }

    #[test]
    #[should_panic(expected = "missed unshare")]
    fn unmapping_member_of_shared_directory_panics() {
        let (mut parent, mut cy, cost) = fixture();
        for b in 0..512u64 {
            parent
                .map_huge(Vpn(b * 512), huge(b * 512), &mut cy, &cost)
                .unwrap();
        }
        let (base, n2, idx, _) = parent.leaf_slot_coords()[0];
        let arc = Arc::clone(parent.leaf_at(n2, idx));
        let mut child = PageTable::new();
        child.attach_leaf(base, arc, true, &mut cy, &cost).unwrap();
        let _ = parent.unmap(Vpn(0));
    }

    #[test]
    fn whole_block_update_flips_huge_pte_in_place() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map_huge(Vpn(0), huge(1024), &mut cy, &cost).unwrap();
        let cow = Pte::new(
            Pfn(1024),
            PteFlags::USER | PteFlags::COW | PteFlags::HUGE,
        );
        let old = pt.update(Vpn(0), cow).unwrap();
        assert!(old.is_writable());
        let got = pt.translate(Vpn(100)).unwrap();
        assert!(got.is_cow() && got.is_huge() && !got.is_writable());
    }

    #[test]
    fn walkers_yield_huge_blocks_once_at_base() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map(Vpn(5), Pte::new(Pfn(5), PteFlags::empty()), &mut cy, &cost)
            .unwrap();
        pt.map_huge(Vpn(1024), huge(2048), &mut cy, &cost).unwrap();
        let mut seen = Vec::new();
        pt.for_each_leaf(|v, p| seen.push((v.0, p.is_huge())));
        assert_eq!(seen, vec![(5, false), (1024, true)]);
        let r = pt.leaves_in_range(Vpn(0), 4096);
        assert_eq!(r.len(), 2);
        // Mutable walk flips the whole block once.
        pt.for_each_leaf_mut(|_, p| {
            p.flags = p.flags.union(PteFlags::COW);
        });
        assert!(pt.huge_block(Vpn(1024)).unwrap().is_cow());
    }

    #[test]
    fn take_leaves_returns_lone_huges_and_directories() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map_huge(Vpn(0), huge(0), &mut cy, &cost).unwrap();
        for b in 512..1024u64 {
            pt.map_huge(Vpn(b * 512), huge(b * 512), &mut cy, &cost)
                .unwrap();
        }
        let taken = pt.take_leaves();
        assert_eq!(taken.len(), 2);
        assert!(matches!(taken[0].1, TakenLeaf::Huge(_)));
        match &taken[1].1 {
            TakenLeaf::Node(arc) => {
                assert_eq!(arc.live, 512);
                assert!(arc.present().iter().all(|p| p.is_huge()));
            }
            _ => panic!("directory expected"),
        }
        assert_eq!(pt.mapped_pages(), 0);
        assert_eq!(pt.huge_mapped(), 0);
    }

    #[test]
    fn injected_demote_failure_leaves_block_huge() {
        let (mut pt, mut cy, cost) = fixture();
        pt.map_huge(Vpn(0), huge(1024), &mut cy, &cost).unwrap();
        let plan = fpr_faults::FaultPlan::passive().fail_at(FaultSite::PtDemote, 0);
        let (r, _) = fpr_faults::with_plan(plan, || pt.demote_block(Vpn(3), &mut cy, &cost));
        assert_eq!(r, Err(MemError::OutOfMemory));
        assert_eq!(pt.huge_mapped(), 1, "block untouched on injected failure");
        assert!(pt.translate(Vpn(3)).unwrap().is_huge());
        // Retry succeeds.
        pt.demote_block(Vpn(3), &mut cy, &cost).unwrap();
        assert_eq!(pt.huge_mapped(), 0);
    }
}
