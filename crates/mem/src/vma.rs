//! Virtual memory areas (VMAs): the per-mapping metadata fork must clone.
//!
//! The paper's complexity argument rests on how much *policy* has accreted
//! onto mappings: sharing mode, fork opt-outs (`MADV_DONTFORK`), fork
//! zeroing (`MADV_WIPEONFORK`), growth direction, backing objects. Each is
//! modelled here so the fork implementation has to handle every case, just
//! as a real kernel does.

use crate::addr::Vpn;

/// Access protection of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prot {
    /// Reads permitted.
    pub read: bool,
    /// Writes permitted.
    pub write: bool,
    /// Instruction fetch permitted.
    pub exec: bool,
}

impl Prot {
    /// Read-only.
    pub const R: Prot = Prot {
        read: true,
        write: false,
        exec: false,
    };
    /// Read-write.
    pub const RW: Prot = Prot {
        read: true,
        write: true,
        exec: false,
    };
    /// Read-execute.
    pub const RX: Prot = Prot {
        read: true,
        write: false,
        exec: true,
    };
    /// No access (guard page).
    pub const NONE: Prot = Prot {
        read: false,
        write: false,
        exec: false,
    };
}

/// Sharing mode of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Share {
    /// `MAP_PRIVATE`: copy-on-write across fork.
    Private,
    /// `MAP_SHARED`: parent and child alias the same frames.
    Shared,
}

/// Fork-time policy accreted onto mappings over the years.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ForkPolicy {
    /// `MADV_DONTFORK`: the child does not receive this mapping at all.
    pub dont_fork: bool,
    /// `MADV_WIPEONFORK`: the child receives the range zero-filled.
    pub wipe_on_fork: bool,
}

/// What backs a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backing {
    /// Anonymous memory, demand-zeroed.
    Anon,
    /// A file object (image segments, mapped files). The content stamp of
    /// page `i` of the mapping is derived from `(file_id, page_offset + i)`.
    File {
        /// Identifier of the backing file object.
        file_id: u64,
        /// Offset into the file, in pages.
        page_offset: u64,
    },
}

/// The role a mapping plays in the process image (for layout & reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmaKind {
    /// Program text.
    Text,
    /// Initialised data.
    Data,
    /// Heap (`brk` arena).
    Heap,
    /// A thread stack.
    Stack,
    /// `mmap`ed region.
    Mmap,
    /// Guard region (no access).
    Guard,
}

/// A contiguous virtual mapping with uniform policy.
#[derive(Debug, Clone, PartialEq)]
pub struct VmArea {
    /// First page of the mapping.
    pub start: Vpn,
    /// Length in pages (non-zero).
    pub pages: u64,
    /// Access protection.
    pub prot: Prot,
    /// Sharing mode.
    pub share: Share,
    /// Fork-time policy.
    pub fork_policy: ForkPolicy,
    /// Backing object.
    pub backing: Backing,
    /// Role of the mapping.
    pub kind: VmaKind,
}

impl VmArea {
    /// Creates an anonymous private mapping.
    pub fn anon(start: Vpn, pages: u64, prot: Prot, kind: VmaKind) -> VmArea {
        VmArea {
            start,
            pages,
            prot,
            share: Share::Private,
            fork_policy: ForkPolicy::default(),
            backing: Backing::Anon,
            kind,
        }
    }

    /// First page past the end of the mapping.
    pub fn end(&self) -> Vpn {
        Vpn(self.start.0 + self.pages)
    }

    /// Returns true if `vpn` lies inside the mapping.
    pub fn contains(&self, vpn: Vpn) -> bool {
        vpn.0 >= self.start.0 && vpn.0 < self.end().0
    }

    /// Returns true if this mapping overlaps `[start, start+pages)`.
    pub fn overlaps(&self, start: Vpn, pages: u64) -> bool {
        self.start.0 < start.0 + pages && start.0 < self.end().0
    }

    /// The logical content stamp a fresh (never-written) page at `vpn`
    /// would hold: zero for anonymous memory, a file-derived stamp for
    /// file mappings.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` is outside the mapping.
    pub fn initial_content(&self, vpn: Vpn) -> u64 {
        assert!(self.contains(vpn), "vpn outside VMA");
        match self.backing {
            Backing::Anon => 0,
            Backing::File {
                file_id,
                page_offset,
            } => file_stamp(file_id, page_offset + (vpn.0 - self.start.0)),
        }
    }
}

/// Deterministic content stamp for page `page` of file `file_id`.
///
/// A 64-bit mix (splitmix64 finaliser) keeps distinct (file, page) pairs
/// from colliding in tests.
pub fn file_stamp(file_id: u64, page: u64) -> u64 {
    let mut z = file_id
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(page);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let v = VmArea::anon(Vpn(10), 5, Prot::RW, VmaKind::Heap);
        assert_eq!(v.end(), Vpn(15));
        assert!(v.contains(Vpn(10)));
        assert!(v.contains(Vpn(14)));
        assert!(!v.contains(Vpn(15)));
        assert!(v.overlaps(Vpn(14), 1));
        assert!(v.overlaps(Vpn(0), 11));
        assert!(!v.overlaps(Vpn(15), 5));
        assert!(!v.overlaps(Vpn(5), 5));
    }

    #[test]
    fn anon_initial_content_is_zero() {
        let v = VmArea::anon(Vpn(0), 4, Prot::RW, VmaKind::Mmap);
        assert_eq!(v.initial_content(Vpn(2)), 0);
    }

    #[test]
    fn file_initial_content_tracks_offset() {
        let mut v = VmArea::anon(Vpn(100), 4, Prot::R, VmaKind::Text);
        v.backing = Backing::File {
            file_id: 7,
            page_offset: 2,
        };
        assert_eq!(v.initial_content(Vpn(100)), file_stamp(7, 2));
        assert_eq!(v.initial_content(Vpn(103)), file_stamp(7, 5));
        assert_ne!(v.initial_content(Vpn(100)), v.initial_content(Vpn(101)));
    }

    #[test]
    #[should_panic(expected = "outside VMA")]
    fn initial_content_out_of_range_panics() {
        let v = VmArea::anon(Vpn(0), 1, Prot::R, VmaKind::Text);
        v.initial_content(Vpn(1));
    }

    #[test]
    fn file_stamp_distinct() {
        let mut seen = std::collections::HashSet::new();
        for f in 0..20u64 {
            for p in 0..20u64 {
                assert!(seen.insert(file_stamp(f, p)), "collision at ({f},{p})");
            }
        }
    }
}
