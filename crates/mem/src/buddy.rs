//! Buddy allocator for contiguous physical frame runs.
//!
//! Page-table nodes and kernel metadata want physically contiguous memory;
//! the buddy system provides power-of-two runs with O(log n) split/coalesce
//! and is the classic design used by Linux's zone allocator.

use crate::addr::Pfn;
use crate::error::{MemError, MemResult};
use std::collections::BTreeSet;

/// Maximum order supported (2^MAX_ORDER frames per block).
pub const MAX_ORDER: usize = 16;

/// A power-of-two buddy allocator over frames `base..base + total`.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    base: u64,
    total: u64,
    /// Free blocks per order, keyed by block base frame.
    free_lists: Vec<BTreeSet<u64>>,
    /// Allocated block bases → order, to validate frees.
    allocated: std::collections::HashMap<u64, usize>,
    free_frames: u64,
}

impl BuddyAllocator {
    /// Creates an allocator over `total` frames starting at `base`.
    ///
    /// `total` need not be a power of two; the region is tiled greedily
    /// with maximal aligned power-of-two blocks.
    pub fn new(base: Pfn, total: u64) -> Self {
        let mut a = BuddyAllocator {
            base: base.0,
            total,
            free_lists: vec![BTreeSet::new(); MAX_ORDER + 1],
            allocated: std::collections::HashMap::new(),
            free_frames: total,
        };
        let mut start = base.0;
        let end = base.0 + total;
        while start < end {
            // Largest order that is both aligned at `start` and fits.
            let align_order = if start == 0 {
                MAX_ORDER
            } else {
                start.trailing_zeros() as usize
            };
            let mut order = align_order.min(MAX_ORDER);
            while (1u64 << order) > end - start {
                order -= 1;
            }
            a.free_lists[order].insert(start);
            start += 1u64 << order;
        }
        a
    }

    /// Allocates a contiguous, naturally aligned run of `2^order` frames.
    pub fn alloc(&mut self, order: usize) -> MemResult<Pfn> {
        if order > MAX_ORDER {
            return Err(MemError::Fragmented);
        }
        // Find the smallest order with a free block.
        let mut found = None;
        for o in order..=MAX_ORDER {
            if let Some(&blk) = self.free_lists[o].iter().next() {
                found = Some((o, blk));
                break;
            }
        }
        let (mut o, blk) = match found {
            Some(x) => x,
            None => {
                return Err(if self.free_frames >= (1u64 << order) {
                    MemError::Fragmented
                } else {
                    MemError::OutOfMemory
                })
            }
        };
        self.free_lists[o].remove(&blk);
        // Split down to the requested order, returning the upper halves.
        while o > order {
            o -= 1;
            let upper = blk + (1u64 << o);
            self.free_lists[o].insert(upper);
        }
        self.allocated.insert(blk, order);
        self.free_frames -= 1u64 << order;
        Ok(Pfn(blk))
    }

    /// Allocates a `2^order` run like [`BuddyAllocator::alloc`], but
    /// records each frame of the run as its own order-0 allocation, so the
    /// caller may free frames one at a time (coalescing still reassembles
    /// the block once all of them come back). This is the per-CPU
    /// frame-cache refill primitive: one global-allocator acquisition
    /// yields a batch of independently-freeable frames.
    pub fn alloc_run(&mut self, order: usize) -> MemResult<Vec<Pfn>> {
        let base = self.alloc(order)?;
        self.allocated.remove(&base.0);
        let n = 1u64 << order;
        let mut run = Vec::with_capacity(n as usize);
        for i in 0..n {
            self.allocated.insert(base.0 + i, 0);
            run.push(Pfn(base.0 + i));
        }
        Ok(run)
    }

    /// Frees a block previously returned by [`BuddyAllocator::alloc`],
    /// coalescing with its buddy as far as possible.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is not the base of a live allocation.
    pub fn free(&mut self, pfn: Pfn) {
        let mut blk = pfn.0;
        let mut order = match self.allocated.remove(&blk) {
            Some(o) => o,
            None => panic!("buddy free of unallocated block {}", blk),
        };
        self.free_frames += 1u64 << order;
        // Coalesce upward while the buddy is free.
        while order < MAX_ORDER {
            let buddy = blk ^ (1u64 << order);
            if buddy < self.base || buddy + (1u64 << order) > self.base + self.total {
                break;
            }
            if !self.free_lists[order].remove(&buddy) {
                break;
            }
            blk = blk.min(buddy);
            order += 1;
        }
        self.free_lists[order].insert(blk);
    }

    /// Returns the number of free frames.
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Returns the total number of managed frames.
    pub fn total_frames(&self) -> u64 {
        self.total
    }

    /// Returns the largest order currently allocatable without splitting
    /// failure, or `None` if empty.
    pub fn largest_free_order(&self) -> Option<usize> {
        (0..=MAX_ORDER)
            .rev()
            .find(|&o| !self.free_lists[o].is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_splits_and_free_coalesces() {
        let mut b = BuddyAllocator::new(Pfn(0), 64);
        assert_eq!(b.free_frames(), 64);
        let x = b.alloc(0).unwrap();
        assert_eq!(b.free_frames(), 63);
        let y = b.alloc(3).unwrap();
        assert_eq!(b.free_frames(), 55);
        assert_eq!(y.0 % 8, 0, "order-3 block naturally aligned");
        b.free(x);
        b.free(y);
        assert_eq!(b.free_frames(), 64);
        // Everything must have coalesced back into one order-6 block.
        assert_eq!(b.largest_free_order(), Some(6));
    }

    #[test]
    fn distinct_blocks_never_overlap() {
        let mut b = BuddyAllocator::new(Pfn(0), 256);
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for order in [0usize, 1, 2, 3, 0, 2, 4, 1] {
            let p = b.alloc(order).unwrap();
            runs.push((p.0, 1u64 << order));
        }
        for i in 0..runs.len() {
            for j in i + 1..runs.len() {
                let (a, la) = runs[i];
                let (c, lc) = runs[j];
                assert!(
                    a + la <= c || c + lc <= a,
                    "blocks overlap: {:?} {:?}",
                    runs[i],
                    runs[j]
                );
            }
        }
    }

    #[test]
    fn non_power_of_two_total_is_fully_usable() {
        let mut b = BuddyAllocator::new(Pfn(0), 100);
        let mut n = 0;
        while b.alloc(0).is_ok() {
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn alloc_run_frames_free_individually_and_recoalesce() {
        let mut b = BuddyAllocator::new(Pfn(0), 64);
        let run = b.alloc_run(3).unwrap();
        assert_eq!(run.len(), 8);
        assert_eq!(b.free_frames(), 56);
        // Frames are contiguous and each one frees on its own.
        for w in run.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1);
        }
        for pfn in &run {
            b.free(*pfn);
        }
        assert_eq!(b.free_frames(), 64);
        assert_eq!(b.largest_free_order(), Some(6), "run coalesced back");
    }

    #[test]
    fn fragmentation_vs_oom() {
        let mut b = BuddyAllocator::new(Pfn(0), 4);
        let a0 = b.alloc(0).unwrap();
        let _a1 = b.alloc(0).unwrap();
        let _a2 = b.alloc(0).unwrap();
        let _a3 = b.alloc(0).unwrap();
        assert_eq!(b.alloc(0), Err(MemError::OutOfMemory));
        b.free(a0);
        // One frame free but a pair is requested: fragmentation.
        assert_eq!(b.alloc(1), Err(MemError::OutOfMemory));
    }

    #[test]
    fn fragmented_error_when_frames_exist_but_not_contiguous() {
        let mut b = BuddyAllocator::new(Pfn(0), 8);
        let blocks: Vec<_> = (0..8).map(|_| b.alloc(0).unwrap()).collect();
        // Free alternating frames: 4 free frames, none adjacent.
        for blk in blocks.iter().step_by(2) {
            b.free(*blk);
        }
        assert_eq!(b.free_frames(), 4);
        assert_eq!(b.alloc(2), Err(MemError::Fragmented));
        assert!(b.alloc(0).is_ok());
    }

    #[test]
    #[should_panic(expected = "unallocated block")]
    fn free_unallocated_panics() {
        let mut b = BuddyAllocator::new(Pfn(0), 16);
        b.free(Pfn(3));
    }

    #[test]
    fn nonzero_base_region() {
        let mut b = BuddyAllocator::new(Pfn(1000), 32);
        let p = b.alloc(2).unwrap();
        assert!(p.0 >= 1000 && p.0 + 4 <= 1032);
        b.free(p);
        assert_eq!(b.free_frames(), 32);
    }
}
