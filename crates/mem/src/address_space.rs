//! Per-process address spaces: a VMA list over a four-level page table.
//!
//! This module carries the heart of the reproduction: [`AddressSpace::fork_from`]
//! performs the work the paper identifies as fork's fundamental cost — walking
//! the parent's VMA list, duplicating every mapping record, copying or
//! COW-marking every present PTE, and write-protecting the parent (which
//! requires a TLB shootdown on every CPU running it). Everything is O(mapped
//! state), not O(1), which is why fork latency in Figure 1 grows with the
//! parent while `posix_spawn` stays flat.

use crate::addr::{Pfn, VirtAddr, Vpn, HUGE_PAGES, PT_ENTRIES};
use crate::cost::{CostModel, Cycles};
use crate::error::{MemError, MemResult};
use crate::page_table::{SlotKind, TakenLeaf};
use crate::phys::PhysMemory;
use crate::pte::{Pte, PteFlags};
use crate::tlb::TlbModel;
use crate::vma::{Backing, Share, VmArea, VmaKind};
use fpr_faults::FaultSite;
use fpr_trace::metrics;
use fpr_trace::sink;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How fork duplicates private pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForkMode {
    /// Copy-on-write: share frames read-only, copy on first write.
    Cow,
    /// Eager: copy every present private page at fork time (pre-COW Unix,
    /// and the ablation baseline for E2).
    Eager,
    /// On-demand page-table copy (μFork / On-demand-fork, EuroSys'21):
    /// fork shares whole leaf page-table subtrees refcounted and
    /// effectively read-only; the first write, unmap, or mprotect touching
    /// a shared subtree privatizes just that 512-entry node. Fork-time
    /// work becomes O(VMAs + subtrees), not O(pages).
    OnDemand,
}

/// Counters describing the work an address space has performed.
#[derive(Debug, Default, Clone)]
pub struct AsStats {
    /// Demand-zero / file-fill faults served.
    pub demand_faults: u64,
    /// COW breaks that copied a frame.
    pub cow_copies: u64,
    /// COW breaks resolved by re-using a sole-owner frame.
    pub cow_reuses: u64,
    /// PTEs copied into children across all forks of this space.
    pub ptes_copied: u64,
    /// VMA records cloned across all forks.
    pub vmas_cloned: u64,
    /// Pages eagerly copied by `ForkMode::Eager` forks.
    pub pages_eager_copied: u64,
    /// Leaf page-table subtrees shared with children by on-demand forks.
    pub pt_subtrees_shared: u64,
    /// Shared subtrees privatized on first touch (the deferred copies).
    pub pt_unshares: u64,
    /// PTEs copied during those deferred subtree privatizations.
    pub ptes_unshare_copied: u64,
}

/// What a range-release pass (munmap/discard) removed, for TLB-flush
/// accounting: total pages freed, and the translation entries behind them
/// (one per small page, one per 2 MiB huge leaf).
#[derive(Debug, Default, Clone, Copy)]
struct ReleaseTally {
    pages: u64,
    small_entries: u64,
    huge_entries: u64,
}

/// A process address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    /// VMAs keyed by start VPN.
    pub(crate) vmas: BTreeMap<u64, VmArea>,
    pub(crate) pt: crate::page_table::PageTable,
    /// Installed PTEs that are swap entries rather than frames. The page
    /// table counts both kinds as "mapped"; residency subtracts this.
    pub(crate) swapped: u64,
    /// Transparent huge pages: when set, private anonymous blocks are
    /// promoted to 2 MiB huge leaves at populate time and opportunistically
    /// after faults. Inherited by fork children. Off by default — the
    /// THP-off world must stay byte-identical to the pre-THP simulator.
    pub(crate) thp: bool,
    /// Work counters.
    pub stats: AsStats,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace {
            vmas: BTreeMap::new(),
            pt: crate::page_table::PageTable::new(),
            swapped: 0,
            thp: false,
            stats: AsStats::default(),
        }
    }

    /// Enables or disables transparent huge pages for this space. Existing
    /// mappings are untouched; disabling stops future promotions only.
    pub fn set_thp(&mut self, enabled: bool) {
        self.thp = enabled;
    }

    /// Whether transparent huge pages are enabled for this space.
    pub fn thp_enabled(&self) -> bool {
        self.thp
    }

    /// Number of 2 MiB huge leaf mappings currently installed
    /// (`AnonHugePages` is this times 512 small pages).
    pub fn huge_pages(&self) -> u64 {
        self.pt.huge_mapped()
    }

    /// Returns the VMA covering `vpn`, if any.
    pub fn vma_at(&self, vpn: Vpn) -> Option<&VmArea> {
        self.vmas
            .range(..=vpn.0)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(vpn))
    }

    /// Iterates over all VMAs in address order.
    pub fn vmas(&self) -> impl Iterator<Item = &VmArea> {
        self.vmas.values()
    }

    /// Number of VMAs.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Total mapped (resident) pages. Swap entries occupy page-table
    /// slots but hold no frame, so they are excluded.
    pub fn resident_pages(&self) -> u64 {
        self.pt.mapped_pages() - self.swapped
    }

    /// Pages of this space currently evicted to the swap device.
    pub fn swapped_pages(&self) -> u64 {
        self.swapped
    }

    /// Total pages covered by VMAs (virtual size).
    pub fn virtual_pages(&self) -> u64 {
        self.vmas.values().map(|v| v.pages).sum()
    }

    /// Page-table nodes in use (what fork must allocate for the child).
    pub fn pt_nodes(&self) -> usize {
        self.pt.node_count()
    }

    /// Commit charge of this space: pages whose frames the kernel may have
    /// to materialise (private-writable or anonymous mappings).
    pub fn commit_pages(&self) -> u64 {
        self.vmas.values().map(commit_charge).sum()
    }

    /// Installs a new mapping.
    ///
    /// Shared anonymous mappings are populated eagerly so that frames are
    /// shared with children forked later (the simulator has no global page
    /// cache; see DESIGN.md).
    pub fn mmap(
        &mut self,
        area: VmArea,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<()> {
        if area.pages == 0 {
            return Err(MemError::BadAlignment);
        }
        if !area.start.is_user() || !Vpn(area.start.0 + area.pages - 1).is_user() {
            return Err(MemError::BadAddress);
        }
        if self.overlaps(area.start, area.pages) {
            return Err(MemError::Overlap);
        }
        let eager_shared = area.share == Share::Shared;
        let start = area.start;
        let pages = area.pages;
        self.vmas.insert(area.start.0, area);
        if eager_shared {
            if let Err(e) = self.populate(start, pages, phys, cycles) {
                // Roll back the partial population and the VMA record so a
                // failed mmap leaves the space untouched.
                for (vpn, pte) in self.pt.leaves_in_range(start, pages) {
                    self.pt.unmap(vpn).expect("leaf just enumerated");
                    if pte.is_huge() {
                        phys.dec_ref_run(pte.pfn, HUGE_PAGES, cycles)
                            .expect("run just installed");
                    } else {
                        phys.dec_ref(pte.pfn, cycles).expect("frame just installed");
                    }
                }
                self.vmas.remove(&start.0);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Returns true if `[start, start+pages)` overlaps an existing VMA.
    pub fn overlaps(&self, start: Vpn, pages: u64) -> bool {
        self.vmas.values().any(|v| v.overlaps(start, pages))
    }

    /// Finds a free aligned run of `pages` pages at or above `hint`.
    pub fn find_free_range(&self, pages: u64, hint: Vpn) -> MemResult<Vpn> {
        let mut candidate = hint.0;
        loop {
            if !Vpn(candidate + pages.saturating_sub(1)).is_user() {
                return Err(MemError::Fragmented);
            }
            // Find the first VMA that overlaps the candidate run.
            let conflict = self
                .vmas
                .values()
                .filter(|v| v.overlaps(Vpn(candidate), pages))
                .map(|v| v.end().0)
                .max();
            match conflict {
                None => return Ok(Vpn(candidate)),
                Some(end) => candidate = end,
            }
        }
    }

    /// Removes mappings in `[start, start+pages)`, splitting VMAs that
    /// straddle the boundary and releasing frames.
    pub fn munmap(
        &mut self,
        start: Vpn,
        pages: u64,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
        tlb: &mut TlbModel,
        cpus_running: u32,
    ) -> MemResult<u64> {
        if pages == 0 {
            return Err(MemError::BadAlignment);
        }
        // A huge block cut by a range boundary must be split back into
        // small PTEs before any of it can be unmapped.
        self.demote_straddling(start, phys, cycles)?;
        self.demote_straddling(Vpn(start.0 + pages), phys, cycles)?;
        self.split_at(start);
        self.split_at(Vpn(start.0 + pages));
        let doomed: Vec<u64> = self
            .vmas
            .range(start.0..start.0 + pages)
            .map(|(k, _)| *k)
            .collect();
        let mut tally = self.prepare_release_range(start, pages, phys, cycles)?;
        for k in doomed {
            let v = self.vmas.remove(&k).expect("key just enumerated");
            for (vpn, pte) in self.pt.leaves_in_range(v.start, v.pages) {
                self.pt.unmap(vpn).expect("leaf just enumerated");
                if pte.is_swap() {
                    // A swap entry holds a device slot, not a frame, and
                    // was never in any TLB (non-present).
                    phys.swap_mut().dec_ref(pte.swap_slot())?;
                    self.swapped -= 1;
                } else if pte.is_huge() {
                    phys.dec_ref_run(pte.pfn, HUGE_PAGES, cycles)?;
                    tally.pages += HUGE_PAGES;
                    tally.huge_entries += 1;
                } else {
                    phys.dec_ref(pte.pfn, cycles)?;
                    tally.pages += 1;
                    tally.small_entries += 1;
                }
            }
        }
        let cost = phys.cost().clone();
        self.release_shootdown(&tally, tlb, cpus_running, cycles, &cost);
        Ok(tally.pages)
    }

    /// If `boundary` cuts through the interior of a huge block, demotes
    /// that block so range operations only ever see whole blocks inside
    /// their range. No-op when the boundary is block-aligned or no huge
    /// mapping covers it.
    fn demote_straddling(
        &mut self,
        boundary: Vpn,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<()> {
        if boundary.is_huge_aligned() || self.pt.huge_block(boundary).is_none() {
            return Ok(());
        }
        // The block may live in a huge directory another space still
        // shares; the split below mutates it, so privatize first.
        self.unshare_subtree(boundary, phys, cycles)?;
        let cost = phys.cost().clone();
        self.pt.demote_block(boundary, cycles, &cost)?;
        phys.note_thp_demoted();
        Ok(())
    }

    /// Flushes stale translations after `tally` mappings were removed.
    /// THP-off spaces keep the legacy single-round shootdown; THP-on
    /// spaces use the entry-granular flush, where each huge leaf costs
    /// one invalidation instead of 512.
    fn release_shootdown(
        &self,
        tally: &ReleaseTally,
        tlb: &mut TlbModel,
        cpus_running: u32,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) {
        if self.thp {
            tlb.shootdown_entries(
                cpus_running,
                tally.small_entries,
                tally.huge_entries,
                cycles,
                cost,
            );
        } else if tally.pages > 0 {
            tlb.shootdown(cpus_running, cycles, cost);
        }
    }

    /// Prepares `[start, start+pages)` for translation removal: leaf
    /// subtrees (and huge directories) still shared with another space are
    /// either detached (when every present PTE falls inside the range —
    /// the other owner keeps the frames, so dropping our reference is one
    /// pointer operation) or privatized first (when the node straddles the
    /// range boundary). Returns the pages and TLB entries released by
    /// whole-node detaches.
    fn prepare_release_range(
        &mut self,
        start: Vpn,
        pages: u64,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<ReleaseTally> {
        let mut tally = ReleaseTally::default();
        loop {
            // Detach/privatize invalidate arena coordinates, so rescan
            // after each mutation; shared nodes are rare and the scan is
            // O(nodes).
            let mut target: Option<(u64, bool, SlotKind)> = None;
            for (base, l1, idx, kind) in self.pt.leaf_slot_coords() {
                // Lone huge leaves are never shared — fork shares their
                // frames, not the entry — so only Arc-backed slots matter.
                let stride = match kind {
                    SlotKind::Huge => continue,
                    SlotKind::Dir => HUGE_PAGES,
                    SlotKind::Small => 1,
                };
                let arc = self.pt.leaf_at(l1, idx);
                if Arc::strong_count(arc) == 1 {
                    continue;
                }
                let mut any_in = false;
                let mut all_in = true;
                for (j, slot) in arc.ptes.iter().enumerate() {
                    if slot.is_some() {
                        let lo = base + j as u64 * stride;
                        // A huge-directory member counts as inside only
                        // when its whole 2 MiB block is inside.
                        if lo >= start.0 && lo + stride <= start.0 + pages {
                            any_in = true;
                        } else {
                            all_in = false;
                            if lo + stride > start.0 && lo < start.0 + pages {
                                any_in = true;
                            }
                        }
                    }
                }
                if any_in {
                    target = Some((base, all_in, kind));
                    break;
                }
            }
            match target {
                None => return Ok(tally),
                Some((base, true, kind)) => {
                    let arc = self.pt.detach_leaf(base).expect("node just enumerated");
                    if matches!(kind, SlotKind::Dir) {
                        // Huge pages never swap, so every member is a
                        // resident 512-page block.
                        tally.pages += arc.live as u64 * HUGE_PAGES;
                        tally.huge_entries += arc.live as u64;
                    } else {
                        // Slot references follow leaf-node identity, so the
                        // surviving owner keeps the swap slots too.
                        let swap_in_node =
                            arc.ptes.iter().flatten().filter(|p| p.is_swap()).count() as u64;
                        self.swapped -= swap_in_node;
                        tally.pages += arc.live as u64 - swap_in_node;
                        tally.small_entries += arc.live as u64 - swap_in_node;
                    }
                    // Still referenced by the other space, which releases
                    // the frames when it drops its copy; our drop is free.
                }
                Some((base, false, _)) => {
                    self.unshare_subtree(Vpn(base), phys, cycles)?;
                }
            }
        }
    }

    /// Splits the VMA containing `at` so that `at` becomes a VMA boundary.
    /// No-op if `at` is already a boundary or unmapped.
    pub fn split_at(&mut self, at: Vpn) {
        let key = match self
            .vmas
            .range(..at.0)
            .next_back()
            .filter(|(_, v)| v.contains(at))
            .map(|(k, _)| *k)
        {
            Some(k) => k,
            None => return,
        };
        let mut low = self.vmas.remove(&key).expect("key just found");
        let mut high = low.clone();
        let split_pages = at.0 - low.start.0;
        low.pages = split_pages;
        high.start = at;
        high.pages -= split_pages;
        if let Backing::File {
            file_id,
            page_offset,
        } = high.backing
        {
            high.backing = Backing::File {
                file_id,
                page_offset: page_offset + split_pages,
            };
        }
        self.vmas.insert(low.start.0, low);
        self.vmas.insert(high.start.0, high);
    }

    /// Changes protection on `[start, start+pages)`, splitting VMAs as
    /// needed and downgrading PTE permissions (an upgrade takes effect
    /// lazily through faults, as on real hardware).
    #[allow(clippy::too_many_arguments)]
    pub fn mprotect(
        &mut self,
        start: Vpn,
        pages: u64,
        prot: crate::vma::Prot,
        cycles: &mut Cycles,
        phys: &mut PhysMemory,
        tlb: &mut TlbModel,
        cpus_running: u32,
    ) -> MemResult<()> {
        // The whole range must be mapped.
        let mut covered = 0;
        for v in self.vmas.values().filter(|v| v.overlaps(start, pages)) {
            covered += v
                .pages
                .min(start.0 + pages - v.start.0)
                .min(v.end().0 - start.0)
                .min(pages);
        }
        if covered < pages {
            return Err(MemError::NotMapped);
        }
        // A protection boundary inside a huge block forces a split: the
        // block's single PTE cannot carry two protections.
        self.demote_straddling(start, phys, cycles)?;
        self.demote_straddling(Vpn(start.0 + pages), phys, cycles)?;
        self.split_at(start);
        self.split_at(Vpn(start.0 + pages));
        let keys: Vec<u64> = self
            .vmas
            .range(start.0..start.0 + pages)
            .map(|(k, _)| *k)
            .collect();
        let mut tally = ReleaseTally::default();
        for k in keys {
            let v = self.vmas.get_mut(&k).expect("key just enumerated");
            let removing_write = v.prot.write && !prot.write;
            v.prot = prot;
            if removing_write {
                let vs = v.start;
                let vp = v.pages;
                for (vpn, pte) in self.pt.leaves_in_range(vs, vp) {
                    if pte.is_huge() {
                        tally.pages += HUGE_PAGES;
                        tally.huge_entries += 1;
                    } else {
                        tally.pages += 1;
                        tally.small_entries += 1;
                    }
                    let mut new = pte;
                    new.flags = new.flags.minus(PteFlags::WRITABLE);
                    if new != pte {
                        // A shared subtree must be privatized before its
                        // PTEs change: the child keeps its permissions.
                        self.unshare_subtree(vpn, phys, cycles)?;
                        self.pt.update(vpn, new).expect("leaf just enumerated");
                    }
                }
            }
        }
        let cost = phys.cost().clone();
        self.release_shootdown(&tally, tlb, cpus_running, cycles, &cost);
        Ok(())
    }

    /// Discards the resident pages of `[start, start+pages)` without
    /// unmapping the VMAs (`MADV_DONTNEED`): frames are released and the
    /// next access demand-fills from the backing object.
    pub fn discard(
        &mut self,
        start: Vpn,
        pages: u64,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
        tlb: &mut TlbModel,
        cpus_running: u32,
    ) -> MemResult<u64> {
        if pages == 0 {
            return Err(MemError::BadAlignment);
        }
        // Every page of the range must be covered by some VMA.
        for i in 0..pages {
            if self.vma_at(start.add(i)).is_none() {
                return Err(MemError::NotMapped);
            }
        }
        self.demote_straddling(start, phys, cycles)?;
        self.demote_straddling(Vpn(start.0 + pages), phys, cycles)?;
        let mut tally = self.prepare_release_range(start, pages, phys, cycles)?;
        for (vpn, pte) in self.pt.leaves_in_range(start, pages) {
            self.pt.unmap(vpn).expect("leaf just enumerated");
            if pte.is_swap() {
                phys.swap_mut().dec_ref(pte.swap_slot())?;
                self.swapped -= 1;
            } else if pte.is_huge() {
                phys.dec_ref_run(pte.pfn, HUGE_PAGES, cycles)?;
                tally.pages += HUGE_PAGES;
                tally.huge_entries += 1;
            } else {
                phys.dec_ref(pte.pfn, cycles)?;
                tally.pages += 1;
                tally.small_entries += 1;
            }
        }
        let cost = phys.cost().clone();
        self.release_shootdown(&tally, tlb, cpus_running, cycles, &cost);
        Ok(tally.pages)
    }

    /// Relocates the VMA starting exactly at `old_start` to `new_start`,
    /// carrying its resident pages along: every present PTE is remapped at
    /// the new base with the same frame and flags. No frames are copied,
    /// no reference counts change, and the commit charge is untouched —
    /// the mapping just moves. Returns the number of PTEs moved.
    ///
    /// This is the warm-pool ASLR primitive: a parked child's segments are
    /// loaded at provisional bases, and checkout slides each VMA to a
    /// freshly randomized base. The caller is responsible for TLB
    /// invalidation; a never-scheduled address space (no CPU ever loaded
    /// its root) needs none.
    ///
    /// The destination range must be entirely free (including of the
    /// source VMA itself — overlapping slides are rejected). On `Err` the
    /// space is unchanged.
    pub fn slide_vma(
        &mut self,
        old_start: Vpn,
        new_start: Vpn,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<u64> {
        if old_start == new_start {
            return Ok(0);
        }
        let vma = self
            .vmas
            .get(&old_start.0)
            .cloned()
            .ok_or(MemError::NotMapped)?;
        if !new_start.is_user() || !Vpn(new_start.0 + vma.pages - 1).is_user() {
            return Err(MemError::BadAddress);
        }
        if self.overlaps(new_start, vma.pages) {
            return Err(MemError::Overlap);
        }
        // Leaf subtrees still shared with another space cannot be mutated
        // in place; privatize them first (no-op for a private space).
        let span = PT_ENTRIES as u64;
        let first_base = old_start.0 & !(span - 1);
        let mut base = first_base;
        while base < old_start.0 + vma.pages {
            self.unshare_subtree(Vpn(base), phys, cycles)?;
            base += span;
        }
        // A huge block can move as a unit only if the slide preserves its
        // 2 MiB alignment; otherwise split it and let the THP machinery
        // re-promote at the new home.
        if !(new_start.0.wrapping_sub(old_start.0)).is_multiple_of(HUGE_PAGES) {
            for (vpn, pte) in self.pt.leaves_in_range(old_start, vma.pages) {
                if pte.is_huge() {
                    self.pt.demote_block(vpn, cycles, cost)?;
                    phys.note_thp_demoted();
                }
            }
        }
        let present = self.pt.leaves_in_range(old_start, vma.pages);
        // Map into the destination first so a mid-slide allocation failure
        // (page-table node exhaustion, injected fault) can roll back by
        // unmapping only what was just mapped — the source is untouched
        // until every destination entry exists.
        let mut moved: Vec<Vpn> = Vec::with_capacity(present.len());
        for (vpn, pte) in &present {
            let nv = Vpn(vpn.0 - old_start.0 + new_start.0);
            // One pte_copy per moved entry: copy_huge charges it itself.
            let mapped = if pte.is_huge() {
                self.pt.copy_huge(nv, *pte, cycles, cost)
            } else {
                cycles.charge(cost.pte_copy);
                self.pt.map(nv, *pte, cycles, cost)
            };
            if let Err(e) = mapped {
                for m in moved {
                    self.pt.unmap(m).expect("destination entry just mapped");
                }
                return Err(e);
            }
            moved.push(nv);
        }
        for (vpn, _) in &present {
            self.pt.unmap(*vpn).expect("source entry just enumerated");
        }
        let mut vma = self.vmas.remove(&old_start.0).expect("looked up above");
        vma.start = new_start;
        self.vmas.insert(new_start.0, vma);
        metrics::add("mem.slide.pte_move", present.len() as u64);
        sink::instant("vma_slide", "mem", cycles.total());
        Ok(present.len() as u64)
    }

    /// Maps an already-allocated frame at `vpn` copy-on-write — the exec
    /// image-cache hit path. The caller keeps whatever reference it holds
    /// (a kernel pin); this call takes one more for the new mapping. The
    /// page arrives write-protected with [`PteFlags::COW`] set, so a first
    /// write breaks the share with an ordinary COW copy; `exec` governs
    /// the NX bit. Charges one PTE copy. On `Err` nothing changed.
    ///
    /// The target must lie inside an existing VMA and must not already be
    /// resident.
    pub fn map_shared_frame(
        &mut self,
        vpn: Vpn,
        pfn: Pfn,
        exec: bool,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<()> {
        if self.vma_at(vpn).is_none() {
            return Err(MemError::NotMapped);
        }
        let cost = phys.cost().clone();
        let mut flags = PteFlags::USER | PteFlags::ACCESSED | PteFlags::COW;
        if !exec {
            flags = flags | PteFlags::NX;
        }
        phys.inc_ref(pfn)?;
        cycles.charge(cost.pte_copy);
        if let Err(e) = self.pt.map(vpn, Pte::new(pfn, flags), cycles, &cost) {
            phys.dec_ref(pfn, cycles).expect("reference just taken");
            return Err(e);
        }
        Ok(())
    }

    /// Write-protects and COW-marks the resident page at `vpn` — the donor
    /// side of an exec image-cache insert. The frame is about to gain a
    /// long-lived kernel pin, so the donor must no longer write it in
    /// place; its first write after this breaks the share like any COW
    /// page. Returns the PTE now installed. Charges no cycles: tightening
    /// permissions on a page the donor has not yet been scheduled to touch
    /// is flag surgery, not copied data, and the insert path must leave
    /// the donor's spawn cost exactly equal to the uncached path.
    pub fn cow_protect_page(&mut self, vpn: Vpn, phys: &mut PhysMemory, cycles: &mut Cycles) -> MemResult<Pte> {
        let pte = self.pt.translate(vpn).ok_or(MemError::NotMapped)?;
        if pte.is_swap() {
            // A swapped-out page is not resident and cannot donate its
            // frame to the image cache.
            return Err(MemError::NotMapped);
        }
        if pte.is_huge() {
            // Donating one page out of a huge block pins and COW-marks
            // that page alone, so the block must be split first (the
            // demote charge is the price of the odd page-out).
            self.unshare_subtree(vpn, phys, cycles)?;
            let cost = phys.cost().clone();
            self.pt.demote_block(vpn, cycles, &cost)?;
            phys.note_thp_demoted();
        }
        let pte = self.pt.translate(vpn).expect("still mapped after demote");
        let mut new = pte;
        new.flags = new.flags.minus(PteFlags::WRITABLE).union(PteFlags::COW);
        if new != pte {
            self.unshare_subtree(vpn, phys, cycles)?;
            self.pt.update(vpn, new).expect("translated above");
        }
        Ok(new)
    }

    /// Rewrites the fork policy of every page in `[start, start+pages)`,
    /// splitting VMAs at the boundaries (`madvise` with the fork-related
    /// advice values).
    pub fn set_fork_policy(
        &mut self,
        start: Vpn,
        pages: u64,
        f: impl Fn(&mut crate::vma::ForkPolicy),
    ) -> MemResult<()> {
        if pages == 0 {
            return Err(MemError::BadAlignment);
        }
        for i in 0..pages {
            if self.vma_at(start.add(i)).is_none() {
                return Err(MemError::NotMapped);
            }
        }
        self.split_at(start);
        self.split_at(Vpn(start.0 + pages));
        for (_, v) in self.vmas.range_mut(start.0..start.0 + pages) {
            f(&mut v.fork_policy);
        }
        Ok(())
    }

    /// Pre-faults every page of `[start, start+pages)` (like
    /// `MAP_POPULATE` / `mlock`), making them resident.
    pub fn populate(
        &mut self,
        start: Vpn,
        pages: u64,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<()> {
        let mut i = 0;
        while i < pages {
            let vpn = start.add(i);
            if self.thp
                && vpn.is_huge_aligned()
                && pages - i >= HUGE_PAGES
                && self.try_populate_huge(vpn, phys, cycles)?
            {
                i += HUGE_PAGES;
                continue;
            }
            match self.pt.translate(vpn) {
                Some(pte) if pte.is_swap() => {
                    self.swap_in(vpn, pte, phys, cycles)?;
                }
                Some(_) => {}
                None => {
                    self.demand_fill(vpn, phys, cycles)?;
                }
            }
            i += 1;
        }
        Ok(())
    }

    /// Attempts to fill the whole 2 MiB block at aligned `base` with one
    /// huge mapping instead of 512 demand fills. `Ok(false)` means the
    /// block was not eligible — partially populated, wrong VMA shape,
    /// fragmented physical memory, or an injected promotion failure — and
    /// the caller falls back to small pages. That is the THP contract:
    /// promotion is an optimisation, never a reason for an operation to
    /// fail.
    fn try_populate_huge(
        &mut self,
        base: Vpn,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<bool> {
        debug_assert!(base.is_huge_aligned());
        let Some(vma) = self.vma_at(base) else {
            return Ok(false);
        };
        if vma.share != Share::Private
            || !matches!(vma.backing, Backing::Anon)
            || !vma.contains(Vpn(base.0 + HUGE_PAGES - 1))
            || vma.initial_content(base) != 0
        {
            return Ok(false);
        }
        let vma = vma.clone();
        for k in 0..HUGE_PAGES {
            if self.pt.translate(base.add(k)).is_some() {
                return Ok(false);
            }
        }
        // The injected-failure contract for promotion is absorption: the
        // operation still succeeds, the block just stays small.
        if fpr_faults::cross(FaultSite::PtPromote).is_err() {
            phys.note_thp_promote_failed();
            return Ok(false);
        }
        let head = match phys.alloc_zeroed_huge_run(cycles) {
            Ok(h) => h,
            Err(MemError::Fragmented) | Err(MemError::OutOfMemory) => {
                phys.note_thp_promote_failed();
                return Ok(false);
            }
            Err(e) => return Err(e),
        };
        let mut flags = PteFlags::USER | PteFlags::ACCESSED;
        if vma.prot.write {
            flags = flags | PteFlags::WRITABLE;
        }
        if !vma.prot.exec {
            flags = flags | PteFlags::NX;
        }
        // The empty block may sit in a hole of a huge directory another
        // space still shares; writing the member PTE mutates the node.
        self.unshare_subtree(base, phys, cycles)?;
        let cost = phys.cost().clone();
        if let Err(e) = self.pt.map_huge(base, Pte::new(head, flags), cycles, &cost) {
            phys.dec_ref_run(head, HUGE_PAGES, cycles)
                .expect("run just allocated");
            return Err(e);
        }
        phys.note_thp_promoted();
        sink::instant("thp_promote", "mem", cycles.total());
        Ok(true)
    }

    /// Opportunistic promotion after a fault: if the 2 MiB block around
    /// `vpn` has become a full leaf of exclusively-owned, physically
    /// contiguous small pages with uniform flags, collapse it into one
    /// huge leaf. Every failure is absorbed — a missed promotion leaves
    /// the world exactly as the THP-off simulator would have it.
    pub(crate) fn try_promote(
        &mut self,
        vpn: Vpn,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> bool {
        if !self.thp {
            return false;
        }
        let base = vpn.huge_base();
        let Some(vma) = self.vma_at(base) else {
            return false;
        };
        if vma.share != Share::Private
            || !matches!(vma.backing, Backing::Anon)
            || !vma.contains(Vpn(base.0 + HUGE_PAGES - 1))
        {
            return false;
        }
        let Some(hpte) = self.pt.promotable(base) else {
            return false;
        };
        if hpte.flags.contains(PteFlags::COW) || hpte.flags.contains(PteFlags::SHARED) {
            return false;
        }
        // Frames COW-shared with another space (or pinned by the image
        // cache) block promotion: the block must be breakable as a unit.
        for k in 0..HUGE_PAGES {
            let pfn = Pfn(hpte.pfn.0 + k);
            if phys.refs(pfn).unwrap_or(u32::MAX) != 1 || phys.pin_count(pfn) > 0 {
                return false;
            }
        }
        if fpr_faults::cross(FaultSite::PtPromote).is_err() {
            phys.note_thp_promote_failed();
            return false;
        }
        let cost = phys.cost().clone();
        if self.pt.promote_block(base, hpte, cycles, &cost).is_err() {
            return false;
        }
        phys.note_thp_promoted();
        sink::instant("thp_promote", "mem", cycles.total());
        true
    }

    /// Observes the logical content of the page at `vpn` *without*
    /// faulting: present pages read their frame, absent pages report the
    /// content a fault would install. Test/verification aid.
    pub fn observe(&self, vpn: Vpn, phys: &PhysMemory) -> MemResult<u64> {
        let vma = self.vma_at(vpn).ok_or(MemError::NotMapped)?;
        match self.pt.translate(vpn) {
            Some(pte) if pte.is_swap() => phys.swap().peek(pte.swap_slot()),
            Some(pte) => phys.content(pte.pfn),
            None => Ok(vma.initial_content(vpn)),
        }
    }

    /// Returns the PTE for `vpn`, if resident.
    pub fn translate(&self, vpn: Vpn) -> Option<Pte> {
        self.pt.translate(vpn)
    }

    /// Visits every resident page with its PTE, in ascending VPN order
    /// (verification aid for kernel-wide invariant checks). Swap entries
    /// hold no frame and are skipped; see
    /// [`Self::for_each_swap_entry_keyed`].
    pub fn for_each_resident(&self, mut f: impl FnMut(Vpn, Pte)) {
        self.pt.for_each_leaf(|vpn, pte| {
            if !pte.is_present() {
                return;
            }
            if pte.is_huge() {
                // Expand a block into its 512 constituent pages so
                // per-frame accounting (invariants, residency audits)
                // needs no huge-awareness of its own.
                for k in 0..HUGE_PAGES {
                    f(
                        Vpn(vpn.0 + k),
                        Pte {
                            pfn: Pfn(pte.pfn.0 + k),
                            flags: pte.flags,
                        },
                    );
                }
            } else {
                f(vpn, pte)
            }
        })
    }

    /// Like [`Self::for_each_resident`], but also yields a stable identity
    /// for the leaf page-table node holding each PTE. Two spaces yielding
    /// the same identity reference the *same* shared subtree (on-demand
    /// fork), so cross-space accounting must count its PTEs once.
    pub fn for_each_resident_keyed(&self, mut f: impl FnMut(usize, Vpn, Pte)) {
        self.pt.for_each_leaf_keyed(|id, vpn, pte| {
            if !pte.is_present() {
                return;
            }
            if pte.is_huge() {
                for k in 0..HUGE_PAGES {
                    f(
                        id,
                        Vpn(vpn.0 + k),
                        Pte {
                            pfn: Pfn(pte.pfn.0 + k),
                            flags: pte.flags,
                        },
                    );
                }
            } else {
                f(id, vpn, pte)
            }
        })
    }

    /// Visits every swap entry with its slot index, plus the stable leaf
    /// identity (same contract as [`Self::for_each_resident_keyed`]: a
    /// shared subtree's slots must be counted once across spaces).
    pub fn for_each_swap_entry_keyed(&self, mut f: impl FnMut(usize, Vpn, u64)) {
        self.pt.for_each_leaf_keyed(|id, vpn, pte| {
            if pte.is_swap() {
                f(id, vpn, pte.swap_slot())
            }
        })
    }

    /// Scans for pages the reclaim swap tier may evict, cheapest first:
    /// clean pages before dirty ones. A page qualifies only when evicting
    /// it cannot be observed by anyone else: private anonymous mapping,
    /// sole frame owner (no COW sharing), unpinned, not `MAP_SHARED`, and
    /// not inside a leaf subtree an on-demand fork still shares. Returns
    /// at most `max` pages.
    pub fn swap_out_candidates(&self, phys: &PhysMemory, max: usize) -> Vec<Vpn> {
        if max == 0 {
            return Vec::new();
        }
        let mut clean: Vec<Vpn> = Vec::new();
        let mut dirty: Vec<Vpn> = Vec::new();
        for (base, l1, idx, kind) in self.pt.leaf_slot_coords() {
            if !matches!(kind, SlotKind::Small) {
                // Huge mappings never swap: a block is hot by construction
                // (it was promoted because the whole thing is in use), and
                // evicting it would force a demote. Reclaim skips them.
                continue;
            }
            let arc = self.pt.leaf_at(l1, idx);
            if Arc::strong_count(arc) != 1 {
                // Evicting through a shared subtree would pull the page
                // out from under the other space.
                continue;
            }
            for (j, slot) in arc.ptes.iter().enumerate() {
                let Some(pte) = slot else { continue };
                if !pte.is_present() || pte.flags.contains(PteFlags::SHARED) {
                    continue;
                }
                if phys.refs(pte.pfn).unwrap_or(u32::MAX) != 1 || phys.pin_count(pte.pfn) > 0 {
                    continue;
                }
                let vpn = Vpn(base | j as u64);
                let anon_private = self
                    .vma_at(vpn)
                    .map(|v| v.share == Share::Private && matches!(v.backing, Backing::Anon))
                    .unwrap_or(false);
                if !anon_private {
                    continue;
                }
                if pte.flags.contains(PteFlags::DIRTY) {
                    dirty.push(vpn);
                } else {
                    clean.push(vpn);
                }
            }
        }
        clean.extend(dirty);
        clean.truncate(max);
        clean
    }

    /// Replaces the resident candidate at `vpn` with a swap entry for
    /// `slot`, releasing its frame. Infallible by construction: the
    /// kernel's swap-out pass has already reserved the slot and crossed
    /// every fault site, so this is the commit half of the transaction —
    /// a PTE rewrite plus a frame release.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` is not a resident sole-owner page (i.e. was not
    /// vetted by [`Self::swap_out_candidates`] in the same pass).
    pub fn swap_out_commit(
        &mut self,
        vpn: Vpn,
        slot: u64,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) {
        let pte = self.pt.translate(vpn).expect("candidate still resident");
        assert!(pte.is_present(), "candidate already swapped");
        self.pt
            .update(vpn, Pte::swap_entry(slot))
            .expect("translated above");
        phys.dec_ref(pte.pfn, cycles).expect("sole owner");
        self.swapped += 1;
    }

    /// Tears down the whole space, releasing every frame. Must be called
    /// before dropping the space (frames are owned by [`PhysMemory`]).
    ///
    /// Leaf subtrees still shared with another space are dropped with one
    /// refcount decrement — the surviving owner releases the frames — so
    /// a child that exits without touching its memory tears down in
    /// O(nodes), mirroring the cheap-exit property of on-demand fork.
    pub fn destroy(&mut self, phys: &mut PhysMemory, cycles: &mut Cycles) {
        for (_, taken) in self.pt.take_leaves() {
            match taken {
                TakenLeaf::Huge(pte) => {
                    // A lone huge leaf is never shared; its 512-frame run
                    // is released frame by frame (COW children may still
                    // hold references to individual frames).
                    phys.dec_ref_run(pte.pfn, HUGE_PAGES, cycles)
                        .expect("run tracked");
                }
                TakenLeaf::Node(arc) => match Arc::try_unwrap(arc) {
                    Ok(node) => {
                        for pte in node.ptes.iter().flatten() {
                            if pte.is_swap() {
                                phys.swap_mut()
                                    .dec_ref(pte.swap_slot())
                                    .expect("slot tracked");
                            } else if pte.is_huge() {
                                phys.dec_ref_run(pte.pfn, HUGE_PAGES, cycles)
                                    .expect("run tracked");
                            } else {
                                phys.dec_ref(pte.pfn, cycles).expect("frame tracked");
                            }
                        }
                    }
                    Err(_) => {
                        // Still shared: the other table keeps the frames (and
                        // swap slots — references follow leaf identity) alive.
                    }
                },
            }
        }
        self.swapped = 0;
        self.vmas.clear();
    }

    /// True if the leaf page-table subtree covering `vpn` is still shared
    /// with another address space (an on-demand fork has not yet been
    /// broken for that 512-page region). Verification aid.
    pub fn subtree_shared(&self, vpn: Vpn) -> bool {
        self.pt.leaf_shared(vpn)
    }

    /// Replaces the shared leaf subtree covering `vpn` with a private deep
    /// copy, taking one frame reference per present PTE (each table slot
    /// now references the frames independently). No-op if the subtree is
    /// not shared. This is the deferred copy that on-demand fork pushed
    /// out of fork itself; callers charge fault/TLB costs as appropriate.
    pub(crate) fn unshare_subtree(
        &mut self,
        vpn: Vpn,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<()> {
        if !self.pt.leaf_shared(vpn) {
            return Ok(());
        }
        let cost = phys.cost().clone();
        let present = self.pt.privatize_leaf(vpn, cycles, &cost)?;
        for pte in &present {
            if pte.is_swap() {
                // The privatized copy now references the slot from a
                // second distinct leaf node.
                phys.swap_mut()
                    .inc_ref(pte.swap_slot())
                    .expect("slot tracked by shared subtree");
            } else if pte.is_huge() {
                // A privatized huge directory references each member's
                // whole 512-frame run independently.
                phys.inc_ref_run(pte.pfn, HUGE_PAGES)
                    .expect("run tracked by shared subtree");
            } else {
                phys.inc_ref(pte.pfn)
                    .expect("frame tracked by shared subtree");
            }
        }
        self.stats.pt_unshares += 1;
        self.stats.ptes_unshare_copied += present.len() as u64;
        metrics::incr("mem.unshare.pt_node");
        metrics::add("mem.unshare.pte_copy", present.len() as u64);
        sink::instant("pt_unshare", "mem", cycles.total());
        Ok(())
    }

    /// Duplicates `parent` into a new address space, implementing the
    /// semantics of `fork(2)`.
    ///
    /// Work performed (and charged):
    /// * one VMA-record clone per inherited mapping;
    /// * one PTE copy per resident page (plus the child's page-table
    ///   nodes), COW-marking private pages in **both** spaces;
    /// * for [`ForkMode::Eager`], a full page copy per resident private page;
    /// * one TLB shootdown across `cpus_running` CPUs, because the
    ///   parent's writable translations were just write-protected.
    ///
    /// `MADV_DONTFORK` mappings are skipped, `MADV_WIPEONFORK` mappings are
    /// inherited empty, and `MAP_SHARED` mappings alias the same frames.
    ///
    /// # Transactionality
    ///
    /// `fork_from` is all-or-nothing. A mid-walk failure (frame or
    /// page-table-node exhaustion, injected fault) rolls back completely:
    /// every PTE the parent had downgraded to COW is restored to its
    /// original flags, and the partially-built child is destroyed, which
    /// drops every reference count it took. On `Err`, the parent and
    /// [`PhysMemory`] are exactly as they were before the call (cycle
    /// charges for work attempted are kept — time was really spent).
    pub fn fork_from(
        parent: &mut AddressSpace,
        mode: ForkMode,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
        tlb: &mut TlbModel,
        cpus_running: u32,
    ) -> MemResult<AddressSpace> {
        let mut child = AddressSpace::new();
        child.thp = parent.thp;
        let stats_base = parent.stats.clone();
        sink::span_begin("address_space_fork", "mem", cycles.total());
        // Undo log: parent PTEs downgraded to COW, with their original
        // value, in case the walk fails partway.
        let mut downgrades: Vec<(Vpn, Pte)> = Vec::new();
        let result = Self::fork_demote_mixed_blocks(parent, phys, cycles).and_then(|_| match mode {
            ForkMode::OnDemand => {
                Self::fork_walk_on_demand(parent, &mut child, &mut downgrades, phys, cycles)
            }
            _ => Self::fork_walk(parent, &mut child, &mut downgrades, mode, phys, cycles),
        });
        let cost = phys.cost().clone();
        let out = match result {
            Ok(()) => {
                if !downgrades.is_empty() || mode == ForkMode::Eager {
                    // The parent's mappings changed (COW) or its pages were
                    // read via their kernel mappings (eager); either way
                    // stale translations must be flushed everywhere the
                    // parent runs.
                    tlb.shootdown(cpus_running, cycles, &cost);
                }
                let s = &parent.stats;
                metrics::add("mem.fork.vma_clone", s.vmas_cloned - stats_base.vmas_cloned);
                metrics::add("mem.fork.pte_copy", s.ptes_copied - stats_base.ptes_copied);
                metrics::add(
                    "mem.fork.pt_subtree_share",
                    s.pt_subtrees_shared - stats_base.pt_subtrees_shared,
                );
                metrics::add(
                    "mem.fork.page_copy",
                    s.pages_eager_copied - stats_base.pages_eager_copied,
                );
                metrics::add(
                    "mem.fork.pt_node",
                    (child.pt.node_count() as u64).saturating_sub(1),
                );
                Ok(child)
            }
            Err(e) => {
                // Roll back. The partial child is torn down *first*:
                // dropping its shared-subtree references makes the
                // parent's leaf nodes exclusively owned again, which the
                // downgrade restores below require (they mutate PTEs in
                // place). Destruction releases every frame reference the
                // child took; restoring the downgrades is a permission
                // upgrade, so no shootdown is needed — stale read-only
                // translations fault and retry.
                child.destroy(phys, cycles);
                for (vpn, orig) in downgrades {
                    parent.pt.update(vpn, orig).expect("downgraded leaf still mapped");
                }
                sink::instant("fork_rollback", "mem", cycles.total());
                Err(e)
            }
        };
        sink::span_end("address_space_fork", cycles.total());
        out
    }

    /// Fork policy is per-VMA but a huge block is all-or-nothing: a block
    /// whose pages are no longer covered by a single VMA (a `DONTFORK` /
    /// `WIPEONFORK` or protection split landed inside it) is demoted up
    /// front so the fork walks only ever see uniformly inherited blocks.
    /// The demotes survive a fork rollback — they are user-invisible.
    fn fork_demote_mixed_blocks(
        parent: &mut AddressSpace,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<()> {
        let mut mixed: Vec<Vpn> = Vec::new();
        parent.pt.for_each_leaf(|vpn, pte| {
            if !pte.is_huge() {
                return;
            }
            let whole = parent
                .vma_at(vpn)
                .map(|v| v.contains(Vpn(vpn.0 + HUGE_PAGES - 1)))
                .unwrap_or(false);
            if !whole {
                mixed.push(vpn);
            }
        });
        let cost = phys.cost().clone();
        for b in mixed {
            parent.unshare_subtree(b, phys, cycles)?;
            parent.pt.demote_block(b, cycles, &cost)?;
            phys.note_thp_demoted();
        }
        Ok(())
    }

    /// Classifies the huge block at `base` against the VMA list: `None`
    /// if the block is not inherited by a fork child, `Some(share)` for
    /// the sharing policy of its (single, whole-block-covering) VMA.
    /// Callers run [`Self::fork_demote_mixed_blocks`] first, so every
    /// surviving block has exactly one covering VMA.
    fn block_inherit(&self, base: Vpn) -> Option<Share> {
        self.vma_at(base)
            .filter(|v| !v.fork_policy.dont_fork && !v.fork_policy.wipe_on_fork)
            .map(|v| v.share)
    }

    /// COW-shares one 2 MiB huge block with a fork child as a single
    /// unit: the child maps the same run with one huge PTE (taking one
    /// reference per constituent frame), and a writable parent block is
    /// downgraded to COW with a single PTE flip
    /// ([`CostModel::huge_cow`]) instead of 512.
    #[allow(clippy::too_many_arguments)]
    fn fork_cow_huge_block(
        parent: &mut AddressSpace,
        child: &mut AddressSpace,
        downgrades: &mut Vec<(Vpn, Pte)>,
        vpn: Vpn,
        pte: Pte,
        share: Share,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<()> {
        // `copy_huge` charges the pte_copy for the child's entry write.
        cycles.charge(cost.huge_cow);
        parent.stats.ptes_copied += 1;
        phys.inc_ref_run(pte.pfn, HUGE_PAGES)?;
        let mapped = match share {
            Share::Shared => child.pt.copy_huge(vpn, pte, cycles, cost),
            Share::Private => {
                let mut cow = pte;
                if cow.is_writable() || cow.is_cow() {
                    cow.flags = cow.flags.minus(PteFlags::WRITABLE).union(PteFlags::COW);
                }
                let r = child.pt.copy_huge(vpn, cow, cycles, cost);
                if r.is_ok() && pte.is_writable() {
                    parent.pt.update(vpn, cow).expect("block just enumerated");
                    downgrades.push((vpn, pte));
                }
                r
            }
        };
        if let Err(e) = mapped {
            phys.dec_ref_run(pte.pfn, HUGE_PAGES, cycles)
                .expect("refs just taken");
            return Err(e);
        }
        Ok(())
    }

    /// Eager-fork copy of one huge block: try to copy it into a fresh
    /// 512-frame run so the child stays huge; when physical memory is too
    /// fragmented for a run, fall back to 512 small copies in the child
    /// while the parent keeps its block.
    fn fork_eager_copy_huge_block(
        parent: &mut AddressSpace,
        child: &mut AddressSpace,
        vpn: Vpn,
        pte: Pte,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<()> {
        cycles.charge(cost.pte_copy);
        parent.stats.ptes_copied += 1;
        match phys.alloc_zeroed_huge_run(cycles) {
            Ok(head) => {
                for k in 0..HUGE_PAGES {
                    let c = phys.content(Pfn(pte.pfn.0 + k))?;
                    phys.write_content(Pfn(head.0 + k), c)?;
                    cycles.charge(cost.page_copy);
                }
                parent.stats.pages_eager_copied += HUGE_PAGES;
                if let Err(e) = child.pt.copy_huge(vpn, Pte { pfn: head, ..pte }, cycles, cost) {
                    phys.dec_ref_run(head, HUGE_PAGES, cycles)
                        .expect("run just allocated");
                    return Err(e);
                }
                Ok(())
            }
            Err(MemError::Fragmented) => {
                let flags = pte.flags.minus(PteFlags::HUGE);
                for k in 0..HUGE_PAGES {
                    let new = phys.copy_frame(Pfn(pte.pfn.0 + k), cycles)?;
                    parent.stats.pages_eager_copied += 1;
                    if let Err(e) = child.pt.map(vpn.add(k), Pte::new(new, flags), cycles, cost) {
                        phys.dec_ref(new, cycles).expect("frame just copied");
                        return Err(e);
                    }
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// The fallible body of an on-demand fork: clones VMA records, then
    /// shares whole leaf page-table subtrees with the child by refcount
    /// instead of copying PTEs. A subtree is shareable when every present
    /// PTE in it is inherited by the child; nodes straddling `DONTFORK` /
    /// `WIPEONFORK` boundaries fall back to the per-PTE COW copy. When a
    /// node is shared for the first time, its private writable PTEs are
    /// COW-marked in place (one marking serves both tables — that is what
    /// sharing means), and each marking is recorded in `downgrades`.
    fn fork_walk_on_demand(
        parent: &mut AddressSpace,
        child: &mut AddressSpace,
        downgrades: &mut Vec<(Vpn, Pte)>,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<()> {
        let cost = phys.cost().clone();
        let parent_vmas: Vec<VmArea> = parent.vmas.values().cloned().collect();
        for vma in parent_vmas {
            if vma.fork_policy.dont_fork {
                continue;
            }
            fpr_faults::cross(FaultSite::VmaClone).map_err(|_| MemError::OutOfMemory)?;
            cycles.charge(cost.vma_clone);
            parent.stats.vmas_cloned += 1;
            child.vmas.insert(vma.start.0, vma);
        }
        // Gather loose huge blocks into (partial) directories first: each
        // all-huge level-1 table then shares below with one pointer copy
        // instead of a per-block COW copy.
        parent.pt.group_huge_tables();
        for (base, l1, idx, kind) in parent.pt.leaf_slot_coords() {
            if matches!(kind, SlotKind::Huge) {
                // A lone huge block COW-shares as a single unit.
                let pte = parent.pt.huge_at(l1, idx);
                let Some(share) = parent.block_inherit(Vpn(base)) else {
                    continue;
                };
                Self::fork_cow_huge_block(
                    parent, child, downgrades, Vpn(base), pte, share, phys, cycles, &cost,
                )?;
                continue;
            }
            if matches!(kind, SlotKind::Dir) {
                // Classify each member block of this 1 GiB huge directory.
                let mut slots: Vec<(usize, Vpn, Pte, Option<Share>)> = Vec::new();
                {
                    let node = parent.pt.leaf_at(l1, idx);
                    for (j, slot) in node.ptes.iter().enumerate() {
                        let Some(pte) = slot else { continue };
                        let vpn = Vpn(base + j as u64 * HUGE_PAGES);
                        slots.push((j, vpn, *pte, parent.block_inherit(vpn)));
                    }
                }
                if !slots.is_empty() && slots.iter().all(|(_, _, _, i)| i.is_some()) {
                    // Whole directory inherited: COW-mark the member
                    // blocks in place (first share only — an already-shared
                    // directory holds no writable members) and hand the
                    // child the directory with one pointer copy. Up to a
                    // GiB of huge mappings shares in O(1), which is what
                    // makes fork of a fully-huge space almost free.
                    let arc = parent.pt.leaf_at_mut(l1, idx);
                    if let Some(node) = Arc::get_mut(arc) {
                        for (j, vpn, pte, inherit) in &slots {
                            if *inherit != Some(Share::Private) || !pte.is_writable() {
                                continue;
                            }
                            let slot = node.ptes[*j].as_mut().expect("slot classified present");
                            slot.flags = slot.flags.minus(PteFlags::WRITABLE).union(PteFlags::COW);
                            downgrades.push((*vpn, *pte));
                        }
                    }
                    let arc = Arc::clone(parent.pt.leaf_at(l1, idx));
                    child.pt.attach_leaf(base, arc, true, cycles, &cost)?;
                    parent.stats.pt_subtrees_shared += 1;
                    sink::instant("pt_subtree_share", "mem", cycles.total());
                } else {
                    // Mixed directory: per-block huge COW copy for the
                    // inherited members only.
                    for (_, vpn, pte, inherit) in slots {
                        let Some(share) = inherit else { continue };
                        Self::fork_cow_huge_block(
                            parent, child, downgrades, vpn, pte, share, phys, cycles, &cost,
                        )?;
                    }
                }
                continue;
            }
            // Classify every present PTE of this 512-entry node: does the
            // child inherit it, and under which sharing policy?
            let span = PT_ENTRIES as u64;
            let covering: Vec<VmArea> = parent
                .vmas
                .values()
                .filter(|v| v.overlaps(Vpn(base), span))
                .cloned()
                .collect();
            let mut slots: Vec<(usize, Vpn, Pte, Option<Share>)> = Vec::new();
            {
                let node = parent.pt.leaf_at(l1, idx);
                for (j, slot) in node.ptes.iter().enumerate() {
                    let Some(pte) = slot else { continue };
                    let vpn = Vpn(base | j as u64);
                    let inherit = covering
                        .iter()
                        .find(|v| v.contains(vpn))
                        .filter(|v| !v.fork_policy.dont_fork && !v.fork_policy.wipe_on_fork)
                        .map(|v| v.share);
                    slots.push((j, vpn, *pte, inherit));
                }
            }
            if !slots.is_empty() && slots.iter().all(|(_, _, _, i)| i.is_some()) {
                // Fast path: hand the whole subtree to the child with one
                // pointer copy and a refcount bump.
                let arc = parent.pt.leaf_at_mut(l1, idx);
                if let Some(node) = Arc::get_mut(arc) {
                    // First sharing of this node: COW-mark its private
                    // writable PTEs in place. A node that is *already*
                    // shared holds no private writable PTEs (they were
                    // marked when it was first shared), so re-sharing
                    // needs no marking — and must not mutate it.
                    for (j, vpn, pte, inherit) in &slots {
                        if *inherit != Some(Share::Private) || !pte.is_writable() {
                            continue;
                        }
                        let slot = node.ptes[*j].as_mut().expect("slot classified present");
                        slot.flags = slot.flags.minus(PteFlags::WRITABLE).union(PteFlags::COW);
                        downgrades.push((*vpn, *pte));
                    }
                }
                let arc = Arc::clone(parent.pt.leaf_at(l1, idx));
                child.pt.attach_leaf(base, arc, false, cycles, &cost)?;
                // Sharing the node shares its swap entries by identity —
                // no slot refcount change, but the child's residency
                // accounting must know they hold no frames.
                child.swapped += slots.iter().filter(|(_, _, p, _)| p.is_swap()).count() as u64;
                parent.stats.pt_subtrees_shared += 1;
                sink::instant("pt_subtree_share", "mem", cycles.total());
                continue;
            }
            // Mixed node: per-PTE COW copy for the inherited slots only.
            for (_, vpn, pte, inherit) in slots {
                let Some(share) = inherit else { continue };
                cycles.charge(cost.pte_copy);
                parent.stats.ptes_copied += 1;
                if pte.is_swap() {
                    Self::fork_copy_swap_entry(child, vpn, pte, phys, cycles, &cost)?;
                    continue;
                }
                match share {
                    Share::Shared => {
                        phys.inc_ref(pte.pfn)?;
                        if let Err(e) = child.pt.map(vpn, pte, cycles, &cost) {
                            phys.dec_ref(pte.pfn, cycles).expect("ref just taken");
                            return Err(e);
                        }
                    }
                    Share::Private => {
                        phys.inc_ref(pte.pfn)?;
                        let mut cow = pte;
                        if cow.is_writable() || cow.is_cow() {
                            cow.flags = cow.flags.minus(PteFlags::WRITABLE).union(PteFlags::COW);
                        }
                        if let Err(e) = child.pt.map(vpn, cow, cycles, &cost) {
                            phys.dec_ref(pte.pfn, cycles).expect("ref just taken");
                            return Err(e);
                        }
                        if pte.is_writable() {
                            parent.pt.update(vpn, cow).expect("leaf just enumerated");
                            downgrades.push((vpn, pte));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The fallible body of [`AddressSpace::fork_from`]: clones VMAs and
    /// PTEs into `child`, recording parent downgrades in `downgrades`.
    fn fork_walk(
        parent: &mut AddressSpace,
        child: &mut AddressSpace,
        downgrades: &mut Vec<(Vpn, Pte)>,
        mode: ForkMode,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<()> {
        let cost = phys.cost().clone();
        let parent_vmas: Vec<VmArea> = parent.vmas.values().cloned().collect();
        for vma in parent_vmas {
            if vma.fork_policy.dont_fork {
                continue;
            }
            fpr_faults::cross(FaultSite::VmaClone).map_err(|_| MemError::OutOfMemory)?;
            cycles.charge(cost.vma_clone);
            parent.stats.vmas_cloned += 1;
            child.vmas.insert(vma.start.0, vma.clone());
            if vma.fork_policy.wipe_on_fork {
                // Child starts with an empty (demand-zero) range.
                continue;
            }
            for (vpn, pte) in parent.pt.leaves_in_range(vma.start, vma.pages) {
                if pte.is_huge() {
                    // Huge blocks fork as single units (the helpers charge
                    // their own PTE-copy terms).
                    if vma.share == Share::Private && mode == ForkMode::Eager {
                        Self::fork_eager_copy_huge_block(
                            parent, child, vpn, pte, phys, cycles, &cost,
                        )?;
                    } else {
                        Self::fork_cow_huge_block(
                            parent, child, downgrades, vpn, pte, vma.share, phys, cycles, &cost,
                        )?;
                    }
                    continue;
                }
                cycles.charge(cost.pte_copy);
                parent.stats.ptes_copied += 1;
                if pte.is_swap() {
                    // Swapped pages stay swapped across every fork mode
                    // (even Eager: fork must not block on fallible device
                    // I/O); the child shares the slot like a COW frame.
                    Self::fork_copy_swap_entry(child, vpn, pte, phys, cycles, &cost)?;
                    continue;
                }
                match (vma.share, mode) {
                    (Share::Shared, _) => {
                        phys.inc_ref(pte.pfn)?;
                        if let Err(e) = child.pt.map(vpn, pte, cycles, &cost) {
                            phys.dec_ref(pte.pfn, cycles).expect("ref just taken");
                            return Err(e);
                        }
                    }
                    (Share::Private, ForkMode::Eager) => {
                        let new = phys.copy_frame(pte.pfn, cycles)?;
                        parent.stats.pages_eager_copied += 1;
                        if let Err(e) = child.pt.map(vpn, Pte { pfn: new, ..pte }, cycles, &cost) {
                            phys.dec_ref(new, cycles).expect("frame just copied");
                            return Err(e);
                        }
                    }
                    (Share::Private, ForkMode::Cow | ForkMode::OnDemand) => {
                        phys.inc_ref(pte.pfn)?;
                        let mut cow = pte;
                        if cow.is_writable() || cow.is_cow() {
                            cow.flags = cow.flags.minus(PteFlags::WRITABLE).union(PteFlags::COW);
                        }
                        if let Err(e) = child.pt.map(vpn, cow, cycles, &cost) {
                            phys.dec_ref(pte.pfn, cycles).expect("ref just taken");
                            return Err(e);
                        }
                        if pte.is_writable() {
                            parent.pt.update(vpn, cow).expect("leaf just enumerated");
                            downgrades.push((vpn, pte));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Copies one swap entry into a fork child: the child's distinct leaf
    /// node takes its own slot reference, exactly as a present PTE copy
    /// takes a frame reference.
    fn fork_copy_swap_entry(
        child: &mut AddressSpace,
        vpn: Vpn,
        pte: Pte,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<()> {
        let slot = pte.swap_slot();
        phys.swap_mut().inc_ref(slot)?;
        if let Err(e) = child.pt.map(vpn, pte, cycles, cost) {
            phys.swap_mut().dec_ref(slot).expect("ref just taken");
            return Err(e);
        }
        child.swapped += 1;
        Ok(())
    }
}

/// Commit charge of one VMA: pages the kernel may need frames for.
fn commit_charge(v: &VmArea) -> u64 {
    match (v.share, v.backing, v.prot.write) {
        // Private writable memory may all be copied.
        (Share::Private, _, true) => v.pages,
        // Shared anonymous memory needs frames exactly once.
        (Share::Shared, Backing::Anon, _) => v.pages,
        // Read-only file text/data can always be reconstructed.
        _ => 0,
    }
}

/// Convenience: an anonymous read-write heap VMA of `pages` pages at `start`.
pub fn heap_vma(start: Vpn, pages: u64) -> VmArea {
    VmArea::anon(start, pages, crate::vma::Prot::RW, VmaKind::Heap)
}

/// Convenience: the page containing virtual address `va`.
pub fn page_of(va: VirtAddr) -> Vpn {
    va.page()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::vma::Prot;

    fn world(frames: u64) -> (PhysMemory, Cycles, TlbModel) {
        (
            PhysMemory::new(frames, CostModel::default()),
            Cycles::new(),
            TlbModel::new(),
        )
    }

    fn anon(start: u64, pages: u64) -> VmArea {
        VmArea::anon(Vpn(start), pages, Prot::RW, VmaKind::Mmap)
    }

    #[test]
    fn mmap_rejects_overlap_and_zero_len() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(10, 5), &mut phys, &mut cy).unwrap();
        assert_eq!(
            a.mmap(anon(12, 1), &mut phys, &mut cy),
            Err(MemError::Overlap)
        );
        assert_eq!(
            a.mmap(anon(20, 0), &mut phys, &mut cy),
            Err(MemError::BadAlignment)
        );
        assert_eq!(a.vma_count(), 1);
    }

    #[test]
    fn vma_at_finds_covering_area() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(10, 5), &mut phys, &mut cy).unwrap();
        a.mmap(anon(100, 2), &mut phys, &mut cy).unwrap();
        assert!(a.vma_at(Vpn(12)).is_some());
        assert!(a.vma_at(Vpn(15)).is_none());
        assert!(a.vma_at(Vpn(9)).is_none());
        assert_eq!(a.vma_at(Vpn(101)).unwrap().start, Vpn(100));
    }

    #[test]
    fn find_free_range_skips_existing() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(10, 5), &mut phys, &mut cy).unwrap();
        a.mmap(anon(15, 5), &mut phys, &mut cy).unwrap();
        assert_eq!(a.find_free_range(3, Vpn(0)).unwrap(), Vpn(0));
        assert_eq!(a.find_free_range(3, Vpn(10)).unwrap(), Vpn(20));
        assert_eq!(a.find_free_range(3, Vpn(12)).unwrap(), Vpn(20));
    }

    #[test]
    fn populate_makes_resident_and_observe_reads_zero() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(0, 8), &mut phys, &mut cy).unwrap();
        assert_eq!(a.resident_pages(), 0);
        a.populate(Vpn(0), 8, &mut phys, &mut cy).unwrap();
        assert_eq!(a.resident_pages(), 8);
        assert_eq!(a.observe(Vpn(3), &phys), Ok(0));
        assert_eq!(a.observe(Vpn(9), &phys), Err(MemError::NotMapped));
    }

    #[test]
    fn munmap_splits_straddling_vma() {
        let (mut phys, mut cy, mut tlb) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(0, 10), &mut phys, &mut cy).unwrap();
        a.populate(Vpn(0), 10, &mut phys, &mut cy).unwrap();
        let released = a
            .munmap(Vpn(3), 4, &mut phys, &mut cy, &mut tlb, 1)
            .unwrap();
        assert_eq!(released, 4);
        assert_eq!(a.vma_count(), 2);
        assert!(a.vma_at(Vpn(2)).is_some());
        assert!(a.vma_at(Vpn(3)).is_none());
        assert!(a.vma_at(Vpn(6)).is_none());
        assert!(a.vma_at(Vpn(7)).is_some());
        assert_eq!(a.resident_pages(), 6);
        assert_eq!(phys.used_frames(), 6);
    }

    #[test]
    fn destroy_releases_all_frames() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(0, 10), &mut phys, &mut cy).unwrap();
        a.populate(Vpn(0), 10, &mut phys, &mut cy).unwrap();
        a.destroy(&mut phys, &mut cy);
        assert_eq!(phys.used_frames(), 0);
        assert_eq!(a.resident_pages(), 0);
    }

    #[test]
    fn commit_charge_counts_private_writable_only() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(0, 10), &mut phys, &mut cy).unwrap(); // RW private: 10
        let mut ro = VmArea::anon(Vpn(20), 5, Prot::R, VmaKind::Text);
        ro.backing = Backing::File {
            file_id: 1,
            page_offset: 0,
        };
        a.mmap(ro, &mut phys, &mut cy).unwrap(); // RO file: 0
        assert_eq!(a.commit_pages(), 10);
    }

    #[test]
    fn slide_vma_moves_resident_pages_without_copying_frames() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(100, 8), &mut phys, &mut cy).unwrap();
        a.populate(Vpn(100), 4, &mut phys, &mut cy).unwrap();
        let pte_before = a.translate(Vpn(102)).unwrap();
        let frames_before = phys.used_frames();
        let refs_before = phys.refs(pte_before.pfn).unwrap();
        let cost = phys.cost().clone();
        let moved = a
            .slide_vma(Vpn(100), Vpn(5000), &mut phys, &mut cy, &cost)
            .unwrap();
        assert_eq!(moved, 4);
        assert!(a.vma_at(Vpn(100)).is_none());
        assert_eq!(a.vma_at(Vpn(5003)).unwrap().start, Vpn(5000));
        assert_eq!(a.translate(Vpn(102)), None);
        assert_eq!(a.translate(Vpn(5002)), Some(pte_before), "same frame, same flags");
        assert_eq!(phys.used_frames(), frames_before, "no frames copied or freed");
        assert_eq!(phys.refs(pte_before.pfn).unwrap(), refs_before);
        assert_eq!(a.resident_pages(), 4);
    }

    #[test]
    fn slide_vma_rejects_occupied_destination_and_missing_source() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(100, 8), &mut phys, &mut cy).unwrap();
        a.mmap(anon(200, 4), &mut phys, &mut cy).unwrap();
        let cost = phys.cost().clone();
        assert_eq!(
            a.slide_vma(Vpn(100), Vpn(198), &mut phys, &mut cy, &cost),
            Err(MemError::Overlap)
        );
        assert_eq!(
            a.slide_vma(Vpn(101), Vpn(400), &mut phys, &mut cy, &cost),
            Err(MemError::NotMapped),
            "source must be an exact VMA start"
        );
        assert_eq!(a.vma_at(Vpn(100)).unwrap().start, Vpn(100), "space unchanged");
    }

    #[test]
    fn slide_vma_charges_per_moved_pte() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(0, 8), &mut phys, &mut cy).unwrap();
        a.populate(Vpn(0), 8, &mut phys, &mut cy).unwrap();
        let cost = phys.cost().clone();
        let before = cy.total();
        a.slide_vma(Vpn(0), Vpn(1024), &mut phys, &mut cy, &cost)
            .unwrap();
        // 8 PTE moves plus one fresh leaf + intermediate nodes at the
        // destination (the source leaf is reclaimed, not re-priced).
        let delta = cy.total() - before;
        assert!(delta >= 8 * cost.pte_copy);
        assert!(delta <= 8 * cost.pte_copy + 4 * cost.pt_node_alloc);
    }

    #[test]
    fn map_shared_frame_installs_cow_mapping_over_pinned_frame() {
        let (mut phys, mut cy, mut tlb) = world(64);
        // Donor page, resident, with a kernel pin as the image cache takes.
        let mut donor = AddressSpace::new();
        donor.mmap(anon(0, 1), &mut phys, &mut cy).unwrap();
        donor.populate(Vpn(0), 1, &mut phys, &mut cy).unwrap();
        let pfn = donor.translate(Vpn(0)).unwrap().pfn;
        phys.pin(pfn).unwrap();

        let mut child = AddressSpace::new();
        child.mmap(anon(100, 1), &mut phys, &mut cy).unwrap();
        child
            .map_shared_frame(Vpn(100), pfn, false, &mut phys, &mut cy)
            .unwrap();
        let pte = child.translate(Vpn(100)).unwrap();
        assert_eq!(pte.pfn, pfn);
        assert!(pte.is_cow() && !pte.is_writable());
        assert!(pte.flags.contains(PteFlags::NX), "data mapping is NX");
        assert_eq!(phys.refs(pfn).unwrap(), 3, "donor map + pin + child map");
        // Double-map of the same page is rejected, space intact.
        assert_eq!(
            child.map_shared_frame(Vpn(100), pfn, false, &mut phys, &mut cy),
            Err(MemError::Overlap)
        );
        assert_eq!(phys.refs(pfn).unwrap(), 3, "failed map returned its ref");
        // The child's first write breaks the share with a private copy.
        child.write(Vpn(100), 7, &mut phys, &mut cy, &mut tlb, 1).unwrap();
        assert_ne!(child.translate(Vpn(100)).unwrap().pfn, pfn);
        assert_eq!(phys.refs(pfn).unwrap(), 2);
    }

    #[test]
    fn cow_protect_page_is_free_and_forces_copy_on_next_write() {
        let (mut phys, mut cy, mut tlb) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(0, 2), &mut phys, &mut cy).unwrap();
        a.write(Vpn(0), 5, &mut phys, &mut cy, &mut tlb, 1).unwrap();
        let pfn = a.translate(Vpn(0)).unwrap().pfn;
        let before = cy.total();
        let pte = a.cow_protect_page(Vpn(0), &mut phys, &mut cy).unwrap();
        assert_eq!(cy.total(), before, "permission tightening is free");
        assert!(pte.is_cow() && !pte.is_writable());
        // Pin the frame as the cache would; the donor's next write must
        // copy (the pinned original keeps the cached content) rather than
        // reuse the frame in place.
        phys.pin(pfn).unwrap();
        a.write(Vpn(0), 9, &mut phys, &mut cy, &mut tlb, 1).unwrap();
        assert_ne!(a.translate(Vpn(0)).unwrap().pfn, pfn);
        assert_eq!(phys.content(pfn), Ok(5), "cached frame unchanged");
        assert_eq!(a.observe(Vpn(0), &phys), Ok(9));
        assert_eq!(
            a.cow_protect_page(Vpn(1), &mut phys, &mut cy),
            Err(MemError::NotMapped),
            "non-resident page cannot donate"
        );
    }

    #[test]
    fn split_at_preserves_file_offsets() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        let mut v = VmArea::anon(Vpn(100), 10, Prot::R, VmaKind::Text);
        v.backing = Backing::File {
            file_id: 3,
            page_offset: 5,
        };
        a.mmap(v, &mut phys, &mut cy).unwrap();
        let before = a.observe(Vpn(107), &phys).unwrap();
        a.split_at(Vpn(104));
        assert_eq!(a.vma_count(), 2);
        assert_eq!(a.observe(Vpn(107), &phys).unwrap(), before);
    }
}
