//! Per-process address spaces: a VMA list over a four-level page table.
//!
//! This module carries the heart of the reproduction: [`AddressSpace::fork_from`]
//! performs the work the paper identifies as fork's fundamental cost — walking
//! the parent's VMA list, duplicating every mapping record, copying or
//! COW-marking every present PTE, and write-protecting the parent (which
//! requires a TLB shootdown on every CPU running it). Everything is O(mapped
//! state), not O(1), which is why fork latency in Figure 1 grows with the
//! parent while `posix_spawn` stays flat.

use crate::addr::{Pfn, VirtAddr, Vpn, PT_ENTRIES};
use crate::cost::{CostModel, Cycles};
use crate::error::{MemError, MemResult};
use crate::phys::PhysMemory;
use crate::pte::{Pte, PteFlags};
use crate::tlb::TlbModel;
use crate::vma::{Backing, Share, VmArea, VmaKind};
use fpr_faults::FaultSite;
use fpr_trace::metrics;
use fpr_trace::sink;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How fork duplicates private pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForkMode {
    /// Copy-on-write: share frames read-only, copy on first write.
    Cow,
    /// Eager: copy every present private page at fork time (pre-COW Unix,
    /// and the ablation baseline for E2).
    Eager,
    /// On-demand page-table copy (μFork / On-demand-fork, EuroSys'21):
    /// fork shares whole leaf page-table subtrees refcounted and
    /// effectively read-only; the first write, unmap, or mprotect touching
    /// a shared subtree privatizes just that 512-entry node. Fork-time
    /// work becomes O(VMAs + subtrees), not O(pages).
    OnDemand,
}

/// Counters describing the work an address space has performed.
#[derive(Debug, Default, Clone)]
pub struct AsStats {
    /// Demand-zero / file-fill faults served.
    pub demand_faults: u64,
    /// COW breaks that copied a frame.
    pub cow_copies: u64,
    /// COW breaks resolved by re-using a sole-owner frame.
    pub cow_reuses: u64,
    /// PTEs copied into children across all forks of this space.
    pub ptes_copied: u64,
    /// VMA records cloned across all forks.
    pub vmas_cloned: u64,
    /// Pages eagerly copied by `ForkMode::Eager` forks.
    pub pages_eager_copied: u64,
    /// Leaf page-table subtrees shared with children by on-demand forks.
    pub pt_subtrees_shared: u64,
    /// Shared subtrees privatized on first touch (the deferred copies).
    pub pt_unshares: u64,
    /// PTEs copied during those deferred subtree privatizations.
    pub ptes_unshare_copied: u64,
}

/// A process address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    /// VMAs keyed by start VPN.
    pub(crate) vmas: BTreeMap<u64, VmArea>,
    pub(crate) pt: crate::page_table::PageTable,
    /// Installed PTEs that are swap entries rather than frames. The page
    /// table counts both kinds as "mapped"; residency subtracts this.
    pub(crate) swapped: u64,
    /// Work counters.
    pub stats: AsStats,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace {
            vmas: BTreeMap::new(),
            pt: crate::page_table::PageTable::new(),
            swapped: 0,
            stats: AsStats::default(),
        }
    }

    /// Returns the VMA covering `vpn`, if any.
    pub fn vma_at(&self, vpn: Vpn) -> Option<&VmArea> {
        self.vmas
            .range(..=vpn.0)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(vpn))
    }

    /// Iterates over all VMAs in address order.
    pub fn vmas(&self) -> impl Iterator<Item = &VmArea> {
        self.vmas.values()
    }

    /// Number of VMAs.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Total mapped (resident) pages. Swap entries occupy page-table
    /// slots but hold no frame, so they are excluded.
    pub fn resident_pages(&self) -> u64 {
        self.pt.mapped_pages() - self.swapped
    }

    /// Pages of this space currently evicted to the swap device.
    pub fn swapped_pages(&self) -> u64 {
        self.swapped
    }

    /// Total pages covered by VMAs (virtual size).
    pub fn virtual_pages(&self) -> u64 {
        self.vmas.values().map(|v| v.pages).sum()
    }

    /// Page-table nodes in use (what fork must allocate for the child).
    pub fn pt_nodes(&self) -> usize {
        self.pt.node_count()
    }

    /// Commit charge of this space: pages whose frames the kernel may have
    /// to materialise (private-writable or anonymous mappings).
    pub fn commit_pages(&self) -> u64 {
        self.vmas.values().map(commit_charge).sum()
    }

    /// Installs a new mapping.
    ///
    /// Shared anonymous mappings are populated eagerly so that frames are
    /// shared with children forked later (the simulator has no global page
    /// cache; see DESIGN.md).
    pub fn mmap(
        &mut self,
        area: VmArea,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<()> {
        if area.pages == 0 {
            return Err(MemError::BadAlignment);
        }
        if !area.start.is_user() || !Vpn(area.start.0 + area.pages - 1).is_user() {
            return Err(MemError::BadAddress);
        }
        if self.overlaps(area.start, area.pages) {
            return Err(MemError::Overlap);
        }
        let eager_shared = area.share == Share::Shared;
        let start = area.start;
        let pages = area.pages;
        self.vmas.insert(area.start.0, area);
        if eager_shared {
            if let Err(e) = self.populate(start, pages, phys, cycles) {
                // Roll back the partial population and the VMA record so a
                // failed mmap leaves the space untouched.
                for (vpn, pte) in self.pt.leaves_in_range(start, pages) {
                    self.pt.unmap(vpn).expect("leaf just enumerated");
                    phys.dec_ref(pte.pfn, cycles).expect("frame just installed");
                }
                self.vmas.remove(&start.0);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Returns true if `[start, start+pages)` overlaps an existing VMA.
    pub fn overlaps(&self, start: Vpn, pages: u64) -> bool {
        self.vmas.values().any(|v| v.overlaps(start, pages))
    }

    /// Finds a free aligned run of `pages` pages at or above `hint`.
    pub fn find_free_range(&self, pages: u64, hint: Vpn) -> MemResult<Vpn> {
        let mut candidate = hint.0;
        loop {
            if !Vpn(candidate + pages.saturating_sub(1)).is_user() {
                return Err(MemError::Fragmented);
            }
            // Find the first VMA that overlaps the candidate run.
            let conflict = self
                .vmas
                .values()
                .filter(|v| v.overlaps(Vpn(candidate), pages))
                .map(|v| v.end().0)
                .max();
            match conflict {
                None => return Ok(Vpn(candidate)),
                Some(end) => candidate = end,
            }
        }
    }

    /// Removes mappings in `[start, start+pages)`, splitting VMAs that
    /// straddle the boundary and releasing frames.
    pub fn munmap(
        &mut self,
        start: Vpn,
        pages: u64,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
        tlb: &mut TlbModel,
        cpus_running: u32,
    ) -> MemResult<u64> {
        if pages == 0 {
            return Err(MemError::BadAlignment);
        }
        self.split_at(start);
        self.split_at(Vpn(start.0 + pages));
        let doomed: Vec<u64> = self
            .vmas
            .range(start.0..start.0 + pages)
            .map(|(k, _)| *k)
            .collect();
        let mut released = self.prepare_release_range(start, pages, phys, cycles)?;
        for k in doomed {
            let v = self.vmas.remove(&k).expect("key just enumerated");
            for (vpn, pte) in self.pt.leaves_in_range(v.start, v.pages) {
                self.pt.unmap(vpn).expect("leaf just enumerated");
                if pte.is_swap() {
                    // A swap entry holds a device slot, not a frame, and
                    // was never in any TLB (non-present).
                    phys.swap_mut().dec_ref(pte.swap_slot())?;
                    self.swapped -= 1;
                } else {
                    phys.dec_ref(pte.pfn, cycles)?;
                    released += 1;
                }
            }
        }
        if released > 0 {
            let cost = phys.cost().clone();
            tlb.shootdown(cpus_running, cycles, &cost);
        }
        Ok(released)
    }

    /// Prepares `[start, start+pages)` for translation removal: leaf
    /// subtrees still shared with another space are either detached (when
    /// every present PTE falls inside the range — the other owner keeps
    /// the frames, so dropping our reference is one pointer operation) or
    /// privatized first (when the node straddles the range boundary).
    /// Returns the number of pages released by whole-node detaches.
    fn prepare_release_range(
        &mut self,
        start: Vpn,
        pages: u64,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<u64> {
        let mut released = 0u64;
        loop {
            // Detach/privatize invalidate arena coordinates, so rescan
            // after each mutation; shared nodes are rare and the scan is
            // O(nodes).
            let mut target: Option<(u64, bool)> = None;
            for (base, l1, idx) in self.pt.leaf_slot_coords() {
                let arc = self.pt.leaf_at(l1, idx);
                if Arc::strong_count(arc) == 1 {
                    continue;
                }
                let mut any_in = false;
                let mut all_in = true;
                for (j, slot) in arc.ptes.iter().enumerate() {
                    if slot.is_some() {
                        let v = base | j as u64;
                        if v >= start.0 && v < start.0 + pages {
                            any_in = true;
                        } else {
                            all_in = false;
                        }
                    }
                }
                if any_in {
                    target = Some((base, all_in));
                    break;
                }
            }
            match target {
                None => return Ok(released),
                Some((base, true)) => {
                    let arc = self.pt.detach_leaf(base).expect("node just enumerated");
                    // Slot references follow leaf-node identity, so the
                    // surviving owner keeps the swap slots too.
                    let swap_in_node =
                        arc.ptes.iter().flatten().filter(|p| p.is_swap()).count() as u64;
                    self.swapped -= swap_in_node;
                    released += arc.live as u64 - swap_in_node;
                    // Still referenced by the other space, which releases
                    // the frames when it drops its copy; our drop is free.
                }
                Some((base, false)) => {
                    self.unshare_subtree(Vpn(base), phys, cycles)?;
                }
            }
        }
    }

    /// Splits the VMA containing `at` so that `at` becomes a VMA boundary.
    /// No-op if `at` is already a boundary or unmapped.
    pub fn split_at(&mut self, at: Vpn) {
        let key = match self
            .vmas
            .range(..at.0)
            .next_back()
            .filter(|(_, v)| v.contains(at))
            .map(|(k, _)| *k)
        {
            Some(k) => k,
            None => return,
        };
        let mut low = self.vmas.remove(&key).expect("key just found");
        let mut high = low.clone();
        let split_pages = at.0 - low.start.0;
        low.pages = split_pages;
        high.start = at;
        high.pages -= split_pages;
        if let Backing::File {
            file_id,
            page_offset,
        } = high.backing
        {
            high.backing = Backing::File {
                file_id,
                page_offset: page_offset + split_pages,
            };
        }
        self.vmas.insert(low.start.0, low);
        self.vmas.insert(high.start.0, high);
    }

    /// Changes protection on `[start, start+pages)`, splitting VMAs as
    /// needed and downgrading PTE permissions (an upgrade takes effect
    /// lazily through faults, as on real hardware).
    #[allow(clippy::too_many_arguments)]
    pub fn mprotect(
        &mut self,
        start: Vpn,
        pages: u64,
        prot: crate::vma::Prot,
        cycles: &mut Cycles,
        phys: &mut PhysMemory,
        tlb: &mut TlbModel,
        cpus_running: u32,
    ) -> MemResult<()> {
        // The whole range must be mapped.
        let mut covered = 0;
        for v in self.vmas.values().filter(|v| v.overlaps(start, pages)) {
            covered += v
                .pages
                .min(start.0 + pages - v.start.0)
                .min(v.end().0 - start.0)
                .min(pages);
        }
        if covered < pages {
            return Err(MemError::NotMapped);
        }
        self.split_at(start);
        self.split_at(Vpn(start.0 + pages));
        let keys: Vec<u64> = self
            .vmas
            .range(start.0..start.0 + pages)
            .map(|(k, _)| *k)
            .collect();
        let mut downgraded = false;
        for k in keys {
            let v = self.vmas.get_mut(&k).expect("key just enumerated");
            let removing_write = v.prot.write && !prot.write;
            v.prot = prot;
            if removing_write {
                let vs = v.start;
                let vp = v.pages;
                for (vpn, pte) in self.pt.leaves_in_range(vs, vp) {
                    downgraded = true;
                    let mut new = pte;
                    new.flags = new.flags.minus(PteFlags::WRITABLE);
                    if new != pte {
                        // A shared subtree must be privatized before its
                        // PTEs change: the child keeps its permissions.
                        self.unshare_subtree(vpn, phys, cycles)?;
                        self.pt.update(vpn, new).expect("leaf just enumerated");
                    }
                }
            }
        }
        if downgraded {
            let cost = phys.cost().clone();
            tlb.shootdown(cpus_running, cycles, &cost);
        }
        Ok(())
    }

    /// Discards the resident pages of `[start, start+pages)` without
    /// unmapping the VMAs (`MADV_DONTNEED`): frames are released and the
    /// next access demand-fills from the backing object.
    pub fn discard(
        &mut self,
        start: Vpn,
        pages: u64,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
        tlb: &mut TlbModel,
        cpus_running: u32,
    ) -> MemResult<u64> {
        if pages == 0 {
            return Err(MemError::BadAlignment);
        }
        // Every page of the range must be covered by some VMA.
        for i in 0..pages {
            if self.vma_at(start.add(i)).is_none() {
                return Err(MemError::NotMapped);
            }
        }
        let mut released = self.prepare_release_range(start, pages, phys, cycles)?;
        for (vpn, pte) in self.pt.leaves_in_range(start, pages) {
            self.pt.unmap(vpn).expect("leaf just enumerated");
            if pte.is_swap() {
                phys.swap_mut().dec_ref(pte.swap_slot())?;
                self.swapped -= 1;
            } else {
                phys.dec_ref(pte.pfn, cycles)?;
                released += 1;
            }
        }
        if released > 0 {
            let cost = phys.cost().clone();
            tlb.shootdown(cpus_running, cycles, &cost);
        }
        Ok(released)
    }

    /// Relocates the VMA starting exactly at `old_start` to `new_start`,
    /// carrying its resident pages along: every present PTE is remapped at
    /// the new base with the same frame and flags. No frames are copied,
    /// no reference counts change, and the commit charge is untouched —
    /// the mapping just moves. Returns the number of PTEs moved.
    ///
    /// This is the warm-pool ASLR primitive: a parked child's segments are
    /// loaded at provisional bases, and checkout slides each VMA to a
    /// freshly randomized base. The caller is responsible for TLB
    /// invalidation; a never-scheduled address space (no CPU ever loaded
    /// its root) needs none.
    ///
    /// The destination range must be entirely free (including of the
    /// source VMA itself — overlapping slides are rejected). On `Err` the
    /// space is unchanged.
    pub fn slide_vma(
        &mut self,
        old_start: Vpn,
        new_start: Vpn,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<u64> {
        if old_start == new_start {
            return Ok(0);
        }
        let vma = self
            .vmas
            .get(&old_start.0)
            .cloned()
            .ok_or(MemError::NotMapped)?;
        if !new_start.is_user() || !Vpn(new_start.0 + vma.pages - 1).is_user() {
            return Err(MemError::BadAddress);
        }
        if self.overlaps(new_start, vma.pages) {
            return Err(MemError::Overlap);
        }
        // Leaf subtrees still shared with another space cannot be mutated
        // in place; privatize them first (no-op for a private space).
        let span = PT_ENTRIES as u64;
        let first_base = old_start.0 & !(span - 1);
        let mut base = first_base;
        while base < old_start.0 + vma.pages {
            self.unshare_subtree(Vpn(base), phys, cycles)?;
            base += span;
        }
        let present = self.pt.leaves_in_range(old_start, vma.pages);
        // Map into the destination first so a mid-slide allocation failure
        // (page-table node exhaustion, injected fault) can roll back by
        // unmapping only what was just mapped — the source is untouched
        // until every destination entry exists.
        let mut moved: Vec<Vpn> = Vec::with_capacity(present.len());
        for (vpn, pte) in &present {
            let nv = Vpn(vpn.0 - old_start.0 + new_start.0);
            cycles.charge(cost.pte_copy);
            if let Err(e) = self.pt.map(nv, *pte, cycles, cost) {
                for m in moved {
                    self.pt.unmap(m).expect("destination entry just mapped");
                }
                return Err(e);
            }
            moved.push(nv);
        }
        for (vpn, _) in &present {
            self.pt.unmap(*vpn).expect("source entry just enumerated");
        }
        let mut vma = self.vmas.remove(&old_start.0).expect("looked up above");
        vma.start = new_start;
        self.vmas.insert(new_start.0, vma);
        metrics::add("mem.slide.pte_move", present.len() as u64);
        sink::instant("vma_slide", "mem", cycles.total());
        Ok(present.len() as u64)
    }

    /// Maps an already-allocated frame at `vpn` copy-on-write — the exec
    /// image-cache hit path. The caller keeps whatever reference it holds
    /// (a kernel pin); this call takes one more for the new mapping. The
    /// page arrives write-protected with [`PteFlags::COW`] set, so a first
    /// write breaks the share with an ordinary COW copy; `exec` governs
    /// the NX bit. Charges one PTE copy. On `Err` nothing changed.
    ///
    /// The target must lie inside an existing VMA and must not already be
    /// resident.
    pub fn map_shared_frame(
        &mut self,
        vpn: Vpn,
        pfn: Pfn,
        exec: bool,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<()> {
        if self.vma_at(vpn).is_none() {
            return Err(MemError::NotMapped);
        }
        let cost = phys.cost().clone();
        let mut flags = PteFlags::USER | PteFlags::ACCESSED | PteFlags::COW;
        if !exec {
            flags = flags | PteFlags::NX;
        }
        phys.inc_ref(pfn)?;
        cycles.charge(cost.pte_copy);
        if let Err(e) = self.pt.map(vpn, Pte::new(pfn, flags), cycles, &cost) {
            phys.dec_ref(pfn, cycles).expect("reference just taken");
            return Err(e);
        }
        Ok(())
    }

    /// Write-protects and COW-marks the resident page at `vpn` — the donor
    /// side of an exec image-cache insert. The frame is about to gain a
    /// long-lived kernel pin, so the donor must no longer write it in
    /// place; its first write after this breaks the share like any COW
    /// page. Returns the PTE now installed. Charges no cycles: tightening
    /// permissions on a page the donor has not yet been scheduled to touch
    /// is flag surgery, not copied data, and the insert path must leave
    /// the donor's spawn cost exactly equal to the uncached path.
    pub fn cow_protect_page(&mut self, vpn: Vpn, phys: &mut PhysMemory, cycles: &mut Cycles) -> MemResult<Pte> {
        let pte = self.pt.translate(vpn).ok_or(MemError::NotMapped)?;
        if pte.is_swap() {
            // A swapped-out page is not resident and cannot donate its
            // frame to the image cache.
            return Err(MemError::NotMapped);
        }
        let mut new = pte;
        new.flags = new.flags.minus(PteFlags::WRITABLE).union(PteFlags::COW);
        if new != pte {
            self.unshare_subtree(vpn, phys, cycles)?;
            self.pt.update(vpn, new).expect("translated above");
        }
        Ok(new)
    }

    /// Rewrites the fork policy of every page in `[start, start+pages)`,
    /// splitting VMAs at the boundaries (`madvise` with the fork-related
    /// advice values).
    pub fn set_fork_policy(
        &mut self,
        start: Vpn,
        pages: u64,
        f: impl Fn(&mut crate::vma::ForkPolicy),
    ) -> MemResult<()> {
        if pages == 0 {
            return Err(MemError::BadAlignment);
        }
        for i in 0..pages {
            if self.vma_at(start.add(i)).is_none() {
                return Err(MemError::NotMapped);
            }
        }
        self.split_at(start);
        self.split_at(Vpn(start.0 + pages));
        for (_, v) in self.vmas.range_mut(start.0..start.0 + pages) {
            f(&mut v.fork_policy);
        }
        Ok(())
    }

    /// Pre-faults every page of `[start, start+pages)` (like
    /// `MAP_POPULATE` / `mlock`), making them resident.
    pub fn populate(
        &mut self,
        start: Vpn,
        pages: u64,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<()> {
        for i in 0..pages {
            let vpn = start.add(i);
            match self.pt.translate(vpn) {
                Some(pte) if pte.is_swap() => {
                    self.swap_in(vpn, pte, phys, cycles)?;
                }
                Some(_) => {}
                None => {
                    self.demand_fill(vpn, phys, cycles)?;
                }
            }
        }
        Ok(())
    }

    /// Observes the logical content of the page at `vpn` *without*
    /// faulting: present pages read their frame, absent pages report the
    /// content a fault would install. Test/verification aid.
    pub fn observe(&self, vpn: Vpn, phys: &PhysMemory) -> MemResult<u64> {
        let vma = self.vma_at(vpn).ok_or(MemError::NotMapped)?;
        match self.pt.translate(vpn) {
            Some(pte) if pte.is_swap() => phys.swap().peek(pte.swap_slot()),
            Some(pte) => phys.content(pte.pfn),
            None => Ok(vma.initial_content(vpn)),
        }
    }

    /// Returns the PTE for `vpn`, if resident.
    pub fn translate(&self, vpn: Vpn) -> Option<Pte> {
        self.pt.translate(vpn)
    }

    /// Visits every resident page with its PTE, in ascending VPN order
    /// (verification aid for kernel-wide invariant checks). Swap entries
    /// hold no frame and are skipped; see
    /// [`Self::for_each_swap_entry_keyed`].
    pub fn for_each_resident(&self, mut f: impl FnMut(Vpn, Pte)) {
        self.pt.for_each_leaf(|vpn, pte| {
            if pte.is_present() {
                f(vpn, pte)
            }
        })
    }

    /// Like [`Self::for_each_resident`], but also yields a stable identity
    /// for the leaf page-table node holding each PTE. Two spaces yielding
    /// the same identity reference the *same* shared subtree (on-demand
    /// fork), so cross-space accounting must count its PTEs once.
    pub fn for_each_resident_keyed(&self, mut f: impl FnMut(usize, Vpn, Pte)) {
        self.pt.for_each_leaf_keyed(|id, vpn, pte| {
            if pte.is_present() {
                f(id, vpn, pte)
            }
        })
    }

    /// Visits every swap entry with its slot index, plus the stable leaf
    /// identity (same contract as [`Self::for_each_resident_keyed`]: a
    /// shared subtree's slots must be counted once across spaces).
    pub fn for_each_swap_entry_keyed(&self, mut f: impl FnMut(usize, Vpn, u64)) {
        self.pt.for_each_leaf_keyed(|id, vpn, pte| {
            if pte.is_swap() {
                f(id, vpn, pte.swap_slot())
            }
        })
    }

    /// Scans for pages the reclaim swap tier may evict, cheapest first:
    /// clean pages before dirty ones. A page qualifies only when evicting
    /// it cannot be observed by anyone else: private anonymous mapping,
    /// sole frame owner (no COW sharing), unpinned, not `MAP_SHARED`, and
    /// not inside a leaf subtree an on-demand fork still shares. Returns
    /// at most `max` pages.
    pub fn swap_out_candidates(&self, phys: &PhysMemory, max: usize) -> Vec<Vpn> {
        if max == 0 {
            return Vec::new();
        }
        let mut clean: Vec<Vpn> = Vec::new();
        let mut dirty: Vec<Vpn> = Vec::new();
        for (base, l1, idx) in self.pt.leaf_slot_coords() {
            let arc = self.pt.leaf_at(l1, idx);
            if Arc::strong_count(arc) != 1 {
                // Evicting through a shared subtree would pull the page
                // out from under the other space.
                continue;
            }
            for (j, slot) in arc.ptes.iter().enumerate() {
                let Some(pte) = slot else { continue };
                if !pte.is_present() || pte.flags.contains(PteFlags::SHARED) {
                    continue;
                }
                if phys.refs(pte.pfn).unwrap_or(u32::MAX) != 1 || phys.pin_count(pte.pfn) > 0 {
                    continue;
                }
                let vpn = Vpn(base | j as u64);
                let anon_private = self
                    .vma_at(vpn)
                    .map(|v| v.share == Share::Private && matches!(v.backing, Backing::Anon))
                    .unwrap_or(false);
                if !anon_private {
                    continue;
                }
                if pte.flags.contains(PteFlags::DIRTY) {
                    dirty.push(vpn);
                } else {
                    clean.push(vpn);
                }
            }
        }
        clean.extend(dirty);
        clean.truncate(max);
        clean
    }

    /// Replaces the resident candidate at `vpn` with a swap entry for
    /// `slot`, releasing its frame. Infallible by construction: the
    /// kernel's swap-out pass has already reserved the slot and crossed
    /// every fault site, so this is the commit half of the transaction —
    /// a PTE rewrite plus a frame release.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` is not a resident sole-owner page (i.e. was not
    /// vetted by [`Self::swap_out_candidates`] in the same pass).
    pub fn swap_out_commit(
        &mut self,
        vpn: Vpn,
        slot: u64,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) {
        let pte = self.pt.translate(vpn).expect("candidate still resident");
        assert!(pte.is_present(), "candidate already swapped");
        self.pt
            .update(vpn, Pte::swap_entry(slot))
            .expect("translated above");
        phys.dec_ref(pte.pfn, cycles).expect("sole owner");
        self.swapped += 1;
    }

    /// Tears down the whole space, releasing every frame. Must be called
    /// before dropping the space (frames are owned by [`PhysMemory`]).
    ///
    /// Leaf subtrees still shared with another space are dropped with one
    /// refcount decrement — the surviving owner releases the frames — so
    /// a child that exits without touching its memory tears down in
    /// O(nodes), mirroring the cheap-exit property of on-demand fork.
    pub fn destroy(&mut self, phys: &mut PhysMemory, cycles: &mut Cycles) {
        for (_, arc) in self.pt.take_leaves() {
            match Arc::try_unwrap(arc) {
                Ok(node) => {
                    for pte in node.ptes.iter().flatten() {
                        if pte.is_swap() {
                            phys.swap_mut()
                                .dec_ref(pte.swap_slot())
                                .expect("slot tracked");
                        } else {
                            phys.dec_ref(pte.pfn, cycles).expect("frame tracked");
                        }
                    }
                }
                Err(_) => {
                    // Still shared: the other table keeps the frames (and
                    // swap slots — references follow leaf identity) alive.
                }
            }
        }
        self.swapped = 0;
        self.vmas.clear();
    }

    /// True if the leaf page-table subtree covering `vpn` is still shared
    /// with another address space (an on-demand fork has not yet been
    /// broken for that 512-page region). Verification aid.
    pub fn subtree_shared(&self, vpn: Vpn) -> bool {
        self.pt.leaf_shared(vpn)
    }

    /// Replaces the shared leaf subtree covering `vpn` with a private deep
    /// copy, taking one frame reference per present PTE (each table slot
    /// now references the frames independently). No-op if the subtree is
    /// not shared. This is the deferred copy that on-demand fork pushed
    /// out of fork itself; callers charge fault/TLB costs as appropriate.
    pub(crate) fn unshare_subtree(
        &mut self,
        vpn: Vpn,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<()> {
        if !self.pt.leaf_shared(vpn) {
            return Ok(());
        }
        let cost = phys.cost().clone();
        let present = self.pt.privatize_leaf(vpn, cycles, &cost)?;
        for pte in &present {
            if pte.is_swap() {
                // The privatized copy now references the slot from a
                // second distinct leaf node.
                phys.swap_mut()
                    .inc_ref(pte.swap_slot())
                    .expect("slot tracked by shared subtree");
            } else {
                phys.inc_ref(pte.pfn)
                    .expect("frame tracked by shared subtree");
            }
        }
        self.stats.pt_unshares += 1;
        self.stats.ptes_unshare_copied += present.len() as u64;
        metrics::incr("mem.unshare.pt_node");
        metrics::add("mem.unshare.pte_copy", present.len() as u64);
        sink::instant("pt_unshare", "mem", cycles.total());
        Ok(())
    }

    /// Duplicates `parent` into a new address space, implementing the
    /// semantics of `fork(2)`.
    ///
    /// Work performed (and charged):
    /// * one VMA-record clone per inherited mapping;
    /// * one PTE copy per resident page (plus the child's page-table
    ///   nodes), COW-marking private pages in **both** spaces;
    /// * for [`ForkMode::Eager`], a full page copy per resident private page;
    /// * one TLB shootdown across `cpus_running` CPUs, because the
    ///   parent's writable translations were just write-protected.
    ///
    /// `MADV_DONTFORK` mappings are skipped, `MADV_WIPEONFORK` mappings are
    /// inherited empty, and `MAP_SHARED` mappings alias the same frames.
    ///
    /// # Transactionality
    ///
    /// `fork_from` is all-or-nothing. A mid-walk failure (frame or
    /// page-table-node exhaustion, injected fault) rolls back completely:
    /// every PTE the parent had downgraded to COW is restored to its
    /// original flags, and the partially-built child is destroyed, which
    /// drops every reference count it took. On `Err`, the parent and
    /// [`PhysMemory`] are exactly as they were before the call (cycle
    /// charges for work attempted are kept — time was really spent).
    pub fn fork_from(
        parent: &mut AddressSpace,
        mode: ForkMode,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
        tlb: &mut TlbModel,
        cpus_running: u32,
    ) -> MemResult<AddressSpace> {
        let mut child = AddressSpace::new();
        let stats_base = parent.stats.clone();
        sink::span_begin("address_space_fork", "mem", cycles.total());
        // Undo log: parent PTEs downgraded to COW, with their original
        // value, in case the walk fails partway.
        let mut downgrades: Vec<(Vpn, Pte)> = Vec::new();
        let result = match mode {
            ForkMode::OnDemand => {
                Self::fork_walk_on_demand(parent, &mut child, &mut downgrades, phys, cycles)
            }
            _ => Self::fork_walk(parent, &mut child, &mut downgrades, mode, phys, cycles),
        };
        let cost = phys.cost().clone();
        let out = match result {
            Ok(()) => {
                if !downgrades.is_empty() || mode == ForkMode::Eager {
                    // The parent's mappings changed (COW) or its pages were
                    // read via their kernel mappings (eager); either way
                    // stale translations must be flushed everywhere the
                    // parent runs.
                    tlb.shootdown(cpus_running, cycles, &cost);
                }
                let s = &parent.stats;
                metrics::add("mem.fork.vma_clone", s.vmas_cloned - stats_base.vmas_cloned);
                metrics::add("mem.fork.pte_copy", s.ptes_copied - stats_base.ptes_copied);
                metrics::add(
                    "mem.fork.pt_subtree_share",
                    s.pt_subtrees_shared - stats_base.pt_subtrees_shared,
                );
                metrics::add(
                    "mem.fork.page_copy",
                    s.pages_eager_copied - stats_base.pages_eager_copied,
                );
                metrics::add(
                    "mem.fork.pt_node",
                    (child.pt.node_count() as u64).saturating_sub(1),
                );
                Ok(child)
            }
            Err(e) => {
                // Roll back. The partial child is torn down *first*:
                // dropping its shared-subtree references makes the
                // parent's leaf nodes exclusively owned again, which the
                // downgrade restores below require (they mutate PTEs in
                // place). Destruction releases every frame reference the
                // child took; restoring the downgrades is a permission
                // upgrade, so no shootdown is needed — stale read-only
                // translations fault and retry.
                child.destroy(phys, cycles);
                for (vpn, orig) in downgrades {
                    parent.pt.update(vpn, orig).expect("downgraded leaf still mapped");
                }
                sink::instant("fork_rollback", "mem", cycles.total());
                Err(e)
            }
        };
        sink::span_end("address_space_fork", cycles.total());
        out
    }

    /// The fallible body of an on-demand fork: clones VMA records, then
    /// shares whole leaf page-table subtrees with the child by refcount
    /// instead of copying PTEs. A subtree is shareable when every present
    /// PTE in it is inherited by the child; nodes straddling `DONTFORK` /
    /// `WIPEONFORK` boundaries fall back to the per-PTE COW copy. When a
    /// node is shared for the first time, its private writable PTEs are
    /// COW-marked in place (one marking serves both tables — that is what
    /// sharing means), and each marking is recorded in `downgrades`.
    fn fork_walk_on_demand(
        parent: &mut AddressSpace,
        child: &mut AddressSpace,
        downgrades: &mut Vec<(Vpn, Pte)>,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<()> {
        let cost = phys.cost().clone();
        let parent_vmas: Vec<VmArea> = parent.vmas.values().cloned().collect();
        for vma in parent_vmas {
            if vma.fork_policy.dont_fork {
                continue;
            }
            fpr_faults::cross(FaultSite::VmaClone).map_err(|_| MemError::OutOfMemory)?;
            cycles.charge(cost.vma_clone);
            parent.stats.vmas_cloned += 1;
            child.vmas.insert(vma.start.0, vma);
        }
        for (base, l1, idx) in parent.pt.leaf_slot_coords() {
            // Classify every present PTE of this 512-entry node: does the
            // child inherit it, and under which sharing policy?
            let span = PT_ENTRIES as u64;
            let covering: Vec<VmArea> = parent
                .vmas
                .values()
                .filter(|v| v.overlaps(Vpn(base), span))
                .cloned()
                .collect();
            let mut slots: Vec<(usize, Vpn, Pte, Option<Share>)> = Vec::new();
            {
                let node = parent.pt.leaf_at(l1, idx);
                for (j, slot) in node.ptes.iter().enumerate() {
                    let Some(pte) = slot else { continue };
                    let vpn = Vpn(base | j as u64);
                    let inherit = covering
                        .iter()
                        .find(|v| v.contains(vpn))
                        .filter(|v| !v.fork_policy.dont_fork && !v.fork_policy.wipe_on_fork)
                        .map(|v| v.share);
                    slots.push((j, vpn, *pte, inherit));
                }
            }
            if !slots.is_empty() && slots.iter().all(|(_, _, _, i)| i.is_some()) {
                // Fast path: hand the whole subtree to the child with one
                // pointer copy and a refcount bump.
                let arc = parent.pt.leaf_at_mut(l1, idx);
                if let Some(node) = Arc::get_mut(arc) {
                    // First sharing of this node: COW-mark its private
                    // writable PTEs in place. A node that is *already*
                    // shared holds no private writable PTEs (they were
                    // marked when it was first shared), so re-sharing
                    // needs no marking — and must not mutate it.
                    for (j, vpn, pte, inherit) in &slots {
                        if *inherit != Some(Share::Private) || !pte.is_writable() {
                            continue;
                        }
                        let slot = node.ptes[*j].as_mut().expect("slot classified present");
                        slot.flags = slot.flags.minus(PteFlags::WRITABLE).union(PteFlags::COW);
                        downgrades.push((*vpn, *pte));
                    }
                }
                let arc = Arc::clone(parent.pt.leaf_at(l1, idx));
                child.pt.attach_leaf(base, arc, cycles, &cost)?;
                // Sharing the node shares its swap entries by identity —
                // no slot refcount change, but the child's residency
                // accounting must know they hold no frames.
                child.swapped += slots.iter().filter(|(_, _, p, _)| p.is_swap()).count() as u64;
                parent.stats.pt_subtrees_shared += 1;
                sink::instant("pt_subtree_share", "mem", cycles.total());
                continue;
            }
            // Mixed node: per-PTE COW copy for the inherited slots only.
            for (_, vpn, pte, inherit) in slots {
                let Some(share) = inherit else { continue };
                cycles.charge(cost.pte_copy);
                parent.stats.ptes_copied += 1;
                if pte.is_swap() {
                    Self::fork_copy_swap_entry(child, vpn, pte, phys, cycles, &cost)?;
                    continue;
                }
                match share {
                    Share::Shared => {
                        phys.inc_ref(pte.pfn)?;
                        if let Err(e) = child.pt.map(vpn, pte, cycles, &cost) {
                            phys.dec_ref(pte.pfn, cycles).expect("ref just taken");
                            return Err(e);
                        }
                    }
                    Share::Private => {
                        phys.inc_ref(pte.pfn)?;
                        let mut cow = pte;
                        if cow.is_writable() || cow.is_cow() {
                            cow.flags = cow.flags.minus(PteFlags::WRITABLE).union(PteFlags::COW);
                        }
                        if let Err(e) = child.pt.map(vpn, cow, cycles, &cost) {
                            phys.dec_ref(pte.pfn, cycles).expect("ref just taken");
                            return Err(e);
                        }
                        if pte.is_writable() {
                            parent.pt.update(vpn, cow).expect("leaf just enumerated");
                            downgrades.push((vpn, pte));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The fallible body of [`AddressSpace::fork_from`]: clones VMAs and
    /// PTEs into `child`, recording parent downgrades in `downgrades`.
    fn fork_walk(
        parent: &mut AddressSpace,
        child: &mut AddressSpace,
        downgrades: &mut Vec<(Vpn, Pte)>,
        mode: ForkMode,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<()> {
        let cost = phys.cost().clone();
        let parent_vmas: Vec<VmArea> = parent.vmas.values().cloned().collect();
        for vma in parent_vmas {
            if vma.fork_policy.dont_fork {
                continue;
            }
            fpr_faults::cross(FaultSite::VmaClone).map_err(|_| MemError::OutOfMemory)?;
            cycles.charge(cost.vma_clone);
            parent.stats.vmas_cloned += 1;
            child.vmas.insert(vma.start.0, vma.clone());
            if vma.fork_policy.wipe_on_fork {
                // Child starts with an empty (demand-zero) range.
                continue;
            }
            for (vpn, pte) in parent.pt.leaves_in_range(vma.start, vma.pages) {
                cycles.charge(cost.pte_copy);
                parent.stats.ptes_copied += 1;
                if pte.is_swap() {
                    // Swapped pages stay swapped across every fork mode
                    // (even Eager: fork must not block on fallible device
                    // I/O); the child shares the slot like a COW frame.
                    Self::fork_copy_swap_entry(child, vpn, pte, phys, cycles, &cost)?;
                    continue;
                }
                match (vma.share, mode) {
                    (Share::Shared, _) => {
                        phys.inc_ref(pte.pfn)?;
                        if let Err(e) = child.pt.map(vpn, pte, cycles, &cost) {
                            phys.dec_ref(pte.pfn, cycles).expect("ref just taken");
                            return Err(e);
                        }
                    }
                    (Share::Private, ForkMode::Eager) => {
                        let new = phys.copy_frame(pte.pfn, cycles)?;
                        parent.stats.pages_eager_copied += 1;
                        if let Err(e) = child.pt.map(vpn, Pte { pfn: new, ..pte }, cycles, &cost) {
                            phys.dec_ref(new, cycles).expect("frame just copied");
                            return Err(e);
                        }
                    }
                    (Share::Private, ForkMode::Cow | ForkMode::OnDemand) => {
                        phys.inc_ref(pte.pfn)?;
                        let mut cow = pte;
                        if cow.is_writable() || cow.is_cow() {
                            cow.flags = cow.flags.minus(PteFlags::WRITABLE).union(PteFlags::COW);
                        }
                        if let Err(e) = child.pt.map(vpn, cow, cycles, &cost) {
                            phys.dec_ref(pte.pfn, cycles).expect("ref just taken");
                            return Err(e);
                        }
                        if pte.is_writable() {
                            parent.pt.update(vpn, cow).expect("leaf just enumerated");
                            downgrades.push((vpn, pte));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Copies one swap entry into a fork child: the child's distinct leaf
    /// node takes its own slot reference, exactly as a present PTE copy
    /// takes a frame reference.
    fn fork_copy_swap_entry(
        child: &mut AddressSpace,
        vpn: Vpn,
        pte: Pte,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) -> MemResult<()> {
        let slot = pte.swap_slot();
        phys.swap_mut().inc_ref(slot)?;
        if let Err(e) = child.pt.map(vpn, pte, cycles, cost) {
            phys.swap_mut().dec_ref(slot).expect("ref just taken");
            return Err(e);
        }
        child.swapped += 1;
        Ok(())
    }
}

/// Commit charge of one VMA: pages the kernel may need frames for.
fn commit_charge(v: &VmArea) -> u64 {
    match (v.share, v.backing, v.prot.write) {
        // Private writable memory may all be copied.
        (Share::Private, _, true) => v.pages,
        // Shared anonymous memory needs frames exactly once.
        (Share::Shared, Backing::Anon, _) => v.pages,
        // Read-only file text/data can always be reconstructed.
        _ => 0,
    }
}

/// Convenience: an anonymous read-write heap VMA of `pages` pages at `start`.
pub fn heap_vma(start: Vpn, pages: u64) -> VmArea {
    VmArea::anon(start, pages, crate::vma::Prot::RW, VmaKind::Heap)
}

/// Convenience: the page containing virtual address `va`.
pub fn page_of(va: VirtAddr) -> Vpn {
    va.page()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::vma::Prot;

    fn world(frames: u64) -> (PhysMemory, Cycles, TlbModel) {
        (
            PhysMemory::new(frames, CostModel::default()),
            Cycles::new(),
            TlbModel::new(),
        )
    }

    fn anon(start: u64, pages: u64) -> VmArea {
        VmArea::anon(Vpn(start), pages, Prot::RW, VmaKind::Mmap)
    }

    #[test]
    fn mmap_rejects_overlap_and_zero_len() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(10, 5), &mut phys, &mut cy).unwrap();
        assert_eq!(
            a.mmap(anon(12, 1), &mut phys, &mut cy),
            Err(MemError::Overlap)
        );
        assert_eq!(
            a.mmap(anon(20, 0), &mut phys, &mut cy),
            Err(MemError::BadAlignment)
        );
        assert_eq!(a.vma_count(), 1);
    }

    #[test]
    fn vma_at_finds_covering_area() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(10, 5), &mut phys, &mut cy).unwrap();
        a.mmap(anon(100, 2), &mut phys, &mut cy).unwrap();
        assert!(a.vma_at(Vpn(12)).is_some());
        assert!(a.vma_at(Vpn(15)).is_none());
        assert!(a.vma_at(Vpn(9)).is_none());
        assert_eq!(a.vma_at(Vpn(101)).unwrap().start, Vpn(100));
    }

    #[test]
    fn find_free_range_skips_existing() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(10, 5), &mut phys, &mut cy).unwrap();
        a.mmap(anon(15, 5), &mut phys, &mut cy).unwrap();
        assert_eq!(a.find_free_range(3, Vpn(0)).unwrap(), Vpn(0));
        assert_eq!(a.find_free_range(3, Vpn(10)).unwrap(), Vpn(20));
        assert_eq!(a.find_free_range(3, Vpn(12)).unwrap(), Vpn(20));
    }

    #[test]
    fn populate_makes_resident_and_observe_reads_zero() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(0, 8), &mut phys, &mut cy).unwrap();
        assert_eq!(a.resident_pages(), 0);
        a.populate(Vpn(0), 8, &mut phys, &mut cy).unwrap();
        assert_eq!(a.resident_pages(), 8);
        assert_eq!(a.observe(Vpn(3), &phys), Ok(0));
        assert_eq!(a.observe(Vpn(9), &phys), Err(MemError::NotMapped));
    }

    #[test]
    fn munmap_splits_straddling_vma() {
        let (mut phys, mut cy, mut tlb) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(0, 10), &mut phys, &mut cy).unwrap();
        a.populate(Vpn(0), 10, &mut phys, &mut cy).unwrap();
        let released = a
            .munmap(Vpn(3), 4, &mut phys, &mut cy, &mut tlb, 1)
            .unwrap();
        assert_eq!(released, 4);
        assert_eq!(a.vma_count(), 2);
        assert!(a.vma_at(Vpn(2)).is_some());
        assert!(a.vma_at(Vpn(3)).is_none());
        assert!(a.vma_at(Vpn(6)).is_none());
        assert!(a.vma_at(Vpn(7)).is_some());
        assert_eq!(a.resident_pages(), 6);
        assert_eq!(phys.used_frames(), 6);
    }

    #[test]
    fn destroy_releases_all_frames() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(0, 10), &mut phys, &mut cy).unwrap();
        a.populate(Vpn(0), 10, &mut phys, &mut cy).unwrap();
        a.destroy(&mut phys, &mut cy);
        assert_eq!(phys.used_frames(), 0);
        assert_eq!(a.resident_pages(), 0);
    }

    #[test]
    fn commit_charge_counts_private_writable_only() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(0, 10), &mut phys, &mut cy).unwrap(); // RW private: 10
        let mut ro = VmArea::anon(Vpn(20), 5, Prot::R, VmaKind::Text);
        ro.backing = Backing::File {
            file_id: 1,
            page_offset: 0,
        };
        a.mmap(ro, &mut phys, &mut cy).unwrap(); // RO file: 0
        assert_eq!(a.commit_pages(), 10);
    }

    #[test]
    fn slide_vma_moves_resident_pages_without_copying_frames() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(100, 8), &mut phys, &mut cy).unwrap();
        a.populate(Vpn(100), 4, &mut phys, &mut cy).unwrap();
        let pte_before = a.translate(Vpn(102)).unwrap();
        let frames_before = phys.used_frames();
        let refs_before = phys.refs(pte_before.pfn).unwrap();
        let cost = phys.cost().clone();
        let moved = a
            .slide_vma(Vpn(100), Vpn(5000), &mut phys, &mut cy, &cost)
            .unwrap();
        assert_eq!(moved, 4);
        assert!(a.vma_at(Vpn(100)).is_none());
        assert_eq!(a.vma_at(Vpn(5003)).unwrap().start, Vpn(5000));
        assert_eq!(a.translate(Vpn(102)), None);
        assert_eq!(a.translate(Vpn(5002)), Some(pte_before), "same frame, same flags");
        assert_eq!(phys.used_frames(), frames_before, "no frames copied or freed");
        assert_eq!(phys.refs(pte_before.pfn).unwrap(), refs_before);
        assert_eq!(a.resident_pages(), 4);
    }

    #[test]
    fn slide_vma_rejects_occupied_destination_and_missing_source() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(100, 8), &mut phys, &mut cy).unwrap();
        a.mmap(anon(200, 4), &mut phys, &mut cy).unwrap();
        let cost = phys.cost().clone();
        assert_eq!(
            a.slide_vma(Vpn(100), Vpn(198), &mut phys, &mut cy, &cost),
            Err(MemError::Overlap)
        );
        assert_eq!(
            a.slide_vma(Vpn(101), Vpn(400), &mut phys, &mut cy, &cost),
            Err(MemError::NotMapped),
            "source must be an exact VMA start"
        );
        assert_eq!(a.vma_at(Vpn(100)).unwrap().start, Vpn(100), "space unchanged");
    }

    #[test]
    fn slide_vma_charges_per_moved_pte() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(0, 8), &mut phys, &mut cy).unwrap();
        a.populate(Vpn(0), 8, &mut phys, &mut cy).unwrap();
        let cost = phys.cost().clone();
        let before = cy.total();
        a.slide_vma(Vpn(0), Vpn(1024), &mut phys, &mut cy, &cost)
            .unwrap();
        // 8 PTE moves plus one fresh leaf + intermediate nodes at the
        // destination (the source leaf is reclaimed, not re-priced).
        let delta = cy.total() - before;
        assert!(delta >= 8 * cost.pte_copy);
        assert!(delta <= 8 * cost.pte_copy + 4 * cost.pt_node_alloc);
    }

    #[test]
    fn map_shared_frame_installs_cow_mapping_over_pinned_frame() {
        let (mut phys, mut cy, mut tlb) = world(64);
        // Donor page, resident, with a kernel pin as the image cache takes.
        let mut donor = AddressSpace::new();
        donor.mmap(anon(0, 1), &mut phys, &mut cy).unwrap();
        donor.populate(Vpn(0), 1, &mut phys, &mut cy).unwrap();
        let pfn = donor.translate(Vpn(0)).unwrap().pfn;
        phys.pin(pfn).unwrap();

        let mut child = AddressSpace::new();
        child.mmap(anon(100, 1), &mut phys, &mut cy).unwrap();
        child
            .map_shared_frame(Vpn(100), pfn, false, &mut phys, &mut cy)
            .unwrap();
        let pte = child.translate(Vpn(100)).unwrap();
        assert_eq!(pte.pfn, pfn);
        assert!(pte.is_cow() && !pte.is_writable());
        assert!(pte.flags.contains(PteFlags::NX), "data mapping is NX");
        assert_eq!(phys.refs(pfn).unwrap(), 3, "donor map + pin + child map");
        // Double-map of the same page is rejected, space intact.
        assert_eq!(
            child.map_shared_frame(Vpn(100), pfn, false, &mut phys, &mut cy),
            Err(MemError::Overlap)
        );
        assert_eq!(phys.refs(pfn).unwrap(), 3, "failed map returned its ref");
        // The child's first write breaks the share with a private copy.
        child.write(Vpn(100), 7, &mut phys, &mut cy, &mut tlb, 1).unwrap();
        assert_ne!(child.translate(Vpn(100)).unwrap().pfn, pfn);
        assert_eq!(phys.refs(pfn).unwrap(), 2);
    }

    #[test]
    fn cow_protect_page_is_free_and_forces_copy_on_next_write() {
        let (mut phys, mut cy, mut tlb) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(anon(0, 2), &mut phys, &mut cy).unwrap();
        a.write(Vpn(0), 5, &mut phys, &mut cy, &mut tlb, 1).unwrap();
        let pfn = a.translate(Vpn(0)).unwrap().pfn;
        let before = cy.total();
        let pte = a.cow_protect_page(Vpn(0), &mut phys, &mut cy).unwrap();
        assert_eq!(cy.total(), before, "permission tightening is free");
        assert!(pte.is_cow() && !pte.is_writable());
        // Pin the frame as the cache would; the donor's next write must
        // copy (the pinned original keeps the cached content) rather than
        // reuse the frame in place.
        phys.pin(pfn).unwrap();
        a.write(Vpn(0), 9, &mut phys, &mut cy, &mut tlb, 1).unwrap();
        assert_ne!(a.translate(Vpn(0)).unwrap().pfn, pfn);
        assert_eq!(phys.content(pfn), Ok(5), "cached frame unchanged");
        assert_eq!(a.observe(Vpn(0), &phys), Ok(9));
        assert_eq!(
            a.cow_protect_page(Vpn(1), &mut phys, &mut cy),
            Err(MemError::NotMapped),
            "non-resident page cannot donate"
        );
    }

    #[test]
    fn split_at_preserves_file_offsets() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = AddressSpace::new();
        let mut v = VmArea::anon(Vpn(100), 10, Prot::R, VmaKind::Text);
        v.backing = Backing::File {
            file_id: 3,
            page_offset: 5,
        };
        a.mmap(v, &mut phys, &mut cy).unwrap();
        let before = a.observe(Vpn(107), &phys).unwrap();
        a.split_at(Vpn(104));
        assert_eq!(a.vma_count(), 2);
        assert_eq!(a.observe(Vpn(107), &phys).unwrap(), before);
    }
}
