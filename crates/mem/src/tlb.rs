//! TLB cost model: local invalidations and cross-CPU shootdowns.
//!
//! Fork's write-protect pass and every COW break must invalidate stale
//! translations on every CPU currently running threads of the address
//! space. The shootdown is an IPI round-trip per remote CPU, which is why
//! fork "doesn't scale": concurrent forks and the ensuing fault storms
//! serialise on interrupt traffic. The model charges a base cost plus a
//! per-remote-CPU cost and counts events for the scaling experiments.

use crate::cost::{CostModel, Cycles};
use fpr_trace::metrics;
use fpr_trace::sink;
use fpr_trace::{Phase, TraceEvent};

/// TLB accounting for one simulated machine.
#[derive(Debug, Clone)]
pub struct TlbModel {
    /// Whether remote shootdowns are charged (ablation toggle).
    pub shootdowns_enabled: bool,
    /// Number of single-entry local invalidations performed.
    pub local_invalidations: u64,
    /// Number of shootdown rounds initiated.
    pub shootdowns: u64,
    /// Total remote-CPU acknowledgements across all shootdowns.
    pub remote_acks: u64,
}

impl Default for TlbModel {
    fn default() -> Self {
        TlbModel {
            shootdowns_enabled: true,
            local_invalidations: 0,
            shootdowns: 0,
            remote_acks: 0,
        }
    }
}

impl TlbModel {
    /// Creates a model with shootdowns enabled.
    pub fn new() -> TlbModel {
        TlbModel::default()
    }

    /// Charges a local single-entry invalidation (`invlpg`).
    pub fn invalidate_local(&mut self, cycles: &mut Cycles, cost: &CostModel) {
        self.local_invalidations += 1;
        cycles.charge(cost.tlb_invlpg);
        metrics::incr("mem.tlb.invlpg");
    }

    /// Charges a shootdown visible to `cpus_running` CPUs (including the
    /// initiator). With one CPU only the local flush is paid.
    pub fn shootdown(&mut self, cpus_running: u32, cycles: &mut Cycles, cost: &CostModel) {
        self.shootdowns += 1;
        cycles.charge(cost.tlb_shootdown_base);
        if self.shootdowns_enabled && cpus_running > 1 {
            let remote = (cpus_running - 1) as u64;
            self.remote_acks += remote;
            metrics::add("mem.tlb.remote_ack", remote);
            cycles.charge(cost.tlb_shootdown_per_cpu * remote);
        }
        metrics::incr("mem.tlb.shootdown");
        if sink::is_active() {
            sink::emit(
                TraceEvent::new("tlb_shootdown", "mem", Phase::Instant, cycles.total())
                    .arg("cpus", cpus_running as u64),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_invalidation_counts_and_charges() {
        let mut t = TlbModel::new();
        let mut cy = Cycles::new();
        let cost = CostModel::default();
        t.invalidate_local(&mut cy, &cost);
        t.invalidate_local(&mut cy, &cost);
        assert_eq!(t.local_invalidations, 2);
        assert_eq!(cy.total(), 2 * cost.tlb_invlpg);
    }

    #[test]
    fn shootdown_scales_with_remote_cpus() {
        let cost = CostModel::default();
        let mut t = TlbModel::new();
        let mut one = Cycles::new();
        t.shootdown(1, &mut one, &cost);
        let mut eight = Cycles::new();
        t.shootdown(8, &mut eight, &cost);
        assert_eq!(one.total(), cost.tlb_shootdown_base);
        assert_eq!(
            eight.total(),
            cost.tlb_shootdown_base + 7 * cost.tlb_shootdown_per_cpu
        );
        assert_eq!(t.shootdowns, 2);
        assert_eq!(t.remote_acks, 7);
    }

    #[test]
    fn ablation_disables_remote_cost() {
        let cost = CostModel::default();
        let mut t = TlbModel {
            shootdowns_enabled: false,
            ..TlbModel::new()
        };
        let mut cy = Cycles::new();
        t.shootdown(16, &mut cy, &cost);
        assert_eq!(cy.total(), cost.tlb_shootdown_base);
        assert_eq!(t.remote_acks, 0);
    }
}
