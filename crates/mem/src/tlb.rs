//! TLB cost model: local invalidations and cross-CPU shootdowns.
//!
//! Fork's write-protect pass and every COW break must invalidate stale
//! translations on every CPU currently running threads of the address
//! space. The shootdown is an IPI round-trip per remote CPU, which is why
//! fork "doesn't scale": concurrent forks and the ensuing fault storms
//! serialise on interrupt traffic. The model charges a base cost plus a
//! per-remote-CPU cost and counts events for the scaling experiments.

use crate::cost::{CostModel, Cycles};
use fpr_trace::metrics;
use fpr_trace::sink;
use fpr_trace::smp::VLock;
use fpr_trace::{Phase, TraceEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Pages above which a ranged flush stops paying per-page invalidation
/// cost: past this many entries a full-context flush is cheaper, so the
/// per-page term is capped (Linux's `tlb_single_page_flush_ceiling` plays
/// the same role).
pub const RANGE_FLUSH_CEILING: u64 = 64;

/// The machine-wide shootdown interconnect SMP cells share.
///
/// On real hardware, remote TLB shootdowns from different cores contend
/// for the same interrupt fabric and for each target core's attention:
/// an IPI round is not private to its initiator. The bus models that
/// serialization with a [`VLock`] named `"tlb"` — each shootdown that
/// actually reaches remote CPUs holds the bus for its IPI round, so
/// concurrent fork storms on different cells queue up in virtual time
/// and the contention shows in [`fpr_trace::metrics::lock_stats`].
/// Machine-wide tallies are atomics so any cell can read them lock-free.
#[derive(Debug)]
pub struct TlbBus {
    round: VLock<()>,
    shootdowns: AtomicU64,
    remote_acks: AtomicU64,
}

impl TlbBus {
    /// A fresh bus with zeroed tallies.
    #[allow(clippy::new_without_default)]
    pub fn new() -> TlbBus {
        TlbBus {
            round: VLock::new("tlb", ()),
            shootdowns: AtomicU64::new(0),
            remote_acks: AtomicU64::new(0),
        }
    }

    /// Machine-wide count of shootdown rounds that reached remote CPUs.
    pub fn shootdowns_total(&self) -> u64 {
        self.shootdowns.load(Ordering::Relaxed)
    }

    /// Machine-wide count of remote acknowledgements.
    pub fn remote_acks_total(&self) -> u64 {
        self.remote_acks.load(Ordering::Relaxed)
    }

    /// Serializes one IPI round of `remote` acknowledgements on the bus.
    fn serialize_round(&self, remote: u64) {
        let _guard = self.round.lock();
        self.shootdowns.fetch_add(1, Ordering::Relaxed);
        self.remote_acks.fetch_add(remote, Ordering::Relaxed);
    }
}

/// TLB accounting for one simulated machine.
#[derive(Debug, Clone)]
pub struct TlbModel {
    /// Whether remote shootdowns are charged (ablation toggle).
    pub shootdowns_enabled: bool,
    /// Number of single-entry local invalidations performed.
    pub local_invalidations: u64,
    /// Number of shootdown rounds initiated.
    pub shootdowns: u64,
    /// Total remote-CPU acknowledgements across all shootdowns.
    pub remote_acks: u64,
    /// Number of batched ranged flushes initiated.
    pub range_flushes: u64,
    /// Total pages covered by batched ranged flushes.
    pub range_pages_flushed: u64,
    /// Total TLB *entries* invalidated by entry-granular flushes: one per
    /// small page plus one per 2 MiB huge leaf (a huge mapping occupies a
    /// single TLB entry, so flushing it costs one invalidation, not 512).
    pub entries_flushed: u64,
    /// Of [`TlbModel::entries_flushed`], the entries that were huge leaves.
    pub huge_entries_flushed: u64,
    /// The shared shootdown interconnect, when this model belongs to an
    /// SMP cell. `None` (the default) keeps shootdowns private to the
    /// cell — byte-identical to the pre-SMP model.
    pub bus: Option<Arc<TlbBus>>,
}

impl Default for TlbModel {
    fn default() -> Self {
        TlbModel {
            shootdowns_enabled: true,
            local_invalidations: 0,
            shootdowns: 0,
            remote_acks: 0,
            range_flushes: 0,
            range_pages_flushed: 0,
            entries_flushed: 0,
            huge_entries_flushed: 0,
            bus: None,
        }
    }
}

impl TlbModel {
    /// Creates a model with shootdowns enabled.
    pub fn new() -> TlbModel {
        TlbModel::default()
    }

    /// Charges a local single-entry invalidation (`invlpg`).
    pub fn invalidate_local(&mut self, cycles: &mut Cycles, cost: &CostModel) {
        self.local_invalidations += 1;
        cycles.charge(cost.tlb_invlpg);
        metrics::incr("mem.tlb.invlpg");
    }

    /// Charges a shootdown visible to `cpus_running` CPUs (including the
    /// initiator). With one CPU only the local flush is paid.
    pub fn shootdown(&mut self, cpus_running: u32, cycles: &mut Cycles, cost: &CostModel) {
        self.shootdowns += 1;
        cycles.charge(cost.tlb_shootdown_base);
        if self.shootdowns_enabled && cpus_running > 1 {
            let remote = (cpus_running - 1) as u64;
            self.remote_acks += remote;
            metrics::add("mem.tlb.remote_ack", remote);
            cycles.charge(cost.tlb_shootdown_per_cpu * remote);
            // IPI rounds that reach remote CPUs serialize on the shared
            // interconnect when one exists.
            if let Some(bus) = self.bus.as_ref() {
                bus.serialize_round(remote);
            }
        }
        metrics::incr("mem.tlb.shootdown");
        if sink::is_active() {
            sink::emit(
                TraceEvent::new("tlb_shootdown", "mem", Phase::Instant, cycles.total())
                    .arg("cpus", cpus_running as u64),
            );
        }
    }

    /// Charges one batched ranged flush covering `pages` entries: a single
    /// shootdown round (one IPI per remote CPU, not one per page) plus a
    /// per-page invalidation term capped at [`RANGE_FLUSH_CEILING`] — past
    /// the ceiling the flush degrades to a full-context flush and the
    /// per-page cost stops growing.
    ///
    /// With `pages == 0` nothing is flushed and nothing is charged.
    pub fn shootdown_range(
        &mut self,
        cpus_running: u32,
        pages: u64,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) {
        if pages == 0 {
            return;
        }
        self.range_flushes += 1;
        self.range_pages_flushed += pages;
        cycles.charge(cost.tlb_range_flush_page * pages.min(RANGE_FLUSH_CEILING));
        metrics::incr("mem.tlb.range_flush");
        metrics::add("mem.tlb.range_pages", pages);
        self.shootdown(cpus_running, cycles, cost);
    }

    /// Huge-aware ranged flush: one batched shootdown round invalidating
    /// `small_pages` single-page entries plus `huge_entries` 2 MiB-leaf
    /// entries. Each huge leaf costs *one* entry invalidation — the whole
    /// point of huge mappings is that a block occupies one TLB entry — so
    /// tearing down a fully-huge region charges 512× fewer per-entry
    /// invalidations than the same region mapped with small pages. The
    /// per-entry term is capped at [`RANGE_FLUSH_CEILING`] like
    /// [`TlbModel::shootdown_range`].
    ///
    /// With no entries at all nothing is flushed and nothing is charged.
    pub fn shootdown_entries(
        &mut self,
        cpus_running: u32,
        small_pages: u64,
        huge_entries: u64,
        cycles: &mut Cycles,
        cost: &CostModel,
    ) {
        let entries = small_pages + huge_entries;
        if entries == 0 {
            return;
        }
        self.range_flushes += 1;
        self.range_pages_flushed += small_pages;
        self.entries_flushed += entries;
        self.huge_entries_flushed += huge_entries;
        cycles.charge(cost.tlb_range_flush_page * entries.min(RANGE_FLUSH_CEILING));
        metrics::incr("mem.tlb.range_flush");
        metrics::add("mem.tlb.entries_flushed", entries);
        metrics::add("mem.tlb.huge_entries_flushed", huge_entries);
        self.shootdown(cpus_running, cycles, cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_invalidation_counts_and_charges() {
        let mut t = TlbModel::new();
        let mut cy = Cycles::new();
        let cost = CostModel::default();
        t.invalidate_local(&mut cy, &cost);
        t.invalidate_local(&mut cy, &cost);
        assert_eq!(t.local_invalidations, 2);
        assert_eq!(cy.total(), 2 * cost.tlb_invlpg);
    }

    #[test]
    fn shootdown_scales_with_remote_cpus() {
        let cost = CostModel::default();
        let mut t = TlbModel::new();
        let mut one = Cycles::new();
        t.shootdown(1, &mut one, &cost);
        let mut eight = Cycles::new();
        t.shootdown(8, &mut eight, &cost);
        assert_eq!(one.total(), cost.tlb_shootdown_base);
        assert_eq!(
            eight.total(),
            cost.tlb_shootdown_base + 7 * cost.tlb_shootdown_per_cpu
        );
        assert_eq!(t.shootdowns, 2);
        assert_eq!(t.remote_acks, 7);
    }

    #[test]
    fn ranged_flush_charges_one_ipi_round_plus_per_page() {
        let cost = CostModel::default();
        let mut t = TlbModel::new();
        let mut cy = Cycles::new();
        t.shootdown_range(4, 16, &mut cy, &cost);
        assert_eq!(
            cy.total(),
            cost.tlb_shootdown_base + 3 * cost.tlb_shootdown_per_cpu + 16 * cost.tlb_range_flush_page,
            "one shootdown round, not one per page"
        );
        assert_eq!(t.range_flushes, 1);
        assert_eq!(t.range_pages_flushed, 16);
        assert_eq!(t.shootdowns, 1, "ranged flush rides a single shootdown");
    }

    #[test]
    fn ranged_flush_per_page_cost_is_capped() {
        let cost = CostModel::default();
        let mut t = TlbModel::new();
        let mut big = Cycles::new();
        t.shootdown_range(1, 100_000, &mut big, &cost);
        let mut ceil = Cycles::new();
        t.shootdown_range(1, RANGE_FLUSH_CEILING, &mut ceil, &cost);
        assert_eq!(
            big.total(),
            ceil.total(),
            "past the ceiling a full flush is charged instead"
        );
        assert_eq!(t.range_pages_flushed, 100_000 + RANGE_FLUSH_CEILING);
    }

    #[test]
    fn ranged_flush_of_zero_pages_is_free() {
        let cost = CostModel::default();
        let mut t = TlbModel::new();
        let mut cy = Cycles::new();
        t.shootdown_range(8, 0, &mut cy, &cost);
        assert_eq!(cy.total(), 0);
        assert_eq!(t.range_flushes, 0);
        assert_eq!(t.shootdowns, 0);
    }

    #[test]
    fn huge_entry_flush_costs_one_entry_per_leaf() {
        let cost = CostModel::default();
        let mut t = TlbModel::new();
        let mut huge = Cycles::new();
        // Four huge leaves: 4 entry invalidations, not 2048.
        t.shootdown_entries(2, 0, 4, &mut huge, &cost);
        assert_eq!(
            huge.total(),
            cost.tlb_shootdown_base + cost.tlb_shootdown_per_cpu + 4 * cost.tlb_range_flush_page
        );
        assert_eq!(t.entries_flushed, 4);
        assert_eq!(t.huge_entries_flushed, 4);
        // Mixed: 3 small + 1 huge = 4 entries.
        t.shootdown_entries(1, 3, 1, &mut huge, &cost);
        assert_eq!(t.entries_flushed, 8);
        assert_eq!(t.range_pages_flushed, 3);
    }

    #[test]
    fn entry_flush_of_nothing_is_free() {
        let cost = CostModel::default();
        let mut t = TlbModel::new();
        let mut cy = Cycles::new();
        t.shootdown_entries(8, 0, 0, &mut cy, &cost);
        assert_eq!(cy.total(), 0);
        assert_eq!(t.shootdowns, 0);
    }

    #[test]
    fn shared_bus_tallies_remote_rounds_machine_wide() {
        let cost = CostModel::default();
        let bus = Arc::new(TlbBus::new());
        let mut a = TlbModel::new();
        a.bus = Some(Arc::clone(&bus));
        let mut b = TlbModel::new();
        b.bus = Some(Arc::clone(&bus));
        let mut cy = Cycles::new();
        a.shootdown(1, &mut cy, &cost); // local only: never touches the bus
        assert_eq!(bus.shootdowns_total(), 0);
        a.shootdown(4, &mut cy, &cost);
        b.shootdown(2, &mut cy, &cost);
        assert_eq!(bus.shootdowns_total(), 2);
        assert_eq!(bus.remote_acks_total(), 3 + 1);
        // Per-model tallies still accumulate independently.
        assert_eq!(a.remote_acks, 3);
        assert_eq!(b.remote_acks, 1);
    }

    #[test]
    fn ablation_disables_remote_cost() {
        let cost = CostModel::default();
        let mut t = TlbModel {
            shootdowns_enabled: false,
            ..TlbModel::new()
        };
        let mut cy = Cycles::new();
        t.shootdown(16, &mut cy, &cost);
        assert_eq!(cy.total(), cost.tlb_shootdown_base);
        assert_eq!(t.remote_acks, 0);
    }
}
