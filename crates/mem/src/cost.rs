//! Calibrated cycle-cost model for memory-management operations.
//!
//! The paper's Figure 1 measures wall-clock latency on a real kernel. The
//! simulator instead *performs* the same structural work (walking and
//! copying page tables, cloning VMA lists, breaking COW mappings) and
//! charges each primitive operation a fixed cycle cost. The per-operation
//! constants are calibrated against published microarchitectural numbers
//! (cache-line copy bandwidth, IPI latency, page-fault entry cost) so that
//! the *shape* of every experiment — who wins, by what factor, where the
//! crossover falls — matches the paper, while remaining deterministic and
//! machine-independent.
//!
//! All costs are expressed in CPU cycles of a nominal 3 GHz core, so
//! 3_000 cycles ≈ 1 µs.


/// Nominal simulated clock frequency in cycles per microsecond.
pub const CYCLES_PER_US: u64 = 3_000;

/// Per-primitive cycle costs charged by the memory subsystem.
///
/// The defaults model a contemporary x86-64 server; individual fields can
/// be overridden to run ablations (e.g. zeroing `tlb_shootdown_per_cpu`
/// isolates the cost of remote TLB invalidation).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Copying one leaf PTE during fork (read, write, COW-mark both sides).
    pub pte_copy: u64,
    /// Allocating and wiring one intermediate page-table node.
    pub pt_node_alloc: u64,
    /// Cloning one VMA record (allocation + list insertion + accounting).
    pub vma_clone: u64,
    /// Kernel entry/exit for a page fault (trap, save state, return).
    pub fault_entry: u64,
    /// Copying one 4 KiB page of data (COW break or eager fork copy).
    pub page_copy: u64,
    /// Zeroing one 4 KiB page (demand-zero fill).
    pub page_zero: u64,
    /// Allocating one physical frame from the allocator.
    pub frame_alloc: u64,
    /// Freeing one physical frame.
    pub frame_free: u64,
    /// Fixed cost of initiating a TLB shootdown (local flush + setup).
    pub tlb_shootdown_base: u64,
    /// Incremental cost per remote CPU that must acknowledge the shootdown IPI.
    pub tlb_shootdown_per_cpu: u64,
    /// Single-CPU local TLB invalidation of one entry.
    pub tlb_invlpg: u64,
    /// Syscall entry/exit overhead.
    pub syscall: u64,
    /// Reading one page of a file image into a frame (page-cache hit).
    pub file_read_page: u64,
    /// Sharing one leaf page-table subtree at fork: copy one 8-byte
    /// subtree pointer and bump a refcount (on-demand fork fast path).
    pub pt_subtree_share: u64,
    /// Duplicating one open file descriptor at fork (slot copy + open-file
    /// refcount bump).
    pub fd_clone: u64,
    /// Popping one frame off a per-CPU free-list magazine (no global lock,
    /// no list walk — a local stack pop).
    pub frame_cache_hit: u64,
    /// Refilling a per-CPU magazine with one batched buddy allocation:
    /// a single global-allocator acquisition amortized over the batch.
    pub frame_cache_refill: u64,
    /// Extra serialization cost per *other* concurrent allocator when a
    /// frame is taken on the global path (cache-line ping-pong on the
    /// allocator lock). Zero by default; raised in scaling ablations.
    pub frame_alloc_contended: u64,
    /// Per-page increment of a batched ranged TLB flush: one INVLPG-class
    /// invalidation broadcast inside a single shootdown IPI, instead of
    /// one IPI per page.
    pub tlb_range_flush_page: u64,
    /// Reserving one slot in the swap-device bitmap (find-first-zero scan
    /// plus the bookkeeping write).
    pub swap_slot_alloc: u64,
    /// Writing one 4 KiB page out to the swap device. Writes are queued
    /// behind the device's write-back cache, so this is cheaper than the
    /// synchronous read-back.
    pub swap_out_page: u64,
    /// Reading one 4 KiB page back from the swap device on a major fault
    /// (fast-NVMe-class latency; this is what makes thrashing expensive).
    pub swap_in_page: u64,
    /// Collapsing 512 resident small PTEs into one 2 MiB huge leaf:
    /// verify contiguity, rewrite the leaf slot, free the old leaf table.
    pub pt_promote: u64,
    /// Splitting one huge leaf back into 512 small PTEs: allocate a leaf
    /// table and write every entry (Linux's `split_huge_pmd` analogue).
    pub pt_demote: u64,
    /// Installing one 2 MiB huge leaf mapping (one PTE write covering a
    /// whole block — the per-page map cost is what it avoids).
    pub huge_map: u64,
    /// COW-marking or COW-flipping one huge leaf at fork / write-back:
    /// a single PTE flip instead of 512.
    pub huge_cow: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            pte_copy: 12,
            pt_node_alloc: 400,
            vma_clone: 300,
            fault_entry: 1_200,
            page_copy: 800,
            page_zero: 450,
            frame_alloc: 120,
            frame_free: 90,
            tlb_shootdown_base: 1_000,
            tlb_shootdown_per_cpu: 1_800,
            tlb_invlpg: 120,
            syscall: 350,
            file_read_page: 1_000,
            pt_subtree_share: 4,
            fd_clone: 150,
            frame_cache_hit: 20,
            frame_cache_refill: 400,
            frame_alloc_contended: 60,
            tlb_range_flush_page: 40,
            swap_slot_alloc: 150,
            swap_out_page: 24_000,
            swap_in_page: 30_000,
            pt_promote: 600,
            pt_demote: 900,
            huge_map: 450,
            huge_cow: 30,
        }
    }
}

impl CostModel {
    /// Returns a model with every cost zeroed — useful in tests that only
    /// check structural behaviour.
    pub fn free() -> Self {
        CostModel {
            pte_copy: 0,
            pt_node_alloc: 0,
            vma_clone: 0,
            fault_entry: 0,
            page_copy: 0,
            page_zero: 0,
            frame_alloc: 0,
            frame_free: 0,
            tlb_shootdown_base: 0,
            tlb_shootdown_per_cpu: 0,
            tlb_invlpg: 0,
            syscall: 0,
            file_read_page: 0,
            pt_subtree_share: 0,
            fd_clone: 0,
            frame_cache_hit: 0,
            frame_cache_refill: 0,
            frame_alloc_contended: 0,
            tlb_range_flush_page: 0,
            swap_slot_alloc: 0,
            swap_out_page: 0,
            swap_in_page: 0,
            pt_promote: 0,
            pt_demote: 0,
            huge_map: 0,
            huge_cow: 0,
        }
    }
}

/// A monotonically increasing cycle accumulator.
///
/// Every memory and kernel operation charges cycles here; experiment
/// harnesses read [`Cycles::total`] before and after an operation to obtain
/// its deterministic simulated latency.
#[derive(Debug, Default, Clone)]
pub struct Cycles {
    total: u64,
}

impl Cycles {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` cycles. Also advances this OS thread's virtual clock
    /// ([`fpr_trace::vclock`]) by the same amount, so a multithreaded
    /// driver sees every thread's simulated work as elapsed virtual
    /// time; single-threaded callers never read that clock.
    pub fn charge(&mut self, n: u64) {
        self.total = self.total.saturating_add(n);
        fpr_trace::vclock::advance(n);
    }

    /// Returns the cycles accumulated so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Converts the accumulated cycles to microseconds of the nominal core.
    pub fn as_micros(&self) -> f64 {
        self.total as f64 / CYCLES_PER_US as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_nonzero() {
        let m = CostModel::default();
        assert!(m.pte_copy > 0);
        assert!(
            m.page_copy > m.pte_copy,
            "copying data must dominate copying a PTE"
        );
        assert!(m.fault_entry > m.syscall, "faults are dearer than syscalls");
    }

    #[test]
    fn free_model_is_zero() {
        let m = CostModel::free();
        assert_eq!(m.pte_copy + m.page_copy + m.fault_entry + m.syscall, 0);
    }

    #[test]
    fn cycles_accumulate_and_convert() {
        let mut c = Cycles::new();
        c.charge(CYCLES_PER_US);
        c.charge(CYCLES_PER_US * 2);
        assert_eq!(c.total(), 3 * CYCLES_PER_US);
        assert!((c.as_micros() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_saturate() {
        let mut c = Cycles::new();
        c.charge(u64::MAX);
        c.charge(10);
        assert_eq!(c.total(), u64::MAX);
    }
}
