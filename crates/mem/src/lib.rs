//! # fpr-mem — memory substrate for the *fork() in the road* reproduction
//!
//! This crate implements the machine-level memory model the process
//! simulator runs on: physical frames with COW reference counts, a
//! four-level radix page table, VMA lists with the full zoo of fork-era
//! mapping policy (`MAP_SHARED`/`MAP_PRIVATE`, `MADV_DONTFORK`,
//! `MADV_WIPEONFORK`), demand paging, copy-on-write breaks, TLB-shootdown
//! accounting, and Linux-style overcommit policies.
//!
//! Every operation both *does the structural work* (so wall-clock scales
//! the way a kernel's would) and charges a deterministic cycle cost
//! ([`cost::CostModel`]), so experiments report machine-independent
//! latencies.
//!
//! The crate's centrepiece is [`address_space::AddressSpace::fork_from`],
//! which reproduces the O(memory) duplication cost at the heart of the
//! paper's Figure 1.

pub mod addr;
pub mod address_space;
pub mod buddy;
pub mod cost;
pub mod error;
pub mod fault;
pub mod frame;
pub mod overcommit;
pub mod page_table;
pub mod phys;
pub mod pte;
pub mod swap;
pub mod tlb;
pub mod vma;

pub use addr::{pages_for, Pfn, PhysAddr, VirtAddr, Vpn, HUGE_PAGES, HUGE_PAGE_SIZE, PAGE_SIZE};
pub use address_space::{AddressSpace, AsStats, ForkMode};
pub use cost::{CostModel, Cycles, CYCLES_PER_US};
pub use error::{MemError, MemResult};
pub use fault::FaultOutcome;
pub use overcommit::{CommitAccount, OvercommitPolicy};
pub use phys::{
    PhysMemory, PressureLevel, SharedFramePool, ThpStats, Watermarks, CELL_MAGAZINE_BATCH,
};
pub use pte::{Pte, PteFlags};
pub use swap::{SwapDevice, SwapStats};
pub use tlb::{TlbBus, TlbModel};
pub use vma::{Backing, ForkPolicy, Prot, Share, VmArea, VmaKind};
