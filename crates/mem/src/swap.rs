//! Simulated swap device: the reclaim tier below the shrinkers.
//!
//! The paper's overcommit critique is that fork forces a choice between
//! strict commit accounting (spurious `ENOMEM`) and overcommit plus the
//! OOM killer. PR 5's shrinkers soften that, but once the caches are
//! empty the kernel still jumps straight to killing. This module adds the
//! missing tier: anonymous pages can be *evicted to a backing store*,
//! priced through the cycle model, and recovered on fault — so the killer
//! fires only when swap is full *and* reclaim fails.
//!
//! ## Model
//!
//! The device is `capacity` slots of one page each, tracked by a free
//! bitmap (find-first-zero allocation, like Linux's swap map). Each used
//! slot stores the page's content stamp plus a reference count: a slot is
//! shared exactly like a COW frame when fork copies a swap entry, and is
//! freed when the last reference swap-ins or unmaps. Slot references
//! follow the same discipline as frame references — one per *distinct*
//! page-table leaf node holding the entry, so leaves shared by on-demand
//! fork count once.
//!
//! ## Fault injection
//!
//! Two of the three swap fault sites live here:
//! [`FaultSite::SwapSlotAlloc`] is crossed before a slot is reserved, and
//! [`FaultSite::SwapIn`] before a slot is read back (modelling a device
//! I/O error — the read path's caller turns it into SIGBUS-style process
//! death, never kernel failure). The third, [`FaultSite::SwapOut`], is
//! crossed by the kernel's swap-out pass before any mutation.
//!
//! ## Refault detection
//!
//! Every slot records the device's monotonic swap-out counter at birth.
//! A swap-in of a young slot (evicted within the last half-capacity
//! swap-outs) is a *refault*: the page was still in its owner's working
//! set. A sliding window over the most recent swap-ins turns the refault
//! rate into a boolean [`SwapDevice::thrashing`] signal that throttles
//! warm-pool refill and inflates retry backoff.

use crate::cost::{CostModel, Cycles};
use crate::error::{MemError, MemResult};
use fpr_faults::FaultSite;
use fpr_trace::metrics;
use std::collections::BTreeMap;

/// Sliding-window length (swap-ins) over which the refault rate is
/// judged; at least `THRASH_MIN_SAMPLES` samples are required before
/// [`SwapDevice::thrashing`] can report true.
const THRASH_WINDOW: u32 = 32;

/// Minimum swap-ins observed before the thrash signal can assert.
const THRASH_MIN_SAMPLES: u32 = 8;

/// One used slot: the page's content stamp, its reference count, and the
/// swap-out epoch it was written at (for refault detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    stamp: u64,
    refs: u32,
    birth: u64,
}

/// Cumulative swap-device statistics (monotonic counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwapStats {
    /// Pages written out to the device.
    pub swap_outs: u64,
    /// Pages read back on fault.
    pub swap_ins: u64,
    /// Swap-ins of recently evicted slots (working-set misses).
    pub refaults: u64,
    /// Injected device I/O errors observed on the read path.
    pub io_errors: u64,
}

/// The simulated swap device.
///
/// A capacity of zero means "no swap configured": every allocation fails
/// with [`MemError::OutOfMemory`] without crossing a fault site, and the
/// kernel's swap tier is inert — byte-identical to the pre-swap kernel.
#[derive(Debug, Clone)]
pub struct SwapDevice {
    /// Slot-occupancy bitmap, one bit per slot (find-first-zero alloc).
    bitmap: Vec<u64>,
    capacity: u64,
    used: u64,
    slots: BTreeMap<u64, Slot>,
    /// Monotonic swap-out counter; slot birth epochs come from it.
    epoch: u64,
    /// Ring of recent swap-ins: bit i of `recent_bits` set = refault.
    recent_bits: u64,
    recent_len: u32,
    stats: SwapStats,
}

impl SwapDevice {
    /// Creates a device with `capacity` one-page slots (0 = no swap).
    pub fn new(capacity: u64) -> SwapDevice {
        SwapDevice {
            bitmap: vec![0u64; capacity.div_ceil(64) as usize],
            capacity,
            used: 0,
            slots: BTreeMap::new(),
            epoch: 0,
            recent_bits: 0,
            recent_len: 0,
            stats: SwapStats::default(),
        }
    }

    /// True if the device has any capacity at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Total slots.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Slots currently holding a page.
    pub fn used_slots(&self) -> u64 {
        self.used
    }

    /// Slots currently free.
    pub fn free_slots(&self) -> u64 {
        self.capacity - self.used
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SwapStats {
        self.stats
    }

    /// Reserves a free slot and stores `stamp` in it, charging the
    /// bitmap scan plus the device write. Crosses
    /// [`FaultSite::SwapSlotAlloc`] before touching anything, so an
    /// injected failure leaves the device byte-identical.
    pub fn alloc_slot(&mut self, stamp: u64, cycles: &mut Cycles, cost: &CostModel) -> MemResult<u64> {
        if self.free_slots() == 0 {
            return Err(MemError::OutOfMemory);
        }
        fpr_faults::cross(FaultSite::SwapSlotAlloc).map_err(|_| MemError::OutOfMemory)?;
        let slot = self.find_first_zero().expect("free_slots() > 0");
        self.set_bit(slot);
        self.used += 1;
        self.slots.insert(
            slot,
            Slot {
                stamp,
                refs: 1,
                birth: self.epoch,
            },
        );
        self.epoch += 1;
        self.stats.swap_outs += 1;
        cycles.charge(cost.swap_slot_alloc);
        cycles.charge(cost.swap_out_page);
        metrics::incr("mem.swap.out");
        Ok(slot)
    }

    /// Reads a slot back for swap-in, charging the device read and
    /// recording refault statistics. Crosses [`FaultSite::SwapIn`] first:
    /// an injected failure models a device I/O error
    /// ([`MemError::SwapIo`]) with the slot — and its content — intact,
    /// so a retry can still succeed.
    ///
    /// The slot reference is *not* dropped here; the caller releases it
    /// with [`SwapDevice::dec_ref`] only after the page is safely
    /// resident, so a failure between read and map leaks nothing.
    pub fn read_slot(&mut self, slot: u64, cycles: &mut Cycles, cost: &CostModel) -> MemResult<u64> {
        let s = *self.slots.get(&slot).ok_or(MemError::NotMapped)?;
        fpr_faults::cross(FaultSite::SwapIn).map_err(|_| {
            self.stats.io_errors += 1;
            metrics::incr("mem.swap.io_error");
            MemError::SwapIo
        })?;
        cycles.charge(cost.swap_in_page);
        let refault = self.epoch.saturating_sub(s.birth) <= self.refault_horizon();
        self.push_recent(refault);
        self.stats.swap_ins += 1;
        if refault {
            self.stats.refaults += 1;
            metrics::incr("mem.swap.refault");
        }
        metrics::incr("mem.swap.in");
        Ok(s.stamp)
    }

    /// Content stamp of a used slot, without device cost or statistics
    /// (the observation path tests use to compare logical memory).
    pub fn peek(&self, slot: u64) -> MemResult<u64> {
        self.slots.get(&slot).map(|s| s.stamp).ok_or(MemError::NotMapped)
    }

    /// Reference count of a used slot.
    pub fn refs(&self, slot: u64) -> MemResult<u32> {
        self.slots.get(&slot).map(|s| s.refs).ok_or(MemError::NotMapped)
    }

    /// Adds a reference to a used slot (fork copying a swap entry, or a
    /// shared leaf being privatized).
    pub fn inc_ref(&mut self, slot: u64) -> MemResult<()> {
        let s = self.slots.get_mut(&slot).ok_or(MemError::NotMapped)?;
        s.refs += 1;
        Ok(())
    }

    /// Drops a reference, freeing the slot at zero. Returns `true` if
    /// the slot was freed.
    pub fn dec_ref(&mut self, slot: u64) -> MemResult<bool> {
        let s = self.slots.get_mut(&slot).ok_or(MemError::NotMapped)?;
        debug_assert!(s.refs > 0);
        s.refs -= 1;
        if s.refs == 0 {
            self.slots.remove(&slot);
            self.clear_bit(slot);
            self.used -= 1;
            metrics::incr("mem.swap.slot_free");
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Frees a slot outright regardless of refcount — the rollback path
    /// of an aborted swap-out pass, undoing [`SwapDevice::alloc_slot`]
    /// exactly (including the epoch, so an aborted pass leaves the
    /// device byte-identical).
    pub fn unalloc_slot(&mut self, slot: u64) {
        let removed = self.slots.remove(&slot);
        debug_assert!(
            matches!(removed, Some(s) if s.refs == 1),
            "unalloc_slot is only for just-allocated slots"
        );
        self.clear_bit(slot);
        self.used -= 1;
        self.epoch -= 1;
        self.stats.swap_outs -= 1;
    }

    /// True while the recent swap-in window shows a majority of refaults:
    /// the machine is paging against its own working set. Used to
    /// throttle warm-pool refill and inflate retry backoff.
    pub fn thrashing(&self) -> bool {
        if self.recent_len < THRASH_MIN_SAMPLES {
            return false;
        }
        let mask = if self.recent_len >= 64 {
            u64::MAX
        } else {
            (1u64 << self.recent_len) - 1
        };
        let refaults = (self.recent_bits & mask).count_ones();
        2 * refaults >= self.recent_len.min(THRASH_WINDOW)
    }

    /// Every used slot, in slot order (the invariant checker's view).
    pub fn used_slot_refs(&self) -> Vec<(u64, u32)> {
        self.slots.iter().map(|(&slot, s)| (slot, s.refs)).collect()
    }

    /// How many swap-outs back an eviction still counts as "recent" for
    /// refault detection: half the device, at least one.
    fn refault_horizon(&self) -> u64 {
        (self.capacity / 2).max(1)
    }

    fn push_recent(&mut self, refault: bool) {
        self.recent_bits = (self.recent_bits << 1) | refault as u64;
        self.recent_len = (self.recent_len + 1).min(THRASH_WINDOW);
    }

    fn find_first_zero(&self) -> Option<u64> {
        for (i, word) in self.bitmap.iter().enumerate() {
            if *word != u64::MAX {
                let bit = word.trailing_ones() as u64;
                let slot = i as u64 * 64 + bit;
                if slot < self.capacity {
                    return Some(slot);
                }
            }
        }
        None
    }

    fn set_bit(&mut self, slot: u64) {
        self.bitmap[(slot / 64) as usize] |= 1 << (slot % 64);
    }

    fn clear_bit(&mut self, slot: u64) {
        self.bitmap[(slot / 64) as usize] &= !(1 << (slot % 64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpr_faults::{with_plan, FaultPlan};

    fn dev(cap: u64) -> (SwapDevice, Cycles, CostModel) {
        (SwapDevice::new(cap), Cycles::new(), CostModel::default())
    }

    #[test]
    fn alloc_read_free_roundtrip() {
        let (mut d, mut c, cost) = dev(8);
        let slot = d.alloc_slot(0xAB, &mut c, &cost).unwrap();
        assert_eq!(d.used_slots(), 1);
        assert_eq!(d.peek(slot), Ok(0xAB));
        assert_eq!(d.read_slot(slot, &mut c, &cost), Ok(0xAB));
        assert_eq!(d.dec_ref(slot), Ok(true));
        assert_eq!(d.used_slots(), 0);
        assert_eq!(d.peek(slot), Err(MemError::NotMapped));
        assert!(c.total() >= cost.swap_out_page + cost.swap_in_page);
    }

    #[test]
    fn full_device_reports_oom_without_crossing() {
        let (mut d, mut c, cost) = dev(2);
        d.alloc_slot(1, &mut c, &cost).unwrap();
        d.alloc_slot(2, &mut c, &cost).unwrap();
        let (r, trace) = with_plan(FaultPlan::passive(), || d.alloc_slot(3, &mut c, &cost));
        assert_eq!(r, Err(MemError::OutOfMemory));
        assert!(trace.is_empty(), "a full device is not a fault site");
    }

    #[test]
    fn injected_slot_alloc_leaves_device_identical() {
        let (mut d, mut c, cost) = dev(8);
        d.alloc_slot(7, &mut c, &cost).unwrap();
        let before = d.clone();
        let plan = FaultPlan::passive().fail_at(FaultSite::SwapSlotAlloc, 0);
        let (r, _) = with_plan(plan, || d.alloc_slot(8, &mut c, &cost));
        assert_eq!(r, Err(MemError::OutOfMemory));
        assert_eq!(d.used_slots(), before.used_slots());
        assert_eq!(d.used_slot_refs(), before.used_slot_refs());
        assert_eq!(d.stats(), before.stats());
    }

    #[test]
    fn injected_swap_in_is_io_error_and_retryable() {
        let (mut d, mut c, cost) = dev(8);
        let slot = d.alloc_slot(0x5150, &mut c, &cost).unwrap();
        let plan = FaultPlan::passive().fail_at(FaultSite::SwapIn, 0);
        let (r, _) = with_plan(plan, || d.read_slot(slot, &mut c, &cost));
        assert_eq!(r, Err(MemError::SwapIo));
        assert_eq!(d.stats().io_errors, 1);
        assert_eq!(
            d.read_slot(slot, &mut c, &cost),
            Ok(0x5150),
            "slot content survives the failed read"
        );
    }

    #[test]
    fn unalloc_restores_epoch_and_stats() {
        let (mut d, mut c, cost) = dev(8);
        d.alloc_slot(1, &mut c, &cost).unwrap();
        let before = d.clone();
        let slot = d.alloc_slot(2, &mut c, &cost).unwrap();
        d.unalloc_slot(slot);
        assert_eq!(d.used_slots(), before.used_slots());
        assert_eq!(d.stats(), before.stats());
        assert_eq!(d.used_slot_refs(), before.used_slot_refs());
    }

    #[test]
    fn slot_refs_share_and_release() {
        let (mut d, mut c, cost) = dev(4);
        let slot = d.alloc_slot(9, &mut c, &cost).unwrap();
        d.inc_ref(slot).unwrap();
        assert_eq!(d.refs(slot), Ok(2));
        assert_eq!(d.dec_ref(slot), Ok(false));
        assert_eq!(d.used_slots(), 1, "shared slot survives one release");
        assert_eq!(d.dec_ref(slot), Ok(true));
        assert_eq!(d.used_slots(), 0);
    }

    #[test]
    fn bitmap_reuses_freed_slots_first_fit() {
        let (mut d, mut c, cost) = dev(4);
        let a = d.alloc_slot(1, &mut c, &cost).unwrap();
        let b = d.alloc_slot(2, &mut c, &cost).unwrap();
        assert_eq!((a, b), (0, 1));
        d.dec_ref(a).unwrap();
        let c2 = d.alloc_slot(3, &mut c, &cost).unwrap();
        assert_eq!(c2, 0, "first-fit reuses the lowest free slot");
    }

    #[test]
    fn thrashing_needs_a_refault_majority() {
        let (mut d, mut c, cost) = dev(64);
        assert!(!d.thrashing(), "fresh device is quiet");
        // Evict-and-immediately-refault in a tight loop: every read is a
        // refault (birth within half the device's capacity of epochs).
        for i in 0..THRASH_MIN_SAMPLES as u64 {
            let slot = d.alloc_slot(i, &mut c, &cost).unwrap();
            d.read_slot(slot, &mut c, &cost).unwrap();
            d.dec_ref(slot).unwrap();
        }
        assert!(d.thrashing(), "all-refault window is thrash");
        // A long run of cold swap-ins clears the signal: age the slots
        // far beyond the refault horizon before reading them back.
        let survivors: Vec<u64> = (0..THRASH_WINDOW as u64)
            .map(|i| d.alloc_slot(100 + i, &mut c, &cost).unwrap())
            .collect();
        for _ in 0..2 * d.capacity() {
            let s = d.alloc_slot(0, &mut c, &cost).unwrap();
            d.dec_ref(s).unwrap();
        }
        for s in survivors {
            d.read_slot(s, &mut c, &cost).unwrap();
            d.dec_ref(s).unwrap();
        }
        assert!(!d.thrashing(), "cold swap-ins are not thrash");
    }

    #[test]
    fn zero_capacity_device_is_inert() {
        let (mut d, mut c, cost) = dev(0);
        assert!(!d.enabled());
        let (r, trace) = with_plan(FaultPlan::passive(), || d.alloc_slot(1, &mut c, &cost));
        assert_eq!(r, Err(MemError::OutOfMemory));
        assert!(trace.is_empty());
        assert_eq!(c.total(), 0, "disabled swap charges nothing");
    }
}
