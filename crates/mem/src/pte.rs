//! Page-table entry representation and flag bits.

use crate::addr::Pfn;

/// Flag bits of a leaf page-table entry.
///
/// Modelled on x86-64: the simulator uses PRESENT/WRITABLE/USER plus a
/// software COW bit (real kernels stash this in an ignored PTE bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PteFlags(pub u16);

impl PteFlags {
    /// The translation is valid.
    pub const PRESENT: PteFlags = PteFlags(1 << 0);
    /// Writes are permitted.
    pub const WRITABLE: PteFlags = PteFlags(1 << 1);
    /// User-mode access is permitted.
    pub const USER: PteFlags = PteFlags(1 << 2);
    /// The page has been read or written since the bit was cleared.
    pub const ACCESSED: PteFlags = PteFlags(1 << 3);
    /// The page has been written since the bit was cleared.
    pub const DIRTY: PteFlags = PteFlags(1 << 4);
    /// Instruction fetch is forbidden.
    pub const NX: PteFlags = PteFlags(1 << 5);
    /// Software bit: write-protected copy-on-write page.
    pub const COW: PteFlags = PteFlags(1 << 6);
    /// Software bit: the frame backs a MAP_SHARED mapping.
    pub const SHARED: PteFlags = PteFlags(1 << 7);
    /// Software bit: a non-present swap entry. The `pfn` field holds a
    /// swap-slot index, not a frame number (real kernels encode swap
    /// entries in the non-present PTE format the same way).
    pub const SWAP: PteFlags = PteFlags(1 << 8);
    /// The entry maps a 2 MiB huge page (x86-64's PS bit): `pfn` is the
    /// head of a naturally aligned 512-frame run and the translation
    /// covers the whole block.
    pub const HUGE: PteFlags = PteFlags(1 << 9);

    /// Empty flag set.
    pub const fn empty() -> PteFlags {
        PteFlags(0)
    }

    /// Returns the union of `self` and `other`.
    pub const fn union(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 | other.0)
    }

    /// Returns `self` with the bits of `other` removed.
    pub const fn minus(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 & !other.0)
    }

    /// Returns true if every bit of `other` is set in `self`.
    pub const fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns true if any bit of `other` is set in `self`.
    pub const fn intersects(self, other: PteFlags) -> bool {
        self.0 & other.0 != 0
    }
}

impl std::ops::BitOr for PteFlags {
    type Output = PteFlags;
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        self.union(rhs)
    }
}

/// A leaf page-table entry: a frame number plus flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// The mapped physical frame.
    pub pfn: Pfn,
    /// Permission and software bits.
    pub flags: PteFlags,
}

impl Pte {
    /// Creates a present entry for `pfn` with the given extra flags.
    pub fn new(pfn: Pfn, flags: PteFlags) -> Pte {
        Pte {
            pfn,
            flags: flags | PteFlags::PRESENT,
        }
    }

    /// Returns true if the entry permits writes.
    pub fn is_writable(self) -> bool {
        self.flags.contains(PteFlags::WRITABLE)
    }

    /// Returns true if the entry is marked copy-on-write.
    pub fn is_cow(self) -> bool {
        self.flags.contains(PteFlags::COW)
    }

    /// Creates a non-present swap entry pointing at device slot `slot`.
    ///
    /// The slot index rides in the `pfn` field; no permission bits are
    /// kept — swap-in rederives them from the owning VMA, exactly like a
    /// fresh demand fill.
    pub fn swap_entry(slot: u64) -> Pte {
        Pte {
            pfn: Pfn(slot),
            flags: PteFlags::SWAP,
        }
    }

    /// Returns true if the translation is valid (maps a frame).
    pub fn is_present(self) -> bool {
        self.flags.contains(PteFlags::PRESENT)
    }

    /// Returns true if the entry is a non-present swap entry.
    pub fn is_swap(self) -> bool {
        self.flags.contains(PteFlags::SWAP)
    }

    /// Returns true if the entry maps a 2 MiB huge page.
    pub fn is_huge(self) -> bool {
        self.flags.contains(PteFlags::HUGE)
    }

    /// The swap-slot index of a swap entry.
    ///
    /// # Panics
    ///
    /// Panics if the entry is not a swap entry — reading the `pfn` field
    /// of a present entry as a slot index would silently corrupt both
    /// refcount domains.
    pub fn swap_slot(self) -> u64 {
        assert!(self.is_swap(), "swap_slot() on a present PTE");
        self.pfn.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_algebra() {
        let f = PteFlags::PRESENT | PteFlags::WRITABLE;
        assert!(f.contains(PteFlags::PRESENT));
        assert!(f.contains(PteFlags::WRITABLE));
        assert!(!f.contains(PteFlags::COW));
        assert!(f.intersects(PteFlags::WRITABLE | PteFlags::COW));
        let g = f.minus(PteFlags::WRITABLE);
        assert!(!g.contains(PteFlags::WRITABLE));
        assert!(g.contains(PteFlags::PRESENT));
    }

    #[test]
    fn pte_constructor_sets_present() {
        let p = Pte::new(Pfn(5), PteFlags::USER);
        assert!(p.flags.contains(PteFlags::PRESENT));
        assert!(!p.is_writable());
        assert!(!p.is_cow());
        let q = Pte::new(Pfn(5), PteFlags::WRITABLE | PteFlags::COW);
        assert!(q.is_writable() && q.is_cow());
    }

    #[test]
    fn swap_entry_is_not_present_and_carries_slot() {
        let s = Pte::swap_entry(42);
        assert!(s.is_swap());
        assert!(!s.is_present());
        assert!(!s.is_writable());
        assert_eq!(s.swap_slot(), 42);
        let p = Pte::new(Pfn(7), PteFlags::USER);
        assert!(p.is_present());
        assert!(!p.is_swap());
    }

    #[test]
    fn huge_flag_roundtrips() {
        let h = Pte::new(Pfn(512), PteFlags::USER | PteFlags::HUGE);
        assert!(h.is_huge());
        assert!(h.is_present());
        let s = Pte::new(Pfn(1), PteFlags::USER);
        assert!(!s.is_huge());
    }

    #[test]
    #[should_panic(expected = "swap_slot")]
    fn swap_slot_of_present_pte_panics() {
        Pte::new(Pfn(3), PteFlags::empty()).swap_slot();
    }
}
