//! Address and page-number newtypes shared by the whole memory subsystem.
//!
//! The simulator models a 48-bit x86-64-style virtual address space with
//! 4 KiB pages and four 9-bit page-table levels. Using newtypes rather than
//! bare `u64`s keeps physical and virtual quantities from being mixed up at
//! compile time.


/// Base-2 logarithm of the page size.
pub const PAGE_SHIFT: u64 = 12;
/// Size of one page in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// Number of page-table levels (PML4 → PDPT → PD → PT).
pub const PT_LEVELS: usize = 4;
/// Number of entries in one page-table node (9 index bits per level).
pub const PT_ENTRIES: usize = 512;
/// Base-2 logarithm of the huge-page size (2 MiB: one full leaf table).
pub const HUGE_SHIFT: u64 = 21;
/// Size of one huge page in bytes (2 MiB).
pub const HUGE_PAGE_SIZE: u64 = 1 << HUGE_SHIFT;
/// Number of small pages covered by one huge page.
pub const HUGE_PAGES: u64 = HUGE_PAGE_SIZE / PAGE_SIZE;
/// Number of virtual-address bits that are translated.
pub const VA_BITS: u64 = 48;
/// Highest valid user virtual address (exclusive); the upper half is kernel.
pub const USER_VA_END: u64 = 1 << (VA_BITS - 1);

/// A physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

/// A virtual byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

/// A physical frame number (physical address >> [`PAGE_SHIFT`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pfn(pub u64);

/// A virtual page number (virtual address >> [`PAGE_SHIFT`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vpn(pub u64);

impl PhysAddr {
    /// Returns the frame containing this address.
    pub fn frame(self) -> Pfn {
        Pfn(self.0 >> PAGE_SHIFT)
    }

    /// Returns the offset of this address within its frame.
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }
}

impl VirtAddr {
    /// Returns the virtual page containing this address.
    pub fn page(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Returns the offset of this address within its page.
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Rounds this address down to a page boundary.
    pub fn align_down(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// Rounds this address up to a page boundary.
    ///
    /// Saturates at `u64::MAX & !(PAGE_SIZE - 1)` rather than wrapping.
    pub fn align_up(self) -> VirtAddr {
        VirtAddr(self.0.saturating_add(PAGE_SIZE - 1) & !(PAGE_SIZE - 1))
    }

    /// Returns true if this address is page-aligned.
    pub fn is_aligned(self) -> bool {
        self.page_offset() == 0
    }

    /// Returns true if this address lies in the translatable user half.
    pub fn is_user(self) -> bool {
        self.0 < USER_VA_END
    }
}

impl Pfn {
    /// Returns the base physical address of this frame.
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }
}

impl Vpn {
    /// Returns the base virtual address of this page.
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// Returns the page-table index for `level`, where level 3 is the root
    /// (PML4) and level 0 is the leaf page table.
    ///
    /// # Panics
    ///
    /// Panics if `level >= PT_LEVELS`.
    pub fn pt_index(self, level: usize) -> usize {
        assert!(level < PT_LEVELS, "page-table level out of range");
        ((self.0 >> (9 * level)) & 0x1ff) as usize
    }

    /// Returns the page `n` pages after this one.
    // Named like `ops::Add::add` on purpose: page arithmetic reads as
    // `base.add(i)` throughout the codebase and `+` on a (Vpn, u64) pair
    // would need a heterogeneous Add impl anyway.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, n: u64) -> Vpn {
        Vpn(self.0 + n)
    }

    /// Returns true if this page lies in the translatable user half.
    pub fn is_user(self) -> bool {
        self.base().is_user()
    }

    /// Rounds this page down to the base of its 2 MiB huge-page block.
    pub fn huge_base(self) -> Vpn {
        Vpn(self.0 & !(HUGE_PAGES - 1))
    }

    /// Returns true if this page starts a 2 MiB huge-page block.
    pub fn is_huge_aligned(self) -> bool {
        self.0 & (HUGE_PAGES - 1) == 0
    }

    /// Offset of this page within its 2 MiB huge-page block.
    pub fn huge_offset(self) -> u64 {
        self.0 & (HUGE_PAGES - 1)
    }
}

/// Converts a byte length to the number of pages needed to cover it.
pub fn pages_for(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_addr_frame_and_offset() {
        let a = PhysAddr(0x1234_5678);
        assert_eq!(a.frame(), Pfn(0x12345));
        assert_eq!(a.page_offset(), 0x678);
        assert_eq!(a.frame().base(), PhysAddr(0x1234_5000));
    }

    #[test]
    fn virt_addr_alignment() {
        let a = VirtAddr(0x1001);
        assert_eq!(a.align_down(), VirtAddr(0x1000));
        assert_eq!(a.align_up(), VirtAddr(0x2000));
        assert!(!a.is_aligned());
        assert!(VirtAddr(0x1000).is_aligned());
        assert_eq!(VirtAddr(0x2000).align_up(), VirtAddr(0x2000));
    }

    #[test]
    fn align_up_saturates() {
        let a = VirtAddr(u64::MAX - 1);
        assert_eq!(a.align_up().0, !(PAGE_SIZE - 1));
    }

    #[test]
    fn pt_index_decomposition() {
        // VPN with distinct 9-bit groups: level 0 = 1, level 1 = 2, etc.
        let vpn = Vpn(1 | (2 << 9) | (3 << 18) | (4 << 27));
        assert_eq!(vpn.pt_index(0), 1);
        assert_eq!(vpn.pt_index(1), 2);
        assert_eq!(vpn.pt_index(2), 3);
        assert_eq!(vpn.pt_index(3), 4);
    }

    #[test]
    #[should_panic(expected = "level out of range")]
    fn pt_index_rejects_bad_level() {
        Vpn(0).pt_index(4);
    }

    #[test]
    fn user_half_boundary() {
        assert!(VirtAddr(0).is_user());
        assert!(VirtAddr(USER_VA_END - 1).is_user());
        assert!(!VirtAddr(USER_VA_END).is_user());
    }

    #[test]
    fn huge_block_arithmetic() {
        assert_eq!(HUGE_PAGES, 512);
        assert_eq!(HUGE_PAGE_SIZE, 512 * PAGE_SIZE);
        let v = Vpn(512 + 7);
        assert_eq!(v.huge_base(), Vpn(512));
        assert_eq!(v.huge_offset(), 7);
        assert!(!v.is_huge_aligned());
        assert!(Vpn(1024).is_huge_aligned());
        assert!(Vpn(0).is_huge_aligned());
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE + 1), 2);
    }
}
