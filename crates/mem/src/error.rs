//! Error type for memory-subsystem operations.

use std::fmt;

/// Errors returned by the memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// No physical frames are available.
    OutOfMemory,
    /// The commit limit would be exceeded under the active overcommit policy.
    CommitLimit,
    /// The requested virtual range overlaps an existing mapping.
    Overlap,
    /// The address or length is not page-aligned or is zero.
    BadAlignment,
    /// The address is outside the user half of the address space.
    BadAddress,
    /// No mapping covers the faulting or requested address.
    NotMapped,
    /// The access violates the mapping's protection.
    Protection,
    /// The requested contiguous run could not be satisfied (fragmentation).
    Fragmented,
    /// The swap device failed an I/O operation (injected device error on
    /// swap-in). Surfaces as SIGBUS-style death of the faulting process.
    SwapIo,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemError::OutOfMemory => "out of physical memory",
            MemError::CommitLimit => "commit limit exceeded",
            MemError::Overlap => "virtual range overlaps an existing mapping",
            MemError::BadAlignment => "address or length not page-aligned or zero",
            MemError::BadAddress => "address outside user address space",
            MemError::NotMapped => "no mapping covers the address",
            MemError::Protection => "access violates mapping protection",
            MemError::Fragmented => "no contiguous run available",
            MemError::SwapIo => "swap device I/O error",
        };
        f.write_str(s)
    }
}

impl std::error::Error for MemError {}

/// Result alias for memory operations.
pub type MemResult<T> = Result<T, MemError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(MemError::OutOfMemory.to_string(), "out of physical memory");
        assert_eq!(
            MemError::Protection.to_string(),
            "access violates mapping protection"
        );
    }
}
