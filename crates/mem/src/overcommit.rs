//! Commit accounting and overcommit policy.
//!
//! The paper argues fork *forces* memory overcommit: under strict
//! accounting, forking a process that uses more than half of memory must
//! fail (every private writable page is a potential copy), so systems that
//! rely on fork run with overcommit enabled and discover exhaustion only
//! at COW-break time — when the only remedy is the OOM killer. This module
//! reproduces Linux's three `vm.overcommit_memory` modes.

use crate::error::{MemError, MemResult};
use fpr_faults::FaultSite;

/// Overcommit policy, mirroring Linux `vm.overcommit_memory`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OvercommitPolicy {
    /// Mode 2 (`never`): commit charge is capped at
    /// `total_frames * ratio`. Fork fails up front if the child's charge
    /// does not fit.
    Never {
        /// Fraction of physical memory that may be committed (Linux
        /// `vm.overcommit_ratio`, typically 0.5–1.0 plus swap).
        ratio: f64,
    },
    /// Mode 0 (`heuristic`): single allocations larger than free memory
    /// are refused, but total commit may exceed physical memory.
    Heuristic,
    /// Mode 1 (`always`): every commit succeeds; exhaustion surfaces as an
    /// OOM kill at fault time.
    Always,
}

/// Tracks committed (charged) pages against a policy.
#[derive(Debug, Clone)]
pub struct CommitAccount {
    policy: OvercommitPolicy,
    total_frames: u64,
    swap_pages: u64,
    committed: u64,
}

impl CommitAccount {
    /// Creates an account for a machine with `total_frames` frames and no
    /// swap; see [`CommitAccount::set_swap_pages`].
    pub fn new(policy: OvercommitPolicy, total_frames: u64) -> Self {
        CommitAccount {
            policy,
            total_frames,
            swap_pages: 0,
            committed: 0,
        }
    }

    /// Declares `pages` of swap capacity. Linux's `Never` mode computes
    /// `CommitLimit = ratio * MemTotal + SwapTotal` — committed pages that
    /// exceed RAM can live on the device, so swap raises the cap
    /// frame-for-frame, not scaled by the ratio.
    pub fn set_swap_pages(&mut self, pages: u64) {
        self.swap_pages = pages;
    }

    /// Currently committed pages.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// The active policy.
    pub fn policy(&self) -> OvercommitPolicy {
        self.policy
    }

    /// Replaces the policy (a `sysctl`, effectively).
    pub fn set_policy(&mut self, policy: OvercommitPolicy) {
        self.policy = policy;
    }

    /// The maximum chargeable commit under the current policy, when the
    /// policy bounds it (`Never` mode only).
    pub fn limit(&self) -> Option<u64> {
        match self.policy {
            OvercommitPolicy::Never { ratio } => {
                Some((self.total_frames as f64 * ratio) as u64 + self.swap_pages)
            }
            OvercommitPolicy::Heuristic | OvercommitPolicy::Always => None,
        }
    }

    /// Attempts to charge `pages` of new commit, given `free_frames`
    /// currently free. Fails with [`MemError::CommitLimit`] when the
    /// policy refuses.
    pub fn charge(&mut self, pages: u64, free_frames: u64) -> MemResult<()> {
        fpr_faults::cross(FaultSite::CommitCharge).map_err(|_| MemError::CommitLimit)?;
        let ok = match self.policy {
            OvercommitPolicy::Never { .. } => {
                self.committed + pages <= self.limit().expect("Never mode is bounded")
            }
            OvercommitPolicy::Heuristic => pages <= free_frames,
            OvercommitPolicy::Always => true,
        };
        if ok {
            self.committed += pages;
            Ok(())
        } else {
            Err(MemError::CommitLimit)
        }
    }

    /// Releases `pages` of commit charge.
    ///
    /// # Panics
    ///
    /// Panics if more is released than was charged (accounting bug).
    pub fn release(&mut self, pages: u64) {
        assert!(self.committed >= pages, "commit release underflow");
        self.committed -= pages;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_enforces_ratio() {
        let mut a = CommitAccount::new(OvercommitPolicy::Never { ratio: 0.5 }, 100);
        assert_eq!(a.limit(), Some(50), "no swap: ratio * RAM only");
        assert!(a.charge(50, 100).is_ok());
        assert_eq!(a.charge(1, 100), Err(MemError::CommitLimit));
        a.release(10);
        assert!(a.charge(10, 100).is_ok());
    }

    #[test]
    fn never_limit_includes_swap_unscaled() {
        let mut a = CommitAccount::new(OvercommitPolicy::Never { ratio: 0.5 }, 100);
        a.set_swap_pages(30);
        assert_eq!(a.limit(), Some(80), "ratio * RAM + SwapTotal");
        assert!(a.charge(80, 100).is_ok());
        assert_eq!(a.charge(1, 100), Err(MemError::CommitLimit));
        // Swap does not change the unbounded modes.
        let mut h = CommitAccount::new(OvercommitPolicy::Heuristic, 100);
        h.set_swap_pages(30);
        assert_eq!(h.limit(), None);
    }

    #[test]
    fn heuristic_refuses_single_oversize_but_allows_total_overcommit() {
        let mut a = CommitAccount::new(OvercommitPolicy::Heuristic, 100);
        assert_eq!(a.charge(101, 100), Err(MemError::CommitLimit));
        // Repeated allocations can exceed physical memory in total.
        assert!(a.charge(80, 100).is_ok());
        assert!(a.charge(80, 90).is_ok());
        assert_eq!(a.committed(), 160);
    }

    #[test]
    fn always_never_refuses() {
        let mut a = CommitAccount::new(OvercommitPolicy::Always, 10);
        assert!(a.charge(1_000_000, 0).is_ok());
        assert_eq!(a.committed(), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn release_underflow_panics() {
        let mut a = CommitAccount::new(OvercommitPolicy::Always, 10);
        a.release(1);
    }
}
