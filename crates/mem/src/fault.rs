//! Page-fault handling: demand fill and copy-on-write breaks.
//!
//! After a COW fork, the parent's and child's first write to each shared
//! page takes a fault, allocates a frame, copies 4 KiB, and shoots down
//! stale translations. The paper's scaling argument is that this *deferred*
//! cost can exceed an eager copy once the workload touches enough of its
//! memory — experiment E3 sweeps the touch fraction to find the crossover.

use crate::addr::{Pfn, Vpn, HUGE_PAGES};
use crate::address_space::AddressSpace;
use crate::cost::Cycles;
use crate::error::{MemError, MemResult};
use crate::phys::PhysMemory;
use crate::pte::{Pte, PteFlags};
use crate::tlb::TlbModel;
use crate::vma::Share;
use fpr_trace::metrics;
use fpr_trace::sink;
use fpr_trace::{Phase, TraceEvent};

/// What the fault handler did to satisfy an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// No fault: the translation was already valid for the access.
    Hit,
    /// A frame was allocated and filled (zero or file content).
    DemandFill,
    /// A COW break that copied the frame.
    CowCopy,
    /// A COW break resolved by reclaiming sole ownership (refcount 1).
    CowReuse,
    /// A swapped-out page was read back from the swap device.
    SwapIn,
}

impl AddressSpace {
    /// Installs the initial frame for an untouched page (demand-zero or
    /// file fill) and returns its PTE.
    pub(crate) fn demand_fill(
        &mut self,
        vpn: Vpn,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<Pte> {
        let vma = self.vma_at(vpn).ok_or(MemError::NotMapped)?.clone();
        // An absent PTE can still sit inside a leaf subtree that an
        // on-demand fork shares with another space; installing it would
        // mutate the shared node. Privatize first. The node swap preserves
        // every existing translation bit-for-bit, so no TLB invalidation
        // is needed (the TLB caches leaf translations, not subtree
        // pointers, at this model's granularity).
        self.unshare_subtree(vpn, phys, cycles)?;
        let content = vma.initial_content(vpn);
        let pfn = if content == 0 {
            phys.alloc_zeroed(cycles)?
        } else {
            phys.alloc_filled(content, cycles)?
        };
        let mut flags = PteFlags::USER | PteFlags::ACCESSED;
        if vma.prot.write {
            flags = flags | PteFlags::WRITABLE;
        }
        if !vma.prot.exec {
            flags = flags | PteFlags::NX;
        }
        if vma.share == Share::Shared {
            flags = flags | PteFlags::SHARED;
        }
        let pte = Pte::new(pfn, flags);
        let cost = phys.cost().clone();
        if let Err(e) = self.pt.map(vpn, pte, cycles, &cost) {
            // The freshly filled frame was never mapped; free it or the
            // failed fault leaks a frame.
            phys.dec_ref(pfn, cycles).expect("frame allocated above");
            return Err(e);
        }
        self.stats.demand_faults += 1;
        metrics::incr("mem.fault.demand_fill");
        sink::instant("demand_fill", "mem", cycles.total());
        // The fill may have completed a 2 MiB block; collapse it while
        // the fault is already paid for (khugepaed-in-the-fault-path).
        // Promotion keeps every pfn, so the returned PTE stays valid.
        if self.thp {
            self.try_promote(vpn, phys, cycles);
        }
        Ok(pte)
    }

    /// Reads the swapped-out page at `vpn` back into a fresh frame and
    /// returns its new PTE, rederiving permissions from the VMA like a
    /// demand fill. Crosses [`fpr_faults::FaultSite::SwapIn`] (an injected
    /// device I/O error surfaces as [`MemError::SwapIo`]) and
    /// `FrameAlloc` before the page table changes, so on `Err` the swap
    /// entry — and the slot behind it — are intact and the access can be
    /// retried.
    pub(crate) fn swap_in(
        &mut self,
        vpn: Vpn,
        pte: Pte,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<Pte> {
        debug_assert!(pte.is_swap());
        let vma = self.vma_at(vpn).ok_or(MemError::NotMapped)?.clone();
        // The entry may sit in a leaf an on-demand fork still shares;
        // the PTE rewrite below must not mutate the shared node.
        self.unshare_subtree(vpn, phys, cycles)?;
        let slot = pte.swap_slot();
        let pfn = phys.swap_in_frame(slot, cycles)?;
        let mut flags = PteFlags::USER | PteFlags::ACCESSED;
        if vma.prot.write {
            flags = flags | PteFlags::WRITABLE;
        }
        if !vma.prot.exec {
            flags = flags | PteFlags::NX;
        }
        let new = Pte::new(pfn, flags);
        self.pt.update(vpn, new).expect("swap entry translated");
        phys.swap_mut().dec_ref(slot).expect("slot read above");
        self.swapped -= 1;
        metrics::incr("mem.fault.swap_in");
        sink::instant("swap_in", "mem", cycles.total());
        if self.thp {
            self.try_promote(vpn, phys, cycles);
        }
        Ok(new)
    }

    /// Simulated load from the page at `vpn`. Returns the page's logical
    /// content and what the fault handler had to do.
    pub fn read(
        &mut self,
        vpn: Vpn,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
    ) -> MemResult<(u64, FaultOutcome)> {
        let vma = self.vma_at(vpn).ok_or(MemError::NotMapped)?;
        if !vma.prot.read {
            return Err(MemError::Protection);
        }
        match self.pt.translate(vpn) {
            Some(pte) if pte.is_swap() => {
                cycles.charge(phys.cost().fault_entry);
                let new = self.swap_in(vpn, pte, phys, cycles)?;
                Ok((phys.content(new.pfn)?, FaultOutcome::SwapIn))
            }
            Some(pte) => Ok((phys.content(pte.pfn)?, FaultOutcome::Hit)),
            None => {
                cycles.charge(phys.cost().fault_entry);
                let pte = self.demand_fill(vpn, phys, cycles)?;
                Ok((phys.content(pte.pfn)?, FaultOutcome::DemandFill))
            }
        }
    }

    /// Simulated store of `value` to the page at `vpn`, breaking COW as
    /// needed. Returns what the fault handler had to do.
    pub fn write(
        &mut self,
        vpn: Vpn,
        value: u64,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
        tlb: &mut TlbModel,
        cpus_running: u32,
    ) -> MemResult<FaultOutcome> {
        let vma = self.vma_at(vpn).ok_or(MemError::NotMapped)?;
        if !vma.prot.write {
            return Err(MemError::Protection);
        }
        let cost = phys.cost().clone();
        if self.pt.translate(vpn).is_some() && self.subtree_shared(vpn) {
            // Structure fault: the write landed in a leaf subtree still
            // shared by an on-demand fork. Take a fault, privatize the
            // 512-entry node (the deferred page-table copy), and shoot
            // down stale translations — the other space's writable
            // mappings of this subtree were COW-marked at share time, and
            // our own subtree pointer just changed. The write then
            // resolves below (usually as a second, COW-break fault:
            // on-demand fork pays two faults on first touch).
            cycles.charge(cost.fault_entry);
            self.unshare_subtree(vpn, phys, cycles)?;
            tlb.shootdown(cpus_running, cycles, &cost);
        }
        match self.pt.translate(vpn) {
            None => {
                cycles.charge(cost.fault_entry);
                let pte = self.demand_fill(vpn, phys, cycles)?;
                phys.write_content(pte.pfn, value)?;
                self.mark_dirty(vpn);
                Ok(FaultOutcome::DemandFill)
            }
            Some(pte) if pte.is_swap() => {
                cycles.charge(cost.fault_entry);
                let new = self.swap_in(vpn, pte, phys, cycles)?;
                phys.write_content(new.pfn, value)?;
                self.mark_dirty(vpn);
                Ok(FaultOutcome::SwapIn)
            }
            Some(pte) if pte.is_writable() => {
                phys.write_content(pte.pfn, value)?;
                self.mark_dirty(vpn);
                Ok(FaultOutcome::Hit)
            }
            Some(pte) if pte.is_cow() => {
                cycles.charge(cost.fault_entry);
                let pte = if pte.is_huge() {
                    match self.huge_cow_break(vpn, value, phys, cycles, tlb, cpus_running)? {
                        Some(outcome) => return Ok(outcome),
                        // The block was just split; retranslate and break
                        // COW on this one small page below.
                        None => self.pt.translate(vpn).expect("demoted in place"),
                    }
                } else {
                    pte
                };
                let outcome = if phys.refs(pte.pfn)? == 1 {
                    // Sole owner: reclaim the frame in place.
                    let mut new = pte;
                    new.flags = new
                        .flags
                        .minus(PteFlags::COW)
                        .union(PteFlags::WRITABLE | PteFlags::DIRTY);
                    self.pt.update(vpn, new).expect("translated above");
                    self.stats.cow_reuses += 1;
                    metrics::incr("mem.fault.cow_reuse");
                    FaultOutcome::CowReuse
                } else {
                    let new_pfn = phys.copy_frame(pte.pfn, cycles)?;
                    phys.dec_ref(pte.pfn, cycles)?;
                    let mut new = Pte::new(new_pfn, pte.flags);
                    new.flags = new
                        .flags
                        .minus(PteFlags::COW)
                        .union(PteFlags::WRITABLE | PteFlags::DIRTY);
                    self.pt.update(vpn, new).expect("translated above");
                    self.stats.cow_copies += 1;
                    metrics::incr("mem.fault.cow_copy");
                    FaultOutcome::CowCopy
                };
                if sink::is_active() {
                    sink::emit(
                        TraceEvent::new("cow_break", "mem", Phase::Instant, cycles.total()).arg(
                            "outcome",
                            if outcome == FaultOutcome::CowCopy {
                                "copy"
                            } else {
                                "reuse"
                            },
                        ),
                    );
                }
                // The stale read-only translation may be cached on any CPU
                // running this space.
                tlb.shootdown(cpus_running, cycles, &cost);
                let pte = self.pt.translate(vpn).expect("just updated");
                phys.write_content(pte.pfn, value)?;
                Ok(outcome)
            }
            Some(pte) => {
                // Present, not writable, not COW — but the VMA permits
                // writes: an `mprotect` upgrade applied lazily. Take the
                // fault and set the bit (real kernels do exactly this).
                // Permissions are block-granular for a huge mapping, so
                // the whole block upgrades with one PTE write.
                cycles.charge(cost.fault_entry);
                if pte.is_huge() {
                    let base = vpn.huge_base();
                    let mut block = self.pt.huge_block(vpn).expect("translated above");
                    block.flags = block.flags.union(PteFlags::WRITABLE | PteFlags::DIRTY);
                    self.pt.update(base, block).expect("translated above");
                    tlb.invalidate_local(cycles, &cost);
                    phys.write_content(pte.pfn, value)?;
                    return Ok(FaultOutcome::Hit);
                }
                let mut new = pte;
                new.flags = new.flags.union(PteFlags::WRITABLE | PteFlags::DIRTY);
                self.pt.update(vpn, new).expect("translated above");
                tlb.invalidate_local(cycles, &cost);
                phys.write_content(new.pfn, value)?;
                Ok(FaultOutcome::Hit)
            }
        }
    }

    /// COW break inside a huge block. When this space is the sole owner of
    /// the whole 512-frame run, the block flips writable in place — one
    /// PTE write ([`crate::cost::CostModel::huge_cow`]), the huge analogue
    /// of `CowReuse`, and the write completes here. Otherwise the run is
    /// still shared with a fork relative, so the block is split (crossing
    /// [`fpr_faults::FaultSite::PtDemote`]; an injected failure fails the
    /// write cleanly with the block intact) and `None` is returned for the
    /// per-page COW machinery to finish the job.
    fn huge_cow_break(
        &mut self,
        vpn: Vpn,
        value: u64,
        phys: &mut PhysMemory,
        cycles: &mut Cycles,
        tlb: &mut TlbModel,
        cpus_running: u32,
    ) -> MemResult<Option<FaultOutcome>> {
        let cost = phys.cost().clone();
        let base = vpn.huge_base();
        let block = self.pt.huge_block(vpn).expect("caller translated a huge PTE");
        let sole = (0..HUGE_PAGES)
            .all(|k| phys.refs(Pfn(block.pfn.0 + k)).map(|r| r == 1).unwrap_or(false));
        // The block may sit in a huge directory an on-demand fork still
        // shares; both the flip and the split mutate the node.
        self.unshare_subtree(base, phys, cycles)?;
        if sole {
            let mut new = block;
            new.flags = new
                .flags
                .minus(PteFlags::COW)
                .union(PteFlags::WRITABLE | PteFlags::DIRTY);
            self.pt.update(base, new).expect("block translated above");
            cycles.charge(cost.huge_cow);
            self.stats.cow_reuses += 1;
            metrics::incr("mem.fault.cow_reuse");
            tlb.shootdown(cpus_running, cycles, &cost);
            phys.write_content(Pfn(block.pfn.0 + vpn.huge_offset()), value)?;
            return Ok(Some(FaultOutcome::CowReuse));
        }
        self.pt.demote_block(vpn, cycles, &cost)?;
        phys.note_thp_demoted();
        Ok(None)
    }

    fn mark_dirty(&mut self, vpn: Vpn) {
        if let Some(mut pte) = self.pt.translate(vpn) {
            if !pte.is_present() {
                return;
            }
            if pte.is_huge() {
                // Hardware tracks dirtiness per TLB entry, which for a
                // huge mapping is the whole block.
                let base = vpn.huge_base();
                let mut block = self.pt.huge_block(vpn).expect("translated above");
                block.flags = block.flags.union(PteFlags::DIRTY | PteFlags::ACCESSED);
                let _ = self.pt.update(base, block);
                return;
            }
            pte.flags = pte.flags.union(PteFlags::DIRTY | PteFlags::ACCESSED);
            let _ = self.pt.update(vpn, pte);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address_space::ForkMode;
    use crate::cost::CostModel;
    use crate::vma::{Prot, VmArea, VmaKind};

    fn world(frames: u64) -> (PhysMemory, Cycles, TlbModel) {
        (
            PhysMemory::new(frames, CostModel::default()),
            Cycles::new(),
            TlbModel::new(),
        )
    }

    fn space_with_heap(pages: u64, phys: &mut PhysMemory, cy: &mut Cycles) -> AddressSpace {
        let mut a = AddressSpace::new();
        a.mmap(
            VmArea::anon(Vpn(0), pages, Prot::RW, VmaKind::Heap),
            phys,
            cy,
        )
        .unwrap();
        a
    }

    #[test]
    fn first_write_is_demand_fill_then_hit() {
        let (mut phys, mut cy, mut tlb) = world(64);
        let mut a = space_with_heap(4, &mut phys, &mut cy);
        assert_eq!(
            a.write(Vpn(1), 11, &mut phys, &mut cy, &mut tlb, 1),
            Ok(FaultOutcome::DemandFill)
        );
        assert_eq!(
            a.write(Vpn(1), 12, &mut phys, &mut cy, &mut tlb, 1),
            Ok(FaultOutcome::Hit)
        );
        assert_eq!(a.read(Vpn(1), &mut phys, &mut cy).unwrap().0, 12);
        assert_eq!(a.stats.demand_faults, 1);
    }

    #[test]
    fn read_of_untouched_page_is_zero() {
        let (mut phys, mut cy, _) = world(64);
        let mut a = space_with_heap(4, &mut phys, &mut cy);
        let (v, o) = a.read(Vpn(2), &mut phys, &mut cy).unwrap();
        assert_eq!((v, o), (0, FaultOutcome::DemandFill));
    }

    #[test]
    fn write_to_readonly_is_protection_error() {
        let (mut phys, mut cy, mut tlb) = world(64);
        let mut a = AddressSpace::new();
        a.mmap(
            VmArea::anon(Vpn(0), 2, Prot::R, VmaKind::Text),
            &mut phys,
            &mut cy,
        )
        .unwrap();
        assert_eq!(
            a.write(Vpn(0), 1, &mut phys, &mut cy, &mut tlb, 1),
            Err(MemError::Protection)
        );
    }

    #[test]
    fn access_outside_vma_is_not_mapped() {
        let (mut phys, mut cy, mut tlb) = world(64);
        let mut a = space_with_heap(2, &mut phys, &mut cy);
        assert_eq!(a.read(Vpn(5), &mut phys, &mut cy), Err(MemError::NotMapped));
        assert_eq!(
            a.write(Vpn(5), 0, &mut phys, &mut cy, &mut tlb, 1),
            Err(MemError::NotMapped)
        );
    }

    #[test]
    fn cow_break_copies_when_shared() {
        let (mut phys, mut cy, mut tlb) = world(64);
        let mut parent = space_with_heap(4, &mut phys, &mut cy);
        parent
            .write(Vpn(0), 7, &mut phys, &mut cy, &mut tlb, 1)
            .unwrap();
        let mut child =
            AddressSpace::fork_from(&mut parent, ForkMode::Cow, &mut phys, &mut cy, &mut tlb, 1)
                .unwrap();
        // Both see 7; one frame shared.
        assert_eq!(phys.used_frames(), 1);
        assert_eq!(child.read(Vpn(0), &mut phys, &mut cy).unwrap().0, 7);
        // Child writes: COW copy.
        assert_eq!(
            child.write(Vpn(0), 9, &mut phys, &mut cy, &mut tlb, 1),
            Ok(FaultOutcome::CowCopy)
        );
        assert_eq!(phys.used_frames(), 2);
        assert_eq!(child.read(Vpn(0), &mut phys, &mut cy).unwrap().0, 9);
        assert_eq!(
            parent.read(Vpn(0), &mut phys, &mut cy).unwrap().0,
            7,
            "parent unaffected"
        );
        // Parent now sole owner: its write reclaims in place.
        assert_eq!(
            parent.write(Vpn(0), 8, &mut phys, &mut cy, &mut tlb, 1),
            Ok(FaultOutcome::CowReuse)
        );
        assert_eq!(phys.used_frames(), 2);
        child.destroy(&mut phys, &mut cy);
        parent.destroy(&mut phys, &mut cy);
        assert_eq!(phys.used_frames(), 0);
    }

    #[test]
    fn cow_break_charges_fault_and_copy_and_shootdown() {
        let (mut phys, mut cyc, mut tlb) = world(64);
        let mut parent = space_with_heap(1, &mut phys, &mut cyc);
        parent
            .write(Vpn(0), 1, &mut phys, &mut cyc, &mut tlb, 1)
            .unwrap();
        let mut child =
            AddressSpace::fork_from(&mut parent, ForkMode::Cow, &mut phys, &mut cyc, &mut tlb, 1)
                .unwrap();
        let cost = phys.cost().clone();
        let before = cyc.total();
        child
            .write(Vpn(0), 2, &mut phys, &mut cyc, &mut tlb, 4)
            .unwrap();
        let spent = cyc.total() - before;
        let expected = cost.fault_entry
            + cost.frame_alloc
            + cost.page_copy
            + cost.tlb_shootdown_base
            + 3 * cost.tlb_shootdown_per_cpu;
        assert_eq!(spent, expected);
    }

    #[test]
    fn shared_mapping_writes_propagate_after_fork() {
        let (mut phys, mut cy, mut tlb) = world(64);
        let mut parent = AddressSpace::new();
        let mut v = VmArea::anon(Vpn(0), 2, Prot::RW, VmaKind::Mmap);
        v.share = Share::Shared;
        parent.mmap(v, &mut phys, &mut cy).unwrap();
        let mut child =
            AddressSpace::fork_from(&mut parent, ForkMode::Cow, &mut phys, &mut cy, &mut tlb, 1)
                .unwrap();
        parent
            .write(Vpn(0), 5, &mut phys, &mut cy, &mut tlb, 1)
            .unwrap();
        assert_eq!(
            child.read(Vpn(0), &mut phys, &mut cy).unwrap().0,
            5,
            "shared page aliases"
        );
        child
            .write(Vpn(0), 6, &mut phys, &mut cy, &mut tlb, 1)
            .unwrap();
        assert_eq!(parent.read(Vpn(0), &mut phys, &mut cy).unwrap().0, 6);
    }
}
