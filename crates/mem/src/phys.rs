//! Physical memory: frame store with COW reference counts and logical
//! page contents.
//!
//! Rather than materialising 4 KiB of real bytes per simulated frame (which
//! would make multi-GiB experiments impossible to run), each frame carries a
//! single `u64` *content stamp*. A write to any address in a page replaces
//! the page's stamp; reads observe it. This is exactly enough state to
//! verify copy-on-write semantics (a child must observe the parent's stamps
//! as of fork time, and later writes must not leak across), while the
//! *costs* of moving real data are charged through [`CostModel`].

use crate::addr::Pfn;
use crate::cost::{CostModel, Cycles};
use crate::error::{MemError, MemResult};
use crate::frame::{BitmapFrameAllocator, FrameAllocator};
use fpr_faults::FaultSite;
use fpr_trace::metrics;
use std::collections::HashMap;

/// Per-frame metadata: COW reference count and logical content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FrameMeta {
    refs: u32,
    content: u64,
}

/// The machine's physical memory.
#[derive(Debug)]
pub struct PhysMemory {
    alloc: BitmapFrameAllocator,
    meta: HashMap<u64, FrameMeta>,
    cost: CostModel,
    /// Cumulative count of frames ever allocated (statistics).
    pub frames_allocated_total: u64,
    /// Cumulative count of 4 KiB page copies performed (statistics).
    pub pages_copied_total: u64,
}

impl PhysMemory {
    /// Creates physical memory with `total_frames` frames and the given
    /// cost model.
    pub fn new(total_frames: u64, cost: CostModel) -> Self {
        PhysMemory {
            alloc: BitmapFrameAllocator::new(total_frames),
            meta: HashMap::new(),
            cost,
            frames_allocated_total: 0,
            pages_copied_total: 0,
        }
    }

    /// Returns the active cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Replaces the cost model (used by ablation benches).
    pub fn set_cost(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Number of frames currently free.
    pub fn free_frames(&self) -> u64 {
        self.alloc.free_frames()
    }

    /// Total number of frames in the machine.
    pub fn total_frames(&self) -> u64 {
        self.alloc.total_frames()
    }

    /// Number of frames currently in use.
    pub fn used_frames(&self) -> u64 {
        self.total_frames() - self.free_frames()
    }

    /// Allocates a zeroed frame with reference count 1.
    pub fn alloc_zeroed(&mut self, cycles: &mut Cycles) -> MemResult<Pfn> {
        fpr_faults::cross(FaultSite::FrameAlloc).map_err(|_| MemError::OutOfMemory)?;
        let pfn = self.alloc.alloc()?;
        cycles.charge(self.cost.frame_alloc + self.cost.page_zero);
        self.meta.insert(
            pfn.0,
            FrameMeta {
                refs: 1,
                content: 0,
            },
        );
        self.frames_allocated_total += 1;
        metrics::incr("mem.frame_alloc");
        Ok(pfn)
    }

    /// Allocates a frame holding `content` with reference count 1,
    /// charging a file-read rather than a zero-fill.
    pub fn alloc_filled(&mut self, content: u64, cycles: &mut Cycles) -> MemResult<Pfn> {
        fpr_faults::cross(FaultSite::FrameAlloc).map_err(|_| MemError::OutOfMemory)?;
        let pfn = self.alloc.alloc()?;
        cycles.charge(self.cost.frame_alloc + self.cost.file_read_page);
        self.meta.insert(pfn.0, FrameMeta { refs: 1, content });
        self.frames_allocated_total += 1;
        metrics::incr("mem.frame_alloc");
        Ok(pfn)
    }

    /// Allocates a new frame that duplicates `src`'s content (COW break or
    /// eager fork copy).
    pub fn copy_frame(&mut self, src: Pfn, cycles: &mut Cycles) -> MemResult<Pfn> {
        fpr_faults::cross(FaultSite::FrameAlloc).map_err(|_| MemError::OutOfMemory)?;
        let content = self.content(src)?;
        let pfn = self.alloc.alloc()?;
        cycles.charge(self.cost.frame_alloc + self.cost.page_copy);
        self.meta.insert(pfn.0, FrameMeta { refs: 1, content });
        self.frames_allocated_total += 1;
        self.pages_copied_total += 1;
        metrics::incr("mem.frame_alloc");
        metrics::incr("mem.page_copy");
        Ok(pfn)
    }

    /// Increments the COW reference count of `pfn`.
    pub fn inc_ref(&mut self, pfn: Pfn) -> MemResult<()> {
        let m = self.meta.get_mut(&pfn.0).ok_or(MemError::NotMapped)?;
        m.refs += 1;
        Ok(())
    }

    /// Decrements the reference count, freeing the frame when it reaches
    /// zero. Returns `true` if the frame was freed.
    pub fn dec_ref(&mut self, pfn: Pfn, cycles: &mut Cycles) -> MemResult<bool> {
        let m = self.meta.get_mut(&pfn.0).ok_or(MemError::NotMapped)?;
        debug_assert!(m.refs > 0);
        m.refs -= 1;
        if m.refs == 0 {
            self.meta.remove(&pfn.0);
            self.alloc.free(pfn);
            cycles.charge(self.cost.frame_free);
            metrics::incr("mem.frame_free");
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Returns the current reference count of `pfn`.
    pub fn refs(&self, pfn: Pfn) -> MemResult<u32> {
        self.meta
            .get(&pfn.0)
            .map(|m| m.refs)
            .ok_or(MemError::NotMapped)
    }

    /// Reads the logical content stamp of `pfn`.
    pub fn content(&self, pfn: Pfn) -> MemResult<u64> {
        self.meta
            .get(&pfn.0)
            .map(|m| m.content)
            .ok_or(MemError::NotMapped)
    }

    /// Overwrites the logical content stamp of `pfn`.
    ///
    /// The caller (the fault handler / address space) is responsible for
    /// ensuring the frame is exclusively owned or the write is to a shared
    /// mapping; this is a raw store.
    pub fn write_content(&mut self, pfn: Pfn, content: u64) -> MemResult<()> {
        let m = self.meta.get_mut(&pfn.0).ok_or(MemError::NotMapped)?;
        m.content = content;
        Ok(())
    }

    /// Number of live (allocated) frames tracked with metadata.
    pub fn live_frames(&self) -> usize {
        self.meta.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm(frames: u64) -> (PhysMemory, Cycles) {
        (PhysMemory::new(frames, CostModel::default()), Cycles::new())
    }

    #[test]
    fn alloc_zeroed_has_zero_content_and_one_ref() {
        let (mut p, mut c) = pm(16);
        let f = p.alloc_zeroed(&mut c).unwrap();
        assert_eq!(p.content(f), Ok(0));
        assert_eq!(p.refs(f), Ok(1));
        assert_eq!(p.used_frames(), 1);
        assert!(c.total() > 0);
    }

    #[test]
    fn copy_frame_duplicates_content_independently() {
        let (mut p, mut c) = pm(16);
        let a = p.alloc_zeroed(&mut c).unwrap();
        p.write_content(a, 42).unwrap();
        let b = p.copy_frame(a, &mut c).unwrap();
        assert_eq!(p.content(b), Ok(42));
        p.write_content(a, 7).unwrap();
        assert_eq!(p.content(b), Ok(42), "copy must not alias source");
        assert_eq!(p.pages_copied_total, 1);
    }

    #[test]
    fn refcount_frees_only_at_zero() {
        let (mut p, mut c) = pm(16);
        let f = p.alloc_zeroed(&mut c).unwrap();
        p.inc_ref(f).unwrap();
        assert_eq!(p.refs(f), Ok(2));
        assert_eq!(p.dec_ref(f, &mut c), Ok(false));
        assert_eq!(p.used_frames(), 1);
        assert_eq!(p.dec_ref(f, &mut c), Ok(true));
        assert_eq!(p.used_frames(), 0);
        assert_eq!(p.refs(f), Err(MemError::NotMapped));
    }

    #[test]
    fn exhaustion_propagates() {
        let (mut p, mut c) = pm(2);
        p.alloc_zeroed(&mut c).unwrap();
        p.alloc_zeroed(&mut c).unwrap();
        assert_eq!(p.alloc_zeroed(&mut c), Err(MemError::OutOfMemory));
    }

    #[test]
    fn freed_frame_is_reusable() {
        let (mut p, mut c) = pm(1);
        let f = p.alloc_zeroed(&mut c).unwrap();
        p.write_content(f, 9).unwrap();
        p.dec_ref(f, &mut c).unwrap();
        let g = p.alloc_zeroed(&mut c).unwrap();
        assert_eq!(p.content(g), Ok(0), "recycled frame must be zeroed");
    }
}
