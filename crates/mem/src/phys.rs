//! Physical memory: frame store with COW reference counts and logical
//! page contents.
//!
//! Rather than materialising 4 KiB of real bytes per simulated frame (which
//! would make multi-GiB experiments impossible to run), each frame carries a
//! single `u64` *content stamp*. A write to any address in a page replaces
//! the page's stamp; reads observe it. This is exactly enough state to
//! verify copy-on-write semantics (a child must observe the parent's stamps
//! as of fork time, and later writes must not leak across), while the
//! *costs* of moving real data are charged through [`CostModel`].
//!
//! Frames come from a buddy allocator. Two optional layers sit on top:
//!
//! * **Pins** — a kernel-side reference (e.g. the exec image cache) that
//!   keeps a frame alive independent of page-table mappings. Pins are
//!   tracked separately from PTE references so the structural invariant
//!   checker can account for them.
//! * **Per-CPU frame caches** — opt-in free-list magazines refilled by
//!   *batched* buddy allocations, so concurrent creators pay the global
//!   allocator's serialization once per batch instead of once per frame.
//!   Disabled by default; when disabled every cost is byte-identical to
//!   the plain allocator path.

use crate::addr::{Pfn, HUGE_PAGES};
use crate::buddy::BuddyAllocator;
use crate::cost::{CostModel, Cycles};
use crate::error::{MemError, MemResult};
use crate::swap::SwapDevice;
use fpr_faults::FaultSite;
use fpr_trace::metrics;
use fpr_trace::smp::VLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Free-frame watermarks, mirroring Linux's per-zone `min`/`low`/`high`.
///
/// Background reclaim (the simulated kswapd, [`PressureLevel::Low`] and
/// worse) should run while free frames sit below `low` and stop once they
/// recover past `high`; only below `min` is the machine in OOM territory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermarks {
    /// Below this, allocations are in OOM territory.
    pub min: u64,
    /// Below this, background reclaim should run.
    pub low: u64,
    /// Reclaim's refill target; pressure clears above it.
    pub high: u64,
}

impl Watermarks {
    /// Default watermarks for a machine of `total_frames`, scaled the way
    /// Linux derives zone watermarks from `min_free_kbytes`: `min` is
    /// 1/64th of memory (at least 4 frames), `low` and `high` sit 25% and
    /// 50% above it.
    pub fn for_total(total_frames: u64) -> Watermarks {
        let min = (total_frames / 64).max(4).min(total_frames);
        Watermarks {
            min,
            low: (min + min / 4).min(total_frames),
            high: (min + min / 2).min(total_frames),
        }
    }
}

/// How tight free memory currently is, judged against [`Watermarks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureLevel {
    /// Free frames at or above the high watermark: no pressure.
    None,
    /// Free frames below high but at or above low: reclaim soon.
    Low,
    /// Free frames below low but at or above min: reclaim now.
    High,
    /// Free frames below min: allocations may fail; OOM territory.
    Critical,
}

/// Per-frame metadata: COW reference count and logical content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FrameMeta {
    refs: u32,
    content: u64,
}

/// Refill batch for the per-cell magazine a shared-pool cell boots with
/// (see [`PhysMemory::new_cell`]).
pub const CELL_MAGAZINE_BATCH: u64 = 64;

/// A buddy core shared by several kernel cells on different OS threads.
///
/// This is the SMP promotion of the per-CPU magazines: each cell keeps a
/// genuinely private free-list (its [`PhysMemory`] magazine, touched
/// only by the cell's own thread) and refills it with *batched*
/// allocations from this locked buddy core, so concurrent creators pay
/// the global serialization once per [`CELL_MAGAZINE_BATCH`] frames
/// instead of once per frame. The lock is a [`VLock`] named `"buddy"`,
/// so every contended refill is visible in
/// [`fpr_trace::metrics::lock_stats`] and priced in virtual time.
///
/// A free-count mirror is kept in an atomic so pressure reads
/// ([`PhysMemory::pressure`], [`PhysMemory::free_frames`]) never touch
/// the lock.
#[derive(Debug)]
pub struct SharedFramePool {
    core: VLock<BuddyAllocator>,
    free: AtomicU64,
    total: u64,
}

impl SharedFramePool {
    /// A pool of `total_frames` frames, all free.
    pub fn new(total_frames: u64) -> SharedFramePool {
        SharedFramePool {
            core: VLock::new("buddy", BuddyAllocator::new(Pfn(0), total_frames)),
            free: AtomicU64::new(total_frames),
            total: total_frames,
        }
    }

    /// Total frames in the pool.
    pub fn total_frames(&self) -> u64 {
        self.total
    }

    /// Frames currently free in the pool core (excluding frames parked
    /// in any cell's magazine). Lock-free read of the atomic mirror.
    pub fn free_frames(&self) -> u64 {
        self.free.load(Ordering::Relaxed)
    }

    /// One frame off the locked core.
    fn alloc_one(&self) -> MemResult<Pfn> {
        let mut core = self.core.lock();
        let pfn = core.alloc(0)?;
        self.free.fetch_sub(1, Ordering::Relaxed);
        Ok(pfn)
    }

    /// A refill run of up to `2^max_order` frames, degrading to smaller
    /// runs under fragmentation — the whole descent happens under one
    /// lock acquisition, unlike a naive per-order retry loop.
    fn alloc_run_best(&self, max_order: usize) -> MemResult<Vec<Pfn>> {
        let mut core = self.core.lock();
        let mut order = max_order;
        loop {
            match core.alloc_run(order) {
                Ok(run) => {
                    self.free.fetch_sub(run.len() as u64, Ordering::Relaxed);
                    return Ok(run);
                }
                Err(_) if order > 0 => order -= 1,
                Err(e) => return Err(e),
            }
        }
    }

    /// An exactly-`2^order` naturally aligned run (huge mappings).
    fn alloc_aligned_run(&self, order: usize) -> MemResult<Vec<Pfn>> {
        let mut core = self.core.lock();
        let run = core.alloc_run(order)?;
        self.free.fetch_sub(run.len() as u64, Ordering::Relaxed);
        Ok(run)
    }

    /// Returns `pfns` to the core under one lock acquisition.
    fn free_many(&self, pfns: &[Pfn]) {
        if pfns.is_empty() {
            return;
        }
        let mut core = self.core.lock();
        for &pfn in pfns {
            core.free(pfn);
        }
        self.free.fetch_add(pfns.len() as u64, Ordering::Relaxed);
    }
}

/// Machine-wide transparent-huge-page counters (`/proc/meminfo`'s THP
/// line). Promotion failures are *absorbed* — the mapping proceeds with
/// small pages — so `failed` counts fallbacks, not errors.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ThpStats {
    /// Blocks collapsed into 2 MiB huge leaves.
    pub promoted: u64,
    /// Huge leaves split back into small PTEs.
    pub demoted: u64,
    /// Promotion attempts that fell back to small pages (fragmentation
    /// or an injected `pt_promote` fault).
    pub failed: u64,
}

/// Opt-in per-CPU free-list magazines over the buddy allocator.
#[derive(Debug, Clone)]
struct FrameCache {
    /// One free-frame stack per CPU.
    magazines: Vec<Vec<Pfn>>,
    /// Target refill batch (frames fetched per global acquisition).
    batch: u64,
    /// Total frames parked across all magazines (counted as free).
    cached: u64,
}

/// The machine's physical memory.
#[derive(Debug)]
pub struct PhysMemory {
    alloc: BuddyAllocator,
    meta: HashMap<u64, FrameMeta>,
    cost: CostModel,
    /// Kernel pins per frame (image cache etc.); each pin holds one ref.
    pins: HashMap<u64, u32>,
    cache: Option<FrameCache>,
    current_cpu: usize,
    /// Modeled number of *other* CPUs concurrently hammering the global
    /// allocator; each global-path acquisition pays
    /// `frame_alloc_contended` per contender. Zero by default.
    contenders: u32,
    /// Cumulative count of frames ever allocated (statistics).
    pub frames_allocated_total: u64,
    /// Cumulative count of 4 KiB page copies performed (statistics).
    pub pages_copied_total: u64,
    /// Free-frame watermarks the pressure level is judged against.
    watermarks: Watermarks,
    /// PSI-style stall accounting: cycles spent in reclaim passes.
    stall_cycles_total: u64,
    /// PSI-style stall accounting: number of reclaim stalls recorded.
    stall_events_total: u64,
    /// The swap device (capacity 0 = no swap configured).
    swap: SwapDevice,
    /// Machine-wide THP promotion/demotion counters.
    thp: ThpStats,
    /// Shared frame pool this cell draws from (SMP mode). `None` keeps
    /// the cell on its private buddy allocator, byte-identical to the
    /// pre-SMP behaviour.
    shared: Option<Arc<SharedFramePool>>,
    /// Frames currently drawn from the shared pool by this cell —
    /// resident (in `meta`) plus magazine-parked. Unused (zero) in
    /// private mode.
    drawn: u64,
}

impl PhysMemory {
    /// Creates physical memory with `total_frames` frames and the given
    /// cost model.
    pub fn new(total_frames: u64, cost: CostModel) -> Self {
        PhysMemory {
            alloc: BuddyAllocator::new(Pfn(0), total_frames),
            meta: HashMap::new(),
            cost,
            pins: HashMap::new(),
            cache: None,
            current_cpu: 0,
            contenders: 0,
            frames_allocated_total: 0,
            pages_copied_total: 0,
            watermarks: Watermarks::for_total(total_frames),
            stall_cycles_total: 0,
            stall_events_total: 0,
            swap: SwapDevice::new(0),
            thp: ThpStats::default(),
            shared: None,
            drawn: 0,
        }
    }

    /// Creates the physical-memory view of one SMP *cell*: no private
    /// buddy of its own, all frames drawn from `pool` through a
    /// single-magazine per-thread free-list (batch
    /// [`CELL_MAGAZINE_BATCH`]). Watermarks and pressure are judged
    /// against the *pool's* free count, so every cell sees machine-wide
    /// pressure.
    pub fn new_cell(pool: Arc<SharedFramePool>, cost: CostModel) -> Self {
        let total = pool.total_frames();
        let mut pm = PhysMemory::new(0, cost);
        pm.watermarks = Watermarks::for_total(total);
        pm.shared = Some(pool);
        pm.enable_frame_cache(1, CELL_MAGAZINE_BATCH);
        pm
    }

    /// The shared frame pool this cell draws from, if any.
    pub fn shared_pool(&self) -> Option<&Arc<SharedFramePool>> {
        self.shared.as_ref()
    }

    /// Frames this cell currently holds out of its shared pool (resident
    /// plus magazine-parked). Zero in private mode. The SMP driver's
    /// conservation check sums this across cells against the pool's free
    /// count.
    pub fn drawn_frames(&self) -> u64 {
        self.drawn
    }

    /// Attaches a swap device of `slots` one-page slots (replacing the
    /// default zero-capacity device). Boot-time only: swapping an active
    /// device out from under live swap entries would orphan them.
    pub fn set_swap_capacity(&mut self, slots: u64) {
        assert_eq!(
            self.swap.used_slots(),
            0,
            "cannot resize a swap device holding pages"
        );
        self.swap = SwapDevice::new(slots);
    }

    /// The swap device.
    pub fn swap(&self) -> &SwapDevice {
        &self.swap
    }

    /// The swap device, mutably (slot refcounting during fork/unshare).
    pub fn swap_mut(&mut self) -> &mut SwapDevice {
        &mut self.swap
    }

    /// Writes one page out: reserves a slot holding `stamp`, charging the
    /// bitmap scan and the device write. Crosses
    /// [`fpr_faults::FaultSite::SwapSlotAlloc`]; on `Err` nothing changed.
    pub fn swap_out_page(&mut self, stamp: u64, cycles: &mut Cycles) -> MemResult<u64> {
        let PhysMemory { swap, cost, .. } = self;
        swap.alloc_slot(stamp, cycles, cost)
    }

    /// Reads slot `slot` back into a fresh frame on a major fault.
    ///
    /// Order matters for transactionality: the device read (crossing
    /// [`fpr_faults::FaultSite::SwapIn`]) and the frame allocation
    /// (crossing [`fpr_faults::FaultSite::FrameAlloc`]) both happen
    /// before any state mutates, so either failure leaves the address
    /// space, the device, and the frame pool untouched. The slot
    /// reference is still held on success; the caller drops it once the
    /// PTE points at the new frame.
    pub fn swap_in_frame(&mut self, slot: u64, cycles: &mut Cycles) -> MemResult<Pfn> {
        let stamp = {
            let PhysMemory { swap, cost, .. } = self;
            swap.read_slot(slot, cycles, cost)?
        };
        fpr_faults::cross(FaultSite::FrameAlloc).map_err(|_| MemError::OutOfMemory)?;
        let pfn = self.take_frame(cycles)?;
        self.meta.insert(pfn.0, FrameMeta { refs: 1, content: stamp });
        self.frames_allocated_total += 1;
        metrics::incr("mem.frame_alloc");
        Ok(pfn)
    }

    /// Returns the active cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Replaces the cost model (used by ablation benches).
    pub fn set_cost(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Number of frames currently free (buddy free list + magazines; in
    /// shared mode, the pool's free count + this cell's magazines).
    pub fn free_frames(&self) -> u64 {
        let cached = self.cache.as_ref().map_or(0, |c| c.cached);
        match self.shared.as_ref() {
            Some(pool) => pool.free_frames() + cached,
            None => self.alloc.free_frames() + cached,
        }
    }

    /// Total number of frames in the machine (the pool's, in shared
    /// mode).
    pub fn total_frames(&self) -> u64 {
        match self.shared.as_ref() {
            Some(pool) => pool.total_frames(),
            None => self.alloc.total_frames(),
        }
    }

    /// Number of frames currently in use *by this cell*. In private mode
    /// that is everything not free; in shared mode it is the frames
    /// drawn from the pool minus those parked in the magazine — i.e.
    /// exactly the frames carrying live metadata — so the per-cell
    /// invariant (PTE references = used frames) holds unchanged.
    pub fn used_frames(&self) -> u64 {
        match self.shared.as_ref() {
            Some(_) => self.drawn - self.cache.as_ref().map_or(0, |c| c.cached),
            None => self.total_frames() - self.free_frames(),
        }
    }

    /// The active free-frame watermarks.
    pub fn watermarks(&self) -> Watermarks {
        self.watermarks
    }

    /// Replaces the watermarks (experiments tighten them to provoke
    /// pressure without filling a whole machine).
    pub fn set_watermarks(&mut self, w: Watermarks) {
        assert!(
            w.min <= w.low && w.low <= w.high,
            "watermarks must satisfy min <= low <= high"
        );
        self.watermarks = w;
    }

    /// The current pressure level, judging free frames against the
    /// watermarks. Costs nothing: it is a pure read.
    pub fn pressure(&self) -> PressureLevel {
        let free = self.free_frames();
        if free >= self.watermarks.high {
            PressureLevel::None
        } else if free >= self.watermarks.low {
            PressureLevel::Low
        } else if free >= self.watermarks.min {
            PressureLevel::High
        } else {
            PressureLevel::Critical
        }
    }

    /// Frames a reclaim pass should free to clear pressure: the gap from
    /// the current free count up to the high watermark (zero when free).
    pub fn reclaim_target(&self) -> u64 {
        self.watermarks.high.saturating_sub(self.free_frames())
    }

    /// Records a PSI-style memory stall: `cycles` spent waiting on
    /// reclaim instead of making progress.
    pub fn note_stall(&mut self, cycles: u64) {
        self.stall_cycles_total += cycles;
        self.stall_events_total += 1;
    }

    /// Cumulative cycles recorded as memory-pressure stalls.
    pub fn stall_cycles_total(&self) -> u64 {
        self.stall_cycles_total
    }

    /// Cumulative number of memory-pressure stalls recorded.
    pub fn stall_events_total(&self) -> u64 {
        self.stall_events_total
    }

    /// Enables per-CPU frame caching with one magazine per CPU and the
    /// given refill batch size (frames per global acquisition). No-op
    /// costs change for hits/refills; all other accounting is unchanged.
    pub fn enable_frame_cache(&mut self, cpus: usize, batch: u64) {
        assert!(cpus > 0 && batch > 0, "frame cache needs cpus > 0, batch > 0");
        if self.cache.is_none() {
            self.cache = Some(FrameCache {
                magazines: vec![Vec::new(); cpus],
                batch,
                cached: 0,
            });
        }
    }

    /// Disables per-CPU caching, draining every magazine back to the
    /// buddy allocator (or the shared pool, in shared mode).
    pub fn disable_frame_cache(&mut self) {
        if let Some(cache) = self.cache.take() {
            match self.shared.as_ref() {
                Some(pool) => {
                    let drained: Vec<Pfn> = cache.magazines.into_iter().flatten().collect();
                    self.drawn -= drained.len() as u64;
                    pool.free_many(&drained);
                }
                None => {
                    for mag in cache.magazines {
                        for pfn in mag {
                            self.alloc.free(pfn);
                        }
                    }
                }
            }
        }
    }

    /// True if per-CPU frame caching is active.
    pub fn frame_cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Frames currently parked in per-CPU magazines.
    pub fn cached_frames(&self) -> u64 {
        self.cache.as_ref().map_or(0, |c| c.cached)
    }

    /// Sets which CPU's magazine subsequent allocations use.
    pub fn set_current_cpu(&mut self, cpu: usize) {
        self.current_cpu = cpu;
    }

    /// Sets the modeled global-allocator contention (other concurrent
    /// allocators). Used by the scaling ablation; zero by default.
    pub fn set_contenders(&mut self, n: u32) {
        self.contenders = n;
    }

    /// One frame off the global (buddy) path, paying serialization.
    fn take_global(&mut self, cycles: &mut Cycles) -> MemResult<Pfn> {
        let pfn = match self.shared.as_ref() {
            Some(pool) => {
                let pfn = pool.alloc_one()?;
                self.drawn += 1;
                pfn
            }
            None => self.alloc.alloc(0)?,
        };
        cycles.charge(self.cost.frame_alloc);
        if self.contenders > 0 {
            cycles.charge(self.cost.frame_alloc_contended * self.contenders as u64);
        }
        Ok(pfn)
    }

    /// One frame, through the per-CPU cache when enabled.
    fn take_frame(&mut self, cycles: &mut Cycles) -> MemResult<Pfn> {
        let (slot, batch) = match self.cache.as_ref() {
            None => return self.take_global(cycles),
            Some(c) => (self.current_cpu % c.magazines.len(), c.batch),
        };
        let popped = {
            let cache = self.cache.as_mut().expect("checked above");
            let p = cache.magazines[slot].pop();
            if p.is_some() {
                cache.cached -= 1;
            }
            p
        };
        if let Some(pfn) = popped {
            cycles.charge(self.cost.frame_cache_hit);
            metrics::incr("mem.frame_cache.hit");
            return Ok(pfn);
        }
        // Refill: one batched buddy acquisition pays the global
        // serialization once for the whole batch. Fall back to smaller
        // runs under fragmentation or near-exhaustion. In shared mode
        // the pool does the order descent under a single acquisition.
        let mut order = 63 - batch.leading_zeros() as usize;
        let got = match self.shared.as_ref() {
            // Cross the SMP-only refill site before touching the buddy
            // lock: an injected failure models a dry/contended pool and
            // falls through to the magazine-steal path, exactly like a
            // real exhaustion — the cell stays consistent and the caller
            // sees an ordinary transient OutOfMemory.
            Some(pool) => match fpr_faults::cross(FaultSite::PoolRefill) {
                Ok(()) => pool.alloc_run_best(order),
                Err(_) => Err(MemError::OutOfMemory),
            },
            None => loop {
                match self.alloc.alloc_run(order) {
                    Ok(run) => break Ok(run),
                    Err(_) if order > 0 => order -= 1,
                    Err(e) => break Err(e),
                }
            },
        };
        let run = match got {
            Ok(run) => run,
            Err(e) => {
                // Global pool dry: steal from the fullest other
                // magazine before reporting exhaustion.
                let stolen = {
                    let cache = self.cache.as_mut().expect("checked above");
                    let victim = (0..cache.magazines.len())
                        .max_by_key(|&i| cache.magazines[i].len())
                        .expect("at least one magazine");
                    let p = cache.magazines[victim].pop();
                    if p.is_some() {
                        cache.cached -= 1;
                    }
                    p
                };
                return match stolen {
                    Some(pfn) => {
                        cycles.charge(self.cost.frame_cache_hit);
                        metrics::incr("mem.frame_cache.steal");
                        Ok(pfn)
                    }
                    None => Err(e),
                };
            }
        };
        if self.shared.is_some() {
            self.drawn += run.len() as u64;
        }
        cycles.charge(self.cost.frame_cache_refill);
        if self.contenders > 0 {
            cycles.charge(self.cost.frame_alloc_contended * self.contenders as u64);
        }
        metrics::incr("mem.frame_cache.refill");
        let mut run = run.into_iter();
        let first = run.next().expect("alloc_run returns at least one frame");
        let cache = self.cache.as_mut().expect("checked above");
        for pfn in run {
            cache.magazines[slot].push(pfn);
            cache.cached += 1;
        }
        Ok(first)
    }

    /// Returns one freed frame to the magazine (cache on) or buddy.
    fn release_frame(&mut self, pfn: Pfn) {
        if self.cache.is_none() {
            match self.shared.as_ref() {
                Some(pool) => {
                    self.drawn -= 1;
                    pool.free_many(&[pfn]);
                }
                None => self.alloc.free(pfn),
            }
            return;
        }
        let drained = {
            let cpu = self.current_cpu;
            let cache = self.cache.as_mut().expect("checked above");
            let slot = cpu % cache.magazines.len();
            cache.magazines[slot].push(pfn);
            cache.cached += 1;
            // Overfull magazine: drain a batch back to the buddy so one
            // CPU freeing heavily cannot strand the whole pool.
            if cache.magazines[slot].len() as u64 > 2 * cache.batch {
                let mut v = Vec::with_capacity(cache.batch as usize);
                for _ in 0..cache.batch {
                    if let Some(p) = cache.magazines[slot].pop() {
                        cache.cached -= 1;
                        v.push(p);
                    }
                }
                v
            } else {
                Vec::new()
            }
        };
        if !drained.is_empty() {
            match self.shared.as_ref() {
                Some(pool) => {
                    self.drawn -= drained.len() as u64;
                    pool.free_many(&drained);
                }
                None => {
                    for p in drained {
                        self.alloc.free(p);
                    }
                }
            }
            metrics::incr("mem.frame_cache.drain");
        }
    }

    /// Machine-wide THP promotion/demotion counters.
    pub fn thp_stats(&self) -> ThpStats {
        self.thp
    }

    /// Records a successful huge-page promotion.
    pub fn note_thp_promoted(&mut self) {
        self.thp.promoted += 1;
        metrics::incr("mem.thp.promote");
    }

    /// Records a huge-page demotion (split back to small PTEs).
    pub fn note_thp_demoted(&mut self) {
        self.thp.demoted += 1;
        metrics::incr("mem.thp.demote");
    }

    /// Records a promotion attempt that fell back to small pages.
    pub fn note_thp_promote_failed(&mut self) {
        self.thp.failed += 1;
        metrics::incr("mem.thp.promote_failed_fragmented");
    }

    /// Allocates a naturally aligned, physically contiguous run of 512
    /// zeroed frames for one 2 MiB huge mapping, returning the head frame.
    /// Every frame of the run has its own reference count and can be freed
    /// individually (demotion hands each page its own PTE), so the run is
    /// taken with [`BuddyAllocator::alloc_run`], bypassing the per-CPU
    /// magazines — contiguity is the whole point.
    ///
    /// Fails with [`MemError::Fragmented`] when no aligned run exists; the
    /// caller falls back to small pages. No fault site is crossed here —
    /// promotion attempts are guarded by `pt_promote` at the call site and
    /// a natural allocation failure is already an absorbed fallback.
    pub fn alloc_zeroed_huge_run(&mut self, cycles: &mut Cycles) -> MemResult<Pfn> {
        let order = HUGE_PAGES.trailing_zeros() as usize;
        let run = match self.shared.as_ref() {
            Some(pool) => {
                let run = pool.alloc_aligned_run(order)?;
                self.drawn += run.len() as u64;
                run
            }
            None => self.alloc.alloc_run(order)?,
        };
        // One global-allocator acquisition for the whole run, then the
        // data cost of zeroing 2 MiB.
        cycles.charge(self.cost.frame_alloc);
        if self.contenders > 0 {
            cycles.charge(self.cost.frame_alloc_contended * self.contenders as u64);
        }
        cycles.charge(self.cost.page_zero * HUGE_PAGES);
        let head = run[0];
        debug_assert_eq!(head.0 % HUGE_PAGES, 0, "huge run must be aligned");
        for pfn in run {
            self.meta.insert(pfn.0, FrameMeta { refs: 1, content: 0 });
        }
        self.frames_allocated_total += HUGE_PAGES;
        metrics::add("mem.frame_alloc", HUGE_PAGES);
        Ok(head)
    }

    /// Increments the reference count of each frame in `[head, head+n)`.
    pub fn inc_ref_run(&mut self, head: Pfn, n: u64) -> MemResult<()> {
        for i in 0..n {
            self.inc_ref(Pfn(head.0 + i))?;
        }
        Ok(())
    }

    /// Decrements the reference count of each frame in `[head, head+n)`,
    /// freeing those that reach zero.
    pub fn dec_ref_run(&mut self, head: Pfn, n: u64, cycles: &mut Cycles) -> MemResult<()> {
        for i in 0..n {
            self.dec_ref(Pfn(head.0 + i), cycles)?;
        }
        Ok(())
    }

    /// Allocates a zeroed frame with reference count 1.
    pub fn alloc_zeroed(&mut self, cycles: &mut Cycles) -> MemResult<Pfn> {
        fpr_faults::cross(FaultSite::FrameAlloc).map_err(|_| MemError::OutOfMemory)?;
        let pfn = self.take_frame(cycles)?;
        cycles.charge(self.cost.page_zero);
        self.meta.insert(
            pfn.0,
            FrameMeta {
                refs: 1,
                content: 0,
            },
        );
        self.frames_allocated_total += 1;
        metrics::incr("mem.frame_alloc");
        Ok(pfn)
    }

    /// Allocates a frame holding `content` with reference count 1,
    /// charging a file-read rather than a zero-fill.
    pub fn alloc_filled(&mut self, content: u64, cycles: &mut Cycles) -> MemResult<Pfn> {
        fpr_faults::cross(FaultSite::FrameAlloc).map_err(|_| MemError::OutOfMemory)?;
        let pfn = self.take_frame(cycles)?;
        cycles.charge(self.cost.file_read_page);
        self.meta.insert(pfn.0, FrameMeta { refs: 1, content });
        self.frames_allocated_total += 1;
        metrics::incr("mem.frame_alloc");
        Ok(pfn)
    }

    /// Allocates a new frame that duplicates `src`'s content (COW break or
    /// eager fork copy).
    pub fn copy_frame(&mut self, src: Pfn, cycles: &mut Cycles) -> MemResult<Pfn> {
        fpr_faults::cross(FaultSite::FrameAlloc).map_err(|_| MemError::OutOfMemory)?;
        let content = self.content(src)?;
        let pfn = self.take_frame(cycles)?;
        cycles.charge(self.cost.page_copy);
        self.meta.insert(pfn.0, FrameMeta { refs: 1, content });
        self.frames_allocated_total += 1;
        self.pages_copied_total += 1;
        metrics::incr("mem.frame_alloc");
        metrics::incr("mem.page_copy");
        Ok(pfn)
    }

    /// Increments the COW reference count of `pfn`.
    pub fn inc_ref(&mut self, pfn: Pfn) -> MemResult<()> {
        let m = self.meta.get_mut(&pfn.0).ok_or(MemError::NotMapped)?;
        m.refs += 1;
        Ok(())
    }

    /// Decrements the reference count, freeing the frame when it reaches
    /// zero. Returns `true` if the frame was freed.
    pub fn dec_ref(&mut self, pfn: Pfn, cycles: &mut Cycles) -> MemResult<bool> {
        let m = self.meta.get_mut(&pfn.0).ok_or(MemError::NotMapped)?;
        debug_assert!(m.refs > 0);
        m.refs -= 1;
        if m.refs == 0 {
            self.meta.remove(&pfn.0);
            self.release_frame(pfn);
            cycles.charge(self.cost.frame_free);
            metrics::incr("mem.frame_free");
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Takes a kernel pin on `pfn`: one additional reference held by a
    /// kernel-side owner (e.g. the exec image cache) rather than a PTE.
    /// The invariant checker accounts pins separately from mappings.
    pub fn pin(&mut self, pfn: Pfn) -> MemResult<()> {
        self.inc_ref(pfn)?;
        *self.pins.entry(pfn.0).or_insert(0) += 1;
        Ok(())
    }

    /// Drops one kernel pin from `pfn`, freeing the frame if that was the
    /// last reference. Returns `true` if the frame was freed.
    pub fn unpin(&mut self, pfn: Pfn, cycles: &mut Cycles) -> MemResult<bool> {
        let n = self.pins.get_mut(&pfn.0).ok_or(MemError::NotMapped)?;
        debug_assert!(*n > 0);
        *n -= 1;
        if *n == 0 {
            self.pins.remove(&pfn.0);
        }
        self.dec_ref(pfn, cycles)
    }

    /// Current kernel-pin count of `pfn` (zero if unpinned).
    pub fn pin_count(&self, pfn: Pfn) -> u32 {
        self.pins.get(&pfn.0).copied().unwrap_or(0)
    }

    /// Snapshot of every pinned frame and its pin count, sorted by PFN.
    pub fn pinned(&self) -> Vec<(Pfn, u32)> {
        let mut v: Vec<(Pfn, u32)> = self.pins.iter().map(|(&p, &n)| (Pfn(p), n)).collect();
        v.sort_by_key(|(p, _)| p.0);
        v
    }

    /// Returns the current reference count of `pfn`.
    pub fn refs(&self, pfn: Pfn) -> MemResult<u32> {
        self.meta
            .get(&pfn.0)
            .map(|m| m.refs)
            .ok_or(MemError::NotMapped)
    }

    /// Reads the logical content stamp of `pfn`.
    pub fn content(&self, pfn: Pfn) -> MemResult<u64> {
        self.meta
            .get(&pfn.0)
            .map(|m| m.content)
            .ok_or(MemError::NotMapped)
    }

    /// Overwrites the logical content stamp of `pfn`.
    ///
    /// The caller (the fault handler / address space) is responsible for
    /// ensuring the frame is exclusively owned or the write is to a shared
    /// mapping; this is a raw store.
    pub fn write_content(&mut self, pfn: Pfn, content: u64) -> MemResult<()> {
        let m = self.meta.get_mut(&pfn.0).ok_or(MemError::NotMapped)?;
        m.content = content;
        Ok(())
    }

    /// Number of live (allocated) frames tracked with metadata.
    pub fn live_frames(&self) -> usize {
        self.meta.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm(frames: u64) -> (PhysMemory, Cycles) {
        (PhysMemory::new(frames, CostModel::default()), Cycles::new())
    }

    #[test]
    fn alloc_zeroed_has_zero_content_and_one_ref() {
        let (mut p, mut c) = pm(16);
        let f = p.alloc_zeroed(&mut c).unwrap();
        assert_eq!(p.content(f), Ok(0));
        assert_eq!(p.refs(f), Ok(1));
        assert_eq!(p.used_frames(), 1);
        assert!(c.total() > 0);
    }

    #[test]
    fn copy_frame_duplicates_content_independently() {
        let (mut p, mut c) = pm(16);
        let a = p.alloc_zeroed(&mut c).unwrap();
        p.write_content(a, 42).unwrap();
        let b = p.copy_frame(a, &mut c).unwrap();
        assert_eq!(p.content(b), Ok(42));
        p.write_content(a, 7).unwrap();
        assert_eq!(p.content(b), Ok(42), "copy must not alias source");
        assert_eq!(p.pages_copied_total, 1);
    }

    #[test]
    fn refcount_frees_only_at_zero() {
        let (mut p, mut c) = pm(16);
        let f = p.alloc_zeroed(&mut c).unwrap();
        p.inc_ref(f).unwrap();
        assert_eq!(p.refs(f), Ok(2));
        assert_eq!(p.dec_ref(f, &mut c), Ok(false));
        assert_eq!(p.used_frames(), 1);
        assert_eq!(p.dec_ref(f, &mut c), Ok(true));
        assert_eq!(p.used_frames(), 0);
        assert_eq!(p.refs(f), Err(MemError::NotMapped));
    }

    #[test]
    fn exhaustion_propagates() {
        let (mut p, mut c) = pm(2);
        p.alloc_zeroed(&mut c).unwrap();
        p.alloc_zeroed(&mut c).unwrap();
        assert_eq!(p.alloc_zeroed(&mut c), Err(MemError::OutOfMemory));
    }

    #[test]
    fn freed_frame_is_reusable() {
        let (mut p, mut c) = pm(1);
        let f = p.alloc_zeroed(&mut c).unwrap();
        p.write_content(f, 9).unwrap();
        p.dec_ref(f, &mut c).unwrap();
        let g = p.alloc_zeroed(&mut c).unwrap();
        assert_eq!(p.content(g), Ok(0), "recycled frame must be zeroed");
    }

    #[test]
    fn pin_holds_frame_alive_past_last_unmap_ref() {
        let (mut p, mut c) = pm(16);
        let f = p.alloc_zeroed(&mut c).unwrap();
        p.write_content(f, 0xCAFE).unwrap();
        p.pin(f).unwrap();
        assert_eq!(p.refs(f), Ok(2));
        assert_eq!(p.pin_count(f), 1);
        // The mapping reference goes away; the pin keeps the content.
        assert_eq!(p.dec_ref(f, &mut c), Ok(false));
        assert_eq!(p.content(f), Ok(0xCAFE));
        assert_eq!(p.pinned(), vec![(f, 1)]);
        assert_eq!(p.unpin(f, &mut c), Ok(true), "last pin frees");
        assert_eq!(p.pin_count(f), 0);
        assert_eq!(p.used_frames(), 0);
    }

    #[test]
    fn cache_hit_is_cheaper_than_global_alloc_and_refill_batches() {
        let cost = CostModel::default();
        let (mut p, mut c) = pm(1024);
        p.enable_frame_cache(2, 8);
        let before = c.total();
        p.alloc_zeroed(&mut c).unwrap(); // miss: one batched refill
        let refill_cost = c.total() - before;
        assert_eq!(refill_cost, cost.frame_cache_refill + cost.page_zero);
        assert_eq!(p.cached_frames(), 7, "batch of 8 minus the one returned");
        let before = c.total();
        p.alloc_zeroed(&mut c).unwrap(); // hit
        assert_eq!(c.total() - before, cost.frame_cache_hit + cost.page_zero);
        assert!(cost.frame_cache_hit < cost.frame_alloc);
    }

    #[test]
    fn huge_run_is_aligned_contiguous_and_individually_freeable() {
        let (mut p, mut c) = pm(2048);
        let head = p.alloc_zeroed_huge_run(&mut c).unwrap();
        assert_eq!(head.0 % HUGE_PAGES, 0);
        assert_eq!(p.used_frames(), HUGE_PAGES);
        for i in 0..HUGE_PAGES {
            assert_eq!(p.refs(Pfn(head.0 + i)), Ok(1));
            assert_eq!(p.content(Pfn(head.0 + i)), Ok(0));
        }
        // Free half individually; the rest survives.
        for i in 0..HUGE_PAGES / 2 {
            assert_eq!(p.dec_ref(Pfn(head.0 + i), &mut c), Ok(true));
        }
        assert_eq!(p.used_frames(), HUGE_PAGES / 2);
        p.dec_ref_run(Pfn(head.0 + HUGE_PAGES / 2), HUGE_PAGES / 2, &mut c)
            .unwrap();
        assert_eq!(p.used_frames(), 0);
    }

    #[test]
    fn huge_run_fails_fragmented_not_oom_when_frames_exist() {
        let (mut p, mut c) = pm(1024);
        // Take one small frame: the window at 0 is now fragmented.
        let a = p.alloc_zeroed(&mut c).unwrap();
        assert_eq!(a.0, 0, "buddy hands out frame 0 first");
        // The second 512-aligned window is still whole.
        match p.alloc_zeroed_huge_run(&mut c) {
            Ok(h) => assert_eq!(h.0, 512),
            Err(e) => panic!("second window should be free: {e:?}"),
        }
        // 511 free frames remain, none forming an aligned run: the mapping
        // must fall back to small pages rather than fail, so the error
        // distinguishes fragmentation from true exhaustion.
        let err = p.alloc_zeroed_huge_run(&mut c).unwrap_err();
        assert!(matches!(err, MemError::Fragmented | MemError::OutOfMemory));
        assert!(p.alloc_zeroed(&mut c).is_ok(), "small pages still available");
    }

    #[test]
    fn thp_stats_accumulate() {
        let (mut p, _c) = pm(16);
        assert_eq!(p.thp_stats(), ThpStats::default());
        p.note_thp_promoted();
        p.note_thp_promoted();
        p.note_thp_demoted();
        p.note_thp_promote_failed();
        let s = p.thp_stats();
        assert_eq!((s.promoted, s.demoted, s.failed), (2, 1, 1));
    }

    #[test]
    fn watermarks_scale_with_total_and_stay_ordered() {
        for total in [4, 64, 256, 4096, 262_144] {
            let w = Watermarks::for_total(total);
            assert!(w.min >= 1, "total={total}");
            assert!(w.min <= w.low && w.low <= w.high, "total={total}");
            assert!(w.high <= total, "total={total}");
        }
    }

    #[test]
    fn pressure_level_tracks_free_frames_across_watermarks() {
        let (mut p, mut c) = pm(256);
        let w = p.watermarks();
        assert_eq!(p.pressure(), PressureLevel::None);
        assert_eq!(p.reclaim_target(), 0);
        let mut frames = Vec::new();
        while p.free_frames() >= w.high {
            frames.push(p.alloc_zeroed(&mut c).unwrap());
        }
        assert_eq!(p.pressure(), PressureLevel::Low);
        assert!(p.reclaim_target() > 0);
        while p.free_frames() >= w.low {
            frames.push(p.alloc_zeroed(&mut c).unwrap());
        }
        assert_eq!(p.pressure(), PressureLevel::High);
        while p.free_frames() >= w.min {
            frames.push(p.alloc_zeroed(&mut c).unwrap());
        }
        assert_eq!(p.pressure(), PressureLevel::Critical);
        for f in frames {
            p.dec_ref(f, &mut c).unwrap();
        }
        assert_eq!(p.pressure(), PressureLevel::None);
    }

    #[test]
    fn pressure_levels_are_ordered() {
        assert!(PressureLevel::None < PressureLevel::Low);
        assert!(PressureLevel::Low < PressureLevel::High);
        assert!(PressureLevel::High < PressureLevel::Critical);
    }

    #[test]
    fn stall_accounting_accumulates() {
        let (mut p, _c) = pm(16);
        assert_eq!(p.stall_cycles_total(), 0);
        p.note_stall(100);
        p.note_stall(250);
        assert_eq!(p.stall_cycles_total(), 350);
        assert_eq!(p.stall_events_total(), 2);
    }

    #[test]
    fn cache_disabled_costs_are_identical_to_plain_path() {
        let cost = CostModel::default();
        let (mut p, mut c) = pm(64);
        p.alloc_zeroed(&mut c).unwrap();
        assert_eq!(c.total(), cost.frame_alloc + cost.page_zero);
    }

    #[test]
    fn cached_frames_count_as_free_and_drain_on_disable() {
        let (mut p, mut c) = pm(64);
        p.enable_frame_cache(1, 8);
        let f = p.alloc_zeroed(&mut c).unwrap();
        assert_eq!(p.free_frames(), 63, "magazine frames are still free");
        assert_eq!(p.used_frames(), 1);
        p.dec_ref(f, &mut c).unwrap();
        assert_eq!(p.used_frames(), 0);
        p.disable_frame_cache();
        assert_eq!(p.cached_frames(), 0);
        assert_eq!(p.free_frames(), 64, "drain returned everything to buddy");
    }

    #[test]
    fn cache_steals_from_other_magazines_before_oom() {
        let (mut p, mut c) = pm(8);
        p.enable_frame_cache(2, 8);
        p.set_current_cpu(0);
        let _f = p.alloc_zeroed(&mut c).unwrap(); // cpu0 magazine holds the other 7
        p.set_current_cpu(1);
        // Buddy is empty; cpu1 must steal from cpu0's magazine.
        for _ in 0..7 {
            p.alloc_zeroed(&mut c).unwrap();
        }
        assert_eq!(p.alloc_zeroed(&mut c), Err(MemError::OutOfMemory));
        assert_eq!(p.used_frames(), 8);
    }

    #[test]
    fn contention_charges_only_on_global_path() {
        let cost = CostModel::default();
        let (mut p, mut c) = pm(1024);
        p.set_contenders(4);
        let before = c.total();
        p.alloc_zeroed(&mut c).unwrap();
        assert_eq!(
            c.total() - before,
            cost.frame_alloc + 4 * cost.frame_alloc_contended + cost.page_zero
        );
        p.enable_frame_cache(1, 8);
        let before = c.total();
        p.alloc_zeroed(&mut c).unwrap(); // refill: contention paid once
        assert_eq!(
            c.total() - before,
            cost.frame_cache_refill + 4 * cost.frame_alloc_contended + cost.page_zero
        );
        let before = c.total();
        p.alloc_zeroed(&mut c).unwrap(); // hit: no contention
        assert_eq!(c.total() - before, cost.frame_cache_hit + cost.page_zero);
    }

    /// Σ cell.drawn + pool.free == pool.total — the conservation law the
    /// SMP driver asserts at quiesce.
    fn assert_conserved(pool: &SharedFramePool, cells: &[&PhysMemory]) {
        let drawn: u64 = cells.iter().map(|c| c.drawn_frames()).sum();
        assert_eq!(
            drawn + pool.free_frames(),
            pool.total_frames(),
            "shared-pool frame conservation"
        );
    }

    #[test]
    fn shared_cells_draw_from_one_pool_and_conserve_frames() {
        let pool = Arc::new(SharedFramePool::new(1024));
        let mut a = PhysMemory::new_cell(Arc::clone(&pool), CostModel::free());
        let mut b = PhysMemory::new_cell(Arc::clone(&pool), CostModel::free());
        let mut c = Cycles::new();
        let fa = a.alloc_zeroed(&mut c).unwrap();
        let fb = b.alloc_zeroed(&mut c).unwrap();
        assert_ne!(fa, fb, "cells never hand out the same frame");
        assert_eq!(a.used_frames(), 1);
        assert_eq!(b.used_frames(), 1);
        // Each cell's first allocation pulled a whole magazine batch.
        assert_eq!(a.drawn_frames(), CELL_MAGAZINE_BATCH);
        assert_conserved(&pool, &[&a, &b]);
        a.dec_ref(fa, &mut c).unwrap();
        b.dec_ref(fb, &mut c).unwrap();
        assert_eq!(a.used_frames(), 0);
        assert_eq!(b.used_frames(), 0);
        assert_conserved(&pool, &[&a, &b]);
        a.disable_frame_cache();
        b.disable_frame_cache();
        assert_eq!(a.drawn_frames(), 0);
        assert_eq!(pool.free_frames(), 1024, "everything returned");
    }

    #[test]
    fn shared_cell_exhaustion_is_machine_wide() {
        let pool = Arc::new(SharedFramePool::new(CELL_MAGAZINE_BATCH));
        let mut a = PhysMemory::new_cell(Arc::clone(&pool), CostModel::free());
        let mut b = PhysMemory::new_cell(Arc::clone(&pool), CostModel::free());
        let mut c = Cycles::new();
        // Cell A drains the whole pool into its magazine and uses it up.
        let mut held = Vec::new();
        for _ in 0..CELL_MAGAZINE_BATCH {
            held.push(a.alloc_zeroed(&mut c).unwrap());
        }
        assert_eq!(pool.free_frames(), 0);
        // Cell B sees a dry machine (its own magazine is empty and it
        // cannot reach into A's).
        assert_eq!(b.alloc_zeroed(&mut c), Err(MemError::OutOfMemory));
        // A freeing one frame parks it in A's magazine; only a drain or
        // disable returns it to the pool where B can see it.
        a.dec_ref(held.pop().unwrap(), &mut c).unwrap();
        a.disable_frame_cache();
        assert_eq!(pool.free_frames(), 1);
        let f = b.alloc_zeroed(&mut c).unwrap();
        b.dec_ref(f, &mut c).unwrap();
        assert_conserved(&pool, &[&a, &b]);
    }

    #[test]
    fn shared_cell_watermarks_track_pool_pressure() {
        let pool = Arc::new(SharedFramePool::new(256));
        let mut a = PhysMemory::new_cell(Arc::clone(&pool), CostModel::free());
        let mut c = Cycles::new();
        assert_eq!(a.pressure(), PressureLevel::None);
        let mut held = Vec::new();
        while a.free_frames() > 2 {
            held.push(a.alloc_zeroed(&mut c).unwrap());
        }
        assert_eq!(
            a.pressure(),
            PressureLevel::Critical,
            "pool-wide pressure visible from the cell"
        );
        for f in held {
            a.dec_ref(f, &mut c).unwrap();
        }
    }

    #[test]
    fn shared_huge_run_draws_aligned_frames_from_pool() {
        let pool = Arc::new(SharedFramePool::new(2 * HUGE_PAGES));
        let mut a = PhysMemory::new_cell(Arc::clone(&pool), CostModel::free());
        let mut c = Cycles::new();
        let head = a.alloc_zeroed_huge_run(&mut c).unwrap();
        assert_eq!(head.0 % HUGE_PAGES, 0);
        assert_eq!(a.used_frames(), HUGE_PAGES);
        a.dec_ref_run(head, HUGE_PAGES, &mut c).unwrap();
        assert_conserved(&pool, &[&a]);
    }
}
