//! Single-frame allocation: the [`FrameAllocator`] trait and a bitmap
//! implementation used as the default allocator for anonymous pages.

use crate::addr::Pfn;
use crate::error::{MemError, MemResult};

/// Allocates and frees individual physical frames.
pub trait FrameAllocator {
    /// Allocates one frame, or fails with [`MemError::OutOfMemory`].
    fn alloc(&mut self) -> MemResult<Pfn>;

    /// Frees a previously allocated frame.
    ///
    /// # Panics
    ///
    /// Implementations panic on double-free or on freeing a frame that was
    /// never allocated, since either indicates a kernel bug.
    fn free(&mut self, pfn: Pfn);

    /// Returns the number of frames currently free.
    fn free_frames(&self) -> u64;

    /// Returns the total number of frames managed.
    fn total_frames(&self) -> u64;
}

/// A bitmap frame allocator with a rotating next-fit cursor.
///
/// One bit per frame; next-fit keeps allocation O(1) amortised and spreads
/// allocations across the frame space the way a real free-list does.
#[derive(Debug, Clone)]
pub struct BitmapFrameAllocator {
    /// One bit per frame; set = allocated.
    bits: Vec<u64>,
    total: u64,
    free: u64,
    /// Word index where the next search begins.
    cursor: usize,
}

impl BitmapFrameAllocator {
    /// Creates an allocator managing frames `0..total_frames`, all free.
    pub fn new(total_frames: u64) -> Self {
        let words = (total_frames as usize).div_ceil(64);
        let mut bits = vec![0u64; words];
        // Mark the tail bits beyond `total_frames` as allocated so the
        // search never hands them out.
        let tail = total_frames as usize % 64;
        if tail != 0 && !bits.is_empty() {
            let last = bits.len() - 1;
            bits[last] = !0u64 << tail;
        }
        BitmapFrameAllocator {
            bits,
            total: total_frames,
            free: total_frames,
            cursor: 0,
        }
    }

    /// Returns true if `pfn` is currently allocated.
    pub fn is_allocated(&self, pfn: Pfn) -> bool {
        let idx = pfn.0 as usize;
        (self.bits[idx / 64] >> (idx % 64)) & 1 == 1
    }
}

impl FrameAllocator for BitmapFrameAllocator {
    fn alloc(&mut self) -> MemResult<Pfn> {
        if self.free == 0 {
            return Err(MemError::OutOfMemory);
        }
        let words = self.bits.len();
        for probe in 0..words {
            let w = (self.cursor + probe) % words;
            if self.bits[w] != !0u64 {
                let bit = (!self.bits[w]).trailing_zeros() as usize;
                self.bits[w] |= 1u64 << bit;
                self.free -= 1;
                self.cursor = w;
                return Ok(Pfn((w * 64 + bit) as u64));
            }
        }
        // `free > 0` guarantees a clear bit exists.
        unreachable!("free count out of sync with bitmap");
    }

    fn free(&mut self, pfn: Pfn) {
        assert!(
            pfn.0 < self.total,
            "freeing frame {} beyond total {}",
            pfn.0,
            self.total
        );
        let idx = pfn.0 as usize;
        let (w, b) = (idx / 64, idx % 64);
        assert!(self.bits[w] >> b & 1 == 1, "double free of frame {}", pfn.0);
        self.bits[w] &= !(1u64 << b);
        self.free += 1;
    }

    fn free_frames(&self) -> u64 {
        self.free
    }

    fn total_frames(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut a = BitmapFrameAllocator::new(128);
        assert_eq!(a.free_frames(), 128);
        let f1 = a.alloc().unwrap();
        let f2 = a.alloc().unwrap();
        assert_ne!(f1, f2);
        assert_eq!(a.free_frames(), 126);
        a.free(f1);
        assert_eq!(a.free_frames(), 127);
        assert!(!a.is_allocated(f1));
        assert!(a.is_allocated(f2));
    }

    #[test]
    fn exhaustion_returns_oom() {
        let mut a = BitmapFrameAllocator::new(3);
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(a.alloc().unwrap());
        }
        assert_eq!(a.alloc(), Err(MemError::OutOfMemory));
        got.sort();
        got.dedup();
        assert_eq!(got.len(), 3, "all frames distinct");
    }

    #[test]
    fn tail_bits_never_allocated() {
        // 70 frames: second word has 6 valid bits.
        let mut a = BitmapFrameAllocator::new(70);
        let mut seen = std::collections::HashSet::new();
        while let Ok(f) = a.alloc() {
            assert!(f.0 < 70, "handed out frame beyond total");
            assert!(seen.insert(f), "duplicate frame");
        }
        assert_eq!(seen.len(), 70);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = BitmapFrameAllocator::new(8);
        let f = a.alloc().unwrap();
        a.free(f);
        a.free(f);
    }

    #[test]
    #[should_panic(expected = "beyond total")]
    fn free_out_of_range_panics() {
        let mut a = BitmapFrameAllocator::new(8);
        a.free(Pfn(9));
    }

    #[test]
    fn next_fit_cursor_reuses_freed_space() {
        let mut a = BitmapFrameAllocator::new(64);
        let all: Vec<_> = (0..64).map(|_| a.alloc().unwrap()).collect();
        a.free(all[10]);
        let again = a.alloc().unwrap();
        assert_eq!(again, all[10]);
    }
}
