//! Property-based invariants of the memory substrate.
//!
//! These generate random operation sequences and assert the structural
//! laws the rest of the system depends on: no frame leaks, page-table ↔
//! VMA consistency, COW isolation, and buddy-allocator geometry.

use fpr_mem::address_space::ForkMode;
use fpr_mem::buddy::BuddyAllocator;
use fpr_mem::cost::{CostModel, Cycles};
use fpr_mem::frame::{BitmapFrameAllocator, FrameAllocator};
use fpr_mem::phys::PhysMemory;
use fpr_mem::tlb::TlbModel;
use fpr_mem::vma::{Prot, VmArea, VmaKind};
use fpr_mem::{AddressSpace, Pfn, Vpn};
use proptest::prelude::*;

/// A random single-space operation.
#[derive(Debug, Clone)]
enum Op {
    Mmap { start: u64, pages: u64 },
    Munmap { start: u64, pages: u64 },
    Write { vpn: u64, val: u64 },
    Read { vpn: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..200, 1u64..16).prop_map(|(start, pages)| Op::Mmap { start, pages }),
        (0u64..200, 1u64..16).prop_map(|(start, pages)| Op::Munmap { start, pages }),
        (0u64..200, any::<u64>()).prop_map(|(vpn, val)| Op::Write { vpn, val }),
        (0u64..200).prop_map(|vpn| Op::Read { vpn }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any operation sequence, destroying the space frees every frame.
    #[test]
    fn no_frame_leaks(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut phys = PhysMemory::new(4096, CostModel::default());
        let mut cy = Cycles::new();
        let mut tlb = TlbModel::new();
        let mut a = AddressSpace::new();
        for op in ops {
            match op {
                Op::Mmap { start, pages } => {
                    let _ = a.mmap(
                        VmArea::anon(Vpn(start), pages, Prot::RW, VmaKind::Mmap),
                        &mut phys, &mut cy,
                    );
                }
                Op::Munmap { start, pages } => {
                    let _ = a.munmap(Vpn(start), pages, &mut phys, &mut cy, &mut tlb, 1);
                }
                Op::Write { vpn, val } => { let _ = a.write(Vpn(vpn), val, &mut phys, &mut cy, &mut tlb, 1); }
                Op::Read { vpn } => { let _ = a.read(Vpn(vpn), &mut phys, &mut cy); }
            }
            // Invariant: resident pages equals used frames (single space,
            // no sharing in this test).
            prop_assert_eq!(a.resident_pages(), phys.used_frames());
        }
        a.destroy(&mut phys, &mut cy);
        prop_assert_eq!(phys.used_frames(), 0);
    }

    /// Every resident page lies inside some VMA, and every VMA page reads
    /// back what was last written to it.
    #[test]
    fn page_table_vma_consistency(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut phys = PhysMemory::new(4096, CostModel::default());
        let mut cy = Cycles::new();
        let mut tlb = TlbModel::new();
        let mut a = AddressSpace::new();
        let mut shadow: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Mmap { start, pages } => {
                    if a.mmap(VmArea::anon(Vpn(start), pages, Prot::RW, VmaKind::Mmap), &mut phys, &mut cy).is_ok() {
                        for p in start..start + pages { shadow.insert(p, 0); }
                    }
                }
                Op::Munmap { start, pages } => {
                    if a.munmap(Vpn(start), pages, &mut phys, &mut cy, &mut tlb, 1).is_ok() {
                        for p in start..start + pages { shadow.remove(&p); }
                    }
                }
                Op::Write { vpn, val } => {
                    if a.write(Vpn(vpn), val, &mut phys, &mut cy, &mut tlb, 1).is_ok() {
                        shadow.insert(vpn, val);
                    }
                }
                Op::Read { vpn } => {
                    if let Ok((got, _)) = a.read(Vpn(vpn), &mut phys, &mut cy) {
                        prop_assert_eq!(got, *shadow.get(&vpn).unwrap_or(&0));
                    }
                }
            }
        }
        // Every mapped page must be covered by a VMA and observable.
        for (vpn, expect) in &shadow {
            prop_assert_eq!(a.observe(Vpn(*vpn), &phys).unwrap(), *expect);
        }
        a.destroy(&mut phys, &mut cy);
    }

    /// COW fork isolation: after a fork, writes in either space are never
    /// visible in the other (for private mappings), and the child initially
    /// observes exactly the parent's contents.
    #[test]
    fn fork_isolates_private_memory(
        pre in proptest::collection::vec((0u64..32, any::<u64>()), 1..20),
        post_parent in proptest::collection::vec((0u64..32, any::<u64>()), 0..12),
        post_child in proptest::collection::vec((0u64..32, any::<u64>()), 0..12),
    ) {
        let mut phys = PhysMemory::new(4096, CostModel::default());
        let mut cy = Cycles::new();
        let mut tlb = TlbModel::new();
        let mut parent = AddressSpace::new();
        parent.mmap(VmArea::anon(Vpn(0), 32, Prot::RW, VmaKind::Heap), &mut phys, &mut cy).unwrap();
        let mut truth: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (vpn, val) in &pre {
            parent.write(Vpn(*vpn), *val, &mut phys, &mut cy, &mut tlb, 1).unwrap();
            truth.insert(*vpn, *val);
        }
        let mut child = AddressSpace::fork_from(&mut parent, ForkMode::Cow, &mut phys, &mut cy, &mut tlb, 1).unwrap();

        // Child sees a snapshot of the parent at fork time.
        for vpn in 0..32u64 {
            prop_assert_eq!(child.observe(Vpn(vpn), &phys).unwrap(), *truth.get(&vpn).unwrap_or(&0));
        }
        let snapshot = truth.clone();
        let mut parent_truth = truth;
        let mut child_truth = snapshot.clone();
        for (vpn, val) in &post_parent {
            parent.write(Vpn(*vpn), *val, &mut phys, &mut cy, &mut tlb, 1).unwrap();
            parent_truth.insert(*vpn, *val);
        }
        for (vpn, val) in &post_child {
            child.write(Vpn(*vpn), *val, &mut phys, &mut cy, &mut tlb, 1).unwrap();
            child_truth.insert(*vpn, *val);
        }
        for vpn in 0..32u64 {
            prop_assert_eq!(parent.observe(Vpn(vpn), &phys).unwrap(), *parent_truth.get(&vpn).unwrap_or(&0));
            prop_assert_eq!(child.observe(Vpn(vpn), &phys).unwrap(), *child_truth.get(&vpn).unwrap_or(&0));
        }
        child.destroy(&mut phys, &mut cy);
        parent.destroy(&mut phys, &mut cy);
        prop_assert_eq!(phys.used_frames(), 0);
    }

    /// Eager forks behave observably identically to COW forks.
    #[test]
    fn eager_and_cow_forks_equivalent(
        pre in proptest::collection::vec((0u64..16, any::<u64>()), 1..12),
        post in proptest::collection::vec((0u64..16, any::<u64>()), 0..8),
    ) {
        let mut results = Vec::new();
        for mode in [ForkMode::Cow, ForkMode::Eager] {
            let mut phys = PhysMemory::new(4096, CostModel::default());
            let mut cy = Cycles::new();
            let mut tlb = TlbModel::new();
            let mut parent = AddressSpace::new();
            parent.mmap(VmArea::anon(Vpn(0), 16, Prot::RW, VmaKind::Heap), &mut phys, &mut cy).unwrap();
            for (vpn, val) in &pre {
                parent.write(Vpn(*vpn), *val, &mut phys, &mut cy, &mut tlb, 1).unwrap();
            }
            let mut child = AddressSpace::fork_from(&mut parent, mode, &mut phys, &mut cy, &mut tlb, 1).unwrap();
            for (vpn, val) in &post {
                child.write(Vpn(*vpn), *val, &mut phys, &mut cy, &mut tlb, 1).unwrap();
            }
            let view: Vec<(u64, u64)> = (0..16u64)
                .map(|v| (child.observe(Vpn(v), &phys).unwrap(), parent.observe(Vpn(v), &phys).unwrap()))
                .collect();
            results.push(view);
            child.destroy(&mut phys, &mut cy);
            parent.destroy(&mut phys, &mut cy);
        }
        prop_assert_eq!(&results[0], &results[1]);
    }

    /// Bitmap allocator: frames handed out are unique and within range.
    #[test]
    fn bitmap_allocator_unique(total in 1u64..300, n in 1usize..400) {
        let mut a = BitmapFrameAllocator::new(total);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            match a.alloc() {
                Ok(f) => {
                    prop_assert!(f.0 < total);
                    prop_assert!(seen.insert(f.0));
                }
                Err(_) => {
                    prop_assert_eq!(seen.len() as u64, total);
                    break;
                }
            }
        }
    }

    /// Buddy allocator: allocations never overlap, and full free restores
    /// the complete frame count.
    #[test]
    fn buddy_no_overlap_and_restores(orders in proptest::collection::vec(0usize..5, 1..24)) {
        let mut b = BuddyAllocator::new(Pfn(0), 512);
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut handles: Vec<Pfn> = Vec::new();
        for o in orders {
            if let Ok(p) = b.alloc(o) {
                let len = 1u64 << o;
                prop_assert_eq!(p.0 % len, 0, "natural alignment");
                for (s, l) in &live {
                    prop_assert!(p.0 + len <= *s || s + l <= p.0, "overlap");
                }
                live.push((p.0, len));
                handles.push(p);
            }
        }
        for h in handles { b.free(h); }
        prop_assert_eq!(b.free_frames(), 512);
        prop_assert_eq!(b.largest_free_order(), Some(9));
    }
}
