//! Randomized invariants of the memory substrate.
//!
//! Seed-driven property tests (the workspace builds without proptest, so
//! cases derive from an explicit `fpr_rng` seed — any failure names the
//! seed and replays exactly). They generate random operation sequences
//! and assert the structural laws the rest of the system depends on: no
//! frame leaks, page-table ↔ VMA consistency, COW isolation, and buddy
//! allocator geometry.

use fpr_mem::address_space::ForkMode;
use fpr_mem::buddy::BuddyAllocator;
use fpr_mem::cost::{CostModel, Cycles};
use fpr_mem::frame::{BitmapFrameAllocator, FrameAllocator};
use fpr_mem::phys::PhysMemory;
use fpr_mem::tlb::TlbModel;
use fpr_mem::vma::{Prot, VmArea, VmaKind};
use fpr_mem::{AddressSpace, Pfn, Vpn};
use fpr_rng::Rng;

const CASES: u64 = 64;

/// A random single-space operation.
#[derive(Debug, Clone)]
enum Op {
    Mmap { start: u64, pages: u64 },
    Munmap { start: u64, pages: u64 },
    Write { vpn: u64, val: u64 },
    Read { vpn: u64 },
}

fn gen_op(rng: &mut Rng) -> Op {
    match rng.gen_below(4) {
        0 => Op::Mmap {
            start: rng.gen_below(200),
            pages: rng.gen_range(1, 16),
        },
        1 => Op::Munmap {
            start: rng.gen_below(200),
            pages: rng.gen_range(1, 16),
        },
        2 => Op::Write {
            vpn: rng.gen_below(200),
            val: rng.gen_u64(),
        },
        _ => Op::Read {
            vpn: rng.gen_below(200),
        },
    }
}

fn gen_ops(rng: &mut Rng, max: u64) -> Vec<Op> {
    (0..rng.gen_range(1, max)).map(|_| gen_op(rng)).collect()
}

/// After any operation sequence, destroying the space frees every frame.
#[test]
fn no_frame_leaks() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x11_0000 + case);
        let ops = gen_ops(&mut rng, 80);
        let mut phys = PhysMemory::new(4096, CostModel::default());
        let mut cy = Cycles::new();
        let mut tlb = TlbModel::new();
        let mut a = AddressSpace::new();
        for op in ops {
            match op {
                Op::Mmap { start, pages } => {
                    let _ = a.mmap(
                        VmArea::anon(Vpn(start), pages, Prot::RW, VmaKind::Mmap),
                        &mut phys,
                        &mut cy,
                    );
                }
                Op::Munmap { start, pages } => {
                    let _ = a.munmap(Vpn(start), pages, &mut phys, &mut cy, &mut tlb, 1);
                }
                Op::Write { vpn, val } => {
                    let _ = a.write(Vpn(vpn), val, &mut phys, &mut cy, &mut tlb, 1);
                }
                Op::Read { vpn } => {
                    let _ = a.read(Vpn(vpn), &mut phys, &mut cy);
                }
            }
            // Invariant: resident pages equals used frames (single space,
            // no sharing in this test).
            assert_eq!(a.resident_pages(), phys.used_frames(), "case {case}");
        }
        a.destroy(&mut phys, &mut cy);
        assert_eq!(phys.used_frames(), 0, "case {case}");
    }
}

/// Every resident page lies inside some VMA, and every VMA page reads
/// back what was last written to it.
#[test]
fn page_table_vma_consistency() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x22_0000 + case);
        let ops = gen_ops(&mut rng, 60);
        let mut phys = PhysMemory::new(4096, CostModel::default());
        let mut cy = Cycles::new();
        let mut tlb = TlbModel::new();
        let mut a = AddressSpace::new();
        let mut shadow: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Mmap { start, pages } => {
                    if a.mmap(
                        VmArea::anon(Vpn(start), pages, Prot::RW, VmaKind::Mmap),
                        &mut phys,
                        &mut cy,
                    )
                    .is_ok()
                    {
                        for p in start..start + pages {
                            shadow.insert(p, 0);
                        }
                    }
                }
                Op::Munmap { start, pages } => {
                    if a.munmap(Vpn(start), pages, &mut phys, &mut cy, &mut tlb, 1)
                        .is_ok()
                    {
                        for p in start..start + pages {
                            shadow.remove(&p);
                        }
                    }
                }
                Op::Write { vpn, val } => {
                    if a.write(Vpn(vpn), val, &mut phys, &mut cy, &mut tlb, 1).is_ok() {
                        shadow.insert(vpn, val);
                    }
                }
                Op::Read { vpn } => {
                    if let Ok((got, _)) = a.read(Vpn(vpn), &mut phys, &mut cy) {
                        assert_eq!(got, *shadow.get(&vpn).unwrap_or(&0), "case {case}");
                    }
                }
            }
        }
        // Every mapped page must be covered by a VMA and observable.
        for (vpn, expect) in &shadow {
            assert_eq!(a.observe(Vpn(*vpn), &phys).unwrap(), *expect, "case {case}");
        }
        a.destroy(&mut phys, &mut cy);
    }
}

fn gen_writes(rng: &mut Rng, span: u64, lo: u64, hi: u64) -> Vec<(u64, u64)> {
    (0..rng.gen_range(lo, hi))
        .map(|_| (rng.gen_below(span), rng.gen_u64()))
        .collect()
}

/// COW fork isolation: after a fork, writes in either space are never
/// visible in the other (for private mappings), and the child initially
/// observes exactly the parent's contents.
#[test]
fn fork_isolates_private_memory() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x33_0000 + case);
        let pre = gen_writes(&mut rng, 32, 1, 20);
        let post_parent = gen_writes(&mut rng, 32, 0, 12);
        let post_child = gen_writes(&mut rng, 32, 0, 12);
        let mut phys = PhysMemory::new(4096, CostModel::default());
        let mut cy = Cycles::new();
        let mut tlb = TlbModel::new();
        let mut parent = AddressSpace::new();
        parent
            .mmap(
                VmArea::anon(Vpn(0), 32, Prot::RW, VmaKind::Heap),
                &mut phys,
                &mut cy,
            )
            .unwrap();
        let mut truth: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (vpn, val) in &pre {
            parent
                .write(Vpn(*vpn), *val, &mut phys, &mut cy, &mut tlb, 1)
                .unwrap();
            truth.insert(*vpn, *val);
        }
        let mut child =
            AddressSpace::fork_from(&mut parent, ForkMode::Cow, &mut phys, &mut cy, &mut tlb, 1)
                .unwrap();

        // Child sees a snapshot of the parent at fork time.
        for vpn in 0..32u64 {
            assert_eq!(
                child.observe(Vpn(vpn), &phys).unwrap(),
                *truth.get(&vpn).unwrap_or(&0),
                "case {case}"
            );
        }
        let mut parent_truth = truth.clone();
        let mut child_truth = truth;
        for (vpn, val) in &post_parent {
            parent
                .write(Vpn(*vpn), *val, &mut phys, &mut cy, &mut tlb, 1)
                .unwrap();
            parent_truth.insert(*vpn, *val);
        }
        for (vpn, val) in &post_child {
            child
                .write(Vpn(*vpn), *val, &mut phys, &mut cy, &mut tlb, 1)
                .unwrap();
            child_truth.insert(*vpn, *val);
        }
        for vpn in 0..32u64 {
            assert_eq!(
                parent.observe(Vpn(vpn), &phys).unwrap(),
                *parent_truth.get(&vpn).unwrap_or(&0),
                "case {case}"
            );
            assert_eq!(
                child.observe(Vpn(vpn), &phys).unwrap(),
                *child_truth.get(&vpn).unwrap_or(&0),
                "case {case}"
            );
        }
        child.destroy(&mut phys, &mut cy);
        parent.destroy(&mut phys, &mut cy);
        assert_eq!(phys.used_frames(), 0, "case {case}");
    }
}

/// Eager forks behave observably identically to COW forks.
#[test]
fn eager_and_cow_forks_equivalent() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x44_0000 + case);
        let pre = gen_writes(&mut rng, 16, 1, 12);
        let post = gen_writes(&mut rng, 16, 0, 8);
        let mut results = Vec::new();
        for mode in [ForkMode::Cow, ForkMode::Eager] {
            let mut phys = PhysMemory::new(4096, CostModel::default());
            let mut cy = Cycles::new();
            let mut tlb = TlbModel::new();
            let mut parent = AddressSpace::new();
            parent
                .mmap(
                    VmArea::anon(Vpn(0), 16, Prot::RW, VmaKind::Heap),
                    &mut phys,
                    &mut cy,
                )
                .unwrap();
            for (vpn, val) in &pre {
                parent
                    .write(Vpn(*vpn), *val, &mut phys, &mut cy, &mut tlb, 1)
                    .unwrap();
            }
            let mut child =
                AddressSpace::fork_from(&mut parent, mode, &mut phys, &mut cy, &mut tlb, 1)
                    .unwrap();
            for (vpn, val) in &post {
                child
                    .write(Vpn(*vpn), *val, &mut phys, &mut cy, &mut tlb, 1)
                    .unwrap();
            }
            let view: Vec<(u64, u64)> = (0..16u64)
                .map(|v| {
                    (
                        child.observe(Vpn(v), &phys).unwrap(),
                        parent.observe(Vpn(v), &phys).unwrap(),
                    )
                })
                .collect();
            results.push(view);
            child.destroy(&mut phys, &mut cy);
            parent.destroy(&mut phys, &mut cy);
        }
        assert_eq!(results[0], results[1], "case {case}");
    }
}

/// Bitmap allocator: frames handed out are unique and within range.
#[test]
fn bitmap_allocator_unique() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x55_0000 + case);
        let total = rng.gen_range(1, 300);
        let n = rng.gen_range(1, 400);
        let mut a = BitmapFrameAllocator::new(total);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            match a.alloc() {
                Ok(f) => {
                    assert!(f.0 < total, "case {case}");
                    assert!(seen.insert(f.0), "case {case}: duplicate frame");
                }
                Err(_) => {
                    assert_eq!(seen.len() as u64, total, "case {case}");
                    break;
                }
            }
        }
    }
}

/// Buddy allocator: allocations never overlap, and full free restores
/// the complete frame count.
#[test]
fn buddy_no_overlap_and_restores() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x66_0000 + case);
        let orders: Vec<usize> = (0..rng.gen_range(1, 24))
            .map(|_| rng.gen_below(5) as usize)
            .collect();
        let mut b = BuddyAllocator::new(Pfn(0), 512);
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut handles: Vec<Pfn> = Vec::new();
        for o in orders {
            if let Ok(p) = b.alloc(o) {
                let len = 1u64 << o;
                assert_eq!(p.0 % len, 0, "case {case}: natural alignment");
                for (s, l) in &live {
                    assert!(p.0 + len <= *s || s + l <= p.0, "case {case}: overlap");
                }
                live.push((p.0, len));
                handles.push(p);
            }
        }
        for h in handles {
            b.free(h);
        }
        assert_eq!(b.free_frames(), 512, "case {case}");
        assert_eq!(b.largest_free_order(), Some(9), "case {case}");
    }
}
