//! Fault-plan property tests for the memory substrate.
//!
//! Random map/write/fork schedules run under random [`FaultPlan`]s
//! (seed-driven, like the other proptests — any failure names the seed
//! and replays exactly). The property: every operation that returns
//! `Err` — whether from a genuine condition or an injected fault at a
//! `FrameAlloc`/`PtNodeAlloc`/`VmaClone`/`PtUnshare` crossing — leaves the frame
//! allocator's used count exactly where it was, and forked-from parents
//! keep their resident pages. Destroying every space at the end must
//! return the allocator to zero, so no refcount can drift either way.

use fpr_faults::{with_plan, FaultPlan};
use fpr_mem::address_space::ForkMode;
use fpr_mem::cost::{CostModel, Cycles};
use fpr_mem::phys::PhysMemory;
use fpr_mem::tlb::TlbModel;
use fpr_mem::vma::{Prot, VmArea, VmaKind};
use fpr_mem::{AddressSpace, Vpn};
use fpr_rng::Rng;

const CASES: u64 = 48;
const MAX_SPACES: usize = 5;

#[derive(Debug, Clone)]
enum Op {
    Mmap { space: u64, start: u64, pages: u64 },
    Write { space: u64, vpn: u64, val: u64 },
    Fork { space: u64, mode: ForkMode },
}

fn gen_op(rng: &mut Rng) -> Op {
    match rng.gen_below(5) {
        0 | 1 => Op::Mmap {
            space: rng.gen_u64(),
            start: rng.gen_below(160),
            pages: rng.gen_range(1, 12),
        },
        2 | 3 => Op::Write {
            space: rng.gen_u64(),
            vpn: rng.gen_below(160),
            val: rng.gen_u64(),
        },
        _ => Op::Fork {
            space: rng.gen_u64(),
            mode: match rng.gen_below(3) {
                0 => ForkMode::Eager,
                1 => ForkMode::OnDemand,
                _ => ForkMode::Cow,
            },
        },
    }
}

/// Under a random fault plan, `Err` from any op leaves `used_frames`
/// untouched and the parent space intact; final teardown reaches zero.
#[test]
fn faulty_schedules_never_leak_frames() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xFA_0000 + case);
        let ops: Vec<Op> = (0..rng.gen_range(10, 60)).map(|_| gen_op(&mut rng)).collect();
        // ~1 in 6 crossings injected: dense enough to hit every error
        // path across the case sweep, sparse enough that schedules also
        // make progress.
        let plan = FaultPlan::random(rng.gen_u64(), 170);
        let ((), trace) = with_plan(plan, || {
            let mut phys = PhysMemory::new(2048, CostModel::default());
            let mut cy = Cycles::new();
            let mut tlb = TlbModel::new();
            let mut spaces = vec![AddressSpace::new()];
            for (i, op) in ops.iter().enumerate() {
                let before = phys.used_frames();
                match op {
                    Op::Mmap { space, start, pages } => {
                        let idx = *space as usize % spaces.len();
                        let s = &mut spaces[idx];
                        if s.mmap(
                            VmArea::anon(Vpn(*start), *pages, Prot::RW, VmaKind::Mmap),
                            &mut phys,
                            &mut cy,
                        )
                        .is_err()
                        {
                            assert_eq!(
                                phys.used_frames(),
                                before,
                                "case {case} op {i}: failed mmap leaked frames"
                            );
                        }
                    }
                    Op::Write { space, vpn, val } => {
                        let idx = *space as usize % spaces.len();
                        let s = &mut spaces[idx];
                        if s.write(Vpn(*vpn), *val, &mut phys, &mut cy, &mut tlb, 1).is_err() {
                            assert_eq!(
                                phys.used_frames(),
                                before,
                                "case {case} op {i}: failed write leaked frames"
                            );
                        }
                    }
                    Op::Fork { space, mode } => {
                        let idx = *space as usize % spaces.len();
                        let resident_before = spaces[idx].resident_pages();
                        match AddressSpace::fork_from(
                            &mut spaces[idx],
                            *mode,
                            &mut phys,
                            &mut cy,
                            &mut tlb,
                            1,
                        ) {
                            Ok(child) => {
                                if spaces.len() < MAX_SPACES {
                                    spaces.push(child);
                                } else {
                                    let mut child = child;
                                    child.destroy(&mut phys, &mut cy);
                                }
                            }
                            Err(_) => {
                                assert_eq!(
                                    phys.used_frames(),
                                    before,
                                    "case {case} op {i}: failed fork leaked frames"
                                );
                                assert_eq!(
                                    spaces[idx].resident_pages(),
                                    resident_before,
                                    "case {case} op {i}: failed fork mutated the parent"
                                );
                            }
                        }
                    }
                }
            }
            for mut s in spaces {
                s.destroy(&mut phys, &mut cy);
            }
            assert_eq!(
                phys.used_frames(),
                0,
                "case {case}: frames survived full teardown"
            );
        });
        // The plan must actually be exercising error paths, not sleeping.
        assert!(
            !trace.is_empty() || case > 0,
            "fault plan never crossed an instrumented site"
        );
    }
}
